"""Vectorized columnar kernels + fused delta pass + morsel scheduler.

Not a paper figure: this measures the execution-core work described in
DESIGN.md's "Columnar batches and morsels" section — the vectorized
kernel suite (encode/join/group/scatter), the fused semi-naive delta
step (gate, partition, recompute, apply and capture as one batched
columnar pass), and morsel-driven parallel dispatch.

Two workloads, results asserted bit-identical (mask-aware):

* **SSSP on a DAG, fixed 120 iterations** — the convergence profile
  that rewards the fused delta pass hardest: the wave dies out after
  the longest path, after which every remaining iteration is a single
  O(1) fused-step dispatch instead of a full columnar recomputation.
  Expected: >= 5x end to end, every delta iteration through the fused
  step.
* **Large scan (400k rows), morsel scheduler off vs on** — a
  filter+project over fixed-size morsels with a shared worker pool.
  This reproduction's container is single-CPU, so the honest claim is
  *dispatch correctness at parity*, not a scaling curve: multi-worker
  dispatch must engage (``morsel_parallel_batches > 0``) and must not
  cost more than a few percent against the single-threaded path.
  NumPy kernels release the GIL, so multi-core hosts see real scaling
  from the same code path.

Run directly for the JSON summary and the BENCH artifact:

    PYTHONPATH=src python benchmarks/bench_columnar_kernels.py
"""

from __future__ import annotations

import json

import numpy as np

from repro import Database
from repro.harness import Comparison, print_figure, time_fresh, \
    write_bench_artifact
from repro.types import SqlType
from repro.workloads import sssp_query

SSSP_ITERATIONS = 120
SCAN_ROWS = 400_000
MORSEL_WORKERS = 4

SCAN_SQL = """
SELECT src, dst, weight * 2.0 + 1.0 AS boosted
FROM big
WHERE weight > 0.25 AND MOD(src, 3) <> 1"""


def dag_graph(num_nodes=3000, num_edges=12000, seed=5):
    """Random DAG (edges point to higher ids): SSSP's delta wave dies."""
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < num_edges:
        a, b = rng.integers(1, num_nodes + 1, size=2)
        if a < b:
            edges.add((int(a), int(b)))
    return [(a, b, round(float(rng.uniform(0.1, 2.0)), 3))
            for a, b in sorted(edges)]


def _graph_db(edges, delta_on):
    db = Database()
    db.set_option("enable_delta_iteration", delta_on)
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", edges)
    return db


def _scan_db(parallel):
    rng = np.random.default_rng(23)
    db = Database()
    db.set_option("parallel_morsels", parallel)
    if parallel:
        db.set_option("morsel_workers", MORSEL_WORKERS)
        db.set_option("morsel_min_rows", 10_000)
    db.create_table("big", [("src", SqlType.INTEGER),
                            ("dst", SqlType.INTEGER),
                            ("weight", SqlType.FLOAT)])
    src = rng.integers(1, 10_000, size=SCAN_ROWS)
    dst = rng.integers(1, 10_000, size=SCAN_ROWS)
    weight = rng.uniform(0, 1, size=SCAN_ROWS)
    db.load_rows("big", list(zip(src.tolist(), dst.tolist(),
                                 np.round(weight, 6).tolist())))
    return db


def tables_bit_identical(left, right) -> bool:
    """Row-for-row equality; masked (NULL) slots compare by mask only."""
    if left.num_rows != right.num_rows:
        return False
    for lc, rc in zip(left.columns, right.columns):
        if not (lc.mask == rc.mask).all():
            return False
        valid = ~lc.mask
        if not (lc.data[valid] == rc.data[valid]).all():
            return False
    return True


def fused_delta_case(repeats=3, warmup=1):
    edges = dag_graph()
    sql = sssp_query(source=1, iterations=SSSP_ITERATIONS)
    results, measurements = {}, {}
    fused_iterations = 0
    for delta_on in (False, True):
        captured = {}

        def run(db, captured=captured):
            captured["table"] = db.execute(sql).table
            captured["fused"] = db.stats.delta_fused_iterations

        measurements[delta_on] = time_fresh(
            f"sssp-dag-x{SSSP_ITERATIONS}/"
            f"delta-{'on' if delta_on else 'off'}",
            lambda delta_on=delta_on: _graph_db(edges, delta_on),
            run, repeats=repeats, warmup=warmup)
        results[delta_on] = captured["table"]
        if delta_on:
            fused_iterations = captured["fused"]
    comparison = Comparison(f"SSSP DAG x{SSSP_ITERATIONS}",
                            measurements[False], measurements[True])
    return (comparison, tables_bit_identical(results[True], results[False]),
            fused_iterations)


def morsel_scan_case(repeats=3, warmup=1):
    results, measurements = {}, {}
    stats = {}
    for parallel in (False, True):
        captured = {}

        def run(db, parallel=parallel, captured=captured):
            captured["table"] = db.execute(SCAN_SQL).table
            captured["stats"] = (db.stats.morsel_batches,
                                 db.stats.morsel_parallel_batches,
                                 db.stats.morsel_rows)

        measurements[parallel] = time_fresh(
            f"scan-{SCAN_ROWS // 1000}k/"
            f"morsels-{'on' if parallel else 'off'}",
            lambda parallel=parallel: _scan_db(parallel),
            run, repeats=repeats, warmup=warmup)
        results[parallel] = captured["table"]
        stats[parallel] = captured["stats"]
    comparison = Comparison(f"scan {SCAN_ROWS // 1000}k morsels",
                            measurements[False], measurements[True])
    batches, parallel_batches, rows = stats[True]
    return (comparison, tables_bit_identical(results[True], results[False]),
            {"morsel_batches": batches,
             "morsel_parallel_batches": parallel_batches,
             "morsel_rows": rows,
             "morsel_workers": MORSEL_WORKERS})


def run_benchmark(artifact_dir=None) -> dict:
    delta_cmp, delta_identical, fused_iterations = fused_delta_case()
    scan_cmp, scan_identical, morsel_stats = morsel_scan_case()
    print_figure(
        "Vectorized columnar kernels + fused delta pass + morsels",
        [delta_cmp, scan_cmp],
        f">= 5x on convergent SSSP via the fused delta step; "
        f"morsel dispatch at parity on this single-CPU container")
    summary = {
        "benchmark": "columnar_kernels",
        "workloads": [
            {
                "name": delta_cmp.name,
                "baseline_seconds": delta_cmp.baseline.seconds,
                "optimized_seconds": delta_cmp.optimized.seconds,
                "speedup": delta_cmp.speedup,
                "bit_identical": delta_identical,
                "delta_fused_iterations": fused_iterations,
            },
            {
                "name": scan_cmp.name,
                "baseline_seconds": scan_cmp.baseline.seconds,
                "optimized_seconds": scan_cmp.optimized.seconds,
                "speedup": scan_cmp.speedup,
                "bit_identical": scan_identical,
                **morsel_stats,
            },
        ],
        "single_cpu_container": True,
    }
    print(json.dumps(summary, indent=2))
    if artifact_dir is not None:
        path = write_bench_artifact(
            "columnar_kernels",
            comparisons=[delta_cmp, scan_cmp],
            extra={"workloads": summary["workloads"],
                   "single_cpu_container": True},
            directory=artifact_dir)
        print(f"wrote {path}")
    return summary


def test_columnar_kernels_report():
    summary = run_benchmark()
    sssp, scan = summary["workloads"]
    assert sssp["bit_identical"], "fused delta changed SSSP results"
    assert sssp["delta_fused_iterations"] >= SSSP_ITERATIONS - 1, (
        "not every delta iteration went through the fused step")
    assert sssp["speedup"] >= 5.0, (
        f"fused-delta speedup {sssp['speedup']:.2f}x below the 5x floor")
    assert scan["bit_identical"], "morsel scheduling changed scan results"
    assert scan["morsel_parallel_batches"] > 0, (
        "parallel morsel dispatch never engaged on the large scan")
    assert scan["speedup"] >= 0.7, (
        f"morsel dispatch overhead collapsed the scan: "
        f"{scan['speedup']:.2f}x")


if __name__ == "__main__":
    run_benchmark(artifact_dir=".")
