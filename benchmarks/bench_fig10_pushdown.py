"""Fig. 10 — predicate push down (§VII-D).

Paper setup: the FF query configured for 25 iterations, varying the final
predicate's selectivity through X in ``MOD(node, X) = 0`` (≈ 1/X of nodes
survive), with and without pushing that predicate into the non-iterative
part.

Paper claims: the baseline is flat — selectivity is irrelevant because
the CTE is fully evaluated before Qf filters; the optimized run improves
with selectivity, exceeding an order of magnitude at high selectivity.
"""

from __future__ import annotations

import pytest

from repro.datasets import dblp_like
from repro.harness import (
    Comparison,
    print_series,
    time_query,
    write_bench_artifact,
)
from repro.workloads import ff_query

from conftest import FF_NODES, ITERATIONS, build_db

SELECTIVITIES = [2, 4, 10, 20, 100]


def ff_sql(mod):
    return ff_query(iterations=ITERATIONS, selectivity_mod=mod,
                    order_and_limit=False)


def sweep(db):
    comparisons = []
    for mod in SELECTIVITIES:
        sql = ff_sql(mod)
        db.set_option("enable_predicate_pushdown", False)
        baseline = time_query(db, sql, repeats=3, warmup=1,
                              label=f"MOD(node, {mod})/baseline")
        db.set_option("enable_predicate_pushdown", True)
        optimized = time_query(db, sql, repeats=3, warmup=1,
                               label=f"MOD(node, {mod})/pushed")
        comparisons.append(
            Comparison(f"MOD(node, {mod}) = 0", baseline, optimized))
    return comparisons


def report(comparisons):
    rows = [(c.name, f"{100 / mod:.1f}%", c.baseline.seconds,
             c.optimized.seconds, f"{c.speedup:.1f}x")
            for c, mod in zip(comparisons, SELECTIVITIES)]
    print_series(
        f"Fig. 10 — predicate push down, FF with {ITERATIONS} iterations",
        ["predicate", "selectivity", "baseline (s)", "pushed (s)",
         "speedup"],
        rows,
        "baseline flat across selectivities; pushed improves with "
        "selectivity, >10x at the most selective point")


def run_benchmark(artifact_dir=None):
    comparisons = sweep(build_db(dblp_like(nodes=FF_NODES, seed=21),
                                 with_vertex_status=False))
    report(comparisons)
    if artifact_dir is not None:
        path = write_bench_artifact(
            "fig10_pushdown",
            comparisons=comparisons,
            extra={"iterations": ITERATIONS,
                   "selectivities": SELECTIVITIES},
            directory=artifact_dir)
        print(f"wrote {path}")
    return comparisons


def test_fig10_report(ff_db):
    comparisons = sweep(ff_db)
    report(comparisons)

    baselines = [c.baseline.seconds for c in comparisons]
    optimized = [c.optimized.seconds for c in comparisons]
    # Baseline is flat: the CTE is evaluated in full regardless.
    assert max(baselines) / min(baselines) < 2.0
    # Optimized improves monotonically-ish with selectivity and beats an
    # order of magnitude at the most selective setting.
    assert optimized[-1] < optimized[0]
    assert baselines[-1] / optimized[-1] > 10


def test_fig10_pushdown_counter(ff_db):
    ff_db.set_option("enable_predicate_pushdown", True)
    ff_db.reset_stats()
    ff_db.execute(ff_sql(100))
    assert ff_db.stats.predicate_pushdowns == 1


def test_fig10_results_identical_either_way(ff_db):
    sql = ff_sql(20)
    ff_db.set_option("enable_predicate_pushdown", True)
    pushed = sorted(ff_db.execute(sql).rows())
    ff_db.set_option("enable_predicate_pushdown", False)
    unpushed = sorted(ff_db.execute(sql).rows())
    assert pushed == unpushed


@pytest.mark.parametrize("mod", [2, 100], ids=["sel-50pct", "sel-1pct"])
@pytest.mark.parametrize("enable", [True, False],
                         ids=["pushed", "baseline"])
def test_fig10_benchmark(benchmark, ff_db, enable, mod):
    ff_db.set_option("enable_predicate_pushdown", enable)
    benchmark.pedantic(ff_db.execute, args=(ff_sql(mod),), rounds=3,
                       iterations=1, warmup_rounds=1)


if __name__ == "__main__":  # pragma: no cover
    run_benchmark(artifact_dir=".")
