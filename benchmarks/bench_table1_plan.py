"""Table I — the logical plan of the PR query.

The paper's Table I lists the six-step program MPPDB produces for Fig. 2's
PageRank query.  This bench regenerates the plan, asserts it step-for-step,
prints it, and times plan compilation (the planner-overhead data point the
rewrite approach depends on being cheap).
"""

from __future__ import annotations

from repro.core.rewrite import compile_statement
from repro.datasets import dblp_like
from repro.execution import ExecutionStats, SessionOptions
from repro.harness import time_callable, write_bench_artifact
from repro.plan import PlanContext
from repro.sql import parse
from repro.workloads import pagerank_query

from conftest import DBLP_NODES, build_db

PAPER_TABLE_1 = """\
Step 1  Materialize PageRank with the results of the union of src/dst
Step 2  Initialize counter to zero
Step 3  Materialize Intermediate_Results (join + self-join + GROUP BY)
Step 4  Rename Intermediate_Results to PageRank
Step 5  Increment counter by 1
Step 6  Go to step 3 if counter < 10"""


def compile_pr(db, iterations=10):
    statement = parse(pagerank_query(iterations=iterations))
    return compile_statement(statement, PlanContext(db.catalog),
                             SessionOptions(), ExecutionStats())


def run_benchmark(artifact_dir=None):
    db = build_db(dblp_like(nodes=DBLP_NODES))
    compile_time = time_callable("plan_compile",
                                 lambda: compile_pr(db),
                                 repeats=5, warmup=1)
    program = compile_pr(db)
    print(f"plan compilation: {compile_time.seconds * 1000:.2f}ms "
          f"median of {compile_time.repeats}")
    print(program.explain())
    if artifact_dir is not None:
        path = write_bench_artifact(
            "table1_plan",
            measurements=[compile_time],
            extra={"steps": len(program.steps),
                   "plan": program.explain().splitlines()},
            directory=artifact_dir)
        print(f"wrote {path}")
    return compile_time


def test_table1_step_structure(dblp_db):
    """The produced program is Table I, step for step."""
    program = compile_pr(dblp_db)
    text = program.explain()
    print("\n== Table I — PR logical plan ==")
    print("paper:")
    print(PAPER_TABLE_1)
    print("measured (this engine):")
    print(text)

    lines = [line.strip() for line in text.splitlines()]
    assert lines[0].startswith("1  Materialize")   # step 1
    assert "Initialize counter" in lines[1]         # step 2
    assert "iterative part" in lines[2]             # step 3
    assert lines[3].startswith("4  Rename")         # step 4
    assert "Increment counter" in lines[4]          # step 5
    assert "Go to step 3" in lines[5]               # step 6
    assert "<<Type:metadata, N:10, Expr:NONE>>" in text


def test_plan_compilation_speed(benchmark, dblp_db):
    """Functional-rewrite compilation must stay negligible next to
    execution (the paper's argument that the rewrite is non-invasive)."""
    program = benchmark(compile_pr, dblp_db)
    assert len(program.steps) >= 6


def test_plan_is_a_single_unit(dblp_db):
    """One iterative query = one plan = one workload-manager unit."""
    dblp_db.reset_stats()
    dblp_db.execute(pagerank_query(iterations=3))
    assert dblp_db.workload.units_admitted == 1


if __name__ == "__main__":  # pragma: no cover
    run_benchmark(artifact_dir=".")
