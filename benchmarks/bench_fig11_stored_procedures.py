"""Fig. 11 — optimized iterative CTEs vs stored procedures (§VII-E).

Paper setup: PR and SSSP (both with vertexStatus) and FF (50%
selectivity), 25 iterations, as optimized iterative CTEs and as stored
procedures that run R0 once, loop Ri 25 times, and return Qf.

Paper claims: CTEs at least 25% faster for PR/SSSP (rename + common
results), more than 80% faster for FF (early predicate evaluation).
"""

from __future__ import annotations

import pytest

from repro.datasets import dblp_like
from repro.harness import (
    Comparison,
    print_figure,
    time_callable,
    write_bench_artifact,
)
from repro.procedures import (
    ExecuteSql,
    Procedure,
    ProcedureCatalog,
    ReturnQuery,
)
from repro.workloads import friends, pagerank, sssp
from repro.workloads import ff_query, pagerank_query, sssp_query

from conftest import DBLP_NODES, ITERATIONS, build_db

FF_SELECTIVITY = 2  # MOD(node, 2) = 0 — the paper's 50%

CASES = [
    ("PR-VS",
     pagerank_query(iterations=ITERATIONS, with_vertex_status=True),
     pagerank.stored_procedure_script(iterations=ITERATIONS,
                                      with_vertex_status=True),
     "SELECT node, rank FROM __pr_result",
     ["DROP TABLE IF EXISTS __pr_intermediate",
      "DROP TABLE IF EXISTS __pr_result"]),
    ("SSSP-VS",
     sssp_query(source=1, iterations=ITERATIONS, with_vertex_status=True),
     sssp.stored_procedure_script(source=1, iterations=ITERATIONS,
                                  with_vertex_status=True),
     "SELECT node, distance FROM __sssp_result",
     ["DROP TABLE IF EXISTS __sssp_intermediate",
      "DROP TABLE IF EXISTS __sssp_result"]),
    ("FF@50%",
     ff_query(iterations=ITERATIONS, selectivity_mod=FF_SELECTIVITY,
              order_and_limit=False),
     friends.stored_procedure_script(iterations=ITERATIONS),
     f"SELECT node, friends FROM __ff_result "
     f"WHERE MOD(node, {FF_SELECTIVITY}) = 0",
     ["DROP TABLE IF EXISTS __ff_intermediate",
      "DROP TABLE IF EXISTS __ff_result"]),
]


def run_procedure(db, script, final_sql, cleanup):
    for sql in cleanup:  # drop leftovers from prior timing rounds
        db.execute(sql)
    catalog = ProcedureCatalog(db)
    ops = [ExecuteSql(s) for s in script]
    ops.append(ReturnQuery(final_sql))
    catalog.register(Procedure("bench", ops))
    try:
        return catalog.call("bench")
    finally:
        for sql in cleanup:
            db.execute(sql)


def timed_case(db, name, cte_sql, script, final_sql, cleanup):
    procedure = time_callable(
        f"{name}/procedure",
        lambda: run_procedure(db, script, final_sql, cleanup),
        repeats=3, warmup=1)
    cte = time_callable(f"{name}/cte", lambda: db.execute(cte_sql),
                        repeats=3, warmup=1)
    return Comparison(name, procedure, cte)


def build_comparisons(dblp_db):
    comparisons = [timed_case(dblp_db, *case) for case in CASES]
    print_figure(
        f"Fig. 11 — iterative CTEs vs stored procedures, "
        f"{ITERATIONS} iterations (dblp-like)",
        comparisons,
        "CTEs >=25% faster for PR/SSSP; >80% faster for FF")
    return comparisons


def run_benchmark(artifact_dir=None):
    comparisons = build_comparisons(build_db(dblp_like(nodes=DBLP_NODES)))
    if artifact_dir is not None:
        path = write_bench_artifact(
            "fig11_stored_procedures",
            comparisons=comparisons,
            extra={"iterations": ITERATIONS,
                   "cases": [case[0] for case in CASES]},
            directory=artifact_dir)
        print(f"wrote {path}")
    return comparisons


def test_fig11_report(dblp_db):
    comparisons = build_comparisons(dblp_db)
    by_name = {c.name: c for c in comparisons}
    assert by_name["PR-VS"].improvement_pct > 15
    assert by_name["SSSP-VS"].improvement_pct > 15
    assert by_name["FF@50%"].improvement_pct > 50
    # FF gains the most: early predicate evaluation dominates.
    assert by_name["FF@50%"].improvement_pct \
        > by_name["PR-VS"].improvement_pct


def test_fig11_results_agree(dblp_db):
    """The two implementations compute the same answer."""
    name, cte_sql, script, final_sql, cleanup = CASES[0]
    cte_rows = sorted(dblp_db.execute(cte_sql).rows())
    procedure_rows = sorted(
        run_procedure(dblp_db, script, final_sql, cleanup).rows())
    assert len(cte_rows) == len(procedure_rows)
    for have, want in zip(procedure_rows, cte_rows):
        assert have == pytest.approx(want)


def test_fig11_optimizer_sees_procedure_statements_in_isolation(dblp_db):
    """Why procedures lose: each statement is its own scheduling unit and
    no cross-statement optimization (rename/common results) applies."""
    name, _, script, final_sql, cleanup = CASES[0]
    dblp_db.reset_stats()
    run_procedure(dblp_db, script, final_sql, cleanup)
    assert dblp_db.workload.units_admitted > 3 * ITERATIONS
    assert dblp_db.stats.renames == 0
    assert dblp_db.stats.common_results_built == 0


@pytest.mark.parametrize("mode", ["cte", "procedure"])
def test_fig11_benchmark_pr(benchmark, dblp_db, mode):
    name, cte_sql, script, final_sql, cleanup = CASES[0]
    if mode == "cte":
        benchmark.pedantic(dblp_db.execute, args=(cte_sql,), rounds=3,
                           iterations=1, warmup_rounds=1)
    else:
        benchmark.pedantic(
            run_procedure, args=(dblp_db, script, final_sql, cleanup),
            rounds=3, iterations=1, warmup_rounds=1)


if __name__ == "__main__":  # pragma: no cover
    run_benchmark(artifact_dir=".")
