"""Fig. 9 — common result optimization (§VII-C).

Paper setup: PR-VS and SSSP-VS (the vertexStatus variants) with 25
iterations on DBLP and Pokec, with and without materializing the
loop-invariant edges ⋈ vertexStatus block.

Paper claims: ~20% improvement on DBLP, ~10% on Pokec — the constant part
(|vertexStatus| ∝ nodes) is proportionally larger on DBLP — and the same
pattern for both queries (the optimization targets the FROM clause, which
PR-VS and SSSP-VS share).
"""

from __future__ import annotations

import pytest

from repro.datasets import dblp_like, pokec_like
from repro.harness import (
    Comparison,
    print_figure,
    time_query,
    write_bench_artifact,
)
from repro.workloads import pagerank_query, sssp_query

from conftest import DBLP_NODES, ITERATIONS, POKEC_NODES, build_db

PRVS_SQL = pagerank_query(iterations=ITERATIONS, with_vertex_status=True)
SSSPVS_SQL = sssp_query(source=1, iterations=ITERATIONS,
                        with_vertex_status=True)


def timed_pair(db, sql, label):
    db.set_option("enable_common_results", False)
    baseline = time_query(db, sql, repeats=3, warmup=1,
                          label=f"{label}/baseline")
    db.set_option("enable_common_results", True)
    optimized = time_query(db, sql, repeats=3, warmup=1,
                           label=f"{label}/common")
    return Comparison(label, baseline, optimized)


def build_comparisons(dblp_db, pokec_db):
    comparisons = []
    for db, dataset in ((dblp_db, "dblp-like"), (pokec_db, "pokec-like")):
        comparisons.append(timed_pair(db, PRVS_SQL, f"PR-VS {dataset}"))
        comparisons.append(timed_pair(db, SSSPVS_SQL,
                                      f"SSSP-VS {dataset}"))
    print_figure(
        f"Fig. 9 — common result optimization, {ITERATIONS} iterations",
        comparisons,
        "~20% faster on DBLP, ~10% on Pokec; same pattern for both "
        "queries")
    return comparisons


def run_benchmark(artifact_dir=None):
    comparisons = build_comparisons(build_db(dblp_like(nodes=DBLP_NODES)),
                                    build_db(pokec_like(nodes=POKEC_NODES)))
    if artifact_dir is not None:
        path = write_bench_artifact(
            "fig9_common_results",
            comparisons=comparisons,
            extra={"iterations": ITERATIONS,
                   "datasets": ["dblp-like", "pokec-like"],
                   "queries": ["PR-VS", "SSSP-VS"]},
            directory=artifact_dir)
        print(f"wrote {path}")
    return comparisons


def test_fig9_report(dblp_db, pokec_db):
    comparisons = build_comparisons(dblp_db, pokec_db)
    for comparison in comparisons:
        assert comparison.improvement_pct > 0, (
            f"{comparison.name}: materializing the invariant join must "
            "win at 25 iterations")


def test_fig9_common_block_built_once(dblp_db):
    """The mechanism: COMMON#1 is materialized once, not per iteration."""
    dblp_db.set_option("enable_common_results", True)
    dblp_db.reset_stats()
    dblp_db.execute(PRVS_SQL)
    assert dblp_db.stats.common_results_built == 1

    dblp_db.set_option("enable_common_results", False)
    dblp_db.reset_stats()
    dblp_db.execute(PRVS_SQL)
    assert dblp_db.stats.common_results_built == 0


def test_fig9_plan_matches_figure5(dblp_db):
    text = dblp_db.explain(PRVS_SQL)
    assert "COMMON#1" in text
    lines = text.splitlines()
    common_index = next(i for i, line in enumerate(lines)
                        if "COMMON#1" in line)
    loop_index = next(i for i, line in enumerate(lines)
                      if "Initialize counter" in line)
    assert common_index < loop_index  # built before the loop, as Fig. 5


@pytest.mark.parametrize("enable", [True, False],
                         ids=["common", "baseline"])
def test_fig9_benchmark_prvs(benchmark, dblp_db, enable):
    dblp_db.set_option("enable_common_results", enable)
    benchmark.pedantic(dblp_db.execute, args=(PRVS_SQL,), rounds=3,
                       iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("enable", [True, False],
                         ids=["common", "baseline"])
def test_fig9_benchmark_ssspvs(benchmark, pokec_db, enable):
    pokec_db.set_option("enable_common_results", enable)
    benchmark.pedantic(pokec_db.execute, args=(SSSPVS_SQL,), rounds=3,
                       iterations=1, warmup_rounds=1)


if __name__ == "__main__":  # pragma: no cover
    run_benchmark(artifact_dir=".")
