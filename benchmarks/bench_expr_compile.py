"""Expression-compilation ablation — the LLVM-codegen analog (§III).

MPPDB lowers execution plans through LLVM before running them; the
engine's analog compiles expression trees into fused closures cached
across loop iterations.  This bench measures what that buys on the
workload where per-iteration expression evaluation dominates (FF) and on
one where joins dominate (PR), mirroring the structure of Fig. 8's
analysis: the optimization helps most where the targeted cost is the
bottleneck.
"""

from __future__ import annotations

import pytest

from repro.harness import Comparison, print_figure, time_query
from repro.workloads import ff_query, pagerank_query

from conftest import ITERATIONS

FF_SQL = ff_query(iterations=ITERATIONS, selectivity_mod=None,
                  order_and_limit=False)
PR_SQL = pagerank_query(iterations=ITERATIONS)


def timed_pair(db, sql, label):
    db.set_option("enable_expr_compile", False)
    interpreted = time_query(db, sql, repeats=3, warmup=1,
                             label=f"{label}/interpreted")
    db.set_option("enable_expr_compile", True)
    compiled = time_query(db, sql, repeats=3, warmup=1,
                          label=f"{label}/compiled")
    return Comparison(label, interpreted, compiled)


def test_expr_compile_report(ff_db, dblp_db):
    comparisons = [
        timed_pair(ff_db, FF_SQL, "FF (falls back: ROUND/CAST)"),
        timed_pair(dblp_db, PR_SQL, "PR (compilable expressions)"),
    ]
    print_figure(
        f"Ablation — expression compilation (LLVM-codegen analog), "
        f"{ITERATIONS} iterations",
        comparisons,
        "no paper figure; §III mentions LLVM codegen as a pipeline stage")
    # Compilation must never hurt meaningfully.
    for comparison in comparisons:
        assert comparison.improvement_pct > -10


def test_results_identical(dblp_db):
    dblp_db.set_option("enable_expr_compile", True)
    compiled = sorted(dblp_db.execute(PR_SQL).rows())
    dblp_db.set_option("enable_expr_compile", False)
    interpreted = sorted(dblp_db.execute(PR_SQL).rows())
    dblp_db.set_option("enable_expr_compile", True)
    assert compiled == pytest.approx(interpreted)


@pytest.mark.parametrize("enable", [True, False],
                         ids=["compiled", "interpreted"])
def test_expr_compile_benchmark(benchmark, ff_db, enable):
    ff_db.set_option("enable_expr_compile", enable)
    benchmark.pedantic(ff_db.execute, args=(FF_SQL,), rounds=3,
                       iterations=1, warmup_rounds=1)


if __name__ == "__main__":  # pragma: no cover
    import pytest
    import sys
    sys.exit(pytest.main([__file__, "-s", "--benchmark-only"]))
