"""§I–II ablation — native single-plan execution vs the external
middleware approach of [16] (no figure in the paper; this quantifies the
overheads §II enumerates: per-statement parse/plan, temp-table DDL
metadata, DML locking, and per-statement workload-manager scheduling).
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.datasets import dblp_like, load_graph
from repro.harness import Comparison, print_figure, print_series, \
    time_callable, write_bench_artifact
from repro.middleware import MiddlewareDriver
from repro.workloads import pagerank_query

SPEC = dblp_like(nodes=2500, seed=17)
ITERATIONS = 10
PR_SQL = pagerank_query(iterations=ITERATIONS)


@pytest.fixture(scope="module")
def native_db():
    db = Database()
    load_graph(db, SPEC)
    return db


@pytest.fixture(scope="module")
def middleware_db():
    db = Database()
    load_graph(db, SPEC)
    return db


def build_comparison(native_db, middleware_db):
    native = time_callable("native",
                           lambda: native_db.execute(PR_SQL),
                           repeats=3, warmup=1)
    driver = MiddlewareDriver(middleware_db)
    external = time_callable("middleware",
                             lambda: driver.run(PR_SQL),
                             repeats=3, warmup=1)
    comparison = Comparison(f"PR x{ITERATIONS} (dblp-like)", external,
                            native)
    print_figure(
        "Middleware ablation — external driver vs native rewrite",
        [comparison],
        "§II: the native single plan avoids per-statement DDL/DML "
        "overheads entirely")
    return comparison


def _fresh_db():
    db = Database()
    load_graph(db, SPEC)
    return db


def run_benchmark(artifact_dir=None):
    comparison = build_comparison(_fresh_db(), _fresh_db())
    if artifact_dir is not None:
        path = write_bench_artifact(
            "middleware_ablation",
            comparisons=[comparison],
            extra={"iterations": ITERATIONS, "nodes": SPEC.nodes},
            directory=artifact_dir)
        print(f"wrote {path}")
    return comparison


def test_middleware_report(native_db, middleware_db):
    comparison = build_comparison(native_db, middleware_db)
    assert comparison.improvement_pct > 0, \
        "the native path must beat the external driver"


def test_overhead_breakdown(native_db, middleware_db):
    native_db.reset_stats()
    native_db.transactions.stats.__init__()
    native_db.execute(PR_SQL)

    middleware_db.reset_stats()
    middleware_db.transactions.stats.__init__()
    driver = MiddlewareDriver(middleware_db)
    driver.run(PR_SQL)

    rows = [
        ("statements parsed/planned", native_db.stats.statements,
         middleware_db.stats.statements),
        ("workload-manager units", native_db.workload.units_admitted,
         middleware_db.workload.units_admitted),
        ("locks acquired",
         native_db.transactions.stats.locks_acquired,
         middleware_db.transactions.stats.locks_acquired),
        ("temp-table DDL (create+drop)",
         native_db.catalog.stats.tables_created
         + native_db.catalog.stats.tables_dropped,
         middleware_db.catalog.stats.tables_created
         + middleware_db.catalog.stats.tables_dropped - 2),
        ("rows moved through DML", native_db.stats.rows_moved,
         middleware_db.stats.rows_moved),
    ]
    print_series(
        f"Overhead breakdown, PR x{ITERATIONS}",
        ["overhead", "native", "middleware"], rows,
        "§II: every row should be 0 or 1 for native, large for "
        "middleware")
    breakdown = dict((name, (nat, mid)) for name, nat, mid in rows)
    assert breakdown["statements parsed/planned"][0] == 1
    assert breakdown["statements parsed/planned"][1] > 30
    assert breakdown["locks acquired"][0] == 0
    assert breakdown["locks acquired"][1] > 30
    assert breakdown["rows moved through DML"][0] == 0
    assert breakdown["rows moved through DML"][1] > 0


@pytest.mark.parametrize("mode", ["native", "middleware"])
def test_middleware_benchmark(benchmark, native_db, middleware_db, mode):
    if mode == "native":
        benchmark.pedantic(native_db.execute, args=(PR_SQL,), rounds=3,
                           iterations=1, warmup_rounds=1)
    else:
        driver = MiddlewareDriver(middleware_db)
        benchmark.pedantic(driver.run, args=(PR_SQL,), rounds=3,
                           iterations=1, warmup_rounds=1)


if __name__ == "__main__":  # pragma: no cover
    run_benchmark(artifact_dir=".")
