"""Semi-naive delta evaluation for ITERATIVE CTEs (DESIGN.md).

Not a paper figure: this measures the delta-evaluation rewrite layered on
the paper's one-plan loop operator.  When the planner proves the step
query evolves each key independently (the same per-key property §V-B's
predicate pushdown relies on), the loop tracks the changed-row frontier,
recomputes only the affected partition, and scatters the results back —
falling through to the always-correct full body whenever the proof or the
runtime validation fails.

Three convergence profiles, delta off vs. on, results asserted
bit-identical (mask-aware):

* **SSSP on a DAG, fixed 60 iterations** — the delta wave dies out once
  the longest path from the source is exhausted; every remaining
  iteration sees an empty frontier and costs O(1) instead of a full
  recomputation.  Expected: >= 1.5x end to end.
* **PageRank, 12 iterations** — the rank/delta pair changes for almost
  every node every iteration, so the frontier stays near-full and delta
  evaluation degenerates to full work plus bookkeeping.  Expected:
  parity (>= 0.7x, never a collapse).
* **Friends workload, 5 iterations** — a pure per-row map that
  stabilizes quickly; a small win from the shrinking frontier.

Run directly for the JSON summary:

    PYTHONPATH=src python benchmarks/bench_delta_iteration.py
"""

from __future__ import annotations

import json
from collections import Counter

import numpy as np

from repro import Database
from repro.harness import (
    Comparison,
    print_figure,
    time_fresh,
    write_bench_artifact,
)
from repro.types import SqlType
from repro.workloads import ff_query, pagerank_query, sssp_query

SSSP_ITERATIONS = 60
PAGERANK_ITERATIONS = 12
FF_ITERATIONS = 5


def dag_graph(num_nodes=3000, num_edges=12000, seed=5):
    """Random DAG (edges point to higher ids): SSSP's delta wave dies."""
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < num_edges:
        a, b = rng.integers(1, num_nodes + 1, size=2)
        if a < b:
            edges.add((int(a), int(b)))
    return [(a, b, round(float(rng.uniform(0.1, 2.0)), 3))
            for a, b in sorted(edges)]


def pagerank_graph(num_nodes=5000, num_edges=30000, seed=11):
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < num_edges:
        a, b = rng.integers(1, num_nodes + 1, size=2)
        if a != b:
            edges.add((int(a), int(b)))
    out_degree = Counter(a for a, _ in edges)
    return sorted((a, b, 1.0 / out_degree[a]) for a, b in edges)


def _graph_db(edges, delta_on):
    db = Database()
    db.set_option("enable_delta_iteration", delta_on)
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", edges)
    return db


def tables_bit_identical(left, right) -> bool:
    """Row-for-row equality; masked (NULL) slots compare by mask only."""
    if left.num_rows != right.num_rows:
        return False
    for lc, rc in zip(left.columns, right.columns):
        if not (lc.mask == rc.mask).all():
            return False
        valid = ~lc.mask
        if not (lc.data[valid] == rc.data[valid]).all():
            return False
    return True


def timed_pair(name, sql, edges,
               repeats=3, warmup=1) -> tuple[Comparison, bool, int]:
    """Delta-off (baseline) vs delta-on (optimized), every sample on a
    fresh database: per-run state (kernel cache, loop strategies) warms
    *inside* the loop by design and is part of what is measured, so the
    repeats rebuild the engine instead of re-running a warm one."""
    results = {}
    measurements = {}
    delta_iterations = 0
    for delta_on in (False, True):
        captured = {}

        def run(db, captured=captured):
            captured["table"] = db.execute(sql).table
            captured["delta_iterations"] = db.stats.delta_iterations

        measurements[delta_on] = time_fresh(
            f"{name}/delta-{'on' if delta_on else 'off'}",
            lambda delta_on=delta_on: _graph_db(edges, delta_on),
            run, repeats=repeats, warmup=warmup)
        results[delta_on] = captured["table"]
        if delta_on:
            delta_iterations = captured["delta_iterations"]
    identical = tables_bit_identical(results[True], results[False])
    comparison = Comparison(name, measurements[False],
                            measurements[True])
    return comparison, identical, delta_iterations


def run_benchmark(artifact_dir=None) -> dict:
    cases = [
        (f"SSSP DAG x{SSSP_ITERATIONS}",
         sssp_query(source=1, iterations=SSSP_ITERATIONS), dag_graph()),
        (f"PageRank x{PAGERANK_ITERATIONS}",
         pagerank_query(iterations=PAGERANK_ITERATIONS), pagerank_graph()),
        (f"Friends x{FF_ITERATIONS}",
         ff_query(iterations=FF_ITERATIONS, selectivity_mod=7),
         dag_graph(num_nodes=2000, num_edges=8000, seed=9)),
    ]
    rows = [timed_pair(name, sql, edges) for name, sql, edges in cases]
    print_figure(
        "Semi-naive delta evaluation for ITERATIVE CTEs",
        [comparison for comparison, _, _ in rows],
        "frontier-driven recomputation: >= 1.5x on convergent SSSP, "
        "parity on full-frontier PageRank")
    summary = {
        "benchmark": "delta_iteration",
        "workloads": [
            {
                "name": comparison.name,
                "delta_off_seconds": comparison.baseline.seconds,
                "delta_on_seconds": comparison.optimized.seconds,
                "speedup": comparison.speedup,
                "bit_identical": identical,
                "delta_iterations": delta_iterations,
            }
            for comparison, identical, delta_iterations in rows
        ],
    }
    print(json.dumps(summary, indent=2))
    if artifact_dir is not None:
        path = write_bench_artifact(
            "delta_iteration",
            comparisons=[comparison for comparison, _, _ in rows],
            extra={"workloads": summary["workloads"]},
            directory=artifact_dir)
        print(f"wrote {path}")
    return summary


def test_delta_iteration_report():
    summary = run_benchmark()
    sssp, pagerank, friends = summary["workloads"]
    for workload in summary["workloads"]:
        assert workload["bit_identical"], (
            f"delta evaluation changed {workload['name']} results")
        assert workload["delta_iterations"] > 0, (
            f"delta evaluation never activated on {workload['name']}")
    assert sssp["speedup"] >= 1.5, (
        f"SSSP speedup {sssp['speedup']:.2f}x below the 1.5x floor")
    assert pagerank["speedup"] >= 0.7, (
        f"PageRank collapsed under delta evaluation: "
        f"{pagerank['speedup']:.2f}x")
    assert friends["speedup"] >= 0.7, (
        f"Friends collapsed under delta evaluation: "
        f"{friends['speedup']:.2f}x")


if __name__ == "__main__":
    run_benchmark(artifact_dir=".")
