"""Serving-layer bench — multi-client throughput, tail latency, and the
shared-plan-cache ablation (no paper figure; ROADMAP "Multi-client
serving layer").

N simulated clients drive one :class:`repro.server.DatabaseServer` with
a mixed storm — repeated-shape point reads, an iterative SSSP CTE, and
DML taking the engine write path — once with the shared plan cache on
(the default) and once with ``enable_plan_cache=False`` on the engine's
session template.  Each run is a fresh engine over the same generated
graph, so the two ablation arms execute the identical statement
sequence.

Two contracts are asserted, not just reported:

* **cache efficacy** — the cache-on arm's hit rate over the
  repeated-shape statements is ≥ ``HIT_RATE_FLOOR`` (0.9), and its
  mean request latency is lower than the cache-off arm's (the whole
  point of skipping parse → bind → rewrite → compile);
* **identical answers** — both arms return the same result payloads
  request for request.

Writes ``BENCH_serving.json`` via the shared bench-artifact helper:
throughput (requests/s), mean/p50/p99 latency per arm, and the
plan-cache counter block from the cache-on engine.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro import Database
from repro.datasets import dblp_like, load_graph
from repro.execution import SessionOptions
from repro.harness import Comparison, Measurement, write_bench_artifact
from repro.server import serve
from repro.workloads import sssp_query

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
NODES = max(120, int(600 * SCALE))
CLIENTS = 8
ROUNDS = max(4, int(12 * SCALE))
WORKERS = 4
HIT_RATE_FLOOR = 0.9

_ITERATE_SQL = sssp_query(source=1, iterations=4)
_READ_SQL = "SELECT COUNT(*) FROM edges WHERE src > 0"
_GROUP_SQL = ("SELECT dst, COUNT(*) FROM edges "
              "GROUP BY dst ORDER BY dst LIMIT 5")


def _statement(round_no: int, slot: int) -> str:
    """The mixed storm, deterministic in (round, client slot)."""
    kind = (round_no + slot) % 5
    if kind == 4:
        # DML on the shared write path; src < 0 never matches, so both
        # ablation arms keep identical table contents.
        return "DELETE FROM edges WHERE src < 0"
    if kind == 3:
        return _ITERATE_SQL
    if kind == 2:
        return _GROUP_SQL
    return _READ_SQL


def _build_database(enable_plan_cache: bool) -> Database:
    db = Database(SessionOptions(enable_plan_cache=enable_plan_cache))
    load_graph(db, dblp_like(nodes=NODES, seed=29))
    return db


def _percentile(sorted_values, fraction: float) -> float:
    index = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def run_arm(label: str, enable_plan_cache: bool) -> dict:
    """One ablation arm: CLIENTS threads × ROUNDS mixed statements."""
    db = _build_database(enable_plan_cache)
    latencies_by_slot = [[] for _ in range(CLIENTS)]
    payloads_by_slot = [[] for _ in range(CLIENTS)]
    errors = []

    server = serve(db, workers=WORKERS, queue_depth=CLIENTS * ROUNDS)
    started = time.perf_counter()
    try:
        def client_loop(slot: int) -> None:
            client = server.connect()
            try:
                for round_no in range(ROUNDS):
                    sql = _statement(round_no, slot)
                    begin = time.perf_counter()
                    result = client.execute(sql)
                    latencies_by_slot[slot].append(
                        time.perf_counter() - begin)
                    payloads_by_slot[slot].append(
                        result.rows() if result.table is not None
                        else None)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client_loop, args=(slot,))
                   for slot in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    finally:
        server.shutdown()

    assert errors == [], errors
    latencies = sorted(t for slot in latencies_by_slot for t in slot)
    requests = len(latencies)
    stats = db.stats
    counted = stats.plan_cache_hits + stats.plan_cache_misses
    return {
        "label": label,
        "plan_cache": enable_plan_cache,
        "requests": requests,
        "elapsed_seconds": elapsed,
        "throughput_rps": requests / elapsed,
        "mean_latency_seconds": sum(latencies) / requests,
        "p50_latency_seconds": _percentile(latencies, 0.50),
        "p99_latency_seconds": _percentile(latencies, 0.99),
        "plan_cache_hits": stats.plan_cache_hits,
        "plan_cache_shape_hits": stats.plan_cache_shape_hits,
        "plan_cache_misses": stats.plan_cache_misses,
        "plan_cache_invalidations": stats.plan_cache_invalidations,
        "hit_rate": (stats.plan_cache_hits / counted) if counted else 0.0,
        "payloads": payloads_by_slot,
    }


def run_benchmark(artifact_dir=None) -> dict:
    cached = run_arm("serving/cache_on", True)
    uncached = run_arm("serving/cache_off", False)

    # Same storm, same graph, same answers — the cache must be
    # invisible to results.
    assert cached["payloads"] == uncached["payloads"], \
        "plan-cache ablation changed query results"

    assert cached["hit_rate"] >= HIT_RATE_FLOOR, (
        f"plan-cache hit rate {cached['hit_rate']:.2%} below the "
        f"{HIT_RATE_FLOOR:.0%} floor on repeated-shape statements")
    assert uncached["plan_cache_hits"] == 0
    assert cached["mean_latency_seconds"] \
        < uncached["mean_latency_seconds"], (
            "cache-on mean latency "
            f"{cached['mean_latency_seconds'] * 1000:.2f}ms not below "
            f"cache-off {uncached['mean_latency_seconds'] * 1000:.2f}ms")

    speedup = (uncached["mean_latency_seconds"]
               / cached["mean_latency_seconds"])
    for arm in (cached, uncached):
        arm.pop("payloads")
        print(f"{arm['label']:>22}: {arm['throughput_rps']:7.1f} req/s  "
              f"mean {arm['mean_latency_seconds'] * 1000:6.2f}ms  "
              f"p99 {arm['p99_latency_seconds'] * 1000:6.2f}ms  "
              f"hit rate {arm['hit_rate']:.2%}")
    print(f"plan-cache speedup: {speedup:.2f}x mean latency "
          f"({cached['plan_cache_hits']} hits, "
          f"{cached['plan_cache_misses']} misses)")

    summary = {
        "benchmark": "serving",
        "nodes": NODES,
        "clients": CLIENTS,
        "rounds": ROUNDS,
        "workers": WORKERS,
        "requests_per_arm": cached["requests"],
        "hit_rate_floor": HIT_RATE_FLOOR,
        "speedup_mean_latency": speedup,
        "identical_results": True,
        "arms": {"cache_on": cached, "cache_off": uncached},
    }
    print(json.dumps(summary, indent=2))
    if artifact_dir is not None:
        measurements = [
            Measurement(arm["label"], arm["mean_latency_seconds"],
                        repeats=arm["requests"])
            for arm in (cached, uncached)]
        comparison = Comparison(
            "serving_mixed_mean_latency",
            baseline=measurements[1], optimized=measurements[0])
        path = write_bench_artifact("serving",
                                    comparisons=[comparison],
                                    measurements=measurements,
                                    extra=summary,
                                    directory=artifact_dir)
        print(f"wrote {path}")
    return summary


def test_serving_report():
    summary = run_benchmark()
    assert summary["arms"]["cache_on"]["hit_rate"] >= HIT_RATE_FLOOR
    assert summary["speedup_mean_latency"] > 1.0


if __name__ == "__main__":
    run_benchmark(artifact_dir=".")
