"""Shared benchmark fixtures: session-scoped datasets at bench scale.

Scale is controlled by REPRO_BENCH_SCALE (default 1.0): the paper's graphs
are far larger than a laptop-friendly run, so the defaults are scaled-down
graphs with the paper's edge/node ratios (see DESIGN.md).
"""

from __future__ import annotations

import os

import pytest

from repro import Database
from repro.datasets import dblp_like, load_graph, pokec_like

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

DBLP_NODES = int(6000 * SCALE)
POKEC_NODES = int(2200 * SCALE)
FF_NODES = int(150000 * SCALE)
ITERATIONS = 25  # the paper's §VII-B/C/E iteration count


def build_db(spec, with_vertex_status=True) -> Database:
    db = Database()
    load_graph(db, spec, with_vertex_status=with_vertex_status)
    return db


@pytest.fixture(scope="session")
def dblp_db():
    """DBLP-shaped graph (sparse, collaboration-network ratio)."""
    return build_db(dblp_like(nodes=DBLP_NODES))


@pytest.fixture(scope="session")
def pokec_db():
    """Pokec-shaped graph (dense, social-network ratio)."""
    return build_db(pokec_like(nodes=POKEC_NODES))


@pytest.fixture(scope="session")
def ff_db():
    """A wide graph for the FF query, whose iterative part is per-row."""
    return build_db(dblp_like(nodes=FF_NODES, seed=21),
                    with_vertex_status=False)


@pytest.fixture(autouse=True)
def reset_options(dblp_db, pokec_db, ff_db):
    """Every benchmark starts from default optimization settings."""
    yield
    for db in (dblp_db, pokec_db, ff_db):
        db.set_option("enable_rename", True)
        db.set_option("enable_common_results", True)
        db.set_option("enable_predicate_pushdown", True)
        db.set_option("enable_outer_to_inner", True)
