"""MPP scaling bench — real shared-nothing execution vs the inline
simulation (no paper figure; the substrate behind §III's cluster model).

Distributed PageRank and SSSP against 1/2/4 resident workers
(:class:`repro.mpp.WorkerPool`: partitions owned by worker processes,
columnar batches over pipes/shared memory, compute overlapping motion),
with the inline simulation of the same superstep program as baseline.

Three contracts are asserted, not just reported:

* **bit-identical results** — the pool substrate returns exactly the
  inline ranks/distances (same kernels, same piece-assembly order), and
  the measured motion counters match byte for byte;
* **trace parity** — a traced pool run produces the same span tree
  shape as a traced inline run;
* **dispatch at parity** — on a single-CPU host (the CI container) the
  persistent pool cannot win, so the bench instead asserts the
  round-trip overhead stays within ``OVERHEAD_BUDGET`` (1.35x) of
  inline at 1 and 2 workers.  With real cores the 4-worker point is
  where scaling shows; either way the curve lands in the artifact.

Writes ``BENCH_mpp_scaling.json`` via the shared bench-artifact helper.
"""

from __future__ import annotations

import json
import os

from repro.datasets import dblp_like, generate_edges
from repro.harness import time_callable, write_bench_artifact
from repro.mpp import (Cluster, WorkerPool, distributed_pagerank,
                       distributed_sssp)
from repro.obs import Tracer, build_trace

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
NODES = max(400, int(8000 * SCALE))
WORKER_COUNTS = (1, 2, 4)
PR_ITERATIONS = 8
REPEATS = 5
# Single-CPU dispatch budget: pool-vs-inline median ratio at 1 and 2
# workers (the CI smoke shape).  4 workers on one core oversubscribes
# and is reported, not gated.
OVERHEAD_BUDGET = 1.35
BUDGETED_WORKERS = (1, 2)

EDGES = generate_edges(dblp_like(nodes=NODES, seed=5))

WORKLOADS = {
    "pagerank": {
        "run": lambda w, pool=None, tracer=None: distributed_pagerank(
            Cluster(w), EDGES, iterations=PR_ITERATIONS, pool=pool,
            tracer=tracer),
        "payload": lambda result: result.ranks,
    },
    "sssp": {
        "run": lambda w, pool=None, tracer=None: distributed_sssp(
            Cluster(w), EDGES, source=1, pool=pool, tracer=tracer),
        "payload": lambda result: result.distances,
    },
}


def _trace_shape(span, depth=0):
    rows = [(depth, span.name, span.kind)]
    for child in span.children:
        rows.extend(_trace_shape(child, depth + 1))
    return rows


def bench_workload(name: str, workload: dict):
    """Time inline vs pool at every worker count; returns (curve rows,
    measurements)."""
    rows, measurements = [], []
    for workers in WORKER_COUNTS:
        inline_result = workload["run"](workers)
        inline_time = time_callable(
            f"{name}/inline/{workers}w",
            lambda workers=workers: workload["run"](workers),
            repeats=REPEATS, warmup=1)

        with WorkerPool(workers) as pool:
            pool_result = workload["run"](workers, pool=pool)
            pool_time = time_callable(
                f"{name}/pool/{workers}w",
                lambda workers=workers, pool=pool: workload["run"](
                    workers, pool=pool),
                repeats=REPEATS, warmup=1)

        # The core contract: the real substrate is bit-identical to the
        # simulation — results AND the measured motion bill.
        assert workload["payload"](pool_result) \
            == workload["payload"](inline_result), (
                f"{name} @ {workers}w: pool results diverge from inline")
        assert pool_result.bytes_moved == inline_result.bytes_moved, (
            f"{name} @ {workers}w: motion accounting diverges")
        assert pool_result.rows_moved == inline_result.rows_moved

        ratio = pool_time.seconds / inline_time.seconds
        rows.append({
            "workers": workers,
            "inline_seconds": inline_time.seconds,
            "pool_seconds": pool_time.seconds,
            "ratio": ratio,
            "rows_moved": pool_result.rows_moved,
            "bytes_moved": pool_result.bytes_moved,
            "iterations": pool_result.iterations,
        })
        measurements.extend([inline_time, pool_time])
        print(f"{name:>9} {workers}w: inline "
              f"{inline_time.seconds * 1000:7.1f}ms  pool "
              f"{pool_time.seconds * 1000:7.1f}ms  ratio {ratio:.2f}  "
              f"({pool_result.rows_moved} rows moved)")
    return rows, measurements


def check_trace_parity() -> int:
    """A traced 2-worker pool run must produce the inline span tree."""
    def traced(pool):
        tracer = Tracer("trace")
        result = WORKLOADS["pagerank"]["run"](2, pool=pool,
                                              tracer=tracer)
        return _trace_shape(
            build_trace(tracer, loops=[result.telemetry]).root)

    inline_shape = traced(None)
    with WorkerPool(2) as pool:
        pool_shape = traced(pool)
    assert pool_shape == inline_shape, \
        "pool trace shape diverges from inline"
    return len(inline_shape)


def run_benchmark(artifact_dir=None) -> dict:
    curves, measurements = {}, []
    for name, workload in WORKLOADS.items():
        rows, timed = bench_workload(name, workload)
        curves[name] = rows
        measurements.extend(timed)

    spans = check_trace_parity()
    print(f"trace parity: ok ({spans} spans, identical shape)")

    cpus = os.cpu_count() or 1
    budget_rows = [row for rows in curves.values() for row in rows
                   if row["workers"] in BUDGETED_WORKERS]
    if cpus == 1:
        for row in budget_rows:
            assert row["ratio"] <= OVERHEAD_BUDGET, (
                f"dispatch overhead {row['ratio']:.2f}x exceeds the "
                f"{OVERHEAD_BUDGET}x single-CPU budget at "
                f"{row['workers']} workers")
        print(f"single-CPU dispatch budget: ok (worst "
              f"{max(r['ratio'] for r in budget_rows):.2f}x "
              f"<= {OVERHEAD_BUDGET}x)")

    summary = {
        "benchmark": "mpp_scaling",
        "nodes": NODES,
        "edges": len(EDGES),
        "cpus": cpus,
        "worker_counts": list(WORKER_COUNTS),
        "overhead_budget": OVERHEAD_BUDGET,
        "bit_identical": True,
        "trace_spans": spans,
        "curves": curves,
    }
    print(json.dumps(summary, indent=2))
    if artifact_dir is not None:
        path = write_bench_artifact("mpp_scaling",
                                    measurements=measurements,
                                    extra=summary,
                                    directory=artifact_dir)
        print(f"wrote {path}")
    return summary


def test_mpp_scaling_report():
    summary = run_benchmark()
    assert summary["bit_identical"]
    for rows in summary["curves"].values():
        assert [row["workers"] for row in rows] == list(WORKER_COUNTS)


if __name__ == "__main__":
    run_benchmark(artifact_dir=".")
