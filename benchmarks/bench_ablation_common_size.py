"""§V-A ablation — the common-result rewrite is a heuristic, not
cost-based.  The paper argues the benefit "highly outweighs other possible
drawbacks"; this ablation maps where that holds by sweeping (a) the number
of iterations and (b) the size of the loop-invariant part.

Expected shape: benefit grows with iterations (the baseline recomputes the
invariant join every round) and with the invariant part's relative size;
at one iteration the rewrite is near-neutral (materialization cost ≈ one
evaluation), which is exactly why a cost-based version is future work.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.datasets import dblp_like, load_graph
from repro.harness import print_series, time_query
from repro.workloads import pagerank_query

SPEC = dblp_like(nodes=3000, seed=23)


@pytest.fixture(scope="module")
def db():
    database = Database()
    load_graph(database, SPEC, with_vertex_status=True)
    return database


def timed(db, sql, enable):
    db.set_option("enable_common_results", enable)
    return time_query(db, sql, repeats=3, warmup=1).seconds


def scan_savings(db, iterations):
    """Deterministic counterpart of the timing: input rows the baseline
    re-scans that the optimized plan does not."""
    sql = pagerank_query(iterations=iterations, with_vertex_status=True)
    db.set_option("enable_common_results", False)
    db.reset_stats()
    db.execute(sql)
    baseline_scanned = db.stats.rows_scanned
    db.set_option("enable_common_results", True)
    db.reset_stats()
    db.execute(sql)
    return baseline_scanned - db.stats.rows_scanned


def test_benefit_grows_with_iterations(db):
    rows = []
    improvements = {}
    savings = {}
    for iterations in (1, 5, 25):
        sql = pagerank_query(iterations=iterations,
                             with_vertex_status=True)
        baseline = timed(db, sql, enable=False)
        optimized = timed(db, sql, enable=True)
        improvement = 100.0 * (1 - optimized / baseline)
        improvements[iterations] = improvement
        savings[iterations] = scan_savings(db, iterations)
        rows.append((iterations, baseline, optimized,
                     f"{improvement:.1f}%", savings[iterations]))
    print_series(
        "Ablation §V-A — common-result benefit vs iteration count "
        "(PR-VS, dblp-like)",
        ["iterations", "baseline (s)", "common (s)", "improvement",
         "input rows saved"],
        rows,
        "benefit multiplies with iterations; near-neutral at 1")
    # The avoided recomputation is strictly increasing in iterations —
    # asserted on deterministic scan counters (timings at 1 iteration are
    # noise-dominated and confounded by join reordering).
    assert savings[25] > savings[5] > savings[1]
    # At 25 iterations the optimization wins on wall clock too (loose
    # threshold: suite-level load makes sub-second timings noisy).
    assert improvements[25] > 3
    db.set_option("enable_common_results", True)


def wide_pr_vs(iterations, extra_invariant_joins):
    """PR-VS whose iterative part joins 1, 2 or 3 invariant status
    tables — the knob for how much per-iteration work is loop-invariant
    (the quantity behind the paper's DBLP-vs-Pokec difference, §VII-C)."""
    joins = ["""
     JOIN vertexStatus AS avail_pr
       ON avail_pr.node = IncomingEdges.dst"""]
    filters = ["avail_pr.status != 0"]
    for i in range(extra_invariant_joins):
        joins.append(f"""
     JOIN vertexStatus AS avail_{i}
       ON avail_{i}.node = avail_pr.node""")
        filters.append(f"avail_{i}.status != 0")
    join_sql = "".join(joins)
    where_sql = " AND ".join(filters)
    return f"""
WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
      FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
  ITERATE
   SELECT PageRank.node,
     PageRank.rank + PageRank.delta,
     0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
   FROM PageRank
     LEFT JOIN edges AS IncomingEdges
       ON PageRank.node = IncomingEdges.dst
     LEFT JOIN PageRank AS IncomingRank
       ON IncomingRank.node = IncomingEdges.src{join_sql}
   WHERE {where_sql}
   GROUP BY PageRank.node, PageRank.rank + PageRank.delta
  UNTIL {iterations} ITERATIONS )
SELECT Node, Rank FROM PageRank"""


def test_benefit_grows_with_invariant_work(db):
    """The more of the iterative part is loop-invariant, the bigger the
    win from materializing it once.  Asserted on deterministic scan
    counters (input rows the baseline re-reads per run); wall-clock shown
    for context."""
    rows = []
    savings = {}
    for extra in (0, 2):
        sql = wide_pr_vs(iterations=15, extra_invariant_joins=extra)
        baseline = timed(db, sql, enable=False)
        optimized = timed(db, sql, enable=True)
        improvement = 100.0 * (1 - optimized / baseline)

        db.set_option("enable_common_results", False)
        db.reset_stats()
        db.execute(sql)
        baseline_scanned = db.stats.rows_scanned
        db.set_option("enable_common_results", True)
        db.reset_stats()
        db.execute(sql)
        savings[extra] = baseline_scanned - db.stats.rows_scanned

        rows.append((f"{1 + extra} invariant join(s)", baseline,
                     optimized, f"{improvement:.1f}%", savings[extra]))
    print_series(
        "Ablation §V-A — benefit vs invariant work (PR-VS, 15 iters)",
        ["configuration", "baseline (s)", "common (s)", "improvement",
         "input rows saved"],
        rows,
        "larger constant part => larger improvement (cf. DBLP vs Pokec)")
    assert savings[2] > savings[0] > 0
    db.set_option("enable_common_results", True)


def test_wide_pr_vs_results_invariant(db):
    """Sanity: the extra status joins do not change the answer, and both
    optimizer settings agree on it."""
    sql_wide = wide_pr_vs(iterations=3, extra_invariant_joins=2)
    sql_narrow = pagerank_query(iterations=3, with_vertex_status=True)
    db.set_option("enable_common_results", True)
    wide = sorted(db.execute(sql_wide).rows())
    narrow = sorted(db.execute(sql_narrow).rows())
    assert wide == pytest.approx(narrow)
    db.set_option("enable_common_results", False)
    unoptimized = sorted(db.execute(sql_wide).rows())
    assert wide == pytest.approx(unoptimized)
    db.set_option("enable_common_results", True)


@pytest.mark.parametrize("iterations", [1, 25], ids=["iter1", "iter25"])
@pytest.mark.parametrize("enable", [True, False],
                         ids=["common", "baseline"])
def test_ablation_benchmark(benchmark, db, enable, iterations):
    db.set_option("enable_common_results", enable)
    sql = pagerank_query(iterations=iterations, with_vertex_status=True)
    benchmark.pedantic(db.execute, args=(sql,), rounds=3, iterations=1,
                       warmup_rounds=1)


if __name__ == "__main__":  # pragma: no cover
    import pytest
    import sys
    sys.exit(pytest.main([__file__, "-s", "--benchmark-only"]))
