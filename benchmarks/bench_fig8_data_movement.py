"""Fig. 8 — minimizing data movement (the rename optimization, §VII-B).

Paper setup: PR and FF with 25 iterations on DBLP and Pokec; the baseline
moves data from the intermediate table back to the main table and
identifies updated rows even for full-dataset updates; the optimized run
uses the rename operator.

Paper claims: up to 48% improvement for FF (trivial iterative part — the
movement dominates), small/insignificant improvement for PR (expensive
joins dominate).  The reproduction target is the *shape*: rename always
wins, and it wins much more for FF than for PR.
"""

from __future__ import annotations

import pytest

from repro.datasets import dblp_like, pokec_like
from repro.harness import (
    Comparison,
    print_figure,
    time_query,
    write_bench_artifact,
)
from repro.workloads import ff_query, pagerank_query

from conftest import DBLP_NODES, ITERATIONS, POKEC_NODES, build_db

PR_SQL = pagerank_query(iterations=ITERATIONS)
FF_SQL = ff_query(iterations=ITERATIONS, selectivity_mod=None,
                  order_and_limit=False)


def timed_pair(db, sql, label):
    db.set_option("enable_rename", False)
    baseline = time_query(db, sql, repeats=3, warmup=1,
                          label=f"{label}/baseline")
    db.set_option("enable_rename", True)
    optimized = time_query(db, sql, repeats=3, warmup=1,
                           label=f"{label}/rename")
    return Comparison(label, baseline, optimized)


@pytest.mark.parametrize("query,label", [(PR_SQL, "PR"), (FF_SQL, "FF")],
                         ids=["pr", "ff"])
def test_fig8_rename_never_loses(query, label, dblp_db):
    comparison = timed_pair(dblp_db, query, f"{label} dblp-like")
    # Rename must always be at least as fast (§VII-B conclusion:
    # "should always be applied when possible").
    assert comparison.improvement_pct > -5  # allow timing noise


def build_comparisons(dblp_db, pokec_db):
    comparisons = []
    for db, dataset in ((dblp_db, "dblp-like"), (pokec_db, "pokec-like")):
        comparisons.append(timed_pair(db, PR_SQL, f"PR {dataset}"))
        comparisons.append(timed_pair(db, FF_SQL, f"FF {dataset}"))
    print_figure(
        "Fig. 8 — minimizing data movement (rename vs merge-back), "
        f"{ITERATIONS} iterations",
        comparisons,
        "FF improves up to 48%; PR improvement small (joins dominate)")
    return comparisons


def run_benchmark(artifact_dir=None):
    comparisons = build_comparisons(build_db(dblp_like(nodes=DBLP_NODES)),
                                    build_db(pokec_like(nodes=POKEC_NODES)))
    if artifact_dir is not None:
        path = write_bench_artifact(
            "fig8_data_movement",
            comparisons=comparisons,
            extra={"iterations": ITERATIONS,
                   "datasets": ["dblp-like", "pokec-like"],
                   "queries": ["PR", "FF"]},
            directory=artifact_dir)
        print(f"wrote {path}")
    return comparisons


def test_fig8_ff_gains_much_more_than_pr(dblp_db, pokec_db):
    comparisons = build_comparisons(dblp_db, pokec_db)
    by_name = {c.name: c for c in comparisons}
    for dataset in ("dblp-like", "pokec-like"):
        ff = by_name[f"FF {dataset}"]
        pr = by_name[f"PR {dataset}"]
        assert ff.improvement_pct > pr.improvement_pct, (
            "FF must benefit more than PR: the FF iterative part is "
            "trivial so movement dominates it")
        assert ff.improvement_pct > 30


def test_fig8_rename_eliminates_row_movement(dblp_db):
    """The mechanism: zero rows move under rename; O(rows x iters) move
    in the baseline."""
    dblp_db.set_option("enable_rename", True)
    dblp_db.reset_stats()
    dblp_db.execute(FF_SQL)
    assert dblp_db.stats.rows_moved == 0
    renames = dblp_db.stats.renames

    dblp_db.set_option("enable_rename", False)
    dblp_db.reset_stats()
    dblp_db.execute(FF_SQL)
    assert dblp_db.stats.rows_moved > 0
    assert dblp_db.stats.renames == 0
    assert renames == ITERATIONS


@pytest.mark.parametrize("enable", [True, False],
                         ids=["rename", "baseline"])
def test_fig8_benchmark_ff(benchmark, dblp_db, enable):
    dblp_db.set_option("enable_rename", enable)
    benchmark.pedantic(dblp_db.execute, args=(FF_SQL,), rounds=3,
                       iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("enable", [True, False],
                         ids=["rename", "baseline"])
def test_fig8_benchmark_pr(benchmark, dblp_db, enable):
    dblp_db.set_option("enable_rename", enable)
    benchmark.pedantic(dblp_db.execute, args=(PR_SQL,), rounds=3,
                       iterations=1, warmup_rounds=1)


if __name__ == "__main__":  # pragma: no cover
    run_benchmark(artifact_dir=".")
