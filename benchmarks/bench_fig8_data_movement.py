"""Fig. 8 — minimizing data movement (the rename optimization, §VII-B).

Paper setup: PR and FF with 25 iterations on DBLP and Pokec; the baseline
moves data from the intermediate table back to the main table and
identifies updated rows even for full-dataset updates; the optimized run
uses the rename operator.

Paper claims: up to 48% improvement for FF (trivial iterative part — the
movement dominates), small/insignificant improvement for PR (expensive
joins dominate).  The reproduction target is the *shape*: rename always
wins, and it wins much more for FF than for PR.
"""

from __future__ import annotations

import pytest

from repro.harness import Comparison, print_figure, time_query
from repro.workloads import ff_query, pagerank_query

from conftest import ITERATIONS

PR_SQL = pagerank_query(iterations=ITERATIONS)
FF_SQL = ff_query(iterations=ITERATIONS, selectivity_mod=None,
                  order_and_limit=False)


def timed_pair(db, sql, label):
    db.set_option("enable_rename", False)
    baseline = time_query(db, sql, repeats=3, warmup=1,
                          label=f"{label}/baseline")
    db.set_option("enable_rename", True)
    optimized = time_query(db, sql, repeats=3, warmup=1,
                           label=f"{label}/rename")
    return Comparison(label, baseline, optimized)


@pytest.mark.parametrize("query,label", [(PR_SQL, "PR"), (FF_SQL, "FF")],
                         ids=["pr", "ff"])
def test_fig8_rename_never_loses(query, label, dblp_db):
    comparison = timed_pair(dblp_db, query, f"{label} dblp-like")
    # Rename must always be at least as fast (§VII-B conclusion:
    # "should always be applied when possible").
    assert comparison.improvement_pct > -5  # allow timing noise


def test_fig8_ff_gains_much_more_than_pr(dblp_db, pokec_db):
    comparisons = []
    for db, dataset in ((dblp_db, "dblp-like"), (pokec_db, "pokec-like")):
        comparisons.append(timed_pair(db, PR_SQL, f"PR {dataset}"))
        comparisons.append(timed_pair(db, FF_SQL, f"FF {dataset}"))
    print_figure(
        "Fig. 8 — minimizing data movement (rename vs merge-back), "
        f"{ITERATIONS} iterations",
        comparisons,
        "FF improves up to 48%; PR improvement small (joins dominate)")
    by_name = {c.name: c for c in comparisons}
    for dataset in ("dblp-like", "pokec-like"):
        ff = by_name[f"FF {dataset}"]
        pr = by_name[f"PR {dataset}"]
        assert ff.improvement_pct > pr.improvement_pct, (
            "FF must benefit more than PR: the FF iterative part is "
            "trivial so movement dominates it")
        assert ff.improvement_pct > 30


def test_fig8_rename_eliminates_row_movement(dblp_db):
    """The mechanism: zero rows move under rename; O(rows x iters) move
    in the baseline."""
    dblp_db.set_option("enable_rename", True)
    dblp_db.reset_stats()
    dblp_db.execute(FF_SQL)
    assert dblp_db.stats.rows_moved == 0
    renames = dblp_db.stats.renames

    dblp_db.set_option("enable_rename", False)
    dblp_db.reset_stats()
    dblp_db.execute(FF_SQL)
    assert dblp_db.stats.rows_moved > 0
    assert dblp_db.stats.renames == 0
    assert renames == ITERATIONS


@pytest.mark.parametrize("enable", [True, False],
                         ids=["rename", "baseline"])
def test_fig8_benchmark_ff(benchmark, dblp_db, enable):
    dblp_db.set_option("enable_rename", enable)
    benchmark.pedantic(dblp_db.execute, args=(FF_SQL,), rounds=3,
                       iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("enable", [True, False],
                         ids=["rename", "baseline"])
def test_fig8_benchmark_pr(benchmark, dblp_db, enable):
    dblp_db.set_option("enable_rename", enable)
    benchmark.pedantic(dblp_db.execute, args=(PR_SQL,), rounds=3,
                       iterations=1, warmup_rounds=1)


if __name__ == "__main__":  # pragma: no cover
    import pytest
    import sys
    sys.exit(pytest.main([__file__, "-s", "--benchmark-only"]))
