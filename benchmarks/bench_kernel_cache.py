"""Kernel cache — iteration-aware execution caching (DESIGN.md).

Not a paper figure: this measures the engine-side caching layer that the
paper's one-plan argument enables.  Because an iterative CTE runs inside
a single plan, loop-invariant state (column dictionaries, join build-side
indexes, the UNION DISTINCT seen-row set) survives across iterations and
can be reused instead of recomputed.

Two multi-iteration workloads, cache on vs. off, identical results
asserted bit-for-bit:

* **UNION DISTINCT closure** — transitive closure on a random sparse
  digraph.  Each iteration re-encoded ``result ++ candidate`` from
  scratch (O(total result) per iteration); the incremental seen-codes
  index makes it O(delta).  Expected: >= 2x end to end.
* **PageRank, 25 iterations** — dominated by per-iteration aggregation
  over the working table, which changes every trip; only the static
  edges join benefits.  Expected: modest (~1.1x) but never a
  regression.

Run directly for the JSON summary:

    PYTHONPATH=src python benchmarks/bench_kernel_cache.py
"""

from __future__ import annotations

import json
from collections import Counter

import numpy as np

from repro import Database
from repro.harness import (
    Comparison,
    print_figure,
    time_fresh,
    write_bench_artifact,
)
from repro.types import SqlType
from repro.workloads import pagerank_query

CLOSURE_SQL = """
WITH RECURSIVE reach (a, b) AS (
  SELECT a, b FROM edge
  UNION
  SELECT reach.a, edge.b FROM reach JOIN edge ON reach.b = edge.a
) SELECT a, b FROM reach"""

PAGERANK_ITERATIONS = 25
PAGERANK_SQL = pagerank_query(iterations=PAGERANK_ITERATIONS,
                              coalesced=True)


def closure_graph(num_nodes=2200, num_edges=6600, seed=7):
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < num_edges:
        a, b = rng.integers(0, num_nodes, size=2)
        edges.add((int(a), int(b)))
    return sorted(edges)


def pagerank_graph(num_nodes=20000, num_edges=120000, seed=11):
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < num_edges:
        a, b = rng.integers(0, num_nodes, size=2)
        if a != b:
            edges.add((int(a), int(b)))
    out_degree = Counter(a for a, _ in edges)
    return sorted((a, b, 1.0 / out_degree[a]) for a, b in edges)


def _closure_db(edges, cache_on):
    db = Database()
    db.set_option("enable_kernel_cache", cache_on)
    db.create_table("edge", [("a", SqlType.INTEGER),
                             ("b", SqlType.INTEGER)])
    db.load_rows("edge", edges)
    return db


def _pagerank_db(edges, cache_on):
    db = Database()
    db.set_option("enable_kernel_cache", cache_on)
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", edges)
    return db


def tables_bit_identical(left, right) -> bool:
    if left.num_rows != right.num_rows:
        return False
    return all(
        (lc.data == rc.data).all() and (lc.mask == rc.mask).all()
        for lc, rc in zip(left.columns, right.columns))


def timed_pair(name, make_db, sql, edges,
               repeats=3, warmup=1) -> tuple[Comparison, bool]:
    """Cache-off (baseline) vs cache-on (optimized), every sample on a
    fresh database: the kernel cache persists across statements by
    design, so the repeats rebuild the engine rather than re-running a
    warm cache — each sample is one cold query end to end."""
    results = {}
    measurements = {}
    for cache_on in (False, True):
        captured = {}
        measurements[cache_on] = time_fresh(
            f"{name}/cache-{'on' if cache_on else 'off'}",
            lambda cache_on=cache_on: make_db(edges, cache_on),
            lambda db: captured.__setitem__("table", db.execute(sql).table),
            repeats=repeats, warmup=warmup)
        results[cache_on] = captured["table"]
    identical = tables_bit_identical(results[True], results[False])
    comparison = Comparison(name, measurements[False],
                            measurements[True])
    return comparison, identical


def run_benchmark(artifact_dir=None) -> dict:
    closure, closure_identical = timed_pair(
        "UNION DISTINCT closure", _closure_db, CLOSURE_SQL,
        closure_graph())
    pagerank, pagerank_identical = timed_pair(
        f"PageRank x{PAGERANK_ITERATIONS}", _pagerank_db, PAGERANK_SQL,
        pagerank_graph())
    print_figure(
        "Kernel cache — iteration-aware execution caching",
        [closure, pagerank],
        "loop-invariant reuse: >= 2x on UNION DISTINCT fixed points, "
        "no regression on aggregation-bound PageRank")
    summary = {
        "benchmark": "kernel_cache",
        "workloads": [
            {
                "name": comparison.name,
                "cache_off_seconds": comparison.baseline.seconds,
                "cache_on_seconds": comparison.optimized.seconds,
                "speedup": comparison.speedup,
                "bit_identical": identical,
            }
            for comparison, identical in [
                (closure, closure_identical),
                (pagerank, pagerank_identical),
            ]
        ],
    }
    print(json.dumps(summary, indent=2))
    if artifact_dir is not None:
        path = write_bench_artifact(
            "kernel_cache", comparisons=[closure, pagerank],
            extra={"workloads": summary["workloads"]},
            directory=artifact_dir)
        print(f"wrote {path}")
    return summary


def test_kernel_cache_report():
    summary = run_benchmark()
    closure, pagerank = summary["workloads"]
    assert closure["bit_identical"], (
        "caching changed UNION DISTINCT results")
    assert pagerank["bit_identical"], "caching changed PageRank results"
    assert closure["speedup"] >= 2.0, (
        f"UNION DISTINCT closure speedup {closure['speedup']:.2f}x "
        "below the 2x floor")
    assert pagerank["speedup"] >= 0.8, (
        f"PageRank regressed under caching: {pagerank['speedup']:.2f}x")


def test_kernel_cache_counters_warm_loop():
    """The mechanism: after the loop warms up, every iteration hits."""
    db = _closure_db(closure_graph(num_nodes=400, num_edges=1200), True)
    db.execute(CLOSURE_SQL)
    assert db.stats.join_index_hits > db.stats.join_index_misses
    assert db.stats.merge_index_rebuilds == 1
    assert db.stats.merge_index_hits >= db.stats.join_index_hits - 2


if __name__ == "__main__":
    run_benchmark(artifact_dir=".")
