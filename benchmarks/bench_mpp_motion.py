"""MPP substrate bench — data movement across the simulated shared-nothing
cluster (no paper figure; MPPDB's shuffle decisions are background §III).

Shows the classic MPP trade-offs the engine's planner layer models:
colocated vs redistribute vs broadcast joins, and the motion saved by
two-phase aggregation — the distribution-level counterpart of the paper's
"minimize data movement" theme.
"""

from __future__ import annotations

import pytest

from repro.datasets import dblp_like, generate_edges
from repro.harness import print_series
from repro.mpp import (
    Cluster,
    Distribution,
    JoinStrategy,
    distributed_aggregate_sum,
    distributed_join,
)
from repro.storage import Table
from repro.types import SqlType

SPEC = dblp_like(nodes=4000, seed=29)
EDGES = generate_edges(SPEC)


def edges_table():
    return Table.from_columns([
        ("src", SqlType.INTEGER, [e[0] for e in EDGES]),
        ("dst", SqlType.INTEGER, [e[1] for e in EDGES]),
        ("weight", SqlType.FLOAT, [e[2] for e in EDGES]),
    ])


def ranks_table():
    nodes = sorted({e[0] for e in EDGES} | {e[1] for e in EDGES})
    return Table.from_columns([
        ("node", SqlType.INTEGER, nodes),
        ("delta", SqlType.FLOAT, [0.15] * len(nodes)),
    ])


def pr_step(cluster, edges_dist, ranks_dist):
    """One distributed PR-style step: ranks ⋈ edges on src, then SUM by
    dst — the join+aggregate core of the paper's iterative part."""
    joined, decision = distributed_join(cluster, edges_dist, ranks_dist,
                                        "src", "node")
    distributed_aggregate_sum(cluster, joined, "l_dst", "r_delta")
    return decision


def test_placement_determines_motion():
    rows = []
    for placement, edge_key in (("edges hashed on src", "src"),
                                ("edges hashed on dst", "dst")):
        cluster = Cluster(4)
        edges_dist = cluster.distribute("edges", edges_table(),
                                        Distribution.hashed(edge_key))
        ranks_dist = cluster.distribute("ranks", ranks_table(),
                                        Distribution.hashed("node"))
        cluster.motion.reset()
        decision = pr_step(cluster, edges_dist, ranks_dist)
        rows.append((placement, decision.strategy.value,
                     cluster.motion.rows_moved,
                     cluster.motion.shuffles + cluster.motion.broadcasts))
    print_series(
        "MPP — one PR step: placement vs interconnect traffic (4 segments)",
        ["placement", "join strategy", "rows moved", "motions"],
        rows,
        "src-hashed edges colocate with node-hashed ranks: the join "
        "itself moves nothing")
    colocated, mismatched = rows[0], rows[1]
    assert colocated[1] == JoinStrategy.COLOCATED.value
    assert mismatched[2] > colocated[2] - 1  # mismatch always moves more


def test_motion_scales_with_segments():
    rows = []
    for segments in (2, 4, 8, 16):
        cluster = Cluster(segments)
        edges_dist = cluster.distribute("edges", edges_table(),
                                        Distribution.hashed("dst"))
        ranks_dist = cluster.distribute("ranks", ranks_table(),
                                        Distribution.hashed("node"))
        cluster.motion.reset()
        pr_step(cluster, edges_dist, ranks_dist)
        rows.append((segments, cluster.motion.rows_moved,
                     cluster.motion.bytes_moved))
    print_series(
        "MPP — PR step motion vs cluster size (dst-hashed edges)",
        ["segments", "rows moved", "bytes moved"], rows,
        "redistribution volume is size-of-relation, independent of "
        "segment count; broadcast would scale with segments")
    moved = [r[1] for r in rows]
    assert max(moved) <= min(moved) * 2  # redistribution, not broadcast


@pytest.mark.parametrize("segments", [2, 8], ids=["2seg", "8seg"])
def test_mpp_benchmark_pr_step(benchmark, segments):
    cluster = Cluster(segments)
    edges_dist = cluster.distribute("edges", edges_table(),
                                    Distribution.hashed("src"))
    ranks_dist = cluster.distribute("ranks", ranks_table(),
                                    Distribution.hashed("node"))
    benchmark.pedantic(pr_step, args=(cluster, edges_dist, ranks_dist),
                       rounds=3, iterations=1, warmup_rounds=1)


if __name__ == "__main__":  # pragma: no cover
    import pytest
    import sys
    sys.exit(pytest.main([__file__, "-s", "--benchmark-only"]))
