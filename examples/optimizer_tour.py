"""A tour of the optimizer substrate: ANALYZE statistics, cardinality
estimation, cost-based join reordering, the iteration-count estimate
(the paper's stated future work), and EXPLAIN ANALYZE.

Run:  python examples/optimizer_tour.py
"""

from repro import Database
from repro.datasets import dblp_like, load_graph
from repro.workloads import pagerank_query


def main() -> None:
    db = Database()
    load_graph(db, dblp_like(nodes=2000), with_vertex_status=True)

    # -- ANALYZE fills the statistics catalog -------------------------------
    analyzed = db.execute("ANALYZE").rows()
    print("analyzed tables:", [name for (name,) in analyzed])
    stats = db.statistics.table("edges")
    src = stats.column("src")
    print(f"edges: {stats.row_count} rows, src has {src.distinct_count} "
          f"distinct values in [{src.min_value:.0f}, {src.max_value:.0f}]")

    # -- the cost model prices plans and whole iterative programs ----------
    print("\nEXPLAIN with cost estimate (PR, 25 iterations):")
    print(db.explain_cost(pagerank_query(iterations=25)))

    # The iteration estimate adapts to the termination family:
    print("\niteration estimates per termination condition:")
    for until, note in [("25 ITERATIONS", "exact: the user wrote N"),
                        ("5000 UPDATES", "derived from |CTE| per round"),
                        ("v > 100", "heuristic: no closed form")]:
        text = db.explain_cost(f"""
            WITH ITERATIVE r (k, v) AS (
              SELECT src, 0 FROM (SELECT DISTINCT src FROM edges)
              ITERATE SELECT k, v + 1 FROM r UNTIL {until}
            ) SELECT COUNT(*) FROM r""")
        loop_line = next(line for line in text.splitlines()
                         if line.startswith("loop"))
        print(f"  UNTIL {until:<15} -> {loop_line.strip()}  ({note})")

    # -- cost-based join reordering (paper §V-A future work) ----------------
    sql = """
        SELECT COUNT(*) FROM edges e1
        JOIN edges e2 ON e1.dst = e2.src
        JOIN vertexStatus v ON v.node = e2.dst
        WHERE v.status != 0"""
    print("\njoin order chosen by the cost model:")
    print(db.explain(sql, verbose=True))

    # -- EXPLAIN ANALYZE: measured per-step behaviour -----------------------
    print("\nEXPLAIN ANALYZE (PR, 5 iterations):")
    print(db.explain_analyze(pagerank_query(iterations=5)))


if __name__ == "__main__":
    main()
