"""The shared-nothing layer: how table placement decides interconnect
traffic for the PR-style join + aggregate (MPPDB background, §III).

Run:  python examples/mpp_cluster.py
"""

from repro.datasets import dblp_like, generate_edges
from repro.mpp import (
    Cluster,
    Distribution,
    distributed_aggregate_sum,
    distributed_join,
)
from repro.storage import Table
from repro.types import SqlType


def main() -> None:
    edges = generate_edges(dblp_like(nodes=3000))
    nodes = sorted({e[0] for e in edges} | {e[1] for e in edges})
    edges_table = Table.from_columns([
        ("src", SqlType.INTEGER, [e[0] for e in edges]),
        ("dst", SqlType.INTEGER, [e[1] for e in edges]),
        ("weight", SqlType.FLOAT, [e[2] for e in edges]),
    ])
    ranks_table = Table.from_columns([
        ("node", SqlType.INTEGER, nodes),
        ("delta", SqlType.FLOAT, [0.15] * len(nodes)),
    ])
    print(f"{len(edges)} edges, {len(nodes)} nodes")

    for placement in ("src", "dst"):
        cluster = Cluster(segments=4)
        distributed_edges = cluster.distribute(
            "edges", edges_table, Distribution.hashed(placement))
        distributed_ranks = cluster.distribute(
            "ranks", ranks_table, Distribution.hashed("node"))
        cluster.motion.reset()

        # One PR step: join deltas onto edges by source, sum per target.
        joined, decision = distributed_join(
            cluster, distributed_edges, distributed_ranks, "src", "node")
        result = distributed_aggregate_sum(cluster, joined, "l_dst",
                                           "r_delta")

        print(f"\nedges hash-distributed on '{placement}':")
        print(f"  join strategy     : {decision.strategy.value}")
        print(f"  rows moved        : {cluster.motion.rows_moved}")
        print(f"  bytes moved       : {cluster.motion.bytes_moved}")
        print(f"  shuffles          : {cluster.motion.shuffles}")
        sizes = [p.num_rows for p in result.partitions]
        print(f"  result partitions : {sizes} "
              f"({result.num_rows} rows total)")

    print("\ntakeaway: distributing edges on the join key makes the "
          "per-iteration join motion-free —\nthe distribution-level twin "
          "of the paper's rename optimization.")


if __name__ == "__main__":
    main()
