"""PageRank over a social-network-shaped graph, with and without the
paper's optimizations — the workload that motivates the paper's §I.

Run:  python examples/pagerank_analytics.py
"""

import time

from repro.datasets import dblp_like, fresh_database, generate_edges
from repro.workloads import pagerank_query, reference_pagerank


def timed(db, sql):
    start = time.perf_counter()
    result = db.execute(sql)
    return result, time.perf_counter() - start


def main() -> None:
    spec = dblp_like(nodes=4000)
    db = fresh_database(spec, with_vertex_status=True)
    edges = generate_edges(spec)
    print(f"dataset: {spec.name}, "
          f"{db.execute('SELECT COUNT(*) FROM edges').scalar()} edges")

    # -- plain PageRank (Fig. 2 of the paper) ------------------------------
    sql = pagerank_query(iterations=25)
    result, seconds = timed(db, sql)
    top = sorted(result.rows(), key=lambda r: r[1], reverse=True)[:5]
    print(f"\nPR, 25 iterations, all optimizations on: {seconds:.3f}s")
    print("top-5 nodes by rank:")
    for node, rank in top:
        print(f"  node {node:>5}  rank {rank:.5f}")

    # Cross-check against a direct evaluation of the recurrence.
    reference = reference_pagerank(edges, iterations=25)
    worst = max(abs(rank - reference[node]) for node, rank in result.rows())
    print(f"max |engine - reference| = {worst:.2e}")

    # -- the optimizations, one by one -------------------------------------
    print("\neffect of each optimization on PR-VS (25 iterations):")
    sql_vs = pagerank_query(iterations=25, with_vertex_status=True)
    configurations = [
        ("all optimizations", {}),
        ("no rename (Fig. 8 baseline)", {"enable_rename": False}),
        ("no common results (Fig. 9 baseline)",
         {"enable_common_results": False}),
    ]
    for label, overrides in configurations:
        for option in ("enable_rename", "enable_common_results"):
            db.set_option(option, overrides.get(option, True))
        _, seconds = timed(db, sql_vs)
        print(f"  {label:<40} {seconds:.3f}s")
    for option in ("enable_rename", "enable_common_results"):
        db.set_option(option, True)

    # -- what the engine did -------------------------------------------------
    db.reset_stats()
    db.execute(sql_vs)
    stats = db.stats.snapshot()
    print("\nexecution counters for one PR-VS run:")
    for key in ("iterations", "renames", "common_results_built",
                "rows_scanned", "rows_joined", "rows_materialized"):
        print(f"  {key:<22} {stats[key]}")

    print("\nplan (note COMMON#1 before the loop — the paper's Fig. 5):")
    print(db.explain(sql_vs))


if __name__ == "__main__":
    main()
