"""The FF (forecast friends) query and predicate push down — how one
rewrite turns a full-population forecast into a sampled one (§V-B,
Fig. 10 of the paper).

Run:  python examples/forecast_sampling.py
"""

import time

from repro.datasets import dblp_like, fresh_database
from repro.workloads import ff_query


def main() -> None:
    db = fresh_database(dblp_like(nodes=60000, seed=3))
    print("nodes with outgoing edges:",
          db.execute("SELECT COUNT(DISTINCT src) FROM edges").scalar())

    # Forecast 25 years ahead, but report only a 1% sample of nodes.
    sql = ff_query(iterations=25, selectivity_mod=100)

    for pushdown in (False, True):
        db.set_option("enable_predicate_pushdown", pushdown)
        start = time.perf_counter()
        result = db.execute(sql)
        seconds = time.perf_counter() - start
        label = "with push down" if pushdown else "without push down"
        print(f"\n{label}: {seconds:.3f}s")
        print(result.pretty(limit=5))

    # Where did the predicate go?  Compare the first plan step.
    db.set_option("enable_predicate_pushdown", True)
    plan = db.explain(sql, verbose=True)
    first_step = plan.split("  2  ")[0]
    print("\nfirst plan step with push down "
          "(the MOD predicate moved into R0):")
    print(first_step)

    # The rewrite refuses to push when it would be wrong: PageRank's rank
    # for one node still needs every other node (the paper's example).
    from repro.workloads import pagerank_query
    pr = pagerank_query(iterations=5, final_where="Node = 10")
    db.reset_stats()
    db.execute(pr)
    print("pushdowns applied to PR with 'WHERE Node = 10':",
          db.stats.predicate_pushdowns, "(correctly refused)")


if __name__ == "__main__":
    main()
