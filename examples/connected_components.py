"""Connected components with self-terminating convergence: the DELTA
termination condition on a workload whose labels are monotone.

Run:  python examples/connected_components.py
"""

from repro import Database
from repro.datasets import dblp_like, generate_edges
from repro.types import SqlType
from repro.workloads import (
    component_count,
    components_query,
    reference_components,
)


def main() -> None:
    # Three islands: a path, a pair, and a triangle.
    edges = [
        (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0),      # path 1-2-3-4
        (10, 11, 1.0),                              # pair
        (20, 21, 1.0), (21, 22, 1.0), (22, 20, 1.0),  # triangle
    ]
    db = Database()
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", edges)

    db.reset_stats()
    labels = dict(db.execute(components_query()).rows())
    print(f"converged in {db.stats.iterations} iterations "
          f"(UNTIL DELTA = 0 — no iteration count supplied)")
    print(f"{component_count(labels)} components:")
    by_label: dict[int, list[int]] = {}
    for node, label in sorted(labels.items()):
        by_label.setdefault(label, []).append(node)
    for label, nodes in sorted(by_label.items()):
        print(f"  component {label}: {nodes}")

    assert labels == reference_components(edges)
    print("matches networkx connected_components: yes")

    # On a bigger synthetic graph the same query self-terminates too.
    big = Database()
    big.create_table("edges", [("src", SqlType.INTEGER),
                               ("dst", SqlType.INTEGER),
                               ("weight", SqlType.FLOAT)])
    big.load_rows("edges", generate_edges(dblp_like(nodes=2000)))
    big.reset_stats()
    labels = dict(big.execute(components_query()).rows())
    print(f"\n2000-node graph: {component_count(labels)} component(s), "
          f"converged in {big.stats.iterations} iterations")


if __name__ == "__main__":
    main()
