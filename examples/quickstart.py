"""Quickstart: an embedded engine with iterative CTEs in ten lines.

Run:  python examples/quickstart.py
"""

from repro import Database


def main() -> None:
    db = Database()

    # Ordinary SQL works as you would expect.
    db.execute("CREATE TABLE edges (src int, dst int, weight float)")
    db.execute("""
        INSERT INTO edges VALUES
        (1, 2, 0.5), (1, 3, 0.5), (2, 3, 1.0), (3, 1, 1.0)""")
    print("edges loaded:",
          db.execute("SELECT COUNT(*) FROM edges").scalar())

    # The paper's extension: WITH ITERATIVE ... ITERATE ... UNTIL.
    # Compute powers of two until the value exceeds 1000.
    result = db.execute("""
        WITH ITERATIVE powers (k, v) AS (
            SELECT 1, 1
            ITERATE SELECT k, v * 2 FROM powers
            UNTIL v > 1000
        )
        SELECT v FROM powers""")
    print("first power of two above 1000:", result.scalar())

    # Aggregates are allowed in the iterative part — the thing ANSI
    # recursive CTEs forbid.  Count two-hop reachability mass per node:
    result = db.execute("""
        WITH ITERATIVE mass (node, m) AS (
            SELECT src, 1.0
            FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
            ITERATE
            SELECT mass.node, COALESCE(SUM(nbr.m * e.weight), 0.0)
            FROM mass
              LEFT JOIN edges e ON mass.node = e.dst
              LEFT JOIN mass nbr ON nbr.node = e.src
            GROUP BY mass.node
            UNTIL 2 ITERATIONS
        )
        SELECT node, m FROM mass ORDER BY m DESC""")
    print("\ntwo-hop mass per node:")
    print(result.pretty())

    # Every iterative query compiles to ONE plan — the paper's Table I.
    print("\nthe plan (compare with Table I of the paper):")
    print(db.explain("""
        WITH ITERATIVE powers (k, v) AS (
            SELECT 1, 1 ITERATE SELECT k, v * 2 FROM powers
            UNTIL 10 ITERATIONS
        ) SELECT v FROM powers"""))


if __name__ == "__main__":
    main()
