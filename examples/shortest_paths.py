"""Single-source shortest paths with a convergence-based termination —
the DELTA condition lets the query stop exactly when distances settle,
instead of guessing an iteration count.

Run:  python examples/shortest_paths.py
"""

from repro.datasets import dblp_like, fresh_database, generate_edges
from repro.workloads import INFINITY, true_shortest_paths


def sssp_until_converged(source: int) -> str:
    """A label-correcting SSSP with ``UNTIL DELTA = 0``.

    Fig. 7's delta tracks best-paths-of-exactly-k-edges and never
    stabilizes on cyclic graphs, which is why the paper terminates it by
    iteration count.  Wrapping the recomputation in LEAST makes the label
    monotone non-increasing (classic Bellman-Ford relaxation), so the
    DELTA condition detects the fixed point and the query stops itself.
    """
    return f"""
WITH ITERATIVE sssp (Node, Distance, Delta)
AS (SELECT src, {INFINITY}, CASE WHEN src = {source}
         THEN 0 ELSE {INFINITY} END
    FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
   SELECT sssp.node,
     LEAST(sssp.distance, sssp.delta),
     LEAST(sssp.delta,
           COALESCE(MIN(IncomingDistance.delta
               + IncomingEdges.weight), {INFINITY}))
   FROM sssp
    LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
    LEFT JOIN sssp AS IncomingDistance
      ON IncomingDistance.node = IncomingEdges.src
   WHERE IncomingDistance.Delta != {INFINITY}
   GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta), sssp.delta
  UNTIL DELTA = 0)
SELECT Node, Distance FROM sssp ORDER BY Distance, Node
"""


def main() -> None:
    spec = dblp_like(nodes=1500)
    db = fresh_database(spec)
    edges = generate_edges(spec)
    source = 1

    db.reset_stats()
    result = db.execute(sssp_until_converged(source))
    iterations = db.stats.iterations
    print(f"SSSP from node {source} converged after "
          f"{iterations} iterations")

    distances = dict(result.rows())
    reachable = {n: d for n, d in distances.items() if d != INFINITY}
    print(f"{len(reachable)} of {len(distances)} nodes reachable")

    nearest = sorted(reachable.items(), key=lambda kv: kv[1])[:8]
    print("\nnearest nodes:")
    for node, distance in nearest:
        print(f"  node {node:>5}  distance {distance:.4f}")

    # Validate against Dijkstra (networkx).
    truth = true_shortest_paths(edges, source=source)
    mismatches = sum(
        1 for node, distance in reachable.items()
        if abs(distance - truth[node]) > 1e-9)
    print(f"\nagreement with Dijkstra: "
          f"{len(reachable) - mismatches}/{len(reachable)} nodes exact")

    # The same query through the ANSI recursive CTE door fails — the
    # paper's motivation in one error message.
    from repro.errors import RecursionNotSupportedError
    try:
        db.execute("""
            WITH RECURSIVE d (node, dist) AS (
              SELECT 1, 0.0
              UNION
              SELECT e.dst, MIN(d.dist + e.weight)
              FROM d JOIN edges e ON d.node = e.src
              GROUP BY e.dst
            ) SELECT * FROM d""")
    except RecursionNotSupportedError as error:
        print(f"\nrecursive CTE attempt: {error}")


if __name__ == "__main__":
    main()
