"""Stored-procedure baseline tests (§VII-E)."""

import pytest

from repro import Database
from repro.datasets import dblp_like, fresh_database, generate_edges
from repro.errors import ReproError
from repro.procedures import (
    ExecuteSql,
    Loop,
    Procedure,
    ProcedureCatalog,
    ReturnQuery,
    iterative_procedure,
)
from repro.workloads import friends, pagerank, pagerank_query, sssp

SPEC = dblp_like(nodes=120, seed=5)


class TestProcedureIr:
    def test_statement_count_expands_loops(self):
        procedure = Procedure("p", [
            ExecuteSql("SELECT 1"),
            Loop(5, [ExecuteSql("SELECT 2"), ExecuteSql("SELECT 3")]),
            ReturnQuery("SELECT 4"),
        ])
        assert procedure.statement_count() == 1 + 5 * 2 + 1

    def test_nested_loops(self):
        procedure = Procedure("p", [
            Loop(3, [Loop(2, [ExecuteSql("SELECT 1")])]),
        ])
        assert procedure.statement_count() == 6

    def test_iterative_procedure_shape(self):
        procedure = iterative_procedure(
            "pr", setup=["CREATE TABLE x (a int)"], init="SELECT 1",
            body=["SELECT 2", "SELECT 3"], iterations=4,
            final="SELECT 4", teardown=["DROP TABLE x"])
        assert procedure.statement_count() == 1 + 1 + 4 * 2 + 1 + 1


class TestRunner:
    def test_call_executes_and_returns(self, db):
        db.execute("CREATE TABLE t (v int)")
        catalog = ProcedureCatalog(db)
        catalog.register(Procedure("fill", [
            ExecuteSql("INSERT INTO t VALUES (1)"),
            Loop(3, [ExecuteSql("UPDATE t SET v = v * 10")]),
            ReturnQuery("SELECT v FROM t"),
        ]))
        assert catalog.call("fill").scalar() == 1000
        assert catalog.last_report.statements_executed == 5

    def test_unknown_procedure(self, db):
        with pytest.raises(ReproError):
            ProcedureCatalog(db).call("ghost")

    def test_duplicate_registration(self, db):
        catalog = ProcedureCatalog(db)
        catalog.register(Procedure("p", []))
        with pytest.raises(ReproError):
            catalog.register(Procedure("P", []))

    def test_each_statement_is_a_scheduling_unit(self, db):
        db.execute("CREATE TABLE t (v int)")
        db.reset_stats()
        catalog = ProcedureCatalog(db)
        catalog.register(Procedure("p", [
            ExecuteSql("INSERT INTO t VALUES (1)"),
            Loop(5, [ExecuteSql("UPDATE t SET v = v + 1")]),
        ]))
        catalog.call("p")
        # 6 DML units: the optimizer saw 6 isolated statements.
        assert db.workload.units_admitted == 6


class TestEquivalenceWithNative:
    """The §VII-E procedures compute exactly what the CTEs compute."""

    def _procedure_result(self, script, final_sql):
        db = fresh_database(SPEC)
        catalog = ProcedureCatalog(db)
        ops = [ExecuteSql(sql) for sql in script]
        ops.append(ReturnQuery(final_sql))
        catalog.register(Procedure("q", ops))
        return sorted(catalog.call("q").rows())

    def test_pagerank_procedure_matches_cte(self):
        native = fresh_database(SPEC)
        expected = sorted(native.execute(
            pagerank_query(iterations=4)).rows())
        script = pagerank.stored_procedure_script(iterations=4)
        actual = self._procedure_result(
            script, "SELECT node, rank FROM __pr_result")
        assert len(actual) == len(expected)
        for have, want in zip(actual, expected):
            assert have == pytest.approx(want)

    def test_sssp_procedure_matches_cte(self):
        from repro.workloads import sssp_query
        native = fresh_database(SPEC)
        expected = sorted(native.execute(
            sssp_query(source=1, iterations=4)).rows())
        script = sssp.stored_procedure_script(source=1, iterations=4)
        actual = self._procedure_result(
            script, "SELECT node, distance FROM __sssp_result")
        for have, want in zip(actual, expected):
            assert have == pytest.approx(want)

    def test_ff_procedure_matches_cte(self):
        from repro.workloads import ff_query
        native = fresh_database(SPEC)
        expected = sorted(native.execute(
            ff_query(iterations=3, selectivity_mod=10,
                     order_and_limit=False)).rows())
        script = friends.stored_procedure_script(iterations=3)
        actual = self._procedure_result(
            script,
            "SELECT node, friends FROM __ff_result WHERE MOD(node, 10) = 0")
        for have, want in zip(actual, expected):
            assert have == pytest.approx(want)
