"""Concurrency safety net: static lock-discipline + dynamic lockset.

The ``racecheck_smoke`` marker selects the tier-1 guard subset
(scripts/check_racecheck_smoke.sh): the real tree is clean under the
static pass (zero false positives), the seeded mutation harness catches
every violation class with file/line attribution, and the dynamic
detector re-finds the PR 9 KernelCache race when its lock is knocked
out while staying silent on the properly locked serving storm.
"""

import json
import threading

import pytest

from repro import Database
from repro.execution.kernel_cache import KernelCache
from repro.server import serve
from repro.types import SqlType
from repro.verify.concurrency import (
    disable_racecheck,
    enable_racecheck,
    load_report,
    racecheck_enabled,
    racecheck_report,
    reset_races,
    run_static,
    write_report,
)
from repro.verify.concurrency.cli import main as racecheck_main


def _tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return tmp_path


def _line_of(source: str, needle: str) -> int:
    for lineno, line in enumerate(source.splitlines(), 1):
        if needle in line:
            return lineno
    raise AssertionError(f"{needle!r} not in seeded source")


# ---------------------------------------------------------------------------
# Static pass: the real tree
# ---------------------------------------------------------------------------


@pytest.mark.racecheck_smoke
class TestStaticRealTree:
    def test_real_tree_is_clean(self):
        assert run_static() == []

    def test_cli_ok_on_real_tree(self, capsys):
        assert racecheck_main([]) == 0
        out = capsys.readouterr().out
        assert "repro-racecheck: ok" in out


# ---------------------------------------------------------------------------
# Static pass: seeded mutation harness
# ---------------------------------------------------------------------------

# Each seed replicates one violation class at the module path where the
# guard map applies; the harness asserts the exact (file, line, rule)
# triples — attribution, not just detection.

SEED_KERNEL_CACHE = '''\
import threading


class KernelCache:
    def __init__(self):
        self._lock = threading.RLock()
        self._dictionaries = {}

    def poison(self, version, entry):
        self._dictionaries[version] = entry
'''

SEED_CROSS_MODULE = '''\
from repro.storage.segmented import SegmentedTable


def sneak_append(table, segment):
    table._segments.append(segment)
'''

SEED_INVERSION = '''\
class Cache:
    def promote(self, engine):
        with self._lock:
            with engine.write_lock:
                pass
'''

SEED_SLEEP = '''\
import time


class Cache:
    def nap(self):
        with self._lock:
            time.sleep(0.01)
'''

SEED_QUEUE_GET = '''\
class Pool:
    def steal(self):
        with self._lock:
            return self.ready.get()
'''

SEED_PIPE_RECV = '''\
class Pool:
    def pump(self, conn):
        with self._lock:
            return conn.recv()
'''

SEED_LOCK_API = '''\
class Cache:
    def grab(self):
        self._lock.acquire()
        try:
            return 1
        finally:
            self._lock.release()
'''

SEED_CATALOG_CALL = '''\
def rename(ctx, name, table):
    ctx.catalog.put(name, table)
'''

SEED_SERVER_STATS = '''\
class DatabaseServer:
    def sneak(self):
        self.stats.failed += 1
'''

# Contract-honoring sources that must stay silent: the assumed-held
# contexts from the guard map, and near-miss shapes the rules must not
# overreach on.
CLEAN_DML = '''\
def execute_insert(ctx, name, table):
    ctx.catalog.put(name, table)
'''

CLEAN_SEGMENTED = '''\
import threading


class SegmentedTable:
    def __init__(self):
        self._lock = threading.RLock()
        self._segments = []

    def _consolidate(self):
        self._segments = [sum(self._segments, [])]

    def append(self, rows):
        with self._lock:
            self._segments.append(rows)
'''

CLEAN_NEAR_MISS = '''\
class Lookup:
    def fetch(self, key):
        with self._lock:
            return self.cache.get(key)
'''


@pytest.mark.racecheck_smoke
class TestSeededViolations:
    def test_harness_catches_every_seeded_violation(self, tmp_path):
        seeds = {
            "execution/kernel_cache.py": SEED_KERNEL_CACHE,
            "verify/storage_helper.py": SEED_CROSS_MODULE,
            "execution/promote.py": SEED_INVERSION,
            "execution/nap.py": SEED_SLEEP,
            "mpp/steal.py": SEED_QUEUE_GET,
            "mpp/pump.py": SEED_PIPE_RECV,
            "execution/grab.py": SEED_LOCK_API,
            "engine/rename.py": SEED_CATALOG_CALL,
            "server/service.py": SEED_SERVER_STATS,
            "engine/dml.py": CLEAN_DML,
            "storage/segmented.py": CLEAN_SEGMENTED,
            "plan/lookup.py": CLEAN_NEAR_MISS,
        }
        root = _tree(tmp_path, seeds)
        issues = run_static(root)

        expected = {
            ("execution/kernel_cache.py",
             _line_of(SEED_KERNEL_CACHE, "self._dictionaries[version]"),
             "unguarded-mutation"),
            ("verify/storage_helper.py",
             _line_of(SEED_CROSS_MODULE, "table._segments.append"),
             "unguarded-mutation"),
            ("execution/promote.py",
             _line_of(SEED_INVERSION, "with engine.write_lock:"),
             "lock-hierarchy"),
            ("execution/nap.py",
             _line_of(SEED_SLEEP, "time.sleep"),
             "blocking-under-lock"),
            ("mpp/steal.py",
             _line_of(SEED_QUEUE_GET, "self.ready.get()"),
             "blocking-under-lock"),
            ("mpp/pump.py",
             _line_of(SEED_PIPE_RECV, "conn.recv()"),
             "blocking-under-lock"),
            ("execution/grab.py",
             _line_of(SEED_LOCK_API, "self._lock.acquire()"),
             "lock-api"),
            ("execution/grab.py",
             _line_of(SEED_LOCK_API, "self._lock.release()"),
             "lock-api"),
            ("engine/rename.py",
             _line_of(SEED_CATALOG_CALL, "ctx.catalog.put"),
             "unguarded-call"),
            ("server/service.py",
             _line_of(SEED_SERVER_STATS, "self.stats.failed"),
             "unguarded-mutation"),
        }
        actual = {(i.path, i.line, i.rule) for i in issues}
        assert actual == expected
        assert len(issues) == len(expected)

    def test_cli_exits_nonzero_on_seeded_tree(self, tmp_path, capsys):
        root = _tree(tmp_path,
                     {"execution/kernel_cache.py": SEED_KERNEL_CACHE})
        assert racecheck_main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "unguarded-mutation" in out
        assert "execution/kernel_cache.py:" in out

    def test_guarded_mutation_is_silent(self, tmp_path):
        guarded = SEED_KERNEL_CACHE.replace(
            "    def poison(self, version, entry):\n"
            "        self._dictionaries[version] = entry\n",
            "    def poison(self, version, entry):\n"
            "        with self._lock:\n"
            "            self._dictionaries[version] = entry\n")
        root = _tree(tmp_path, {"execution/kernel_cache.py": guarded})
        assert run_static(root) == []

    def test_assumed_held_contexts_are_silent(self, tmp_path):
        root = _tree(tmp_path, {"engine/dml.py": CLEAN_DML,
                                "storage/segmented.py": CLEAN_SEGMENTED})
        assert run_static(root) == []


# ---------------------------------------------------------------------------
# Dynamic lockset detector
# ---------------------------------------------------------------------------


@pytest.fixture
def dynamic():
    """Instrumentation on for one test; leave a pre-enabled (CI
    REPRO_RACECHECK=1) session's shim in place on teardown."""
    was_enabled = racecheck_enabled()
    if not was_enabled:
        enable_racecheck()
    reset_races()
    yield
    if not was_enabled:
        disable_racecheck()
    reset_races()


def _hammer(cache: KernelCache, threads: int = 2,
            rounds: int = 5) -> None:
    barrier = threading.Barrier(threads)

    def worker():
        barrier.wait()
        for _ in range(rounds):
            cache.clear()

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


@pytest.mark.racecheck_smoke
class TestDynamicLockset:
    def test_redetects_kernel_cache_race_without_lock(self, dynamic):
        cache = KernelCache()
        # Knock out the tracked lock: the PR 9 regression shape (cache
        # mutation with no effective synchronization).  The raw RLock
        # still serializes, but its acquisitions are invisible to the
        # lockset, exactly as if the mutation ran lock-free.
        cache._lock = threading.RLock()
        _hammer(cache)
        races = racecheck_report()
        assert races, "lockset detector missed the seeded race"
        race = races[0]
        assert "KernelCache" in race.location
        assert race.first_thread != race.second_thread
        assert "write" in (race.first_kind, race.second_kind)
        assert race.first_stack and race.second_stack

    def test_clean_with_lock_in_place(self, dynamic):
        cache = KernelCache()
        _hammer(cache)
        assert racecheck_report() == []

    def test_serving_storm_is_clean(self, dynamic):
        db = Database()
        db.create_table("events", [("x", SqlType.INTEGER)])
        errors = []
        server = serve(db, workers=4, queue_depth=256)
        try:
            def writer(offset):
                client = server.connect()
                try:
                    for i in range(8):
                        client.execute(
                            f"INSERT INTO events VALUES ({offset + i})")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            def reader():
                client = server.connect()
                try:
                    for _ in range(8):
                        client.execute(
                            "SELECT COUNT(*), SUM(x) FROM events")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=writer, args=(w * 100,))
                       for w in range(2)]
            threads += [threading.Thread(target=reader)
                        for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            server.shutdown()
        assert errors == []
        assert racecheck_report() == []

    def test_iterative_workload_is_clean(self, dynamic):
        db = Database()
        db.create_table("edges", [("src", SqlType.INTEGER),
                                  ("dst", SqlType.INTEGER),
                                  ("weight", SqlType.FLOAT)])
        db.load_rows("edges", [(1, 2, 0.5), (2, 3, 1.0), (3, 1, 1.0)])
        sql = """
        WITH ITERATIVE r (node, v) AS (
          SELECT src, 0.0 FROM edges GROUP BY src
          ITERATE SELECT r.node, min(r.v + e.weight)
                  FROM r JOIN edges e ON e.src = r.node
                  GROUP BY r.node
          UNTIL 3 ITERATIONS
        ) SELECT node, v FROM r ORDER BY node"""
        first = db.execute(sql).rows()
        assert db.execute(sql).rows() == first
        assert racecheck_report() == []


class TestDynamicReport:
    def test_report_roundtrip_and_replay(self, dynamic, tmp_path,
                                         capsys):
        cache = KernelCache()
        cache._lock = threading.RLock()
        cache.clear()  # exclusive owner: this thread
        other = threading.Thread(target=cache.clear)
        other.start()
        other.join()
        assert racecheck_report()

        path = tmp_path / "report.json"
        write_report(str(path))
        races = load_report(str(path))
        assert len(races) == len(racecheck_report())
        assert races[0].location == racecheck_report()[0].location
        assert racecheck_main(["--replay", str(path)]) == 1
        assert "candidate race" in capsys.readouterr().out

        reset_races()
        write_report(str(path))
        assert racecheck_main(["--replay", str(path)]) == 0
        assert "report clean" in capsys.readouterr().out

    def test_replay_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"races": []}))
        with pytest.raises(ValueError, match="not a racecheck report"):
            load_report(str(path))

    def test_disable_restores_classes(self):
        enabled_before = racecheck_enabled()
        if enabled_before:
            pytest.skip("session-wide REPRO_RACECHECK shim stays on")
        enable_racecheck()
        assert hasattr(KernelCache.clear, "_racecheck_original")
        disable_racecheck()
        assert not hasattr(KernelCache.clear, "_racecheck_original")
        cache = KernelCache()
        assert isinstance(cache._lock, type(threading.RLock()))
