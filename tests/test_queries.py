"""End-to-end SQL tests through the Database façade: projection, filters,
joins, aggregation, set operations, ordering, subqueries, CTEs."""

import pytest

from repro.errors import BindError, CatalogError
from repro import Database


def rows(db, sql):
    return db.execute(sql).rows()


class TestProjectionAndFilter:
    def test_select_columns(self, people_db):
        result = rows(people_db, "SELECT name, age FROM people WHERE id = 1")
        assert result == [("ada", 36)]

    def test_select_star(self, people_db):
        result = people_db.execute("SELECT * FROM people")
        assert result.column_names() == ["id", "name", "age", "city"]
        assert len(result.rows()) == 5

    def test_computed_columns(self, people_db):
        result = rows(people_db,
                      "SELECT id * 10 + 1 FROM people WHERE id <= 2")
        assert result == [(11,), (21,)]

    def test_null_filtering(self, people_db):
        result = rows(people_db, "SELECT name FROM people WHERE age > 40")
        # barbara (age NULL) must not appear.
        assert sorted(r[0] for r in result) == ["alan", "edsger", "grace"]

    def test_is_null_filter(self, people_db):
        assert rows(people_db,
                    "SELECT name FROM people WHERE city IS NULL") \
            == [("edsger",)]

    def test_distinct(self, people_db):
        result = rows(people_db, "SELECT DISTINCT city FROM people")
        assert len(result) == 4  # london, new york, None, boston

    def test_where_on_missing_column(self, people_db):
        with pytest.raises(BindError):
            people_db.execute("SELECT * FROM people WHERE nope = 1")

    def test_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM ghost")

    def test_case_insensitive_identifiers(self, people_db):
        assert rows(people_db, "SELECT NAME FROM PEOPLE WHERE ID = 1") \
            == [("ada",)]


class TestJoins:
    def test_inner_join(self, graph_db):
        result = rows(graph_db, """
            SELECT e1.src, e2.dst FROM edges e1
            JOIN edges e2 ON e1.dst = e2.src
            ORDER BY e1.src, e2.dst""")
        assert (1, 3) in result and (3, 2) in result

    def test_left_join_pads_with_null(self, graph_db):
        result = rows(graph_db, """
            SELECT e1.src, e1.dst, e2.dst FROM edges e1
            LEFT JOIN edges e2 ON e1.dst = e2.src AND e2.weight > 10
            ORDER BY e1.src, e1.dst""")
        assert all(r[2] is None for r in result)
        assert len(result) == 5

    def test_right_join(self, db):
        db.execute("CREATE TABLE a (x int)")
        db.execute("CREATE TABLE b (x int)")
        db.load_rows("a", [(1,), (2,)])
        db.load_rows("b", [(2,), (3,)])
        result = rows(db, "SELECT a.x, b.x FROM a RIGHT JOIN b ON a.x = b.x "
                          "ORDER BY b.x")
        assert result == [(2, 2), (None, 3)]

    def test_full_join(self, db):
        db.execute("CREATE TABLE a (x int)")
        db.execute("CREATE TABLE b (x int)")
        db.load_rows("a", [(1,), (2,)])
        db.load_rows("b", [(2,), (3,)])
        result = set(rows(db,
                          "SELECT a.x, b.x FROM a FULL JOIN b ON a.x = b.x"))
        assert result == {(1, None), (2, 2), (None, 3)}

    def test_cross_join(self, db):
        db.execute("CREATE TABLE a (x int)")
        db.execute("CREATE TABLE b (y int)")
        db.load_rows("a", [(1,), (2,)])
        db.load_rows("b", [(10,), (20,)])
        assert len(rows(db, "SELECT * FROM a CROSS JOIN b")) == 4

    def test_non_equi_join(self, db):
        db.execute("CREATE TABLE a (x int)")
        db.execute("CREATE TABLE b (y int)")
        db.load_rows("a", [(1,), (2,), (3,)])
        db.load_rows("b", [(2,)])
        result = rows(db, "SELECT a.x FROM a JOIN b ON a.x < b.y")
        assert result == [(1,)]

    def test_self_join_requires_alias(self, graph_db):
        with pytest.raises(BindError):
            graph_db.execute(
                "SELECT * FROM edges JOIN edges ON edges.src = edges.dst")

    def test_null_join_keys_never_match(self, db):
        db.execute("CREATE TABLE a (x int)")
        db.execute("CREATE TABLE b (x int)")
        db.load_rows("a", [(None,), (1,)])
        db.load_rows("b", [(None,), (1,)])
        assert rows(db, "SELECT a.x FROM a JOIN b ON a.x = b.x") == [(1,)]

    def test_three_way_join(self, graph_db):
        result = rows(graph_db, """
            SELECT count(*) FROM edges e1
            JOIN edges e2 ON e1.dst = e2.src
            JOIN edges e3 ON e2.dst = e3.src""")
        assert result[0][0] > 0


class TestAggregation:
    def test_global_aggregates(self, people_db):
        result = rows(people_db,
                      "SELECT COUNT(*), COUNT(age), SUM(age), MIN(age), "
                      "MAX(age), AVG(age) FROM people")
        count_star, count_age, total, low, high, mean = result[0]
        assert count_star == 5
        assert count_age == 4  # one NULL age is skipped
        assert total == 36 + 45 + 41 + 72
        assert (low, high) == (36, 72)
        assert mean == pytest.approx(total / 4)

    def test_group_by(self, people_db):
        result = dict(rows(people_db,
                           "SELECT city, COUNT(*) FROM people "
                           "GROUP BY city"))
        assert result["london"] == 2
        assert result[None] == 1  # NULLs form one group

    def test_group_by_expression(self, graph_db):
        result = rows(graph_db,
                      "SELECT src % 2, COUNT(*) FROM edges GROUP BY src % 2 "
                      "ORDER BY src % 2")
        assert len(result) == 2

    def test_having(self, people_db):
        result = rows(people_db,
                      "SELECT city, COUNT(*) FROM people GROUP BY city "
                      "HAVING COUNT(*) > 1")
        assert result == [("london", 2)]

    def test_sum_of_empty_group_is_null_count_zero(self, db):
        db.execute("CREATE TABLE t (x int)")
        result = rows(db, "SELECT SUM(x), COUNT(x), COUNT(*) FROM t")
        assert result == [(None, 0, 0)]

    def test_min_max_of_empty_is_null(self, db):
        db.execute("CREATE TABLE t (x int)")
        assert rows(db, "SELECT MIN(x), MAX(x) FROM t") == [(None, None)]

    def test_count_distinct(self, people_db):
        assert rows(people_db,
                    "SELECT COUNT(DISTINCT city) FROM people") == [(3,)]

    def test_aggregate_over_nulls_only(self, db):
        db.execute("CREATE TABLE t (x int)")
        db.load_rows("t", [(None,), (None,)])
        assert rows(db, "SELECT SUM(x), COUNT(*) FROM t") == [(None, 2)]

    def test_expression_over_aggregates(self, people_db):
        result = rows(people_db,
                      "SELECT MAX(age) - MIN(age) FROM people")
        assert result == [(72 - 36,)]

    def test_non_grouped_column_rejected(self, people_db):
        with pytest.raises(BindError):
            people_db.execute(
                "SELECT name, COUNT(*) FROM people GROUP BY city")

    def test_aggregate_in_where_rejected(self, people_db):
        with pytest.raises(BindError):
            people_db.execute(
                "SELECT * FROM people WHERE SUM(age) > 10")

    def test_group_key_reused_in_select_expression(self, graph_db):
        result = rows(graph_db, """
            SELECT src * 100, COUNT(*) FROM edges GROUP BY src
            ORDER BY src * 100""")
        assert result[0][0] == 100


class TestSetOperations:
    def test_union_deduplicates(self, graph_db):
        result = rows(graph_db,
                      "SELECT src FROM edges UNION SELECT dst FROM edges")
        assert sorted(r[0] for r in result) == [1, 2, 3, 4]

    def test_union_all_keeps_duplicates(self, graph_db):
        result = rows(graph_db, "SELECT src FROM edges UNION ALL "
                                "SELECT dst FROM edges")
        assert len(result) == 10

    def test_union_type_widening(self, db):
        result = rows(db, "SELECT 1 UNION SELECT 2.5")
        assert sorted(r[0] for r in result) == [1.0, 2.5]

    def test_union_arity_mismatch(self, db):
        from repro.errors import PlanError
        with pytest.raises(PlanError):
            db.execute("SELECT 1 UNION SELECT 1, 2")


class TestOrderingAndLimit:
    def test_order_by_desc(self, people_db):
        result = rows(people_db,
                      "SELECT name FROM people WHERE age IS NOT NULL "
                      "ORDER BY age DESC")
        assert result[0] == ("edsger",)

    def test_nulls_sort_last_ascending(self, people_db):
        result = rows(people_db, "SELECT age FROM people ORDER BY age")
        assert result[-1] == (None,)

    def test_order_by_expression(self, graph_db):
        result = rows(graph_db,
                      "SELECT src, dst FROM edges ORDER BY src + dst DESC")
        assert result[0] == (4, 1) or result[0][0] + result[0][1] == \
            max(s + d for s, d, _ in
                [(1, 2, 0), (1, 3, 0), (2, 3, 0), (3, 1, 0), (4, 1, 0)])

    def test_limit_offset(self, people_db):
        result = rows(people_db,
                      "SELECT id FROM people ORDER BY id LIMIT 2 OFFSET 1")
        assert result == [(2,), (3,)]

    def test_limit_beyond_rows(self, people_db):
        assert len(rows(people_db,
                        "SELECT id FROM people LIMIT 100")) == 5

    def test_order_by_alias(self, graph_db):
        result = rows(graph_db, """
            SELECT src, COUNT(*) AS c FROM edges GROUP BY src
            ORDER BY c DESC, src""")
        assert result[0] == (1, 2)


class TestSubqueriesAndCtes:
    def test_derived_table(self, graph_db):
        result = rows(graph_db, """
            SELECT t.s FROM (SELECT src AS s FROM edges WHERE weight > 0.6)
            AS t ORDER BY t.s""")
        assert result == [(2,), (3,), (4,)]

    def test_unaliased_derived_table(self, graph_db):
        result = rows(graph_db,
                      "SELECT src FROM (SELECT src FROM edges) ORDER BY src")
        assert len(result) == 5

    def test_regular_cte(self, graph_db):
        result = rows(graph_db, """
            WITH heavy AS (SELECT src, dst FROM edges WHERE weight >= 1.0)
            SELECT COUNT(*) FROM heavy""")
        assert result == [(3,)]

    def test_cte_with_declared_columns(self, graph_db):
        result = rows(graph_db, """
            WITH pairs (a, b) AS (SELECT src, dst FROM edges)
            SELECT a FROM pairs WHERE b = 3 ORDER BY a""")
        assert result == [(1,), (2,)]

    def test_cte_referenced_twice(self, graph_db):
        result = rows(graph_db, """
            WITH nodes AS (SELECT src AS n FROM edges
                           UNION SELECT dst FROM edges)
            SELECT COUNT(*) FROM nodes x JOIN nodes y ON x.n = y.n""")
        assert result == [(4,)]

    def test_multiple_ctes_later_sees_earlier(self, graph_db):
        result = rows(graph_db, """
            WITH a AS (SELECT src FROM edges),
                 b AS (SELECT COUNT(*) AS c FROM a)
            SELECT c FROM b""")
        assert result == [(5,)]

    def test_select_without_from(self, db):
        assert rows(db, "SELECT 1 + 1, 'x'") == [(2, "x")]
