"""Tier-1 delta-evaluation smoke (scripts/check_delta_smoke.sh): delta
mode must stay bit-identical to full recomputation, the frontier must
actually drive the loop, and the recursive fixpoint's segmented append
must move O(|delta|) rows per iteration.

Fast by construction (tiny graphs, few iterations) so the guard can run
on every change alongside the bench and observability smokes.
"""

import pytest

from repro import Database
from repro.execution import SessionOptions
from repro.types import SqlType
from repro.workloads import ff_query, pagerank_query, sssp_query
from tests.conftest import SMALL_EDGES


def _graph_db(delta_on):
    db = Database(SessionOptions(enable_delta_iteration=delta_on))
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", SMALL_EDGES)
    return db


@pytest.mark.delta_smoke
@pytest.mark.parametrize("sql", [
    sssp_query(source=1, iterations=6),
    pagerank_query(iterations=6),
    ff_query(iterations=4, selectivity_mod=100),
], ids=["sssp", "pagerank", "friends"])
def test_delta_mode_bit_identical(sql):
    full = _graph_db(False).execute(sql).rows()
    db = _graph_db(True)
    assert db.execute(sql).rows() == full
    assert db.stats.delta_iterations > 0


@pytest.mark.delta_smoke
def test_frontier_drives_the_telemetry():
    db = _graph_db(True)
    db.set_option("enable_tracing", True)
    db.execute(sssp_query(source=1, iterations=6))
    records = db.last_trace().loops[0].records
    # The 5-node graph settles fast; delta mode must report the shrunken
    # frontier, not the full table, from iteration 2 onward.
    assert records[-1].delta_rows < records[0].working_rows


@pytest.mark.delta_smoke
def test_recursive_append_is_delta_sized():
    db = Database(SessionOptions(enable_tracing=True))
    db.create_table("edge", [("a", SqlType.INTEGER),
                             ("b", SqlType.INTEGER)])
    db.load_rows("edge", [(i, i + 1) for i in range(1, 30)])
    db.execute("""
    WITH RECURSIVE reach (a, b) AS (
      SELECT a, b FROM edge
      UNION
      SELECT r.a, e.b FROM reach r JOIN edge e ON r.b = e.a
    ) SELECT count(*) FROM reach""")
    for record in db.last_trace().loops[0].records:
        assert record.rows_moved <= record.delta_rows
