"""Type system tests: coercion lattice and three-valued scalar logic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeCheckError
from repro.types import (
    SqlType,
    can_cast,
    coerce_scalar,
    common_type,
    python_to_sql_type,
    sql_and,
    sql_compare,
    sql_equal,
    sql_not,
    sql_or,
    type_from_name,
)


class TestTypeNames:
    @pytest.mark.parametrize("name,expected", [
        ("int", SqlType.INTEGER),
        ("INTEGER", SqlType.INTEGER),
        ("bigint", SqlType.INTEGER),
        ("float", SqlType.FLOAT),
        ("double", SqlType.FLOAT),
        ("numeric", SqlType.NUMERIC),
        ("decimal", SqlType.NUMERIC),
        ("bool", SqlType.BOOLEAN),
        ("varchar", SqlType.TEXT),
        ("TEXT", SqlType.TEXT),
    ])
    def test_known_names(self, name, expected):
        assert type_from_name(name) is expected

    def test_unknown_name_raises(self):
        with pytest.raises(TypeCheckError):
            type_from_name("blob")


class TestCommonType:
    def test_same_type(self):
        assert common_type(SqlType.INTEGER, SqlType.INTEGER) \
            is SqlType.INTEGER

    def test_null_unifies_with_anything(self):
        for t in SqlType:
            assert common_type(SqlType.NULL, t) is t
            assert common_type(t, SqlType.NULL) is t

    def test_int_widens_to_float(self):
        assert common_type(SqlType.INTEGER, SqlType.FLOAT) is SqlType.FLOAT

    def test_numeric_and_float(self):
        assert common_type(SqlType.NUMERIC, SqlType.FLOAT) is SqlType.FLOAT

    def test_numeric_with_numeric(self):
        assert common_type(SqlType.NUMERIC, SqlType.NUMERIC) \
            is SqlType.NUMERIC

    def test_text_and_int_conflict(self):
        with pytest.raises(TypeCheckError):
            common_type(SqlType.TEXT, SqlType.INTEGER)

    @given(st.sampled_from(list(SqlType)), st.sampled_from(list(SqlType)))
    def test_commutative(self, a, b):
        try:
            forward = common_type(a, b)
        except TypeCheckError:
            with pytest.raises(TypeCheckError):
                common_type(b, a)
            return
        assert common_type(b, a) is forward


class TestCasts:
    def test_numeric_casts_allowed(self):
        assert can_cast(SqlType.INTEGER, SqlType.FLOAT)
        assert can_cast(SqlType.FLOAT, SqlType.INTEGER)

    def test_anything_to_text(self):
        for t in (SqlType.INTEGER, SqlType.FLOAT, SqlType.BOOLEAN):
            assert can_cast(t, SqlType.TEXT)

    def test_coerce_int(self):
        assert coerce_scalar(1.9, SqlType.INTEGER) == 1

    def test_coerce_none_survives(self):
        assert coerce_scalar(None, SqlType.INTEGER) is None

    def test_coerce_bool_from_text(self):
        assert coerce_scalar("true", SqlType.BOOLEAN) is True
        assert coerce_scalar("f", SqlType.BOOLEAN) is False

    def test_coerce_bad_bool_text(self):
        with pytest.raises(ValueError):
            coerce_scalar("maybe", SqlType.BOOLEAN)


class TestPythonInference:
    def test_inference(self):
        assert python_to_sql_type(None) is SqlType.NULL
        assert python_to_sql_type(True) is SqlType.BOOLEAN
        assert python_to_sql_type(3) is SqlType.INTEGER
        assert python_to_sql_type(3.5) is SqlType.FLOAT
        assert python_to_sql_type("x") is SqlType.TEXT

    def test_unsupported(self):
        with pytest.raises(TypeCheckError):
            python_to_sql_type([1, 2])


TRI = st.sampled_from([True, False, None])


class TestThreeValuedLogic:
    """Kleene logic truth tables, the scalar reference semantics."""

    def test_and_truth_table(self):
        assert sql_and(True, True) is True
        assert sql_and(True, False) is False
        assert sql_and(False, None) is False
        assert sql_and(None, True) is None
        assert sql_and(None, None) is None

    def test_or_truth_table(self):
        assert sql_or(False, False) is False
        assert sql_or(True, None) is True
        assert sql_or(None, False) is None
        assert sql_or(None, None) is None

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None

    @given(TRI, TRI)
    def test_de_morgan(self, a, b):
        assert sql_not(sql_and(a, b)) == sql_or(sql_not(a), sql_not(b))

    @given(TRI, TRI)
    def test_commutativity(self, a, b):
        assert sql_and(a, b) == sql_and(b, a)
        assert sql_or(a, b) == sql_or(b, a)

    @given(TRI)
    def test_identity_elements(self, a):
        assert sql_and(a, True) == a
        assert sql_or(a, False) == a

    def test_equal_with_null(self):
        assert sql_equal(None, 1) is None
        assert sql_equal(1, 1) is True
        assert sql_equal(1, 2) is False

    def test_compare_with_null(self):
        assert sql_compare(None, 1) is None
        assert sql_compare(1, 2) == -1
        assert sql_compare(2, 1) == 1
        assert sql_compare(1, 1) == 0
