"""Engine edge cases: empty inputs, degenerate shapes, error paths, and
behaviours easy to break during refactoring."""

import pytest

from repro import Database
from repro.errors import (
    BindError,
    CatalogError,
    ExecutionError,
    PlanError,
    ReproError,
    SqlSyntaxError,
)
from repro.types import SqlType


@pytest.fixture
def empty_db(db):
    db.execute("CREATE TABLE empty (a int, b float)")
    return db


class TestEmptyInputs:
    def test_scan_empty(self, empty_db):
        assert empty_db.execute("SELECT * FROM empty").rows() == []

    def test_filter_empty(self, empty_db):
        assert empty_db.execute(
            "SELECT * FROM empty WHERE a > 0").rows() == []

    def test_join_with_empty_side(self, empty_db):
        empty_db.execute("CREATE TABLE full_t (a int)")
        empty_db.load_rows("full_t", [(1,), (2,)])
        assert empty_db.execute("""
            SELECT * FROM full_t JOIN empty ON full_t.a = empty.a
        """).rows() == []
        rows = empty_db.execute("""
            SELECT full_t.a, empty.b FROM full_t
            LEFT JOIN empty ON full_t.a = empty.a ORDER BY full_t.a""").rows()
        assert rows == [(1, None), (2, None)]

    def test_group_by_empty(self, empty_db):
        assert empty_db.execute(
            "SELECT a, COUNT(*) FROM empty GROUP BY a").rows() == []

    def test_distinct_empty(self, empty_db):
        assert empty_db.execute(
            "SELECT DISTINCT a FROM empty").rows() == []

    def test_sort_limit_empty(self, empty_db):
        assert empty_db.execute(
            "SELECT a FROM empty ORDER BY a LIMIT 5").rows() == []

    def test_union_of_empties(self, empty_db):
        assert empty_db.execute("""
            SELECT a FROM empty UNION SELECT a FROM empty""").rows() == []

    def test_iterative_cte_over_empty_init(self, empty_db):
        rows = empty_db.execute("""
            WITH ITERATIVE r (a, b) AS (
              SELECT a, b FROM empty ITERATE SELECT a, b + 1 FROM r
              UNTIL 3 ITERATIONS
            ) SELECT COUNT(*) FROM r""").rows()
        assert rows == [(0,)]

    def test_data_termination_on_empty_cte(self, empty_db):
        # DATA_ALL over zero rows is vacuously true: stops immediately.
        empty_db.reset_stats()
        empty_db.execute("""
            WITH ITERATIVE r (a) AS (
              SELECT a FROM empty ITERATE SELECT a FROM r UNTIL ALL a > 0
            ) SELECT COUNT(*) FROM r""")
        assert empty_db.stats.iterations == 1

    def test_analyze_empty_table(self, empty_db):
        empty_db.execute("ANALYZE empty")
        stats = empty_db.statistics.table("empty")
        assert stats.row_count == 0
        assert stats.column("a").distinct_count == 0


class TestDegenerateShapes:
    def test_single_row_single_column(self, db):
        assert db.execute("SELECT 42").scalar() == 42

    def test_select_only_literals_with_from(self, graph_db):
        rows = graph_db.execute("SELECT 1 FROM edges").rows()
        assert rows == [(1,)] * 5

    def test_group_by_constant_expression(self, graph_db):
        rows = graph_db.execute(
            "SELECT src - src, COUNT(*) FROM edges "
            "GROUP BY src - src").rows()
        assert rows == [(0, 5)]

    def test_limit_zero(self, graph_db):
        assert graph_db.execute(
            "SELECT * FROM edges LIMIT 0").rows() == []

    def test_offset_beyond_end(self, graph_db):
        assert graph_db.execute(
            "SELECT * FROM edges LIMIT 5 OFFSET 100").rows() == []

    def test_deeply_nested_subqueries(self, graph_db):
        rows = graph_db.execute("""
            SELECT x FROM (SELECT y AS x FROM
              (SELECT src AS y FROM (SELECT src FROM edges) a) b) c
            ORDER BY x LIMIT 1""").rows()
        assert rows == [(1,)]

    def test_many_union_arms(self, db):
        arms = " UNION ALL ".join(f"SELECT {i}" for i in range(20))
        assert len(db.execute(arms).rows()) == 20

    def test_long_and_chain(self, graph_db):
        predicate = " AND ".join(["src >= 0"] * 30)
        rows = graph_db.execute(
            f"SELECT COUNT(*) FROM edges WHERE {predicate}").scalar()
        assert rows == 5

    def test_self_join_three_levels(self, graph_db):
        rows = graph_db.execute("""
            SELECT COUNT(*) FROM edges a
            JOIN edges b ON a.dst = b.src
            JOIN edges c ON b.dst = c.src""").scalar()
        assert rows > 0

    def test_iterative_cte_one_row(self, db):
        rows = db.execute("""
            WITH ITERATIVE r (x) AS (
              SELECT 0 ITERATE SELECT x + 1 FROM r UNTIL 100 ITERATIONS
            ) SELECT x FROM r""").scalar()
        assert rows == 100


class TestErrorPaths:
    def test_syntax_error_has_location(self, db):
        with pytest.raises(SqlSyntaxError) as excinfo:
            db.execute("SELECT FROM t")
        assert "line 1" in str(excinfo.value)

    def test_unknown_column_lists_available(self, graph_db):
        with pytest.raises(BindError) as excinfo:
            graph_db.execute("SELECT nonexistent FROM edges")
        assert "src" in str(excinfo.value)  # helpful message

    def test_insert_into_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("INSERT INTO ghost VALUES (1)")

    def test_division_by_zero_is_execution_error(self, graph_db):
        with pytest.raises(ExecutionError):
            graph_db.execute("SELECT src / (src - src) FROM edges")

    def test_iterative_cte_in_subquery_rejected_clearly(self, graph_db):
        with pytest.raises(PlanError) as excinfo:
            graph_db.execute("""
                SELECT * FROM (
                  WITH ITERATIVE r (x) AS (
                    SELECT 1 ITERATE SELECT x FROM r UNTIL 1 ITERATIONS
                  ) SELECT * FROM r) t""")
        assert "iterative" in str(excinfo.value).lower()

    def test_dml_inside_explain_rejected(self, graph_db):
        with pytest.raises(ReproError):
            graph_db.explain("DELETE FROM edges")

    def test_order_by_unknown_column(self, graph_db):
        with pytest.raises(BindError):
            graph_db.execute("SELECT src FROM edges ORDER BY ghost")

    def test_having_without_group_by_uses_global_group(self, graph_db):
        rows = graph_db.execute(
            "SELECT COUNT(*) FROM edges HAVING COUNT(*) > 100").rows()
        assert rows == []


class TestStateIsolation:
    def test_failed_query_leaves_catalog_intact(self, graph_db):
        with pytest.raises(BindError):
            graph_db.execute("SELECT ghost FROM edges")
        assert graph_db.execute(
            "SELECT COUNT(*) FROM edges").scalar() == 5

    def test_registry_cleanup_between_queries(self, graph_db):
        from repro.workloads import pagerank_query
        graph_db.execute(pagerank_query(iterations=2))
        graph_db.execute(pagerank_query(iterations=2))
        assert graph_db.registry.names() == []

    def test_concurrent_iterative_cte_names_do_not_collide(self, db):
        # Two CTEs with the same name in different statements.
        sql = """
        WITH ITERATIVE r (x) AS (
          SELECT 1 ITERATE SELECT x + 1 FROM r UNTIL 2 ITERATIONS
        ) SELECT x FROM r"""
        assert db.execute(sql).scalar() == 3
        assert db.execute(sql).scalar() == 3

    def test_options_apply_per_statement(self, graph_db):
        from repro.workloads import pagerank_query
        graph_db.set_option("enable_rename", False)
        graph_db.reset_stats()
        graph_db.execute(pagerank_query(iterations=2))
        assert graph_db.stats.renames == 0
        graph_db.set_option("enable_rename", True)
        graph_db.reset_stats()
        graph_db.execute(pagerank_query(iterations=2))
        assert graph_db.stats.renames == 2


class TestLargerScale:
    def test_hundred_iteration_loop(self, db):
        db.execute("CREATE TABLE t (k int, v float)")
        db.load_rows("t", [(i, 1.0) for i in range(200)])
        result = db.execute("""
            WITH ITERATIVE r (k, v) AS (
              SELECT k, v FROM t ITERATE SELECT k, v * 1.01 FROM r
              UNTIL 100 ITERATIONS
            ) SELECT MIN(v), MAX(v) FROM r""").rows()[0]
        assert result[0] == pytest.approx(1.01 ** 100)
        assert result[0] == pytest.approx(result[1])

    def test_wide_join_fanout(self, db):
        db.execute("CREATE TABLE t (k int)")
        db.load_rows("t", [(i % 5,) for i in range(100)])
        count = db.execute("""
            SELECT COUNT(*) FROM t a JOIN t b ON a.k = b.k""").scalar()
        assert count == 5 * 20 * 20

    def test_many_groups(self, db):
        db.execute("CREATE TABLE t (k int, v int)")
        db.load_rows("t", [(i, i) for i in range(5000)])
        count = db.execute("""
            SELECT COUNT(*) FROM (SELECT k, SUM(v) FROM t GROUP BY k) g
        """).scalar()
        assert count == 5000
