"""Guard-list sync: ``repro.harness.smoke._MARKERS`` is the source of
truth for the tier-1 smoke guards; this test keeps
``scripts/check_all_smoke.sh`` and the pyproject marker declarations
from drifting away from it (a guard added in one place but not the
others silently stops running).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.harness.smoke import _MARKERS, marker_expression

REPO = Path(__file__).resolve().parent.parent


def script_guards() -> dict[str, str]:
    """name -> marker for every ``run_pytest_guard`` call in
    scripts/check_all_smoke.sh."""
    text = (REPO / "scripts" / "check_all_smoke.sh").read_text()
    return dict(re.findall(
        r'^run_pytest_guard\s+(\S+)\s+(\S+)', text, flags=re.MULTILINE))


def pyproject_markers() -> set[str]:
    text = (REPO / "pyproject.toml").read_text()
    return set(re.findall(r'^\s*"(\w+_smoke):', text, flags=re.MULTILINE))


def test_shell_guard_list_matches_markers():
    assert script_guards() == _MARKERS


def test_pyproject_declares_exactly_the_smoke_markers():
    assert pyproject_markers() == set(_MARKERS.values())


def test_marker_expression_covers_all_guards():
    expression = marker_expression()
    for marker in _MARKERS.values():
        assert marker in expression
    assert marker_expression(only="perf") == "perf_smoke"


def test_racecheck_guard_script_exists_and_is_executable():
    script = REPO / "scripts" / "check_racecheck_smoke.sh"
    assert script.exists()
    assert script.stat().st_mode & 0o111, "guard script not executable"
    text = script.read_text()
    assert "repro.verify.concurrency.cli" in text
    assert "racecheck_smoke" in text


def test_ci_runs_the_racecheck_job():
    """The dynamic detector only exists in CI through this job; a
    deleted or renamed job silently turns the lockset prong off."""
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
    assert "racecheck:" in ci
    assert 'REPRO_RACECHECK: "1"' in ci
    assert "repro-racecheck --replay RACECHECK_REPORT.json" in ci
    assert "check_racecheck_smoke.sh" in ci


def test_every_guard_selects_at_least_one_test():
    """A marker that matches nothing is a guard that silently passes."""
    import pytest

    class Collector:
        def __init__(self):
            self.count = 0

        def pytest_collection_finish(self, session):
            self.count = len(session.items)

    for marker in _MARKERS.values():
        collector = Collector()
        code = pytest.main(
            ["-m", marker, "--collect-only", "-q", "--no-header", "-p",
             "no:cacheprovider", str(REPO / "tests")],
            plugins=[collector])
        assert code == 0, f"collection failed for marker {marker}"
        assert collector.count > 0, \
            f"marker {marker} selects no tests under tests/"
