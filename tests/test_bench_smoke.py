"""Tier-1 perf smoke: a tiny iterative workload must finish fast and the
kernel cache must never make it slower than a generous multiple of the
uncached run.

This is a guard against accidental complexity regressions in the loop
hot path (the full measurement lives in benchmarks/bench_kernel_cache.py,
which is not part of tier-1); the thresholds are deliberately loose so CI
noise cannot flake it.
"""

import time

import numpy as np
import pytest

from repro import Database
from repro.types import SqlType

BUDGET_SECONDS = 10.0

CLOSURE_COUNT = """
WITH RECURSIVE reach (a, b) AS (
  SELECT a, b FROM edge
  UNION
  SELECT reach.a, edge.b FROM reach JOIN edge ON reach.b = edge.a
) SELECT COUNT(*) FROM reach"""


def _edges(num_nodes=300, num_edges=900, seed=17):
    rng = np.random.default_rng(seed)
    edges = {(int(a), int(b))
             for a, b in rng.integers(0, num_nodes, size=(num_edges * 2, 2))}
    return sorted(edges)[:num_edges]


def _run(cache_on, edges):
    db = Database()
    db.set_option("enable_kernel_cache", cache_on)
    db.create_table("edge", [("a", SqlType.INTEGER),
                             ("b", SqlType.INTEGER)])
    db.load_rows("edge", edges)
    started = time.perf_counter()
    count = db.execute(CLOSURE_COUNT).scalar()
    return count, time.perf_counter() - started


@pytest.mark.bench_smoke
def test_iterative_closure_smoke():
    edges = _edges()
    count_on, seconds_on = _run(True, edges)
    count_off, seconds_off = _run(False, edges)
    assert count_on == count_off
    assert seconds_on < BUDGET_SECONDS, (
        f"cache-on closure took {seconds_on:.1f}s (budget "
        f"{BUDGET_SECONDS:.0f}s): loop hot path regressed")
    assert seconds_off < BUDGET_SECONDS, (
        f"cache-off closure took {seconds_off:.1f}s (budget "
        f"{BUDGET_SECONDS:.0f}s): loop hot path regressed")
    # Loose ratio guard: caching must not be a large pessimisation.
    assert seconds_on < 3.0 * seconds_off + 0.5
