"""Expression compiler tests: compiled closures must agree with the
interpreter on every expression, and the cache must actually hit inside
iterative loops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.execution import Frame, evaluate
from repro.execution.compiler import ExpressionCache, compile_expression
from repro.plan.logical import Field
from repro.sql import parse
from repro.storage import Column
from repro.types import SqlType


def expr_of(text):
    return parse(f"SELECT {text}").items[0].expr


def frame_of(**columns):
    fields = []
    cols = []
    for name, (sql_type, values) in columns.items():
        fields.append(Field("t", name, sql_type))
        cols.append(Column.from_values(sql_type, values))
    return Frame(tuple(fields), cols)


def assert_equivalent(text, frame):
    expr = expr_of(text)
    interpreted = evaluate(expr, frame)
    compiled = compile_expression(expr, frame.fields)(frame)
    assert compiled.sql_type is interpreted.sql_type \
        or {compiled.sql_type, interpreted.sql_type} \
        <= {SqlType.FLOAT, SqlType.NUMERIC}
    assert compiled.to_list() == interpreted.to_list(), text


INT_FRAME_VALUES = {
    "x": (SqlType.INTEGER, [1, 2, None, -4, 0]),
    "y": (SqlType.INTEGER, [10, None, 30, 40, 0]),
    "f": (SqlType.FLOAT, [0.5, None, 2.5, -1.0, 0.0]),
    "b": (SqlType.BOOLEAN, [True, False, None, True, False]),
}


class TestEquivalence:
    @pytest.mark.parametrize("text", [
        "x", "42", "1.5", "NULL", "TRUE", "'hello'",
        "x + y", "x - y", "x * y", "x + f", "f * 2.0",
        "-x", "+x",
        "x = y", "x <> y", "x < y", "x <= y", "x > y", "x >= y",
        "x = 2", "f > 1.0",
        "b AND x > 0", "b OR x > 0", "NOT b",
        "x IS NULL", "x IS NOT NULL",
        "x > 0 AND y > 0 OR f > 1.0",
        "(x + y) * 2 > 10",
    ])
    def test_corpus(self, text):
        assert_equivalent(text, frame_of(**INT_FRAME_VALUES))

    def test_fallback_cases_still_work(self):
        # These are not compiled (fallback to the interpreter) but the
        # compiled entry point must still produce correct results.
        frame = frame_of(**INT_FRAME_VALUES)
        for text in ["x / 2", "x % 3", "COALESCE(x, 0)",
                     "CASE WHEN x > 0 THEN 1 ELSE 0 END",
                     "CAST(x AS float)", "x IN (1, 2)",
                     "x BETWEEN 0 AND 3", "LEAST(x, y)"]:
            assert_equivalent(text, frame)

    @given(st.lists(st.one_of(st.none(), st.integers(-100, 100)),
                    min_size=1, max_size=30),
           st.lists(st.one_of(st.none(), st.integers(-100, 100)),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_arithmetic_property(self, xs, ys):
        size = min(len(xs), len(ys))
        frame = frame_of(x=(SqlType.INTEGER, xs[:size]),
                         y=(SqlType.INTEGER, ys[:size]))
        for text in ["x + y", "x * y - 3", "x < y", "x = y",
                     "x IS NULL OR y > 0"]:
            assert_equivalent(text, frame)

    @given(st.lists(st.one_of(st.none(), st.booleans()),
                    min_size=1, max_size=25),
           st.lists(st.one_of(st.none(), st.booleans()),
                    min_size=1, max_size=25))
    @settings(max_examples=50)
    def test_kleene_logic_property(self, ps, qs):
        size = min(len(ps), len(qs))
        frame = frame_of(p=(SqlType.BOOLEAN, ps[:size]),
                         q=(SqlType.BOOLEAN, qs[:size]))
        for text in ["p AND q", "p OR q", "NOT p",
                     "p AND NOT q", "NOT (p OR q)"]:
            assert_equivalent(text, frame)


class TestCache:
    def test_cache_hits_on_repeated_node(self):
        cache = ExpressionCache()
        expr = expr_of("x + 1")
        fields = (Field("t", "x", SqlType.INTEGER),)
        first = cache.get(expr, fields, node_key=1)
        second = cache.get(expr, fields, node_key=1)
        assert first is second
        assert cache.compilations == 1
        assert cache.hits == 1

    def test_different_nodes_compile_separately(self):
        cache = ExpressionCache()
        expr = expr_of("x + 1")
        fields = (Field("t", "x", SqlType.INTEGER),)
        cache.get(expr, fields, node_key=1)
        cache.get(expr, fields, node_key=2)
        assert cache.compilations == 2

    def test_iterative_loop_reuses_compiled_expressions(self, db):
        db.execute("""
            CREATE TABLE t (k int, v int)""")
        db.load_rows("t", [(i, i) for i in range(50)])
        db.execute("""
            WITH ITERATIVE r (k, v) AS (
              SELECT k, v FROM t ITERATE SELECT k, v + 1 FROM r
              UNTIL 20 ITERATIONS
            ) SELECT SUM(v) FROM r""")
        # The context is per-statement, so inspect via a fresh run.
        from repro.execution import ExecutionContext
        from repro.core.rewrite import compile_statement
        from repro.core.runner import run_program
        from repro.plan import PlanContext
        program = compile_statement(
            parse("""
            WITH ITERATIVE r (k, v) AS (
              SELECT k, v FROM t ITERATE SELECT k, v + 1 FROM r
              UNTIL 20 ITERATIONS
            ) SELECT SUM(v) FROM r"""),
            PlanContext(db.catalog), db.options, db.stats)
        ctx = ExecutionContext(db.catalog, db.registry, db.options,
                               db.stats)
        run_program(program, ctx)
        # 20 iterations of the same Project: compiled once, hit 19+ times.
        assert ctx.expr_cache.hits >= 19
        assert ctx.expr_cache.compilations < ctx.expr_cache.hits


class TestEngineEquivalence:
    """Full queries must not care whether the compiler is on."""

    @pytest.mark.parametrize("sql", [
        "SELECT src + dst * 2 FROM edges WHERE weight > 0.4",
        "SELECT src FROM edges WHERE src = 1 AND dst > 1 OR weight >= 1.0",
        """WITH ITERATIVE r (k, v) AS (
             SELECT src, 0 FROM (SELECT DISTINCT src FROM edges)
             ITERATE SELECT k, v + k FROM r UNTIL 5 ITERATIONS
           ) SELECT k, v FROM r""",
    ])
    def test_compiled_equals_interpreted(self, sql, graph_db):
        graph_db.set_option("enable_expr_compile", True)
        compiled = sorted(graph_db.execute(sql).rows())
        graph_db.set_option("enable_expr_compile", False)
        interpreted = sorted(graph_db.execute(sql).rows())
        assert compiled == interpreted
        graph_db.set_option("enable_expr_compile", True)
