"""Vectorized expression evaluator tests, including property-based checks
that the vectorized three-valued logic agrees with the scalar reference
semantics in repro.types.values."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExecutionError, TypeCheckError
from repro.execution import Frame, evaluate, evaluate_predicate
from repro.plan.logical import Field
from repro.sql import parse
from repro.storage import Column
from repro.types import SqlType, sql_and, sql_not, sql_or


def expr_of(text):
    return parse(f"SELECT {text}").items[0].expr


def eval_scalar(text):
    """Evaluate a constant expression on the dual frame."""
    return evaluate(expr_of(text), Frame.dual())[0]


def frame_of(**columns):
    """Build a one-table frame from name=(type, values) kwargs."""
    fields = []
    cols = []
    for name, (sql_type, values) in columns.items():
        fields.append(Field("t", name, sql_type))
        cols.append(Column.from_values(sql_type, values))
    return Frame(tuple(fields), cols)


class TestArithmetic:
    def test_basic_ops(self):
        assert eval_scalar("1 + 2 * 3") == 7
        assert eval_scalar("10 - 4") == 6
        assert eval_scalar("2.5 * 4") == 10.0

    def test_int_division_truncates_toward_zero(self):
        # PostgreSQL semantics.
        assert eval_scalar("7 / 2") == 3
        assert eval_scalar("-7 / 2") == -3

    def test_float_division(self):
        assert eval_scalar("7.0 / 2") == 3.5
        assert eval_scalar("7 / 2.0") == 3.5

    def test_modulo_sign_follows_dividend(self):
        assert eval_scalar("7 % 3") == 1
        assert eval_scalar("-7 % 3") == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            eval_scalar("1 / 0")
        with pytest.raises(ExecutionError):
            eval_scalar("1 % 0")

    def test_null_divisor_does_not_raise(self):
        assert eval_scalar("1 / NULL") is None

    def test_null_propagation(self):
        assert eval_scalar("1 + NULL") is None
        assert eval_scalar("NULL * 2") is None

    def test_unary_minus(self):
        assert eval_scalar("-(3 + 4)") == -7

    def test_arithmetic_on_text_raises(self):
        with pytest.raises(TypeCheckError):
            eval_scalar("'a' + 1")


class TestComparisons:
    def test_basic(self):
        assert eval_scalar("1 < 2") is True
        assert eval_scalar("2 <= 1") is False
        assert eval_scalar("3 = 3") is True
        assert eval_scalar("3 <> 3") is False

    def test_null_comparison_is_unknown(self):
        assert eval_scalar("NULL = NULL") is None
        assert eval_scalar("1 < NULL") is None

    def test_mixed_numeric_comparison(self):
        assert eval_scalar("1 = 1.0") is True

    def test_text_comparison(self):
        assert eval_scalar("'abc' < 'abd'") is True


class TestBooleanLogic:
    def test_kleene_and_or(self):
        assert eval_scalar("TRUE AND NULL") is None
        assert eval_scalar("FALSE AND NULL") is False
        assert eval_scalar("TRUE OR NULL") is True
        assert eval_scalar("FALSE OR NULL") is None

    def test_not(self):
        assert eval_scalar("NOT TRUE") is False
        assert eval_scalar("NOT NULL") is None

    TRI_LITERAL = {True: "TRUE", False: "FALSE", None: "NULL"}

    @given(st.sampled_from([True, False, None]),
           st.sampled_from([True, False, None]))
    def test_vectorized_and_matches_scalar_reference(self, a, b):
        text = f"{self.TRI_LITERAL[a]} AND {self.TRI_LITERAL[b]}"
        assert eval_scalar(text) == sql_and(a, b)

    @given(st.sampled_from([True, False, None]),
           st.sampled_from([True, False, None]))
    def test_vectorized_or_matches_scalar_reference(self, a, b):
        text = f"{self.TRI_LITERAL[a]} OR {self.TRI_LITERAL[b]}"
        assert eval_scalar(text) == sql_or(a, b)

    @given(st.sampled_from([True, False, None]))
    def test_vectorized_not_matches_scalar_reference(self, a):
        assert eval_scalar(f"NOT {self.TRI_LITERAL[a]}") == sql_not(a)


class TestPredicates:
    def test_is_null(self):
        frame = frame_of(x=(SqlType.INTEGER, [1, None, 3]))
        keep = evaluate_predicate(expr_of("x IS NULL"), frame)
        assert keep.tolist() == [False, True, False]

    def test_is_not_null(self):
        frame = frame_of(x=(SqlType.INTEGER, [1, None]))
        keep = evaluate_predicate(expr_of("x IS NOT NULL"), frame)
        assert keep.tolist() == [True, False]

    def test_unknown_rows_are_dropped(self):
        frame = frame_of(x=(SqlType.INTEGER, [1, None, 3]))
        keep = evaluate_predicate(expr_of("x > 1"), frame)
        assert keep.tolist() == [False, False, True]

    def test_in_list(self):
        frame = frame_of(x=(SqlType.INTEGER, [1, 2, 3, None]))
        keep = evaluate_predicate(expr_of("x IN (1, 3)"), frame)
        assert keep.tolist() == [True, False, True, False]

    def test_not_in_with_null_operand(self):
        frame = frame_of(x=(SqlType.INTEGER, [None]))
        keep = evaluate_predicate(expr_of("x NOT IN (1)"), frame)
        assert keep.tolist() == [False]  # NULL NOT IN ... is UNKNOWN

    def test_between(self):
        frame = frame_of(x=(SqlType.INTEGER, [0, 5, 10, 11]))
        keep = evaluate_predicate(expr_of("x BETWEEN 5 AND 10"), frame)
        assert keep.tolist() == [False, True, True, False]

    def test_not_between(self):
        frame = frame_of(x=(SqlType.INTEGER, [0, 7]))
        keep = evaluate_predicate(expr_of("x NOT BETWEEN 5 AND 10"), frame)
        assert keep.tolist() == [True, False]

    def test_non_boolean_predicate_rejected(self):
        frame = frame_of(x=(SqlType.INTEGER, [1]))
        with pytest.raises(TypeCheckError):
            evaluate_predicate(expr_of("x + 1"), frame)

    def test_like(self):
        frame = frame_of(s=(SqlType.TEXT, ["apple", "banana", None]))
        keep = evaluate_predicate(expr_of("s LIKE 'a%'"), frame)
        assert keep.tolist() == [True, False, False]

    def test_like_underscore(self):
        frame = frame_of(s=(SqlType.TEXT, ["cat", "cart"]))
        keep = evaluate_predicate(expr_of("s LIKE 'c_t'"), frame)
        assert keep.tolist() == [True, False]


class TestCase:
    def test_searched_case(self):
        frame = frame_of(x=(SqlType.INTEGER, [1, 2, 3]))
        result = evaluate(
            expr_of("CASE WHEN x = 1 THEN 10 WHEN x = 2 THEN 20 "
                    "ELSE 30 END"), frame)
        assert result.to_list() == [10, 20, 30]

    def test_no_else_gives_null(self):
        frame = frame_of(x=(SqlType.INTEGER, [1, 2]))
        result = evaluate(expr_of("CASE WHEN x = 1 THEN 10 END"), frame)
        assert result.to_list() == [10, None]

    def test_simple_case(self):
        frame = frame_of(x=(SqlType.INTEGER, [1, 9]))
        result = evaluate(expr_of("CASE x WHEN 1 THEN 'one' "
                                  "ELSE 'other' END"), frame)
        assert result.to_list() == ["one", "other"]

    def test_first_matching_branch_wins(self):
        frame = frame_of(x=(SqlType.INTEGER, [5]))
        result = evaluate(
            expr_of("CASE WHEN x > 0 THEN 'pos' WHEN x > 3 THEN 'big' END"),
            frame)
        assert result.to_list() == ["pos"]

    def test_branch_types_unify(self):
        frame = frame_of(x=(SqlType.INTEGER, [1, 2]))
        result = evaluate(expr_of("CASE WHEN x = 1 THEN 1 ELSE 2.5 END"),
                          frame)
        assert result.sql_type is SqlType.FLOAT


class TestScalarFunctions:
    def test_least_greatest_ignore_nulls(self):
        # PostgreSQL semantics: NULL args skipped.
        assert eval_scalar("LEAST(3, NULL, 1)") == 1
        assert eval_scalar("GREATEST(3, NULL, 1)") == 3
        assert eval_scalar("LEAST(NULL, NULL)") is None

    def test_coalesce(self):
        assert eval_scalar("COALESCE(NULL, NULL, 7)") == 7
        assert eval_scalar("COALESCE(1, 2)") == 1
        assert eval_scalar("COALESCE(NULL, NULL)") is None

    def test_nullif(self):
        assert eval_scalar("NULLIF(1, 1)") is None
        assert eval_scalar("NULLIF(1, 2)") == 1

    def test_rounding_family(self):
        assert eval_scalar("CEILING(1.2)") == 2.0
        assert eval_scalar("CEIL(-1.2)") == -1.0
        assert eval_scalar("FLOOR(1.8)") == 1.0
        assert eval_scalar("ROUND(1.567, 2)") == 1.57
        assert eval_scalar("ROUND(1.5)") == 2.0

    def test_mod_function(self):
        assert eval_scalar("MOD(10, 3)") == 1
        assert eval_scalar("MOD(10, 0.75)") == 0.25

    def test_math(self):
        assert eval_scalar("ABS(-4)") == 4
        assert eval_scalar("SQRT(9)") == 3.0
        assert eval_scalar("POWER(2, 10)") == 1024.0
        assert abs(eval_scalar("EXP(1)") - 2.718281828) < 1e-6
        assert abs(eval_scalar("LN(EXP(2))") - 2.0) < 1e-12
        assert eval_scalar("SIGN(-3.2)") == -1

    def test_sqrt_domain_error(self):
        with pytest.raises(ExecutionError):
            eval_scalar("SQRT(-1)")

    def test_text_functions(self):
        assert eval_scalar("LENGTH('hello')") == 5
        assert eval_scalar("UPPER('abc')") == "ABC"
        assert eval_scalar("LOWER('ABC')") == "abc"

    def test_concat_function_ignores_null(self):
        assert eval_scalar("CONCAT('a', NULL, 'b')") == "ab"

    def test_concat_operator_propagates_null(self):
        assert eval_scalar("'a' || NULL") is None
        assert eval_scalar("'a' || 'b'") == "ab"

    def test_unknown_function(self):
        from repro.errors import BindError
        with pytest.raises(BindError):
            eval_scalar("FROBNICATE(1)")

    def test_cast(self):
        assert eval_scalar("CAST(1.9 AS int)") == 1
        assert eval_scalar("CAST('42' AS int)") == 42
        assert eval_scalar("CAST(NULL AS float)") is None

    def test_round_per_row_digits(self):
        frame = frame_of(x=(SqlType.FLOAT, [1.567, 1.567]),
                         n=(SqlType.INTEGER, [1, 2]))
        result = evaluate(expr_of("ROUND(x, n)"), frame)
        assert result.to_list() == [1.6, 1.57]


class TestVectorProperties:
    @given(st.lists(st.one_of(st.none(),
                              st.integers(-100, 100)), max_size=50))
    def test_coalesce_never_null_with_fallback(self, values):
        frame = frame_of(x=(SqlType.INTEGER, values))
        result = evaluate(expr_of("COALESCE(x, 0)"), frame)
        assert not result.mask.any()
        expected = [0 if v is None else v for v in values]
        assert result.to_list() == expected

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=50))
    def test_least_below_greatest(self, values):
        frame = frame_of(x=(SqlType.INTEGER, values),
                         y=(SqlType.INTEGER, values[::-1]))
        low = evaluate(expr_of("LEAST(x, y)"), frame).to_list()
        high = evaluate(expr_of("GREATEST(x, y)"), frame).to_list()
        assert all(a <= b for a, b in zip(low, high))
