"""Statistics subsystem tests: ANALYZE, column stats, selectivities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Database
from repro.stats import analyze_column, analyze_table
from repro.storage import Column, Table
from repro.types import SqlType


class TestColumnStatistics:
    def test_basic(self):
        column = Column.from_values(SqlType.INTEGER,
                                    [1, 2, 2, 3, None])
        stats = analyze_column(column)
        assert stats.null_fraction == pytest.approx(0.2)
        assert stats.distinct_count == 3
        assert stats.min_value == 1.0
        assert stats.max_value == 3.0

    def test_empty_column(self):
        stats = analyze_column(Column.from_values(SqlType.INTEGER, []))
        assert stats.distinct_count == 0
        assert stats.min_value is None

    def test_all_null(self):
        stats = analyze_column(
            Column.from_values(SqlType.FLOAT, [None, None]))
        assert stats.null_fraction == 1.0
        assert stats.distinct_count == 0

    def test_text_column_has_distinct_but_no_range(self):
        stats = analyze_column(
            Column.from_values(SqlType.TEXT, ["a", "b", "a"]))
        assert stats.distinct_count == 2
        assert stats.min_value is None

    def test_equality_selectivity(self):
        column = Column.from_values(SqlType.INTEGER, list(range(100)))
        stats = analyze_column(column)
        assert stats.selectivity_of_equality == pytest.approx(0.01)

    def test_range_selectivity_uniform(self):
        column = Column.from_values(SqlType.INTEGER, list(range(101)))
        stats = analyze_column(column)
        # col < 50 covers half the [0, 100] range.
        assert stats.selectivity_of_range(None, 50) \
            == pytest.approx(0.5, abs=0.01)

    def test_range_selectivity_out_of_bounds(self):
        column = Column.from_values(SqlType.INTEGER, list(range(10)))
        stats = analyze_column(column)
        assert stats.selectivity_of_range(100, None) == 0.0

    @given(st.lists(st.one_of(st.none(), st.integers(-50, 50)),
                    min_size=1, max_size=50))
    def test_distinct_count_matches_set(self, values):
        stats = analyze_column(
            Column.from_values(SqlType.INTEGER, values))
        expected = len({v for v in values if v is not None})
        assert stats.distinct_count == expected

    @given(st.lists(st.one_of(st.none(), st.integers(-50, 50)),
                    min_size=1, max_size=50))
    def test_null_fraction_exact(self, values):
        stats = analyze_column(
            Column.from_values(SqlType.INTEGER, values))
        expected = sum(v is None for v in values) / len(values)
        assert stats.null_fraction == pytest.approx(expected)


class TestAnalyzeStatement:
    def test_analyze_one_table(self, graph_db):
        result = graph_db.execute("ANALYZE edges")
        assert result.rows() == [("edges",)]
        stats = graph_db.statistics.table("edges")
        assert stats.row_count == 5
        assert stats.column("src").distinct_count == 4

    def test_analyze_all(self, graph_vs_db):
        result = graph_vs_db.execute("ANALYZE")
        assert sorted(r[0] for r in result.rows()) \
            == ["edges", "vertexstatus"]

    def test_analyze_unknown_table(self, db):
        from repro.errors import CatalogError
        with pytest.raises(CatalogError):
            db.execute("ANALYZE ghost")

    def test_unanalyzed_table_has_rowcount_fallback(self, graph_db):
        stats = graph_db.statistics.table("edges")
        assert stats.row_count == 5
        assert stats.column("src") is None  # no column stats yet

    def test_dml_invalidates(self, graph_db):
        graph_db.execute("ANALYZE edges")
        assert graph_db.statistics.table("edges").column("src") is not None
        graph_db.execute("INSERT INTO edges VALUES (9, 9, 1.0)")
        stats = graph_db.statistics.table("edges")
        assert stats.column("src") is None  # back to fallback
        assert stats.row_count == 6         # but the count is fresh

    def test_drop_invalidates(self, graph_db):
        graph_db.execute("ANALYZE edges")
        graph_db.execute("DROP TABLE edges")
        assert graph_db.statistics.table("edges") is None

    def test_analyzed_tables_listing(self, graph_db):
        graph_db.execute("ANALYZE edges")
        assert graph_db.statistics.analyzed_tables() == ["edges"]


class TestMeasuredIterations:
    def test_record_and_read_back(self):
        db = Database()
        db.statistics.record_loop_iterations("MyCte", 14)
        assert db.statistics.measured_iterations("mycte") == 14
        assert db.statistics.measured_iterations("MYCTE") == 14

    def test_unknown_cte_is_none(self):
        db = Database()
        assert db.statistics.measured_iterations("never_ran") is None

    def test_zero_iterations_not_recorded(self):
        db = Database()
        db.statistics.record_loop_iterations("cte", 0)
        assert db.statistics.measured_iterations("cte") is None

    def test_latest_measurement_wins(self):
        db = Database()
        db.statistics.record_loop_iterations("cte", 5)
        db.statistics.record_loop_iterations("cte", 9)
        assert db.statistics.measured_iterations("cte") == 9

    def test_query_runs_record_measurements(self):
        db = Database()
        db.create_table("t", [("k", SqlType.INTEGER)])
        db.load_rows("t", [(1,), (2,)])
        db.execute("""
        WITH ITERATIVE r (k) AS (
          SELECT k FROM t ITERATE SELECT k + 1 FROM r
          UNTIL 6 ITERATIONS
        ) SELECT k FROM r""")
        assert db.statistics.measured_iterations("r") == 6
