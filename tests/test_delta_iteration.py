"""Semi-naive delta evaluation for ITERATIVE CTEs.

Covers the safety analyzer (which step queries are provably per-key),
the program shape the rewrite emits, bit-identity of delta-mode results
against the always-correct full recomputation across workloads and
termination families, the runtime's self-disabling fallbacks, and the
EXPLAIN ANALYZE integration (frontier-sized delta_rows, measured
iteration feedback)."""

import numpy as np
import pytest

from repro.datasets import dblp_like, generate_edges
from repro.engine.database import Database
from repro.execution import SessionOptions
from repro.plan.program import (
    DeltaApplyStep,
    DeltaFusedStep,
    DeltaGateStep,
)
from repro.types import SqlType
from repro.workloads import (
    ff_query,
    pagerank_query,
    reference_pagerank,
    reference_sssp,
    sssp_query,
)

EDGES = generate_edges(dblp_like(nodes=200, seed=21))


def dag_edges(num_nodes=400, num_edges=1600, seed=5):
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < num_edges:
        a, b = rng.integers(1, num_nodes + 1, size=2)
        if a < b:
            edges.add((int(a), int(b)))
    return [(a, b, round(float(rng.uniform(0.1, 2.0)), 3))
            for a, b in sorted(edges)]


def graph_db(edges, delta_on=True, **options) -> Database:
    db = Database(SessionOptions(enable_delta_iteration=delta_on,
                                 **options))
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", edges)
    return db


def both_modes(sql, edges=EDGES):
    """(full rows, delta rows, delta-mode database) for one query."""
    full = graph_db(edges, delta_on=False).execute(sql).rows()
    db = graph_db(edges, delta_on=True)
    delta = db.execute(sql).rows()
    return full, delta, db


class TestBitIdentity:
    def test_sssp(self):
        full, delta, db = both_modes(sssp_query(source=1, iterations=10))
        assert full == delta
        assert db.stats.delta_iterations > 0

    def test_pagerank(self):
        full, delta, db = both_modes(pagerank_query(iterations=8))
        assert full == delta
        assert db.stats.delta_iterations > 0

    def test_friends(self):
        full, delta, db = both_modes(
            ff_query(iterations=5, selectivity_mod=7))
        assert full == delta
        assert db.stats.delta_iterations > 0

    def test_sssp_on_dag_where_the_frontier_empties(self):
        edges = dag_edges()
        full, delta, db = both_modes(
            sssp_query(source=1, iterations=40), edges)
        assert full == delta
        # The wave dies out long before iteration 40: most delta-mode
        # iterations see an empty frontier and skip both loop bodies.
        assert db.stats.delta_iterations >= 30

    def test_matches_reference_sssp(self):
        edges = dag_edges()
        db = graph_db(edges, delta_on=True)
        got = dict(db.execute(sssp_query(source=1, iterations=40)).rows())
        assert got == reference_sssp(edges, source=1, iterations=40)

    def test_matches_reference_pagerank(self):
        db = graph_db(EDGES, delta_on=True)
        got = dict(db.execute(pagerank_query(iterations=6)).rows())
        reference = reference_pagerank(EDGES, iterations=6)
        assert got.keys() == reference.keys()
        for node, rank in got.items():
            assert rank == pytest.approx(reference[node], abs=1e-9)


class TestTerminationFamilies:
    def test_updates_budget(self):
        sql = sssp_query(source=1, iterations=12).replace(
            "UNTIL 12 ITERATIONS", "UNTIL 250 UPDATES")
        full, delta, db = both_modes(sql, dag_edges(300, 1200))
        assert full == delta

    def test_delta_condition_converges(self):
        sql = sssp_query(source=1, iterations=12).replace(
            "UNTIL 12 ITERATIONS", "UNTIL DELTA = 0")
        full, delta, db = both_modes(sql, dag_edges(300, 1200))
        assert full == delta
        assert db.stats.delta_iterations > 0


class TestProgramShape:
    def _program(self, sql, delta_on, **options):
        from repro.core.rewrite import compile_statement
        from repro.execution import ExecutionStats
        from repro.plan import PlanContext
        from repro.sql import parse
        db = graph_db(EDGES, delta_on=delta_on, **options)
        return compile_statement(
            parse(sql), PlanContext(db.catalog), db.options,
            ExecutionStats())

    def test_fused_delta_step_emitted_when_safe_and_enabled(self):
        program = self._program(sssp_query(source=1, iterations=5), True)
        kinds = [type(step) for step in program.steps]
        assert DeltaFusedStep in kinds
        assert DeltaGateStep not in kinds
        assert DeltaApplyStep not in kinds
        fused = next(s for s in program.steps
                     if isinstance(s, DeltaFusedStep))
        assert fused.jump_full > 0 and fused.jump_to > fused.jump_full
        assert fused.jump_to == fused.jump_done

    def test_quartet_emitted_when_fusion_disabled(self):
        program = self._program(sssp_query(source=1, iterations=5), True,
                                enable_delta_fusion=False)
        kinds = [type(step) for step in program.steps]
        assert DeltaGateStep in kinds
        assert DeltaApplyStep in kinds
        assert DeltaFusedStep not in kinds
        gate = next(s for s in program.steps
                    if isinstance(s, DeltaGateStep))
        assert gate.jump_full > 0 and gate.jump_done > gate.jump_full

    def test_no_delta_steps_when_disabled(self):
        program = self._program(sssp_query(source=1, iterations=5), False)
        assert not any(isinstance(step, DeltaGateStep)
                       for step in program.steps)

    def test_unsafe_step_query_falls_back(self):
        # Item 0 is not the bare anchor key: the analyzer must refuse.
        sql = """
        WITH ITERATIVE r (node, v) AS (
          SELECT src, 0.0 FROM edges GROUP BY src
          ITERATE SELECT r.node + 0, r.v + 1.0 FROM r
          UNTIL 3 ITERATIONS
        ) SELECT node, v FROM r"""
        program = self._program(sql, True)
        assert not any(isinstance(step, DeltaGateStep)
                       for step in program.steps)
        full, delta, db = both_modes(sql)
        assert full == delta
        assert db.stats.delta_iterations == 0


class TestRuntimeFallbacks:
    def test_duplicate_keys_disable_delta_but_stay_correct(self):
        # The init query emits duplicate keys; the capture step detects
        # this on iteration 1 and permanently routes to the full body.
        sql = """
        WITH ITERATIVE r (node, v) AS (
          SELECT src, 0.0 FROM edges
          ITERATE SELECT r.node, r.v + 1.0 FROM r
          UNTIL 3 ITERATIONS
        ) SELECT node, v FROM r"""
        full, delta, db = both_modes(sql)
        assert full == delta
        assert db.stats.delta_iterations == 0


class TestExplainAnalyze:
    def test_delta_rows_report_the_frontier(self):
        edges = dag_edges(300, 1200)
        db = graph_db(edges, delta_on=True)
        db.execute(sssp_query(source=1, iterations=25))
        db.set_option("enable_tracing", True)
        db.execute(sssp_query(source=1, iterations=25))
        records = db.last_trace().loops[0].records
        # Once the wave dies the frontier is empty, and the telemetry
        # shows it (full recomputation would report full-table deltas).
        assert records[-1].delta_rows == 0
        assert any(r.delta_rows > 0 for r in records)

    def test_measured_iterations_feed_the_cost_model(self):
        db = graph_db(dag_edges(300, 1200), delta_on=True)
        sql = sssp_query(source=1, iterations=12).replace(
            "UNTIL 12 ITERATIONS", "UNTIL DELTA = 0")
        first = db.explain_analyze(sql)
        assert "(heuristic)" in first and "measured" in first
        second = db.explain_analyze(sql)
        assert "(measured)" in second and "error +0%" in second

    def test_exact_termination_stays_exact(self):
        db = graph_db(EDGES, delta_on=True)
        sql = sssp_query(source=1, iterations=8)
        db.explain_analyze(sql)
        report = db.explain_analyze(sql)
        assert "8 iterations (exact)" in report
