"""DML tests: INSERT / UPDATE / DELETE including UPDATE ... FROM, which
the middleware and stored-procedure baselines depend on."""

import pytest

from repro.errors import CatalogError, TypeCheckError
from repro import Database


@pytest.fixture
def accounts(db):
    db.execute("CREATE TABLE accounts (id int, owner text, balance float)")
    db.execute("INSERT INTO accounts VALUES "
               "(1, 'ada', 100.0), (2, 'grace', 250.0), (3, 'alan', 0.0)")
    return db


class TestInsert:
    def test_insert_values(self, accounts):
        result = accounts.execute(
            "INSERT INTO accounts VALUES (4, 'barbara', 10.0)")
        assert result.rowcount == 1
        assert accounts.execute(
            "SELECT COUNT(*) FROM accounts").scalar() == 4

    def test_insert_multiple_rows(self, accounts):
        result = accounts.execute(
            "INSERT INTO accounts VALUES (4, 'b', 1.0), (5, 'c', 2.0)")
        assert result.rowcount == 2

    def test_insert_column_subset_fills_nulls(self, accounts):
        accounts.execute("INSERT INTO accounts (id, owner) VALUES (9, 'x')")
        row = accounts.execute(
            "SELECT balance FROM accounts WHERE id = 9").scalar()
        assert row is None

    def test_insert_reordered_columns(self, accounts):
        accounts.execute(
            "INSERT INTO accounts (balance, id, owner) "
            "VALUES (5.5, 7, 'y')")
        assert accounts.execute(
            "SELECT balance FROM accounts WHERE id = 7").scalar() == 5.5

    def test_insert_select(self, accounts):
        result = accounts.execute("""
            INSERT INTO accounts
            SELECT id + 100, owner, balance * 2 FROM accounts""")
        assert result.rowcount == 3
        assert accounts.execute(
            "SELECT balance FROM accounts WHERE id = 101").scalar() == 200.0

    def test_insert_select_with_iterative_cte(self, accounts):
        accounts.execute("CREATE TABLE powers (k int, v int)")
        accounts.execute("""
            INSERT INTO powers
            WITH ITERATIVE p (k, v) AS (
              SELECT 1, 1 ITERATE SELECT k, v * 2 FROM p UNTIL 5 ITERATIONS
            ) SELECT k, v FROM p""")
        assert accounts.execute("SELECT v FROM powers").scalar() == 32

    def test_insert_unknown_column(self, accounts):
        with pytest.raises(CatalogError):
            accounts.execute("INSERT INTO accounts (nope) VALUES (1)")

    def test_insert_wrong_width(self, accounts):
        with pytest.raises(TypeCheckError):
            accounts.execute("INSERT INTO accounts (id, owner) VALUES (1)")

    def test_insert_expression_values(self, accounts):
        accounts.execute(
            "INSERT INTO accounts VALUES (10, UPPER('zed'), 1 + 2)")
        assert accounts.execute(
            "SELECT owner FROM accounts WHERE id = 10").scalar() == "ZED"


class TestUpdate:
    def test_update_all_rows(self, accounts):
        result = accounts.execute("UPDATE accounts SET balance = 0")
        assert result.rowcount == 3
        total = accounts.execute(
            "SELECT SUM(balance) FROM accounts").scalar()
        assert total == 0

    def test_update_with_where(self, accounts):
        result = accounts.execute(
            "UPDATE accounts SET balance = balance + 10 WHERE id = 1")
        assert result.rowcount == 1
        assert accounts.execute(
            "SELECT balance FROM accounts WHERE id = 1").scalar() == 110.0

    def test_update_expression_references_old_values(self, accounts):
        accounts.execute("UPDATE accounts SET balance = balance * 2")
        assert accounts.execute(
            "SELECT balance FROM accounts WHERE id = 2").scalar() == 500.0

    def test_update_multiple_assignments(self, accounts):
        accounts.execute(
            "UPDATE accounts SET owner = 'x', balance = 1 WHERE id = 3")
        row = accounts.execute(
            "SELECT owner, balance FROM accounts WHERE id = 3").rows()[0]
        assert row == ("x", 1.0)

    def test_update_from_join(self, accounts):
        accounts.execute("CREATE TABLE deltas (id int, amount float)")
        accounts.execute(
            "INSERT INTO deltas VALUES (1, 5.0), (3, 7.0)")
        result = accounts.execute("""
            UPDATE accounts SET balance = balance + d.amount
            FROM deltas AS d WHERE accounts.id = d.id""")
        assert result.rowcount == 2
        assert accounts.execute(
            "SELECT balance FROM accounts WHERE id = 1").scalar() == 105.0
        assert accounts.execute(
            "SELECT balance FROM accounts WHERE id = 2").scalar() == 250.0

    def test_update_from_unmatched_rows_untouched(self, accounts):
        accounts.execute("CREATE TABLE deltas (id int, amount float)")
        accounts.execute("INSERT INTO deltas VALUES (99, 5.0)")
        result = accounts.execute("""
            UPDATE accounts SET balance = d.amount
            FROM deltas AS d WHERE accounts.id = d.id""")
        assert result.rowcount == 0

    def test_update_unknown_column(self, accounts):
        with pytest.raises(CatalogError):
            accounts.execute("UPDATE accounts SET nope = 1")

    def test_update_counts_unique_rows(self, accounts):
        # Two FROM matches for one target row still count it once.
        accounts.execute("CREATE TABLE deltas (id int, amount float)")
        accounts.execute("INSERT INTO deltas VALUES (1, 5.0), (1, 6.0)")
        result = accounts.execute("""
            UPDATE accounts SET balance = d.amount
            FROM deltas AS d WHERE accounts.id = d.id""")
        assert result.rowcount == 1


class TestDelete:
    def test_delete_with_where(self, accounts):
        result = accounts.execute("DELETE FROM accounts WHERE balance = 0")
        assert result.rowcount == 1
        assert accounts.execute(
            "SELECT COUNT(*) FROM accounts").scalar() == 2

    def test_delete_all(self, accounts):
        result = accounts.execute("DELETE FROM accounts")
        assert result.rowcount == 3
        assert accounts.execute(
            "SELECT COUNT(*) FROM accounts").scalar() == 0

    def test_delete_nothing_matches(self, accounts):
        assert accounts.execute(
            "DELETE FROM accounts WHERE id = 999").rowcount == 0

    def test_delete_null_predicate_rows_survive(self, accounts):
        accounts.execute("INSERT INTO accounts (id) VALUES (50)")
        accounts.execute("DELETE FROM accounts WHERE balance < 1000")
        # The row with NULL balance is not deleted (UNKNOWN predicate).
        assert accounts.execute(
            "SELECT COUNT(*) FROM accounts").scalar() == 1


class TestDdl:
    def test_create_and_drop(self, db):
        db.execute("CREATE TABLE t (a int)")
        assert db.catalog.exists("t")
        db.execute("DROP TABLE t")
        assert not db.catalog.exists("t")

    def test_create_duplicate_raises(self, db):
        db.execute("CREATE TABLE t (a int)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a int)")

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a int)")

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS ghost")

    def test_primary_key_recorded(self, db):
        db.execute("CREATE TABLE t (a int PRIMARY KEY, b float)")
        assert db.table("t").schema.primary_key == "a"

    def test_ddl_acquires_locks(self, db):
        before = db.transactions.stats.locks_acquired
        db.execute("CREATE TABLE t (a int)")
        assert db.transactions.stats.locks_acquired == before + 1


class TestTransactions:
    def test_begin_commit(self, db):
        db.execute("BEGIN")
        db.execute("COMMIT")
        assert db.transactions.stats.committed == 1

    def test_rollback(self, db):
        db.execute("BEGIN")
        db.execute("ROLLBACK")
        assert db.transactions.stats.rolled_back == 1

    def test_nested_begin_rejected(self, db):
        from repro.errors import TransactionError
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("BEGIN")

    def test_commit_without_begin_rejected(self, db):
        from repro.errors import TransactionError
        with pytest.raises(TransactionError):
            db.execute("COMMIT")

    def test_locks_released_at_statement_boundary_in_autocommit(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1)")
        # Each statement re-acquires its lock: two acquisitions, and the
        # peak table size never exceeded one entry.
        assert db.transactions.stats.locks_acquired == 2
        assert db.transactions.stats.lock_table_peak == 1

    def test_locks_accumulate_inside_transaction(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("CREATE TABLE u (a int)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO u VALUES (1)")
        assert db.transactions.stats.lock_table_peak == 2
        db.execute("COMMIT")
