"""The serving layer: dispatch, admission control, snapshots, tracing.

The ``serving_smoke`` marker selects the tier-1 guard subset
(scripts/check_serving_smoke.sh): server round trips, snapshot-pinned
concurrent reads verified against serial replay, and backpressure.
"""

import threading

import pytest

from repro import Database
from repro.engine import Engine
from repro.errors import AdmissionError, CatalogError, ReproError
from repro.execution import SessionOptions
from repro.server import DatabaseServer, serve
from repro.types import SqlType

REACH_SQL = """
WITH ITERATIVE r (node, v) AS (
  SELECT src, 0.0 FROM edges GROUP BY src
  ITERATE SELECT r.node, min(r.v + e.weight)
          FROM r JOIN edges e ON e.src = r.node
          GROUP BY r.node
  UNTIL 3 ITERATIONS
) SELECT node, v FROM r ORDER BY node"""


def _graph_db() -> Database:
    db = Database()
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", [(1, 2, 0.5), (1, 3, 0.5), (2, 3, 1.0),
                           (3, 1, 1.0), (4, 1, 1.0)])
    return db


class TestEngineSessions:
    def test_sessions_share_storage_not_options(self):
        engine = Engine()
        a = engine.create_session()
        b = engine.create_session()
        a.execute("CREATE TABLE t (x INTEGER)")
        a.execute("INSERT INTO t VALUES (1)")
        assert b.execute("SELECT x FROM t").rows() == [(1,)]
        a.set_option("enable_tracing", True)
        assert b.options.enable_tracing is False
        assert a.session_id != b.session_id

    def test_database_facade_is_one_session(self, db):
        assert isinstance(db.engine, Engine)
        other = db.engine.create_session()
        db.execute("CREATE TABLE t (x INTEGER)")
        assert other.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_transaction_gets_repeatable_reads(self):
        engine = Engine()
        reader = engine.create_session()
        writer = engine.create_session()
        writer.execute("CREATE TABLE t (x INTEGER)")
        writer.execute("INSERT INTO t VALUES (1), (2)")
        reader.execute("BEGIN")
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 2
        writer.execute("INSERT INTO t VALUES (3)")
        # Pinned at first read: the concurrent insert stays invisible.
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 2
        reader.execute("COMMIT")
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 3

    def test_transaction_reads_its_own_writes(self):
        engine = Engine()
        session = engine.create_session()
        session.execute("CREATE TABLE t (x INTEGER)")
        session.execute("BEGIN")
        assert session.execute("SELECT COUNT(*) FROM t").scalar() == 0
        session.execute("INSERT INTO t VALUES (1)")
        assert session.execute("SELECT COUNT(*) FROM t").scalar() == 1
        session.execute("COMMIT")

    def test_autocommit_pins_per_statement(self):
        engine = Engine()
        reader = engine.create_session()
        writer = engine.create_session()
        writer.execute("CREATE TABLE t (x INTEGER)")
        writer.execute("INSERT INTO t VALUES (1)")
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 1
        writer.execute("INSERT INTO t VALUES (2)")
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 2
        assert reader.last_snapshot.watermarks()["t"] == 2


@pytest.mark.serving_smoke
class TestServerBasics:
    def test_round_trip(self):
        with serve(_graph_db(), workers=2) as server:
            with server.connect() as client:
                count = client.execute(
                    "SELECT COUNT(*) FROM edges").scalar()
                assert count == 5

    def test_per_client_statements_run_in_order(self):
        with serve(_graph_db(), workers=4) as server:
            client = server.connect()
            futures = [client.submit(
                "INSERT INTO edges VALUES (9, 9, 1.0)")]
            futures.append(client.submit("SELECT COUNT(*) FROM edges"))
            futures.append(client.submit(
                "DELETE FROM edges WHERE src = 9"))
            futures.append(client.submit("SELECT COUNT(*) FROM edges"))
            assert futures[1].result().scalar() == 6
            assert futures[3].result().scalar() == 5

    def test_sessions_run_concurrently_but_share_data(self):
        with serve(_graph_db(), workers=4) as server:
            clients = [server.connect() for _ in range(4)]
            futures = [c.submit(REACH_SQL) for c in clients]
            results = [f.result().rows() for f in futures]
            assert all(rows == results[0] for rows in results)

    def test_admission_queue_overflow_is_structured(self):
        server = serve(_graph_db(), workers=2, queue_depth=3)
        try:
            client = server.connect()
            # Stall the write path: the first request blocks on the
            # engine write lock held here, the rest queue behind it on
            # the same session until the bound trips.
            with server.engine.write_lock:
                futures = [client.submit(
                    "INSERT INTO edges VALUES (7, 7, 1.0)")]
                while len(futures) < 3:
                    futures.append(client.submit(
                        "SELECT COUNT(*) FROM edges"))
                with pytest.raises(AdmissionError) as excinfo:
                    client.submit("SELECT 1")
                assert excinfo.value.queue_depth == 3
                assert excinfo.value.outstanding == 3
                assert server.stats.rejected == 1
            for future in futures:
                future.result()
            assert server.stats.completed == 3
        finally:
            server.shutdown()

    def test_closed_client_rejects_submissions(self):
        with serve(_graph_db(), workers=1) as server:
            client = server.connect()
            client.close()
            with pytest.raises(ReproError):
                client.submit("SELECT 1")

    def test_server_tracing_merges_session_spans(self):
        with serve(_graph_db(), workers=2, trace=True) as server:
            clients = [server.connect() for _ in range(2)]
            for client in clients:
                client.execute("SELECT COUNT(*) FROM edges")
            trace = server.trace()
        root = trace.to_dict()["root"]
        requests = [c for c in root["children"] if c["name"] == "request"]
        assert len(requests) == 2
        sessions = {r["attributes"]["session"] for r in requests}
        assert len(sessions) == 2
        statements = [child for request in requests
                      for child in request["children"]
                      if child["name"] == "statement"]
        assert len(statements) == 2

    def test_metrics_include_server_counters(self):
        with serve(_graph_db(), workers=1) as server:
            server.connect().execute("SELECT COUNT(*) FROM edges")
            snapshot = server.metrics_snapshot()
        assert snapshot["gauges"]["server.completed"] == 1
        assert snapshot["gauges"]["server.submitted"] == 1


@pytest.mark.serving_smoke
class TestConcurrentSnapshots:
    """Writers append while many reader sessions scan and iterate; every
    reader result must equal serial execution at its pinned watermark."""

    READERS = 8
    WRITERS = 2
    INSERTS_PER_WRITER = 25
    READS_PER_READER = 10

    def test_readers_see_consistent_prefixes_under_writes(self):
        db = _graph_db()
        db.execute("CREATE TABLE events (x INTEGER)")
        expected_reach = db.execute(REACH_SQL).rows()
        observations = []
        errors = []

        server = serve(db, workers=6, queue_depth=1024)
        try:
            def writer(offset: int) -> None:
                client = server.connect()
                try:
                    for i in range(self.INSERTS_PER_WRITER):
                        client.execute(
                            f"INSERT INTO events VALUES "
                            f"({offset + i})")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            def reader() -> None:
                client = server.connect()
                try:
                    local = []
                    for i in range(self.READS_PER_READER):
                        result = client.execute(
                            "SELECT COUNT(*), SUM(x) FROM events")
                        watermark = client.session.last_snapshot \
                            .watermarks().get("events", 0)
                        count, total = result.rows()[0]
                        local.append((watermark, count, total))
                        if i % 4 == 3:
                            assert client.execute(
                                REACH_SQL).rows() == expected_reach
                    observations.append(local)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=writer,
                                        args=(w * 1000,))
                       for w in range(self.WRITERS)]
            threads += [threading.Thread(target=reader)
                        for _ in range(self.READERS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            server.shutdown()

        assert errors == []
        assert len(observations) == self.READERS

        # Serial replay: INSERT-only writers mean the final consolidated
        # row order is the append order, so the snapshot a reader pinned
        # at watermark w is exactly the first w rows.
        final = [row[0] for row in db.execute(
            "SELECT x FROM events").rows()]
        assert len(final) == self.WRITERS * self.INSERTS_PER_WRITER
        replay = Database()
        replay.create_table("events", [("x", SqlType.INTEGER)])
        prefix_sums = [0]
        for value in final:
            prefix_sums.append(prefix_sums[-1] + value)

        for local in observations:
            watermarks = [w for w, _, _ in local]
            assert watermarks == sorted(watermarks), \
                "per-session snapshot watermarks must be monotone"
            for watermark, count, total in local:
                assert count == watermark
                expected_total = prefix_sums[watermark] \
                    if watermark else None
                assert total == expected_total, (
                    f"reader at watermark {watermark} saw SUM {total}, "
                    f"serial replay gives {expected_total}")

        # Spot-check one watermark against a literal serial re-execution
        # in a fresh engine (not just the prefix-sum shortcut).
        mid = max(w for local in observations for w, _, _ in local)
        replay.load_rows("events", [(v,) for v in final[:mid]])
        assert replay.execute(
            "SELECT COUNT(*), SUM(x) FROM events").rows()[0] == (
            mid, prefix_sums[mid] if mid else None)

    def test_plan_cache_amortizes_across_sessions(self):
        db = _graph_db()
        server = serve(db, workers=4)
        try:
            clients = [server.connect() for _ in range(8)]
            futures = []
            for _ in range(4):
                futures.extend(c.submit(
                    "SELECT COUNT(*) FROM edges WHERE src > 0")
                    for c in clients)
            for future in futures:
                future.result()
        finally:
            server.shutdown()
        stats = db.stats
        total = stats.plan_cache_hits + stats.plan_cache_misses
        assert total == 32
        assert stats.plan_cache_misses == 1
        assert stats.plan_cache_hits / total >= 0.9

    def test_ddl_invalidation_under_serving(self):
        db = _graph_db()
        with serve(db, workers=2) as server:
            client = server.connect()
            sql = "SELECT COUNT(*) FROM edges"
            assert client.execute(sql).scalar() == 5
            client.execute("CREATE TABLE scratch (x INTEGER)")
            assert client.execute(sql).scalar() == 5
            client.execute("DROP TABLE scratch")
            assert client.execute(sql).scalar() == 5
        assert db.stats.plan_cache_invalidations == 2


@pytest.mark.serving_smoke
class TestDdlStorm:
    """Plan-cache invalidation under a DDL storm: a writer repeatedly
    drops and recreates a hot table while readers replay one cached
    statement.  Every reader outcome must be either a value the table
    actually held in some round (snapshot-consistent read through a
    fresh or recompiled plan) or a clean :class:`CatalogError` from the
    missing-table window — never a stale-binding failure (KeyError /
    IndexError / wrong schema) from a plan compiled against a dead
    catalog version."""

    ROUNDS = 15
    READERS = 4
    READS_PER_READER = 30

    def test_cached_plans_survive_drop_recreate(self):
        db = Database()
        db.create_table("hot", [("x", SqlType.INTEGER)])
        db.load_rows("hot", [(10,)])
        markers = {(r + 1) * 10 for r in range(self.ROUNDS)}
        observed = []
        errors = []
        tolerated = []

        server = serve(db, workers=4, queue_depth=1024)
        try:
            def writer():
                client = server.connect()
                try:
                    for r in range(1, self.ROUNDS):
                        client.execute("DROP TABLE hot")
                        client.execute("CREATE TABLE hot (x INTEGER)")
                        client.execute(
                            f"INSERT INTO hot VALUES ({(r + 1) * 10})")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            def reader():
                client = server.connect()
                local = []
                for _ in range(self.READS_PER_READER):
                    try:
                        local.append(client.execute(
                            "SELECT SUM(x) FROM hot").scalar())
                    except CatalogError as exc:
                        # The drop/create gap: a legitimate, clean
                        # "no such table" answer.
                        tolerated.append(exc)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                observed.append(local)

            threads = [threading.Thread(target=writer)]
            threads += [threading.Thread(target=reader)
                        for _ in range(self.READERS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            server.shutdown()

        assert errors == []
        assert len(observed) == self.READERS
        # None = the freshly recreated table before its INSERT landed.
        valid = markers | {None}
        for local in observed:
            assert local, "reader produced no outcomes"
            for value in local:
                assert value in valid, f"stale read: {value!r}"
        # The storm really did cycle cached plans through DDL versions.
        assert db.stats.plan_cache_invalidations > 0
        final = db.execute("SELECT SUM(x) FROM hot").scalar()
        assert final == self.ROUNDS * 10
