"""Cost model tests: cardinality estimation, plan costs, iteration
estimation, and program cost reports."""

import pytest

from repro import Database
from repro.plan import PlanContext, build_statement
from repro.plan.program import LoopSpec
from repro.sql import ast, parse
from repro.stats import (
    CardinalityEstimator,
    estimate_iterations,
    estimate_program,
    plan_cost,
)
from repro.types import SqlType


@pytest.fixture
def analyzed_db(db):
    db.execute("CREATE TABLE facts (k int, grp int, v float)")
    db.load_rows("facts", [(i, i % 10, float(i)) for i in range(1000)])
    db.execute("CREATE TABLE dims (grp int, label text)")
    db.load_rows("dims", [(g, f"g{g}") for g in range(10)])
    db.execute("ANALYZE")
    return db


def estimate(db, sql):
    plan = build_statement(parse(sql), PlanContext(db.catalog))
    estimator = CardinalityEstimator(db.statistics)
    return estimator.estimate(plan), estimator, plan


class TestCardinality:
    def test_scan(self, analyzed_db):
        rows, _, _ = estimate(analyzed_db, "SELECT * FROM facts")
        assert rows == 1000

    def test_equality_filter(self, analyzed_db):
        rows, _, _ = estimate(analyzed_db,
                              "SELECT * FROM facts WHERE k = 5")
        assert rows == pytest.approx(1.0, abs=0.1)

    def test_group_filter(self, analyzed_db):
        rows, _, _ = estimate(analyzed_db,
                              "SELECT * FROM facts WHERE grp = 3")
        assert rows == pytest.approx(100.0, rel=0.1)

    def test_range_filter(self, analyzed_db):
        rows, _, _ = estimate(analyzed_db,
                              "SELECT * FROM facts WHERE k < 250")
        assert rows == pytest.approx(250.0, rel=0.1)

    def test_conjunction_multiplies(self, analyzed_db):
        rows, _, _ = estimate(
            analyzed_db,
            "SELECT * FROM facts WHERE grp = 3 AND k < 500")
        assert rows == pytest.approx(50.0, rel=0.2)

    def test_equi_join(self, analyzed_db):
        rows, _, _ = estimate(analyzed_db, """
            SELECT * FROM facts JOIN dims ON facts.grp = dims.grp""")
        # Every fact matches exactly one dim.
        assert rows == pytest.approx(1000.0, rel=0.1)

    def test_cross_join(self, analyzed_db):
        rows, _, _ = estimate(analyzed_db,
                              "SELECT * FROM facts CROSS JOIN dims")
        assert rows == 10000

    def test_aggregate_groups(self, analyzed_db):
        rows, _, _ = estimate(analyzed_db, """
            SELECT grp, COUNT(*) FROM facts GROUP BY grp""")
        assert rows == pytest.approx(10.0, rel=0.1)

    def test_limit_caps(self, analyzed_db):
        rows, _, _ = estimate(analyzed_db,
                              "SELECT * FROM facts LIMIT 7")
        assert rows == 7

    def test_left_join_at_least_left(self, analyzed_db):
        rows, _, _ = estimate(analyzed_db, """
            SELECT * FROM facts LEFT JOIN dims
              ON facts.grp = dims.grp AND dims.grp > 100""")
        assert rows >= 1000

    def test_without_statistics_uses_defaults(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.load_rows("t", [(i,) for i in range(50)])
        rows, _, _ = estimate(db, "SELECT * FROM t WHERE a = 1")
        # Row count comes from the fallback; selectivity is the default.
        assert 0 < rows < 50


class TestPlanCost:
    def test_cost_monotone_in_plan_size(self, analyzed_db):
        small, estimator, plan_a = estimate(analyzed_db,
                                            "SELECT * FROM dims")
        _, _, plan_b = estimate(analyzed_db, """
            SELECT * FROM facts JOIN dims ON facts.grp = dims.grp""")
        assert plan_cost(plan_b, estimator) \
            > plan_cost(plan_a, estimator)

    def test_filtered_scan_cheaper_than_join(self, analyzed_db):
        _, estimator, filtered = estimate(
            analyzed_db, "SELECT * FROM facts WHERE k = 1")
        _, _, joined = estimate(analyzed_db, """
            SELECT * FROM facts a JOIN facts b ON a.k = b.k""")
        assert plan_cost(filtered, estimator) \
            < plan_cost(joined, estimator)


class TestIterationEstimation:
    def _spec(self, termination):
        return LoopSpec(loop_id=0, termination=termination,
                        cte_result="r", cte_name="r", columns=["k"])

    def test_iterations_exact(self):
        termination = ast.Termination(ast.TerminationKind.ITERATIONS,
                                      count=25)
        estimate = estimate_iterations(self._spec(termination), 100.0)
        assert estimate.iterations == 25
        assert estimate.basis == "exact"

    def test_updates_derived(self):
        termination = ast.Termination(ast.TerminationKind.UPDATES,
                                      count=1000)
        estimate = estimate_iterations(self._spec(termination), 100.0)
        assert estimate.iterations == 10
        assert estimate.basis == "derived"

    def test_data_heuristic(self):
        termination = ast.Termination(
            ast.TerminationKind.DATA_ANY,
            expr=ast.BinaryOp(ast.BinaryOperator.GT,
                              ast.ColumnRef("k"), ast.Literal(10)))
        estimate = estimate_iterations(self._spec(termination), 100.0,
                                       default_estimate=40)
        assert estimate.iterations == 40
        assert estimate.basis == "heuristic"

    def test_fixpoint_heuristic(self):
        spec = LoopSpec(loop_id=0, termination=None, cte_result="r",
                        cte_name="r", columns=["k"], until_empty="w")
        estimate = estimate_iterations(spec, 100.0)
        assert estimate.basis == "heuristic"

    def test_measured_beats_heuristic(self):
        termination = ast.Termination(
            ast.TerminationKind.DATA_ANY,
            expr=ast.BinaryOp(ast.BinaryOperator.GT,
                              ast.ColumnRef("k"), ast.Literal(10)))
        estimate = estimate_iterations(self._spec(termination), 100.0,
                                       measured=17)
        assert estimate.iterations == 17
        assert estimate.basis == "measured"

    def test_measured_beats_updates_derivation(self):
        termination = ast.Termination(ast.TerminationKind.UPDATES,
                                      count=1000)
        estimate = estimate_iterations(self._spec(termination), 100.0,
                                       measured=3)
        assert estimate.iterations == 3
        assert estimate.basis == "measured"

    def test_measured_never_overrides_exact(self):
        termination = ast.Termination(ast.TerminationKind.ITERATIONS,
                                      count=25)
        estimate = estimate_iterations(self._spec(termination), 100.0,
                                       measured=7)
        assert estimate.iterations == 25
        assert estimate.basis == "exact"

    def test_measured_fixpoint(self):
        spec = LoopSpec(loop_id=0, termination=None, cte_result="r",
                        cte_name="r", columns=["k"], until_empty="w")
        estimate = estimate_iterations(spec, 100.0, measured=12)
        assert estimate.iterations == 12
        assert estimate.basis == "measured"


class TestProgramCosting:
    def test_iterative_program_report(self, analyzed_db):
        from repro.core.rewrite import compile_statement
        from repro.execution import ExecutionStats, SessionOptions
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT k, v FROM facts ITERATE SELECT k, v * 2 FROM r
          UNTIL 25 ITERATIONS
        ) SELECT SUM(v) FROM r"""
        program = compile_statement(parse(sql),
                                    PlanContext(analyzed_db.catalog),
                                    SessionOptions(), ExecutionStats())
        report = estimate_program(program, analyzed_db.statistics)
        assert len(report.loop_estimates) == 1
        assert report.loop_estimates[0].iterations == 25
        assert report.per_iteration_cost[0] > 0
        assert report.total_cost > report.setup_cost + report.final_cost
        assert "25 iterations (exact)" in report.describe()

    def test_more_iterations_cost_more(self, analyzed_db):
        costs = {}
        for n in (5, 50):
            sql = f"""
            WITH ITERATIVE r (k, v) AS (
              SELECT k, v FROM facts ITERATE SELECT k, v * 2 FROM r
              UNTIL {n} ITERATIONS
            ) SELECT SUM(v) FROM r"""
            from repro.core.rewrite import compile_statement
            from repro.execution import ExecutionStats, SessionOptions
            program = compile_statement(parse(sql),
                                        PlanContext(analyzed_db.catalog),
                                        SessionOptions(),
                                        ExecutionStats())
            costs[n] = estimate_program(
                program, analyzed_db.statistics).total_cost
        assert costs[50] > costs[5]

    def test_explain_cost_api(self, analyzed_db):
        text = analyzed_db.explain_cost("""
        WITH ITERATIVE r (k, v) AS (
          SELECT k, v FROM facts ITERATE SELECT k, v + 1 FROM r
          UNTIL 10 ITERATIONS
        ) SELECT SUM(v) FROM r""")
        assert "10 iterations (exact)" in text
        assert "total estimated cost" in text

    def test_rename_costs_less_than_copy(self, analyzed_db):
        from repro.core.rewrite import compile_statement
        from repro.execution import ExecutionStats, SessionOptions
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT k, v FROM facts ITERATE SELECT k, v * 2 FROM r
          UNTIL 25 ITERATIONS
        ) SELECT SUM(v) FROM r"""
        costs = {}
        for rename in (True, False):
            options = SessionOptions(enable_rename=rename)
            program = compile_statement(parse(sql),
                                        PlanContext(analyzed_db.catalog),
                                        options, ExecutionStats())
            costs[rename] = estimate_program(
                program, analyzed_db.statistics).total_cost
        # The cost model prices the Fig. 8 trade-off correctly.
        assert costs[True] < costs[False]


class TestJoinReorder:
    def test_reorder_puts_small_relation_first(self, analyzed_db):
        from repro.plan import LogicalJoin, LogicalScan
        from repro.rewrite import optimize_plan
        from repro.execution import SessionOptions
        sql = """
            SELECT * FROM facts f1
            JOIN facts f2 ON f1.k = f2.k
            JOIN dims d ON f1.grp = d.grp"""
        plan = build_statement(parse(sql),
                               PlanContext(analyzed_db.catalog))
        estimator = CardinalityEstimator(analyzed_db.statistics)
        reordered = optimize_plan(plan, SessionOptions(), estimator)
        joins = [n for n in reordered.walk()
                 if isinstance(n, LogicalJoin)]
        # The deepest-left leaf should now be the small dims table.
        deepest = joins[-1]
        left_most = deepest.left
        while hasattr(left_most, "left"):
            left_most = left_most.left
        assert isinstance(left_most, LogicalScan)
        assert left_most.table_name.lower() == "dims"

    def test_reorder_preserves_results(self, analyzed_db):
        sql = """
            SELECT f1.k, d.label FROM facts f1
            JOIN facts f2 ON f1.k = f2.k
            JOIN dims d ON f1.grp = d.grp
            WHERE f1.k < 20 ORDER BY f1.k"""
        analyzed_db.set_option("enable_join_reorder", True)
        with_reorder = analyzed_db.execute(sql).rows()
        analyzed_db.set_option("enable_join_reorder", False)
        without_reorder = analyzed_db.execute(sql).rows()
        assert with_reorder == without_reorder
        assert len(with_reorder) == 20

    def test_reorder_disabled_by_option(self, analyzed_db):
        from repro.rewrite import reorder_joins
        plan = build_statement(
            parse("SELECT * FROM facts JOIN dims ON facts.grp = dims.grp"),
            PlanContext(analyzed_db.catalog))
        assert reorder_joins(plan, None) is plan  # no estimator: no-op

    def test_reorder_never_creates_cross_products(self, analyzed_db):
        from repro.plan import LogicalJoin
        from repro.rewrite import optimize_plan
        from repro.execution import SessionOptions
        sql = """
            SELECT * FROM facts f
            JOIN dims d ON f.grp = d.grp
            JOIN facts g ON g.k = f.k"""
        plan = build_statement(parse(sql),
                               PlanContext(analyzed_db.catalog))
        estimator = CardinalityEstimator(analyzed_db.statistics)
        reordered = optimize_plan(plan, SessionOptions(), estimator)
        for join in (n for n in reordered.walk()
                     if isinstance(n, LogicalJoin)):
            assert join.condition is not None
