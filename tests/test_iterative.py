"""Iterative-CTE core tests: Algorithm 1 paths, termination conditions,
the rename/merge split, duplicate-key enforcement, and plan structure."""

import pytest

from repro import Database
from repro.errors import (
    DuplicateKeyError,
    IterationLimitError,
    PlanError,
)
from repro.plan.program import (
    CopyStep,
    DuplicateCheckStep,
    LoopStep,
    MaterializeStep,
    RenameStep,
)
from repro.core.rewrite import compile_statement
from repro.plan import PlanContext
from repro.execution import ExecutionStats, SessionOptions
from repro.sql import parse


def compile_program(db, sql, **option_overrides):
    options = SessionOptions()
    for key, value in option_overrides.items():
        setattr(options, key, value)
    return compile_statement(parse(sql), PlanContext(db.catalog), options,
                             ExecutionStats())


SIMPLE = """
WITH ITERATIVE r (k, v) AS (
  SELECT 1, 1 ITERATE SELECT k, v + 1 FROM r UNTIL {until}
) SELECT v FROM r
"""


class TestTermination:
    def test_iterations(self, db):
        assert db.execute(SIMPLE.format(until="7 ITERATIONS")).scalar() == 8

    def test_zero_iterations_runs_zero_times(self, db):
        # Algorithm 1 runs the body then checks — but 0 iterations means
        # the loop operator stops after the first check; our semantics run
        # the body once before the first check, like the paper's Table I
        # (step 6 follows step 3).  The body runs at least once.
        assert db.execute(SIMPLE.format(until="1 ITERATIONS")).scalar() == 2

    def test_updates_termination(self, db):
        # Each iteration updates one row; stop once 3 updates accumulated.
        assert db.execute(SIMPLE.format(until="3 UPDATES")).scalar() == 4

    def test_data_any_termination(self, db):
        assert db.execute(SIMPLE.format(until="v >= 5")).scalar() == 5

    def test_data_any_qualified_reference(self, db):
        assert db.execute(SIMPLE.format(until="r.v >= 5")).scalar() == 5

    def test_data_all_termination(self, db):
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT src, 0 FROM (SELECT 1 AS src UNION SELECT 2)
          ITERATE SELECT k, v + k FROM r
          UNTIL ALL v >= 4
        ) SELECT SUM(v) FROM r"""
        # v grows by k each round: node1 reaches 4 after 4 rounds, node2
        # after 2; ALL requires both.
        assert db.execute(sql).scalar() == 4 + 8

    def test_delta_zero_convergence(self, db):
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT 1, 64 ITERATE
          SELECT k, CASE WHEN v > 1 THEN v / 2 ELSE v END FROM r
          UNTIL DELTA = 0
        ) SELECT v FROM r"""
        assert db.execute(sql).scalar() == 1

    def test_delta_threshold(self, db):
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT src, 0 FROM (SELECT 1 AS src UNION SELECT 2)
          ITERATE SELECT k, CASE WHEN v < k * 3 THEN v + k ELSE v END FROM r
          UNTIL DELTA < 2
        ) SELECT COUNT(*) FROM r"""
        assert db.execute(sql).scalar() == 2

    def test_runaway_loop_hits_safety_cap(self, db):
        db.set_option("max_iterations", 50)
        with pytest.raises(IterationLimitError):
            db.execute(SIMPLE.format(until="v < 0"))


class TestAlgorithmPaths:
    def test_full_update_uses_rename(self, db):
        program = compile_program(db, SIMPLE.format(until="5 ITERATIONS"))
        assert any(isinstance(s, RenameStep) for s in program.steps)
        assert not any(isinstance(s, DuplicateCheckStep)
                       for s in program.steps)

    def test_full_update_without_rename_copies(self, db):
        program = compile_program(db, SIMPLE.format(until="5 ITERATIONS"),
                                  enable_rename=False)
        assert any(isinstance(s, CopyStep) for s in program.steps)
        assert not any(isinstance(s, RenameStep) for s in program.steps)
        # The baseline merges to identify updated rows (§VII-B).
        comments = [s.comment for s in program.steps
                    if isinstance(s, MaterializeStep)]
        assert any("baseline" in c for c in comments)

    def test_partial_update_uses_merge(self, graph_db):
        sql = """
        WITH ITERATIVE r (node, hops) AS (
          SELECT DISTINCT src, 0 FROM edges
          ITERATE SELECT node, hops + 1 FROM r WHERE node = 1
          UNTIL 3 ITERATIONS
        ) SELECT node, hops FROM r ORDER BY node"""
        program = compile_program(graph_db, sql)
        assert any(isinstance(s, DuplicateCheckStep)
                   for s in program.steps)
        rows = graph_db.execute(sql).rows()
        assert (1, 3) in rows          # node 1 advanced three times
        assert all(h == 0 for n, h in rows if n != 1)  # others untouched

    def test_loop_jump_targets_iteration_start(self, db):
        program = compile_program(db, SIMPLE.format(until="2 ITERATIONS"))
        (loop,) = [s for s in program.steps if isinstance(s, LoopStep)]
        target = program.steps[loop.jump_to]
        assert isinstance(target, MaterializeStep)

    def test_rename_is_not_data_movement(self, db):
        db.execute(SIMPLE.format(until="10 ITERATIONS"))
        assert db.stats.renames >= 10
        assert db.stats.rows_moved == 0

    def test_copy_is_data_movement(self, db):
        db.set_option("enable_rename", False)
        db.execute(SIMPLE.format(until="10 ITERATIONS"))
        assert db.stats.rows_moved > 0


class TestSemantics:
    def test_duplicate_keys_raise_runtime_error(self, graph_db):
        # Working table gets two rows for one key (src 1 has two edges):
        # §II mandates a run-time error.
        sql = """
        WITH ITERATIVE r (node, c) AS (
          SELECT src, 0 FROM (SELECT DISTINCT src FROM edges)
          ITERATE
          SELECT r.node, e.dst FROM r JOIN edges e ON r.node = e.src
          WHERE e.weight > 0
          UNTIL 2 ITERATIONS
        ) SELECT * FROM r"""
        with pytest.raises(DuplicateKeyError):
            graph_db.execute(sql)

    def test_column_count_mismatch_init(self, db):
        sql = """
        WITH ITERATIVE r (a, b) AS (
          SELECT 1 ITERATE SELECT a, b FROM r UNTIL 2 ITERATIONS
        ) SELECT * FROM r"""
        with pytest.raises(PlanError):
            db.execute(sql)

    def test_column_count_mismatch_step(self, db):
        sql = """
        WITH ITERATIVE r (a) AS (
          SELECT 1 ITERATE SELECT a, a FROM r UNTIL 2 ITERATIONS
        ) SELECT * FROM r"""
        with pytest.raises(PlanError):
            db.execute(sql)

    def test_type_widening_across_parts(self, db):
        # R0 yields INTEGER, Ri yields FLOAT: the CTE column unifies.
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT 1, 10 ITERATE SELECT k, v / 4.0 FROM r UNTIL 1 ITERATIONS
        ) SELECT v FROM r"""
        assert db.execute(sql).scalar() == 2.5

    def test_merge_keeps_unmatched_rows(self, db):
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT src, 0 FROM (SELECT 1 AS src UNION SELECT 2 UNION SELECT 3)
          ITERATE SELECT k, v + 10 FROM r WHERE k = 2
          UNTIL 2 ITERATIONS
        ) SELECT k, v FROM r ORDER BY k"""
        assert db.execute(sql).rows() == [(1, 0), (2, 20), (3, 0)]

    def test_iterative_cte_as_input_to_final_join(self, graph_db):
        sql = """
        WITH ITERATIVE r (node, c) AS (
          SELECT src, 1 FROM (SELECT DISTINCT src FROM edges)
          ITERATE SELECT node, c * 2 FROM r UNTIL 3 ITERATIONS
        ) SELECT r.node, r.c, e.dst FROM r JOIN edges e ON r.node = e.src
          ORDER BY r.node, e.dst"""
        rows = graph_db.execute(sql).rows()
        assert all(c == 8 for _, c, _ in rows)
        assert len(rows) == 5

    def test_two_iterative_ctes_in_one_query(self, db):
        sql = """
        WITH ITERATIVE a (k, v) AS (
            SELECT 1, 0 ITERATE SELECT k, v + 1 FROM a UNTIL 3 ITERATIONS
        ), ITERATIVE b (k, w) AS (
            SELECT 1, 0 ITERATE SELECT k, w + 10 FROM b UNTIL 2 ITERATIONS
        )
        SELECT a.v, b.w FROM a JOIN b ON a.k = b.k"""
        assert db.execute(sql).rows() == [(3, 20)]

    def test_second_cte_can_read_first(self, db):
        sql = """
        WITH ITERATIVE a (k, v) AS (
            SELECT 1, 2 ITERATE SELECT k, v * v FROM a UNTIL 2 ITERATIONS
        ), ITERATIVE b (k, w) AS (
            SELECT k, v FROM a ITERATE SELECT k, w + 1 FROM b
            UNTIL 3 ITERATIONS
        )
        SELECT w FROM b"""
        assert db.execute(sql).scalar() == 16 + 3

    def test_regular_cte_alongside_iterative(self, graph_db):
        sql = """
        WITH nodes AS (SELECT DISTINCT src AS n FROM edges),
             ITERATIVE r (k, v) AS (
               SELECT 1, 0 ITERATE SELECT k, v + 1 FROM r UNTIL 2 ITERATIONS
             )
        SELECT (SELECT_COUNT.c + r.v) FROM r,
               (SELECT COUNT(*) AS c FROM nodes) SELECT_COUNT"""
        assert graph_db.execute(sql).rows() == [(4 + 2,)]

    def test_iterative_reference_in_subquery_of_final(self, db):
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT 1, 5 ITERATE SELECT k, v + 5 FROM r UNTIL 2 ITERATIONS
        ) SELECT t.doubled FROM (SELECT v * 2 AS doubled FROM r) t"""
        assert db.execute(sql).scalar() == 30

    def test_stats_count_iterations(self, db):
        db.reset_stats()
        db.execute(SIMPLE.format(until="9 ITERATIONS"))
        assert db.stats.iterations == 9

    def test_registry_cleaned_after_query(self, db):
        db.execute(SIMPLE.format(until="3 ITERATIONS"))
        assert db.registry.names() == []
