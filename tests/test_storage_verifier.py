"""Storage verifier: SegmentedTable consolidation invariants.

The checks in :mod:`repro.verify.storage` run after every fixpoint
append (see the recursive-merge handler); these tests pin down both
directions — well-formed tables produce no violations, and each seeded
invariant breach is named in the report.
"""

import numpy as np
import pytest

from repro import Database
from repro.errors import VerificationError
from repro.storage import Column, SegmentedTable, Table
from repro.storage.table import Schema
from repro.types import SqlType
from repro.verify import check_segmented_table, verify_segmented_table

SCHEMA = Schema.of(("a", SqlType.INTEGER), ("b", SqlType.FLOAT))


def _table(rows) -> Table:
    return Table.from_rows(SCHEMA, rows)


def _segmented(*batches) -> SegmentedTable:
    segmented = SegmentedTable.wrap(_table(list(batches[0])))
    for batch in batches[1:]:
        segmented.append(_table(list(batch)))
    return segmented


class TestWellFormed:
    def test_no_violations_metadata_only(self):
        table = _segmented([(1, 0.5)], [(2, 1.5), (3, None)])
        assert check_segmented_table(table) == []

    def test_no_violations_after_consolidation(self):
        table = _segmented([(1, 0.5)], [(2, 1.5), (3, None)])
        assert check_segmented_table(table, consolidate=True) == []
        # Idempotent: a consolidated table still verifies.
        assert check_segmented_table(table, consolidate=True) == []

    def test_watermarks_are_cumulative(self):
        table = _segmented([(1, 0.5)], [(2, 1.5), (3, None)], [(4, 2.0)])
        assert table.watermarks == [1, 3, 4]
        assert table.watermarks[-1] == table.num_rows

    def test_empty_append_leaves_no_empty_segment(self):
        table = _segmented([(1, 0.5)])
        table.append(Table.empty(SCHEMA))
        assert table.segment_count == 1
        assert check_segmented_table(table) == []


class TestSeededViolations:
    def test_empty_segment_breaks_the_watermark_invariant(self):
        table = _segmented([(1, 0.5)])
        table._segments.append(Table.empty(SCHEMA))
        violations = check_segmented_table(table)
        assert any("never be empty" in v for v in violations)

    def test_arity_mismatch_is_reported(self):
        table = _segmented([(1, 0.5)])
        table._segments.append(Table.from_rows(
            Schema.of(("a", SqlType.INTEGER)), [(2,)]))
        violations = check_segmented_table(table)
        assert any("arity" in v for v in violations)

    def test_consolidated_dtype_divergence_is_reported(self):
        table = _segmented([(1, 0.5)], [(2, 1.5)])
        table.columns  # force a clean consolidation first
        bad = table._flat.columns[0]
        table._flat.columns[0] = Column(
            bad.sql_type, bad.data.astype(np.float64), bad.mask)
        violations = check_segmented_table(table, consolidate=True)
        assert any("dtype" in v for v in violations)

    def test_consolidated_length_divergence_is_reported(self):
        table = _segmented([(1, 0.5)], [(2, 1.5)])
        total = table.num_rows
        table.columns
        bad = table._flat.columns[1]
        table._flat.columns[1] = Column(
            bad.sql_type, bad.data[:1], bad.mask[:1])
        violations = check_segmented_table(table, consolidate=True)
        assert any(f"table has {total}" in v for v in violations)

    def test_verify_raises_with_the_pass_name(self):
        table = _segmented([(1, 0.5)])
        table._segments.append(Table.empty(SCHEMA))
        with pytest.raises(VerificationError) as excinfo:
            verify_segmented_table(table, "unit-test append")
        assert "unit-test append" in str(excinfo.value)
        assert "never be empty" in str(excinfo.value)


class TestMergeHandlerIntegration:
    def test_recursive_fixpoint_passes_the_verifier(self):
        # enable_plan_verifier defaults on under pytest: every merge
        # append in this closure runs check_segmented_table.
        db = Database()
        db.create_table("edge", [("a", SqlType.INTEGER),
                                 ("b", SqlType.INTEGER)])
        db.load_rows("edge", [(i, i + 1) for i in range(1, 20)])
        rows = db.execute("""
        WITH RECURSIVE reach (a, b) AS (
          SELECT a, b FROM edge
          UNION
          SELECT r.a, e.b FROM reach r JOIN edge e ON r.b = e.a
        ) SELECT count(*) FROM reach""").rows()
        assert rows == [(sum(range(1, 20)),)]
