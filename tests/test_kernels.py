"""Kernel tests: key encoding, join-pair generation, grouping, sorting —
checked against brute-force references with hypothesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.kernels import (
    distinct_indices,
    encode_keys,
    equi_join_pairs,
    factorize,
    group_ids,
    sort_indices,
)
from repro.storage import Column
from repro.types import SqlType

int_lists = st.lists(st.one_of(st.none(), st.integers(-20, 20)), max_size=40)


class TestFactorize:
    def test_basic_codes(self):
        column = Column.from_values(SqlType.INTEGER, [5, 3, 5, 3, 9])
        codes, cardinality = factorize(column, nulls_match=False)
        assert cardinality == 3
        assert codes[0] == codes[2]
        assert codes[1] == codes[3]
        assert len(set(codes.tolist())) == 3

    def test_nulls_no_match(self):
        column = Column.from_values(SqlType.INTEGER, [1, None, 1, None])
        codes, _ = factorize(column, nulls_match=False)
        assert codes[1] == -1 and codes[3] == -1

    def test_nulls_match_form_a_group(self):
        column = Column.from_values(SqlType.INTEGER, [1, None, None])
        codes, cardinality = factorize(column, nulls_match=True)
        assert codes[1] == codes[2] >= 0
        assert cardinality == 2

    def test_text_column(self):
        column = Column.from_values(SqlType.TEXT, ["a", "b", "a", None])
        codes, _ = factorize(column, nulls_match=False)
        assert codes[0] == codes[2]
        assert codes[3] == -1

    def test_empty(self):
        column = Column.from_values(SqlType.INTEGER, [])
        codes, cardinality = factorize(column, nulls_match=False)
        assert len(codes) == 0
        assert cardinality == 0


class TestEncodeKeys:
    def test_multi_column_distinguishes(self):
        a = Column.from_values(SqlType.INTEGER, [1, 1, 2, 2])
        b = Column.from_values(SqlType.INTEGER, [1, 2, 1, 1])
        codes = encode_keys([a, b], nulls_match=True)
        assert codes[2] == codes[3]
        assert len(set(codes.tolist())) == 3

    def test_null_poisons_join_keys(self):
        a = Column.from_values(SqlType.INTEGER, [1, 1])
        b = Column.from_values(SqlType.INTEGER, [2, None])
        codes = encode_keys([a, b], nulls_match=False)
        assert codes[1] == -1
        assert codes[0] >= 0

    @given(int_lists, int_lists)
    def test_equal_rows_get_equal_codes(self, a_vals, b_vals):
        size = min(len(a_vals), len(b_vals))
        a = Column.from_values(SqlType.INTEGER, a_vals[:size])
        b = Column.from_values(SqlType.INTEGER, b_vals[:size])
        codes = encode_keys([a, b], nulls_match=True)
        rows = list(zip(a_vals[:size], b_vals[:size]))
        for i in range(size):
            for j in range(size):
                assert (codes[i] == codes[j]) == (rows[i] == rows[j])


class TestEquiJoinPairs:
    def _pairs(self, left, right):
        left_col = Column.from_values(SqlType.INTEGER, left)
        right_col = Column.from_values(SqlType.INTEGER, right)
        joint = left_col.concat(right_col)
        codes = encode_keys([joint], nulls_match=False)
        li, ri = equi_join_pairs(codes[:len(left)], codes[len(left):])
        return sorted(zip(li.tolist(), ri.tolist()))

    def test_simple_join(self):
        pairs = self._pairs([1, 2, 3], [2, 3, 3])
        assert pairs == [(1, 0), (2, 1), (2, 2)]

    def test_no_matches(self):
        assert self._pairs([1, 2], [3, 4]) == []

    def test_nulls_never_match(self):
        assert self._pairs([None], [None]) == []

    def test_duplicates_multiply(self):
        pairs = self._pairs([1, 1], [1, 1, 1])
        assert len(pairs) == 6

    def test_empty_sides(self):
        assert self._pairs([], [1]) == []
        assert self._pairs([1], []) == []

    @given(int_lists, int_lists)
    @settings(max_examples=60)
    def test_matches_brute_force(self, left, right):
        expected = sorted(
            (i, j)
            for i, lv in enumerate(left) if lv is not None
            for j, rv in enumerate(right) if rv == lv and rv is not None)
        assert self._pairs(left, right) == expected

    def test_pairs_grouped_by_left_row_order(self):
        left_col = Column.from_values(SqlType.INTEGER, [3, 1, 3])
        right_col = Column.from_values(SqlType.INTEGER, [3, 1])
        joint = left_col.concat(right_col)
        codes = encode_keys([joint], nulls_match=False)
        li, _ = equi_join_pairs(codes[:3], codes[3:])
        assert li.tolist() == sorted(li.tolist())


class TestGroupIds:
    def test_group_structure(self):
        column = Column.from_values(SqlType.INTEGER, [7, 7, 8, 7])
        codes = encode_keys([column], nulls_match=True)
        gids, first = group_ids(codes)
        assert len(first) == 2
        assert gids[0] == gids[1] == gids[3]
        assert gids[2] != gids[0]

    @given(int_lists)
    def test_first_index_points_to_representative(self, values):
        if not values:
            return
        column = Column.from_values(SqlType.INTEGER, values)
        codes = encode_keys([column], nulls_match=True)
        gids, first = group_ids(codes)
        for gid, index in enumerate(first):
            assert gids[index] == gid


class TestDistinct:
    def test_keeps_first_occurrence(self):
        a = Column.from_values(SqlType.INTEGER, [1, 2, 1, 3, 2])
        keep = distinct_indices([a])
        assert keep.tolist() == [0, 1, 3]

    def test_nulls_are_one_value(self):
        a = Column.from_values(SqlType.INTEGER, [None, None, 1])
        assert len(distinct_indices([a])) == 2

    @given(int_lists)
    def test_distinct_count_matches_set(self, values):
        if not values:
            return
        column = Column.from_values(SqlType.INTEGER, values)
        expected = len({(v is None, v) for v in values})
        assert len(distinct_indices([column])) == expected


class TestSort:
    def test_ascending_with_nulls_last(self):
        column = Column.from_values(SqlType.INTEGER, [3, None, 1])
        order = sort_indices([column], [True])
        assert order.tolist() == [2, 0, 1]

    def test_descending(self):
        column = Column.from_values(SqlType.INTEGER, [3, 1, 2])
        order = sort_indices([column], [False])
        assert [column[i] for i in order] == [3, 2, 1]

    def test_multi_key(self):
        a = Column.from_values(SqlType.INTEGER, [1, 1, 0])
        b = Column.from_values(SqlType.INTEGER, [2, 1, 9])
        order = sort_indices([a, b], [True, True])
        assert order.tolist() == [2, 1, 0]

    def test_stability(self):
        a = Column.from_values(SqlType.INTEGER, [1, 1, 1])
        order = sort_indices([a], [True])
        assert order.tolist() == [0, 1, 2]

    @given(st.lists(st.integers(-50, 50), max_size=40))
    def test_matches_python_sorted(self, values):
        column = Column.from_values(SqlType.INTEGER, values)
        order = sort_indices([column], [True])
        assert [column[i] for i in order] == sorted(values)
