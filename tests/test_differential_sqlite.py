"""Differential testing against SQLite.

Every query here runs on both this engine and the stdlib ``sqlite3`` and
must produce the same multiset of rows.  The corpus sticks to the SQL
subset where the two dialects agree (integer arithmetic, three-valued
logic, joins, grouping, set operations); known divergences — NULL sort
order, LIKE case-sensitivity, division-by-zero behaviour — are avoided
and documented here:

* SQLite sorts NULLs first ASC, we sort them last (PostgreSQL-style):
  comparisons therefore sort in Python, never via ORDER BY.
* SQLite's ``/ 0`` yields NULL, we raise: no division in generated
  expressions.
* SQLite's LIKE is ASCII-case-insensitive: not exercised here.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.types import SqlType

ROWS_T = [
    (1, 10, None), (2, 20, 5), (3, None, 5), (4, 40, None),
    (5, 50, 2), (6, 60, 2), (7, None, None), (8, 20, 9),
]
ROWS_U = [(10, 1), (20, 2), (20, 3), (99, None)]


@pytest.fixture(scope="module")
def engines():
    db = Database()
    db.create_table("t", [("a", SqlType.INTEGER),
                          ("b", SqlType.INTEGER),
                          ("c", SqlType.INTEGER)])
    db.load_rows("t", ROWS_T)
    db.create_table("u", [("x", SqlType.INTEGER),
                          ("y", SqlType.INTEGER)])
    db.load_rows("u", ROWS_U)

    lite = sqlite3.connect(":memory:")
    lite.execute("CREATE TABLE t (a int, b int, c int)")
    lite.executemany("INSERT INTO t VALUES (?, ?, ?)", ROWS_T)
    lite.execute("CREATE TABLE u (x int, y int)")
    lite.executemany("INSERT INTO u VALUES (?, ?)", ROWS_U)
    lite.commit()
    yield db, lite
    lite.close()


def sort_key(row):
    return tuple((value is None, value) for value in row)


def both(engines, sql):
    db, lite = engines
    ours = sorted(db.execute(sql).rows(), key=sort_key)
    theirs = sorted((tuple(r) for r in lite.execute(sql).fetchall()),
                    key=sort_key)
    return ours, theirs


def assert_agree(engines, sql):
    ours, theirs = both(engines, sql)
    assert ours == theirs, f"divergence on: {sql}"


CORPUS = [
    "SELECT a, b FROM t",
    "SELECT a + b, a * 2 - c FROM t",
    "SELECT a FROM t WHERE b > 15",
    "SELECT a FROM t WHERE b IS NULL",
    "SELECT a FROM t WHERE b IS NOT NULL AND c IS NULL",
    "SELECT a FROM t WHERE b = 20 OR c = 5",
    "SELECT a FROM t WHERE NOT (b > 15)",
    "SELECT a FROM t WHERE a IN (1, 3, 5)",
    "SELECT a FROM t WHERE a NOT IN (1, 3, 5)",
    "SELECT a FROM t WHERE a BETWEEN 2 AND 5",
    "SELECT a FROM t WHERE b IN (20, 40) AND a <> 8",
    "SELECT DISTINCT b FROM t",
    "SELECT DISTINCT b, c FROM t",
    "SELECT COUNT(*), COUNT(b), COUNT(c) FROM t",
    "SELECT SUM(b), MIN(b), MAX(b), AVG(b) FROM t",
    "SELECT SUM(b) FROM t WHERE a > 100",
    "SELECT c, COUNT(*) FROM t GROUP BY c",
    "SELECT c, SUM(b), MAX(a) FROM t GROUP BY c",
    "SELECT c, COUNT(*) FROM t GROUP BY c HAVING COUNT(*) > 1",
    "SELECT b, c, COUNT(*) FROM t GROUP BY b, c",
    "SELECT t.a, u.y FROM t JOIN u ON t.b = u.x",
    "SELECT t.a, u.y FROM t LEFT JOIN u ON t.b = u.x",
    "SELECT t.a, u.y FROM t JOIN u ON t.b = u.x AND u.y > 1",
    "SELECT t.a, u.y FROM t LEFT JOIN u ON t.b = u.x AND u.y > 1",
    "SELECT t1.a, t2.a FROM t t1 JOIN t t2 ON t1.c = t2.c",
    "SELECT a FROM t CROSS JOIN u WHERE t.a = u.y",
    "SELECT b FROM t UNION SELECT x FROM u",
    "SELECT b FROM t UNION ALL SELECT x FROM u",
    "SELECT b FROM t EXCEPT SELECT x FROM u",
    "SELECT b FROM t INTERSECT SELECT x FROM u",
    "SELECT a FROM t WHERE EXISTS "
    "(SELECT 1 FROM u WHERE u.x = t.b)",
    "SELECT a FROM t WHERE NOT EXISTS "
    "(SELECT 1 FROM u WHERE u.x = t.b)",
    "SELECT a FROM t WHERE b IN (SELECT x FROM u)",
    "SELECT a FROM t WHERE b IN (SELECT x FROM u WHERE u.y = t.c)",
    "SELECT a FROM t WHERE c NOT IN (SELECT y FROM u WHERE y IS NOT NULL)",
    "SELECT s.total FROM (SELECT c, SUM(b) AS total FROM t GROUP BY c) s",
    "SELECT a FROM t WHERE a = (1 + 2)",
    "SELECT CASE WHEN b > 25 THEN 1 WHEN b > 15 THEN 2 ELSE 3 END FROM t",
    "SELECT CASE c WHEN 5 THEN 'five' ELSE 'other' END FROM t",
    "SELECT COALESCE(b, c, 0) FROM t",
    "SELECT a % 3, a FROM t",
    "SELECT MIN(a), MAX(a) FROM t WHERE b IS NULL",
    "SELECT COUNT(DISTINCT b) FROM t",
    "WITH big AS (SELECT a, b FROM t WHERE b >= 20) "
    "SELECT COUNT(*) FROM big",
    "WITH big (v) AS (SELECT b FROM t WHERE b >= 20) "
    "SELECT v FROM big WHERE v < 60",
]


@pytest.mark.parametrize("sql", CORPUS, ids=range(len(CORPUS)))
def test_corpus_agrees_with_sqlite(engines, sql):
    assert_agree(engines, sql)


# ---------------------------------------------------------------------------
# Property-based differential testing
# ---------------------------------------------------------------------------

columns = st.sampled_from(["a", "b", "c"])
small_int = st.integers(-5, 65)


def predicate(depth: int = 2):
    comparison = st.builds(
        lambda col, op, val: f"({col} {op} {val})",
        columns, st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        small_int)
    null_test = st.builds(
        lambda col, neg: f"({col} IS {'NOT ' if neg else ''}NULL)",
        columns, st.booleans())
    in_list = st.builds(
        lambda col, vals: f"({col} IN ({', '.join(map(str, vals))}))",
        columns, st.lists(small_int, min_size=1, max_size=4))
    between = st.builds(
        lambda col, lo, hi: f"({col} BETWEEN {lo} AND {hi})",
        columns, small_int, small_int)
    leaf = st.one_of(comparison, null_test, in_list, between)
    if depth == 0:
        return leaf
    sub = predicate(depth - 1)
    combined = st.builds(
        lambda a, op, b: f"({a} {op} {b})",
        sub, st.sampled_from(["AND", "OR"]), sub)
    negated = st.builds(lambda a: f"(NOT {a})", sub)
    return st.one_of(leaf, combined, negated)


class TestGeneratedQueries:
    @given(predicate())
    @settings(max_examples=120, deadline=None)
    def test_where_predicates(self, engines, pred):
        assert_agree(engines, f"SELECT a, b, c FROM t WHERE {pred}")

    @given(predicate(depth=1),
           st.sampled_from(["b", "c", "a % 2"]),
           st.sampled_from(["COUNT(*)", "SUM(a)", "MIN(b)", "MAX(c)",
                            "COUNT(b)", "AVG(a)"]))
    @settings(max_examples=60, deadline=None)
    def test_grouped_aggregates(self, engines, pred, key, agg):
        assert_agree(
            engines,
            f"SELECT {key}, {agg} FROM t WHERE {pred} GROUP BY {key}")

    @given(st.sampled_from(["JOIN", "LEFT JOIN"]),
           st.sampled_from(["t.b = u.x", "t.a = u.y",
                            "t.b = u.x AND u.y > 1"]),
           predicate(depth=1))
    @settings(max_examples=60, deadline=None)
    def test_joins(self, engines, kind, condition, pred):
        assert_agree(
            engines,
            f"SELECT t.a, u.x, u.y FROM t {kind} u ON {condition} "
            f"WHERE {pred}")

    @given(st.sampled_from(["UNION", "UNION ALL", "EXCEPT", "INTERSECT"]),
           predicate(depth=1))
    @settings(max_examples=60, deadline=None)
    def test_set_operations(self, engines, kind, pred):
        assert_agree(
            engines,
            f"SELECT b FROM t WHERE {pred} {kind} SELECT x FROM u")

    @given(st.builds(
        lambda col, op, val: f"({col} {op} {val})",
        st.sampled_from(["a", "b"]),
        st.sampled_from(["+", "-", "*"]), small_int))
    @settings(max_examples=40, deadline=None)
    def test_projection_arithmetic(self, engines, expr):
        assert_agree(engines, f"SELECT {expr}, a FROM t")
