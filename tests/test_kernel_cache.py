"""Kernel-cache tests: version-keyed dictionary memoization, the
second-touch join-index policy, incremental UNION DISTINCT state, DML
invalidation, and cache-on/cache-off result parity."""

import numpy as np
import pytest

from repro import Database
from repro.execution.kernel_cache import (
    IncrementalDistinctIndex,
    KernelCache,
    build_dictionary,
    build_join_index,
    probe_dictionary,
)
from repro.execution.kernels import encode_keys
from repro.storage import Column
from repro.types import SqlType
from repro.workloads.pagerank import pagerank_query

CLOSURE = """
WITH RECURSIVE reach (a, b) AS (
  SELECT a, b FROM edge
  UNION
  SELECT reach.a, edge.b FROM reach JOIN edge ON reach.b = edge.a
) SELECT a, b FROM reach ORDER BY a, b"""


def _graph_db(rows, types=(SqlType.INTEGER, SqlType.INTEGER),
              cache_on=True):
    db = Database()
    db.set_option("enable_kernel_cache", cache_on)
    db.create_table("edge", [("a", types[0]), ("b", types[1])])
    db.load_rows("edge", rows)
    return db


def _tables_equal(left, right):
    if left.num_rows != right.num_rows:
        return False
    return all(
        (lc.data == rc.data).all() and (lc.mask == rc.mask).all()
        for lc, rc in zip(left.columns, right.columns))


class TestColumnDictionary:
    def test_hit_on_same_column(self):
        cache = KernelCache()
        column = Column.from_values(SqlType.INTEGER, [3, 1, 3, None])
        first = cache.dictionary(column)
        second = cache.dictionary(column)
        assert first is second
        assert first.cardinality == 2
        assert first.has_nulls

    def test_miss_on_equal_but_distinct_column(self):
        cache = KernelCache()
        a = Column.from_values(SqlType.INTEGER, [1, 2])
        b = Column.from_values(SqlType.INTEGER, [1, 2])
        assert a.version != b.version
        assert cache.dictionary(a) is not cache.dictionary(b)

    def test_cached_codes_are_read_only(self):
        cache = KernelCache()
        column = Column.from_values(SqlType.INTEGER, [1, 2, 1])
        entry = cache.dictionary(column)
        with pytest.raises(ValueError):
            entry.codes[0] = 99

    def test_invalidate_drops_entry(self):
        cache = KernelCache()
        column = Column.from_values(SqlType.INTEGER, [1, 2])
        cache.dictionary(column)
        assert cache.invalidate_columns([column]) == 1
        assert cache.invalidate_columns([column]) == 0

    def test_lru_eviction(self):
        cache = KernelCache(max_dictionaries=2)
        columns = [Column.from_values(SqlType.INTEGER, [i])
                   for i in range(3)]
        for column in columns:
            cache.dictionary(column)
        assert len(cache._dictionaries) == 2

    def test_probe_absent_and_null_is_minus_one(self):
        build = Column.from_values(SqlType.INTEGER, [10, 20, 30])
        probe = Column.from_values(SqlType.INTEGER, [20, 99, None, 10])
        dictionary = build_dictionary(build)
        codes = probe_dictionary(dictionary, probe)
        assert codes[1] == -1 and codes[2] == -1
        assert codes[0] == dictionary.codes[1]
        assert codes[3] == dictionary.codes[0]

    def test_probe_text_column(self):
        build = Column.from_values(SqlType.TEXT, ["b", "a", "b"])
        probe = Column.from_values(SqlType.TEXT, ["a", "zz", None])
        dictionary = build_dictionary(build)
        codes = probe_dictionary(dictionary, probe)
        assert codes[0] == dictionary.codes[1]
        assert codes[1] == -1 and codes[2] == -1


class TestJoinIndexPolicy:
    def test_second_touch_builds_then_hits(self):
        cache = KernelCache()
        key = [Column.from_values(SqlType.INTEGER, [1, 2, 2])]
        assert cache.join_index(key) is None  # first touch: declined
        built = cache.join_index(key)         # second touch: built
        assert built is not None
        assert cache.join_index(key) is built  # third touch: cache hit

    def test_varying_build_sides_never_build(self):
        cache = KernelCache()
        for i in range(5):
            key = [Column.from_values(SqlType.INTEGER, [i, i + 1])]
            assert cache.join_index(key) is None
        assert len(cache._indexes) == 0

    def test_probe_matches_joint_encoding(self):
        left = [Column.from_values(SqlType.INTEGER, [1, 7, None, 3]),
                Column.from_values(SqlType.INTEGER, [5, 5, 5, None])]
        right = [Column.from_values(SqlType.INTEGER, [1, 3, 1]),
                 Column.from_values(SqlType.INTEGER, [5, 5, 6])]
        index = build_join_index(right)
        probe = index.probe(left)
        joint = [lc.concat(rc) for lc, rc in zip(left, right)]
        codes = encode_keys(joint, nulls_match=False)
        n = 4
        for i in range(n):
            for j in range(3):
                joint_match = (codes[i] >= 0 and codes[i] == codes[n + j])
                index_match = (probe[i] >= 0
                               and probe[i] == index.codes[j])
                assert joint_match == index_match


class TestIncrementalDistinctIndex:
    def _columns(self, rows):
        return [Column.from_values(SqlType.INTEGER, [r[i] for r in rows])
                for i in range(len(rows[0]))]

    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        index = IncrementalDistinctIndex(2)
        seen = set()
        for _ in range(6):
            rows = [tuple(int(v) if rng.random() > 0.15 else None
                          for v in rng.integers(0, 8, size=2))
                    for _ in range(20)]
            mask = index.filter_new(self._columns(rows), len(rows))
            for i, row in enumerate(rows):
                expected = row not in seen
                seen.add(row)
                assert bool(mask[i]) == expected, (row, i)

    def test_text_and_nulls(self):
        index = IncrementalDistinctIndex(1)
        first = [Column.from_values(SqlType.TEXT, ["x", None, "x", "y"])]
        mask = index.filter_new(first, 4)
        assert mask.tolist() == [True, True, False, True]
        second = [Column.from_values(SqlType.TEXT, [None, "z", "y"])]
        mask = index.filter_new(second, 3)
        assert mask.tolist() == [False, True, False]

    def test_budget_exhaustion_repacks_instead_of_rescanning(self):
        index = IncrementalDistinctIndex(1)
        index._shifts = [2]  # simulate a tiny per-column id budget
        columns = [Column.from_values(SqlType.INTEGER, [1, 2, 3, 4, 5])]
        mask = index.filter_new(columns, 5)
        assert mask is not None and mask.tolist() == [True] * 5
        assert index.repacks == 1
        # Membership survives the repack: the same rows are now dupes.
        again = index.filter_new(columns, 5)
        assert again is not None and again.tolist() == [False] * 5
        assert index.repacks == 1

    def test_repack_preserves_multi_column_identities(self):
        index = IncrementalDistinctIndex(2)
        index._shifts = [2, 2]
        first = [Column.from_values(SqlType.INTEGER, [1, 1, 2, 2]),
                 Column.from_values(SqlType.INTEGER, [1, 2, 1, 2])]
        assert index.filter_new(first, 4).tolist() == [True] * 4
        wide = [Column.from_values(SqlType.INTEGER, list(range(10))),
                Column.from_values(SqlType.INTEGER, [1] * 10)]
        mask = index.filter_new(wide, 10)
        assert index.repacks >= 1
        # (1, 1) and (2, 1) were already seen before the repack.
        assert mask.tolist() == [True, False, False] + [True] * 7

    def test_overflow_returns_none_when_62_bits_not_enough(self):
        width = 8
        index = IncrementalDistinctIndex(width)
        # 300 distinct ids per column require 8 columns x 9 bits = 72 > 62,
        # so no repacking can help: the caller must rescan.
        values = list(range(300))
        columns = [Column.from_values(SqlType.INTEGER, values)
                   for _ in range(width)]
        assert index.filter_new(columns, len(values)) is None

    def test_absorb_then_filter(self):
        index = IncrementalDistinctIndex(2)
        base = self._columns([(1, 1), (2, 2)])
        assert index.absorb(base, 2)
        assert index.rows_absorbed == 2
        mask = index.filter_new(self._columns([(2, 2), (3, 3)]), 2)
        assert mask.tolist() == [False, True]
        assert index.rows_absorbed == 3


class TestDmlInvalidation:
    def test_insert_is_visible_to_next_query(self):
        db = _graph_db([(1, 2), (2, 3)])
        assert db.execute(CLOSURE).rows() == [(1, 2), (1, 3), (2, 3)]
        db.execute("INSERT INTO edge VALUES (3, 4)")
        assert db.execute(CLOSURE).rows() == [
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]

    def test_delete_is_visible_to_next_query(self):
        db = _graph_db([(1, 2), (2, 3)])
        db.execute(CLOSURE)
        db.execute("DELETE FROM edge WHERE a = 2")
        assert db.execute(CLOSURE).rows() == [(1, 2)]

    def test_update_is_visible_to_next_query(self):
        db = _graph_db([(1, 2), (2, 3)])
        db.execute(CLOSURE)
        db.execute("UPDATE edge SET b = 9 WHERE a = 2")
        assert db.execute(CLOSURE).rows() == [(1, 2), (1, 9), (2, 9)]

    def test_dml_counts_invalidations(self):
        db = _graph_db([(1, 2), (2, 3)])
        db.execute(CLOSURE)
        db.execute(CLOSURE)  # populate the cache with edge's columns
        before = db.stats.kernel_cache_invalidations
        db.execute("INSERT INTO edge VALUES (3, 4)")
        assert db.stats.kernel_cache_invalidations > before

    def test_load_rows_invalidates(self):
        db = _graph_db([(1, 2), (2, 3)])
        db.execute(CLOSURE)
        db.execute(CLOSURE)
        db.load_rows("edge", [(3, 4)])
        assert db.execute(CLOSURE).rows() == [
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]


class TestCacheParity:
    """Cache on and off must be bit-identical, not just value-equal."""

    def _closure_rows(self):
        rng = np.random.default_rng(5)
        edges = {(int(a), int(b))
                 for a, b in rng.integers(0, 40, size=(120, 2))}
        return sorted(edges)

    def test_closure_bit_identical(self):
        rows = self._closure_rows()
        on = _graph_db(rows, cache_on=True).execute(CLOSURE).table
        off = _graph_db(rows, cache_on=False).execute(CLOSURE).table
        assert _tables_equal(on, off)

    def test_text_graph_bit_identical(self):
        rows = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
        types = (SqlType.TEXT, SqlType.TEXT)
        on = _graph_db(rows, types, cache_on=True).execute(CLOSURE).table
        off = _graph_db(rows, types, cache_on=False).execute(CLOSURE).table
        assert _tables_equal(on, off)
        assert on.num_rows == 12

    def test_nullable_rows_bit_identical(self):
        # NULL edge endpoints exercise nulls-match dedup in the merge.
        rows = [(1, 2), (None, 2), (None, 2), (2, None), (None, None)]
        on = _graph_db(rows, cache_on=True).execute(CLOSURE).table
        off = _graph_db(rows, cache_on=False).execute(CLOSURE).table
        assert _tables_equal(on, off)
        # 5 init rows (merge dedup applies to deltas, not the init —
        # seed-faithful) plus the derived (1, NULL); the delta's
        # (NULL, NULL) is recognized as seen via nulls-match dedup.
        assert on.num_rows == 6

    def test_pagerank_floats_bit_identical(self):
        edges = [(1, 2, 0.5), (1, 3, 0.5), (2, 3, 1.0), (3, 1, 1.0),
                 (4, 1, 1.0)]
        sql = pagerank_query(iterations=12, coalesced=True)

        def run(cache_on):
            db = Database()
            db.set_option("enable_kernel_cache", cache_on)
            db.create_table("edges", [("src", SqlType.INTEGER),
                                      ("dst", SqlType.INTEGER),
                                      ("weight", SqlType.FLOAT)])
            db.load_rows("edges", edges)
            return db.execute(sql).table

        assert _tables_equal(run(True), run(False))

    def test_iterative_until_delta_parity(self):
        sql = """
        WITH ITERATIVE walk (node, hops) AS (
          SELECT a, 0 FROM edge WHERE a = 1
          ITERATE
          SELECT edge.b, walk.hops + 1 FROM walk
            JOIN edge ON walk.node = edge.a
          UNTIL 3 ITERATIONS
        ) SELECT node, hops FROM walk ORDER BY node"""
        rows = [(1, 2), (2, 3), (3, 4)]
        on = _graph_db(rows, cache_on=True).execute(sql).table
        off = _graph_db(rows, cache_on=False).execute(sql).table
        assert _tables_equal(on, off)


class TestObservability:
    def test_explain_analyze_reports_counters(self):
        db = _graph_db([(1, 2), (2, 3), (3, 4), (4, 5)])
        report = db.explain_analyze(CLOSURE)
        assert "kernel cache (on):" in report
        assert "join index: hits=" in report
        assert "merge index: hits=" in report

    def test_explain_analyze_reports_cache_off(self):
        db = _graph_db([(1, 2), (2, 3)], cache_on=False)
        report = db.explain_analyze(CLOSURE)
        assert "kernel cache (off):" in report
        assert "hits=0, misses=0" in report

    def test_counters_increment_over_long_loop(self):
        chain = [(i, i + 1) for i in range(12)]
        db = _graph_db(chain)
        db.execute(CLOSURE)
        # 12 iterations: the edge build side repeats, so the join index
        # is built on its second sighting and hit from the third on; the
        # merge index is rebuilt once and hit every later iteration.
        assert db.stats.join_index_hits > 0
        assert db.stats.join_index_misses >= 2
        assert db.stats.merge_index_rebuilds == 1
        assert db.stats.merge_index_hits > 0

    def test_dictionary_hits_across_statements(self):
        db = _graph_db([(1, 2), (1, 3), (2, 3)])
        sql = "SELECT a, COUNT(*) FROM edge GROUP BY a"
        db.execute(sql)  # miss: builds the grouping key's dictionary
        before = db.stats.kernel_cache_hits
        db.execute(sql)  # same column object: version-keyed hit
        assert db.stats.kernel_cache_hits > before

    def test_disabled_cache_stays_cold(self):
        db = _graph_db([(1, 2), (2, 3), (3, 4)], cache_on=False)
        db.execute(CLOSURE)
        assert db.stats.kernel_cache_hits == 0
        assert db.stats.kernel_cache_misses == 0
        assert db.stats.join_index_hits == 0
        assert db.stats.merge_index_hits == 0
        assert db.kernel_cache.nbytes() == 0
