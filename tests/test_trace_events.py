"""Structured trace events: morsel events, decision events, and their
schema contracts (repro.obs.export validation over real engine traces).

The trace schema stays at version 1 — these events are additive — but
the validator enforces their attribute contracts: ``morsel`` events
carry the batch shape, ``decision`` events have a closed name set with
per-name required attributes on top of {loop_id, reason}.
"""

from __future__ import annotations

import json

import pytest

from repro.datasets import dblp_like, generate_edges
from repro.engine.database import Database
from repro.execution import SessionOptions
from repro.obs.export import DECISION_EVENT_NAMES, validate_trace_dict
from repro.types import SqlType
from repro.workloads import pagerank_query, sssp_query

EDGES = generate_edges(dblp_like(nodes=200, seed=21))

# Iterations 1-3 rewrite every row (demotes after two near-full
# frontiers); from iteration 4 only every tenth node keeps moving, so
# the frontier collapses and the loop promotes back (same construction
# as tests/test_runtime.py).
PROMOTION_SQL = """
WITH ITERATIVE r (node, v) AS (
  SELECT src, 0.0 FROM edges GROUP BY src
  ITERATE SELECT r.node,
          CASE WHEN r.v < 3.0 OR MOD(r.node, 10) = 0
               THEN r.v + 1.0 ELSE r.v END
          FROM r
  UNTIL 12 ITERATIONS
) SELECT node, v FROM r ORDER BY node"""


def traced_db(**options) -> Database:
    db = Database(SessionOptions(enable_tracing=True, **options))
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", EDGES)
    return db


def events_of_kind(span: dict, kind: str) -> list[dict]:
    found = [span] if span["kind"] == kind else []
    for child in span["children"]:
        found.extend(events_of_kind(child, kind))
    return found


class TestMorselEvents:
    def _morsel_trace(self) -> dict:
        db = traced_db(parallel_morsels=True, morsel_size=64,
                       morsel_min_rows=128, morsel_workers=2)
        db.execute("SELECT count(*) FROM edges WHERE weight > 0.01")
        return json.loads(db.trace_json())

    def test_morsel_events_round_trip_with_required_attrs(self):
        payload = self._morsel_trace()
        validate_trace_dict(payload)
        events = events_of_kind(payload["root"], "morsel")
        assert events, "expected morsels:<label> events in the trace"
        for event in events:
            assert event["name"].startswith("morsels:")
            attrs = event["attributes"]
            assert attrs["morsels"] >= 2
            assert attrs["rows"] > 0
            assert attrs["workers"] >= 1
            assert isinstance(attrs["parallel"], bool)
            assert event["seconds"] == 0.0  # events carry no time

    def test_validator_requires_the_morsel_contract(self):
        payload = self._morsel_trace()
        event = events_of_kind(payload["root"], "morsel")[0]
        del event["attributes"]["workers"]
        with pytest.raises(ValueError, match="workers"):
            validate_trace_dict(payload)


class TestDecisionEvents:
    def _decisions(self, sql, **options) -> list[dict]:
        db = traced_db(**options)
        db.execute(sql)
        payload = json.loads(db.trace_json())
        validate_trace_dict(payload)
        return events_of_kind(payload["root"], "decision")

    def test_selection_event_names_strategy_and_reason(self):
        decisions = self._decisions(sssp_query(source=1, iterations=5),
                                    enable_delta_iteration=True)
        selections = [d for d in decisions
                      if d["name"] == "strategy_selection"]
        assert len(selections) == 1
        attrs = selections[0]["attributes"]
        assert attrs["strategy"] == "semi-naive-delta"
        assert attrs["reason"]
        assert attrs["loop_id"] == 0

    def test_demotion_event_carries_measured_vs_budget(self):
        decisions = self._decisions(pagerank_query(iterations=8),
                                    enable_delta_iteration=True)
        demotions = [d for d in decisions
                     if d["name"] == "strategy_demotion"]
        assert len(demotions) == 1
        attrs = demotions[0]["attributes"]
        assert attrs["from_strategy"] == "semi-naive-delta"
        assert attrs["frontier"] <= attrs["total"]
        assert attrs["frontier"] >= attrs["budget_frontier"]
        assert "delta bookkeeping" in attrs["reason"]

    def test_demotion_then_promotion_chain_in_document_order(self):
        decisions = self._decisions(PROMOTION_SQL,
                                    enable_delta_iteration=True)
        names = [d["name"] for d in decisions]
        assert names.index("strategy_selection") \
            < names.index("strategy_demotion") \
            < names.index("strategy_promotion")
        promotion = next(d for d in decisions
                         if d["name"] == "strategy_promotion")
        attrs = promotion["attributes"]
        assert attrs["to_strategy"] == "semi-naive-delta"
        assert attrs["frontier"] < attrs["budget_frontier"]

    def test_explain_analyze_emits_loop_estimate(self):
        db = traced_db(enable_delta_iteration=True)
        db.explain_analyze(sssp_query(source=1, iterations=5))
        payload = json.loads(db.trace_json())
        validate_trace_dict(payload)
        estimates = [d for d in events_of_kind(payload["root"], "decision")
                     if d["name"] == "loop_estimate"]
        assert len(estimates) == 1
        attrs = estimates[0]["attributes"]
        assert attrs["cte"] == "sssp"
        assert attrs["estimated_iterations"] == 5
        assert attrs["basis"]


class TestDecisionSchema:
    def _valid_payload(self) -> dict:
        db = traced_db(enable_delta_iteration=True)
        db.execute(sssp_query(source=1, iterations=3))
        return json.loads(db.trace_json())

    def test_unknown_decision_name_rejected(self):
        payload = self._valid_payload()
        decision = events_of_kind(payload["root"], "decision")[0]
        decision["name"] = "coin_flip"
        with pytest.raises(ValueError, match="unknown name"):
            validate_trace_dict(payload)

    def test_missing_common_attr_rejected(self):
        payload = self._valid_payload()
        decision = events_of_kind(payload["root"], "decision")[0]
        del decision["attributes"]["reason"]
        with pytest.raises(ValueError, match="reason"):
            validate_trace_dict(payload)

    def test_known_names_are_the_documented_four(self):
        assert DECISION_EVENT_NAMES == {
            "strategy_selection", "strategy_demotion",
            "strategy_promotion", "loop_estimate"}
