"""Tier-1 stored-procedure smoke (scripts/check_all_smoke.sh): the
Fig. 11 baseline must keep running and keep agreeing with the native
iterative-CTE path.

The full Fig. 11 benchmark lives in
``benchmarks/bench_fig11_stored_procedures.py``; this guard compiles the
same procedure scripts against the tiny shared graph so a regression in
the procedure runtime (ProcedureCatalog / ExecuteSql / ReturnQuery) or a
divergence between the two implementations fails on every change, not
just when the benchmarks are run.

Fast by construction: tiny graph, few iterations.
"""

import pytest

from repro import Database
from repro.procedures import (
    ExecuteSql,
    Procedure,
    ProcedureCatalog,
    ReturnQuery,
)
from repro.types import SqlType
from repro.workloads import friends, sssp
from repro.workloads import ff_query, sssp_query
from tests.conftest import SMALL_EDGES

ITERATIONS = 4


def _graph_db() -> Database:
    db = Database()
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", SMALL_EDGES)
    return db


def _run_procedure(db, script, final_sql, cleanup):
    for sql in cleanup:
        db.execute(sql)
    catalog = ProcedureCatalog(db)
    ops = [ExecuteSql(s) for s in script]
    ops.append(ReturnQuery(final_sql))
    catalog.register(Procedure("smoke", ops))
    try:
        return catalog.call("smoke")
    finally:
        for sql in cleanup:
            db.execute(sql)


CASES = [
    ("sssp",
     sssp_query(source=1, iterations=ITERATIONS),
     sssp.stored_procedure_script(source=1, iterations=ITERATIONS),
     "SELECT node, distance FROM __sssp_result",
     ["DROP TABLE IF EXISTS __sssp_intermediate",
      "DROP TABLE IF EXISTS __sssp_result"]),
    ("friends",
     ff_query(iterations=ITERATIONS, selectivity_mod=2,
              order_and_limit=False),
     friends.stored_procedure_script(iterations=ITERATIONS),
     "SELECT node, friends FROM __ff_result WHERE MOD(node, 2) = 0",
     ["DROP TABLE IF EXISTS __ff_intermediate",
      "DROP TABLE IF EXISTS __ff_result"]),
]


@pytest.mark.procedures_smoke
@pytest.mark.parametrize("name,cte_sql,script,final_sql,cleanup", CASES,
                         ids=[case[0] for case in CASES])
def test_procedure_baseline_matches_native_cte(name, cte_sql, script,
                                               final_sql, cleanup):
    db = _graph_db()
    cte_rows = sorted(db.execute(cte_sql).rows())
    procedure_rows = sorted(
        _run_procedure(db, script, final_sql, cleanup).rows())
    assert len(procedure_rows) == len(cte_rows)
    for have, want in zip(procedure_rows, cte_rows):
        assert have == pytest.approx(want)


@pytest.mark.procedures_smoke
def test_procedure_statements_bypass_loop_optimizations():
    """The baseline must stay a baseline: statement-at-a-time execution
    with none of the one-plan loop machinery engaged."""
    _, _, script, final_sql, cleanup = CASES[0]
    db = _graph_db()
    db.reset_stats()
    _run_procedure(db, script, final_sql, cleanup)
    assert db.stats.renames == 0
    assert db.stats.delta_iterations == 0
    assert db.stats.common_results_built == 0
