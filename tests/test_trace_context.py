"""Process-safe trace contexts (repro.obs.trace + repro.mpp.workers).

A parent captures a serializable :class:`TraceContext` at the span where
worker output belongs; workers buffer spans in a :class:`ContextTracer`
and the parent merges the exported spans back on join.  These tests pin
the round trip, the merge anchoring (pinned span, path fallback, foreign
trace rejection), and the acceptance criterion: the simulated
(inline) and worker-backed MPP paths produce *identical* trace shapes.
"""

from __future__ import annotations

import json

import pytest

from repro.mpp import (
    Cluster,
    InlineSegmentExecutor,
    ProcessSegmentExecutor,
    distributed_pagerank,
    run_segment_tasks,
)
from repro.obs import NULL_TRACER, Tracer, build_trace, validate_trace_dict
from repro.obs.trace import ContextTracer, TraceContext, span_from_dict
from tests.conftest import SMALL_EDGES


def _double(value):
    return value * 2


def shape(span, depth=0):
    """(depth, name, kind) triples in document order — equal shapes mean
    equal trees regardless of timings and ids."""
    rows = [(depth, span.name, span.kind)]
    for child in span.children:
        rows.extend(shape(child, depth + 1))
    return rows


class TestTraceContextRoundTrip:
    def test_to_dict_from_dict(self):
        context = TraceContext("abc123", 4, ("trace", "loop:r"))
        data = context.to_dict()
        assert json.loads(json.dumps(data)) == data  # JSON-safe
        restored = TraceContext.from_dict(data)
        assert restored == context

    def test_context_captures_current_span_path(self):
        tracer = Tracer("trace")
        with tracer.span("outer"):
            with tracer.span("inner"):
                context = tracer.context()
        assert context.trace_id == tracer.trace_id
        assert context.path == ("trace", "outer", "inner")

    def test_span_from_dict_inverts_to_dict(self):
        tracer = Tracer()
        with tracer.span("a", kind="phase", label="x"):
            tracer.event("e", kind="event", n=1)
        tracer.finish()
        data = tracer.root.to_dict()
        rebuilt = span_from_dict(data)
        assert rebuilt.to_dict() == data


class TestMerge:
    def _worker_spans(self, context, segment=0):
        worker = ContextTracer(TraceContext.from_dict(context.to_dict()))
        with worker.span("segment", kind="worker", segment=segment):
            worker.event("kernel", kind="event")
        return worker.export_spans()

    def test_merges_under_the_capture_span(self):
        tracer = Tracer("trace")
        with tracer.span("compute", kind="compute") as compute:
            context = tracer.context()
            spans = self._worker_spans(context)
        tracer.merge(context, spans)  # capture span already closed: fine
        assert [c.name for c in compute.children] == ["segment"]
        segment = compute.children[0]
        assert segment.kind == "worker"
        assert segment.attributes["segment"] == 0
        assert segment.children[0].name == "kernel"

    def test_merge_rejects_foreign_trace(self):
        tracer = Tracer("trace")
        foreign = TraceContext("not-this-trace", 0, ("trace",))
        with pytest.raises(ValueError):
            tracer.merge(foreign, [])

    def test_path_fallback_reanchors_unknown_context(self):
        # A context whose id the tracer never pinned (e.g. re-created in
        # a coordinator process) merges at the deepest span matching its
        # path instead of being dropped.
        tracer = Tracer("trace")
        with tracer.span("loop:r", kind="loop"):
            with tracer.span("iteration", kind="iteration"):
                pass
        context = TraceContext(tracer.trace_id, 999,
                               ("trace", "loop:r", "iteration"))
        worker = ContextTracer(context)
        with worker.span("segment", kind="worker", segment=1):
            pass
        tracer.merge(context, worker.export_spans())
        iteration = tracer.root.find("iteration", kind="iteration")
        assert [c.name for c in iteration.children] == ["segment"]

    def test_path_fallback_defaults_to_root(self):
        tracer = Tracer("trace")
        context = TraceContext(tracer.trace_id, 999, ("elsewhere",))
        tracer.merge(context, [{"name": "segment", "kind": "worker",
                                "seconds": 0.0, "attributes": {},
                                "children": []}])
        assert tracer.root.children[-1].name == "segment"


class TestRunSegmentTasks:
    def test_untraced_run_ships_no_context(self):
        results = run_segment_tasks(NULL_TRACER, _double, [(1,), (2,)])
        assert results == [2, 4]

    def test_traced_inline_run_merges_worker_spans(self):
        tracer = Tracer("trace")
        with tracer.span("compute", kind="compute") as compute:
            results = run_segment_tasks(tracer, _double, [(1,), (2,), (3,)])
        assert results == [2, 4, 6]
        segments = [c for c in compute.children if c.kind == "worker"]
        assert [s.attributes["segment"] for s in segments] == [0, 1, 2]

    def test_process_executor_returns_same_results(self):
        with ProcessSegmentExecutor(processes=2) as executor:
            results = run_segment_tasks(NULL_TRACER, _double,
                                        [(i,) for i in range(5)],
                                        executor=executor)
        assert results == [0, 2, 4, 6, 8]


class TestMppTraceShapeParity:
    """Acceptance criterion: a worker process spawned with a serialized
    TraceContext produces spans that merge into the parent trace under
    the correct loop/exchange parents, and the simulated and
    worker-backed MPP paths emit identical trace shapes."""

    def _traced_run(self, executor):
        tracer = Tracer()
        result = distributed_pagerank(Cluster(3), SMALL_EDGES,
                                      iterations=3, tracer=tracer,
                                      executor=executor)
        trace = build_trace(tracer, loops=[result.telemetry])
        return result, trace

    def test_inline_and_process_shapes_identical(self):
        inline_result, inline_trace = self._traced_run(
            InlineSegmentExecutor())
        with ProcessSegmentExecutor(processes=2) as executor:
            process_result, process_trace = self._traced_run(executor)

        assert inline_result.ranks == pytest.approx(process_result.ranks)
        assert shape(inline_trace.root) == shape(process_trace.root)
        validate_trace_dict(json.loads(inline_trace.to_json()))
        validate_trace_dict(json.loads(process_trace.to_json()))

    def test_worker_spans_nest_under_loop_iteration_compute(self):
        with ProcessSegmentExecutor(processes=2) as executor:
            _, trace = self._traced_run(executor)
        loop = trace.root.find("loop:pr_state", kind="loop")
        assert loop is not None
        iterations = [c for c in loop.children if c.kind == "iteration"]
        assert len(iterations) == 3
        for iteration in iterations:
            computes = [c for c in iteration.children
                        if c.kind == "compute"]
            exchanges = [c for c in iteration.children
                         if c.kind == "exchange"]
            assert len(computes) == 2  # contributions + apply_update
            assert len(exchanges) == 1
            for compute in computes:
                workers = [c for c in compute.children
                           if c.kind == "worker"]
                assert [w.attributes["segment"] for w in workers] \
                    == [0, 1, 2]
