"""Tier-1 observability smoke (scripts/check_obs_smoke.sh): a traced
iterative query must produce schema-valid trace JSON, and the benchmark
harness must write a parseable BENCH_*.json artifact.

Fast by construction (tiny graph, few iterations) so the guard can run
on every change alongside the bench smoke.
"""

import json
import os

import pytest

from repro import Database
from repro.execution import SessionOptions
from repro.harness import Comparison, Measurement, write_bench_artifact
from repro.obs import validate_bench_dict, validate_trace_dict
from repro.types import SqlType
from repro.workloads import pagerank_query
from tests.conftest import SMALL_EDGES


@pytest.mark.obs_smoke
def test_traced_iterative_query_emits_valid_trace():
    db = Database(SessionOptions(enable_tracing=True))
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", SMALL_EDGES)
    db.execute(pagerank_query(iterations=5, coalesced=True))

    payload = json.loads(db.trace_json())
    validate_trace_dict(payload)
    (loop,) = payload["loops"]
    assert loop["kind"] == "iterative"
    assert len(loop["iterations"]) == 5
    assert payload["root"]["seconds"] >= 0.0


@pytest.mark.obs_smoke
def test_bench_artifact_is_parseable(tmp_path):
    comparison = Comparison(
        "smoke", Measurement("baseline", 0.2, 1, [0.2]),
        Measurement("optimized", 0.1, 1, [0.1]))
    path = write_bench_artifact("smoke", comparisons=[comparison],
                                extra={"origin": "obs_smoke"},
                                directory=str(tmp_path))
    assert os.path.basename(path) == "BENCH_smoke.json"
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_bench_dict(payload)
    assert payload["benchmark"] == "smoke"
    assert payload["comparisons"][0]["improvement_pct"] == pytest.approx(50.0)
