"""EXPLAIN output tests: the step program must mirror the paper's Table I
(PR logical plan) and Fig. 5 (common-result plan)."""

import pytest

from repro.workloads import ff_query, pagerank_query, sssp_query


class TestTableOne:
    """Table I of the paper, step by step, for the PR query."""

    def test_pr_plan_structure(self, graph_db):
        text = graph_db.explain(pagerank_query(iterations=10))
        lines = [line.strip() for line in text.splitlines()]
        # Step 1: materialize the non-iterative part.
        assert lines[0].startswith("1  Materialize")
        assert "non-iterative" in lines[0]
        # Step 2: initialize the counter.
        assert "Initialize counter to zero" in lines[1]
        # Step 3: materialize the iterative part.
        assert "iterative part" in lines[2]
        # Step 4: rename intermediate to main (PR updates everything).
        assert lines[3].startswith("4  Rename")
        # Step 5: increment, step 6: conditional jump to step 3.
        assert "Increment counter by 1" in lines[4]
        assert "Go to step 3" in lines[5]

    def test_pr_loop_annotation_matches_fig4(self, graph_db):
        """Fig. 4 annotates the loop <<Type:metadata, N:10, Expr:NONE>>."""
        text = graph_db.explain(pagerank_query(iterations=10))
        assert "<<Type:metadata, N:10, Expr:NONE>>" in text

    def test_data_condition_annotation(self, db):
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT 1, 1 ITERATE SELECT k, v + 1 FROM r UNTIL v > 10
        ) SELECT v FROM r"""
        text = db.explain(sql)
        assert "Type:data" in text
        assert "(v > 10)" in text

    def test_delta_condition_annotation(self, db):
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT 1, 1 ITERATE SELECT k, v FROM r UNTIL DELTA = 0
        ) SELECT v FROM r"""
        assert "Type:delta" in db.explain(sql)

    def test_sssp_uses_merge_path(self, graph_db):
        text = graph_db.explain(sssp_query(iterations=10))
        assert "merge updates" in text
        assert "unique" in text  # duplicate-key check step

    def test_verbose_shows_operator_trees(self, graph_db):
        text = graph_db.explain(pagerank_query(iterations=5), verbose=True)
        assert "LEFTJoin" in text
        assert "Aggregate" in text
        assert "TempScan" in text


class TestFigureFive:
    """Fig. 5: PR-VS materializes COMMON#1 = edges ⋈ vertexStatus before
    the loop and reuses it inside the iterative part."""

    def test_common_block_materialized_before_loop(self, graph_vs_db):
        text = graph_vs_db.explain(
            pagerank_query(iterations=5, with_vertex_status=True))
        lines = text.splitlines()
        common_line = next(i for i, line in enumerate(lines)
                           if "COMMON#1" in line)
        init_line = next(i for i, line in enumerate(lines)
                         if "Initialize counter" in line)
        assert common_line < init_line

    def test_common_block_contains_the_invariant_join(self, graph_vs_db):
        text = graph_vs_db.explain(
            pagerank_query(iterations=5, with_vertex_status=True),
            verbose=True)
        # The block joins edges and vertexStatus with the status filter.
        assert "COMMON#1" in text
        assert "vertexStatus" in text or "vertexstatus" in text

    def test_disabled_option_removes_common_block(self, graph_vs_db):
        graph_vs_db.set_option("enable_common_results", False)
        text = graph_vs_db.explain(
            pagerank_query(iterations=5, with_vertex_status=True))
        assert "COMMON#" not in text

    def test_explain_statement_form(self, graph_db):
        result = graph_db.execute("EXPLAIN SELECT src FROM edges")
        assert result.table is not None
        assert any("Return final query" in row[0]
                   for row in result.rows())


class TestPushdownVisibility:
    def test_pushed_predicate_visible_in_init_plan(self, graph_db):
        text = graph_db.explain(
            ff_query(iterations=5, selectivity_mod=100), verbose=True)
        head = text.split("Initialize")[0]
        assert "MOD" in head  # the predicate moved before the loop

    def test_disabled_pushdown_leaves_predicate_in_final(self, graph_db):
        graph_db.set_option("enable_predicate_pushdown", False)
        text = graph_db.explain(
            ff_query(iterations=5, selectivity_mod=100), verbose=True)
        head = text.split("Initialize")[0]
        assert "MOD" not in head
