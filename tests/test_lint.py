"""Engine lint: clean on the real tree, non-vacuous on seeded trees.

The ``lint_smoke`` marker runs the real-tree check as a tier-1 guard
(the same thing ``repro-lint`` does in CI); the seeded-tree tests prove
each rule family actually fires by building tiny synthetic package
trees with one violation each.
"""

import textwrap

import pytest

from repro.verify.lint import Linter, main, run_lint


@pytest.mark.lint_smoke
class TestRealTree:
    def test_package_tree_is_clean(self):
        issues = run_lint()
        assert issues == [], "\n".join(i.render() for i in issues)

    def test_cli_exit_zero(self, capsys):
        assert main([]) == 0
        assert "repro-lint: ok" in capsys.readouterr().out


def _tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


# A minimal program.py/handlers pair with full coverage, used as the
# clean baseline each seeded violation perturbs.
_CLEAN = {
    "plan/program.py": """
        class Step:
            pass

        class MoveStep(Step):
            pass
        """,
    "runtime/handlers/core.py": """
        @handles(MoveStep)
        def run_move(runner, step):
            runner.ctx.registry.rename(step.source, step.target)
        """,
}


def _rules(issues):
    return {issue.rule for issue in issues}


class TestSeededViolations:
    def test_clean_baseline(self, tmp_path):
        assert run_lint(_tree(tmp_path, _CLEAN)) == []

    def test_unhandled_step_detected(self, tmp_path):
        files = dict(_CLEAN)
        files["plan/program.py"] += \
            "\n        class OrphanStep(Step):\n            pass\n"
        issues = run_lint(_tree(tmp_path, files))
        assert _rules(issues) == {"handler-coverage"}
        assert any("OrphanStep" in i.message for i in issues)

    def test_handler_for_ghost_step_detected(self, tmp_path):
        files = dict(_CLEAN)
        files["runtime/handlers/core.py"] += (
            "\n        @handles(GhostStep)\n"
            "        def run_ghost(runner, step):\n"
            "            pass\n")
        issues = run_lint(_tree(tmp_path, files))
        assert _rules(issues) == {"handler-coverage"}
        assert any("GhostStep" in i.message for i in issues)

    def test_private_registry_access_detected(self, tmp_path):
        files = dict(_CLEAN)
        files["runtime/handlers/core.py"] = """
            @handles(MoveStep)
            def run_move(runner, step):
                runner.ctx.registry._tables.pop(step.source)
            """
        issues = run_lint(_tree(tmp_path, files))
        assert _rules(issues) == {"mutation-api"}
        assert any("registry._tables" in i.message for i in issues)

    def test_catalog_mutation_detected(self, tmp_path):
        files = dict(_CLEAN)
        files["runtime/handlers/core.py"] = """
            @handles(MoveStep)
            def run_move(runner, step):
                runner.ctx.catalog.register(step.target)
            """
        issues = run_lint(_tree(tmp_path, files))
        assert _rules(issues) == {"mutation-api"}

    def test_deprecated_import_detected(self, tmp_path):
        files = dict(_CLEAN)
        files["engine/database.py"] = \
            "from .core.runner import run_program\n"
        issues = run_lint(_tree(tmp_path, files))
        assert _rules(issues) == {"deprecated-import"}

    def test_compat_shim_is_exempt(self, tmp_path):
        files = dict(_CLEAN)
        files["core/loop.py"] = "from .core.runner import run_program\n"
        assert run_lint(_tree(tmp_path, files)) == []

    def test_bare_tracer_construction_detected(self, tmp_path):
        files = dict(_CLEAN)
        files["execution/helper.py"] = """
            def run(plan):
                tracer = Tracer()
                return tracer
            """
        issues = run_lint(_tree(tmp_path, files))
        assert _rules(issues) == {"tracer-discipline"}

    def test_tracer_entry_points_may_build(self, tmp_path):
        files = dict(_CLEAN)
        files["engine/database.py"] = """
            def execute(sql, options):
                tracer = Tracer() if options.enable_tracing else NULL_TRACER
                return tracer
            """
        assert run_lint(_tree(tmp_path, files)) == []

    def test_unguarded_start_detected(self, tmp_path):
        files = dict(_CLEAN)
        files["execution/helper.py"] = """
            def run(tracer):
                span = tracer.start("phase")
                return span
            """
        issues = run_lint(_tree(tmp_path, files))
        assert _rules(issues) == {"tracer-discipline"}
        assert any("NULL_TRACER" in i.message for i in issues)

    def test_guarded_start_is_clean(self, tmp_path):
        files = dict(_CLEAN)
        files["execution/helper.py"] = """
            def run(tracer):
                span = None
                if tracer.enabled:
                    span = tracer.start("phase")
                return span
            """
        assert run_lint(_tree(tmp_path, files)) == []

    def test_engine_session_state_detected(self, tmp_path):
        files = dict(_CLEAN)
        files["engine/engine.py"] = """
            class Engine:
                def __init__(self):
                    self.catalog = object()
                    self.transactions = object()
            """
        issues = run_lint(_tree(tmp_path, files))
        assert _rules(issues) == {"engine-layering"}
        assert any("self.transactions" in i.message for i in issues)

    def test_engine_module_level_session_import_detected(self, tmp_path):
        files = dict(_CLEAN)
        files["engine/engine.py"] = """
            from .session import Session

            class Engine:
                def __init__(self):
                    self.catalog = object()
            """
        issues = run_lint(_tree(tmp_path, files))
        assert _rules(issues) == {"engine-layering"}
        assert any("session → engine" in i.message for i in issues)

    def test_engine_function_level_import_is_clean(self, tmp_path):
        files = dict(_CLEAN)
        files["engine/engine.py"] = """
            class Engine:
                def __init__(self):
                    self.catalog = object()

                def create_session(self):
                    from .session import Session
                    return Session(self)
            """
        assert run_lint(_tree(tmp_path, files)) == []

    def test_session_scoped_names_allowed_outside_engine(self, tmp_path):
        files = dict(_CLEAN)
        files["engine/session.py"] = """
            class Session:
                def __init__(self, engine):
                    self.transactions = object()
                    self.registry = object()
            """
        assert run_lint(_tree(tmp_path, files)) == []

    def test_syntax_error_reported_not_crashed(self, tmp_path):
        files = dict(_CLEAN)
        files["broken.py"] = "def nope(:\n"
        issues = run_lint(_tree(tmp_path, files))
        assert _rules(issues) == {"parse"}

    def test_cli_exit_nonzero_on_findings(self, tmp_path, capsys):
        files = dict(_CLEAN)
        files["plan/program.py"] += \
            "\n        class OrphanStep(Step):\n            pass\n"
        root = _tree(tmp_path, files)
        assert main(["--root", str(root)]) == 1
        assert "handler-coverage" in capsys.readouterr().out
