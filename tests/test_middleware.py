"""Middleware-baseline tests: result equivalence with the native path and
the per-statement overhead the paper's §II argues about."""

import pytest

from repro import Database
from repro.datasets import dblp_like, fresh_database, generate_edges
from repro.errors import PlanError
from repro.middleware import MiddlewareDriver
from repro.workloads import ff_query, pagerank_query, sssp_query

SPEC = dblp_like(nodes=120, seed=9)


@pytest.fixture
def native_db():
    return fresh_database(SPEC)


@pytest.fixture
def middleware_db():
    return fresh_database(SPEC)


class TestEquivalence:
    @pytest.mark.parametrize("sql_builder", [
        lambda: pagerank_query(iterations=4),
        lambda: sssp_query(source=1, iterations=5),
        lambda: ff_query(iterations=3, selectivity_mod=10,
                         order_and_limit=False),
    ], ids=["pr", "sssp", "ff"])
    def test_same_results_as_native(self, sql_builder, native_db,
                                    middleware_db):
        sql = sql_builder()
        native = sorted(native_db.execute(sql).rows())
        driver = MiddlewareDriver(middleware_db)
        external = sorted(driver.run(sql).rows())
        assert len(native) == len(external)
        for native_row, external_row in zip(native, external):
            assert native_row == pytest.approx(external_row)

    def test_data_termination_equivalence(self, native_db, middleware_db):
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT 1, 1 ITERATE SELECT k, v * 2 FROM r UNTIL v > 500
        ) SELECT v FROM r"""
        assert native_db.execute(sql).scalar() \
            == MiddlewareDriver(middleware_db).run(sql).scalar()

    def test_delta_termination_equivalence(self, native_db, middleware_db):
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT 1, 64 ITERATE
          SELECT k, CASE WHEN v > 1 THEN v / 2 ELSE v END FROM r
          UNTIL DELTA = 0
        ) SELECT v FROM r"""
        assert native_db.execute(sql).scalar() \
            == MiddlewareDriver(middleware_db).run(sql).scalar()


class TestOverheadAccounting:
    def test_statement_explosion(self, middleware_db):
        """§II: middleware turns one query into dozens of statements."""
        driver = MiddlewareDriver(middleware_db)
        driver.run(pagerank_query(iterations=10))
        report = driver.report
        # 1 probe + 2 CREATE + 1 initial INSERT + 10 * (DELETE + INSERT +
        # UPDATE) + final + 2 DROP = 37.
        assert report.statements_issued == 37
        assert report.ddl_statements == 4
        assert report.dml_statements == 31  # initial + 10x(DEL/INS/UPD)
        assert report.probe_queries == 2    # schema probe + final query

    def test_workload_manager_sees_many_units(self, middleware_db):
        middleware_db.reset_stats()
        driver = MiddlewareDriver(middleware_db)
        driver.run(pagerank_query(iterations=5))
        assert middleware_db.workload.units_admitted > 15

    def test_native_is_one_scheduling_unit(self, native_db):
        native_db.reset_stats()
        native_db.execute(pagerank_query(iterations=5))
        assert native_db.workload.units_admitted == 1

    def test_middleware_acquires_many_locks(self, middleware_db,
                                            native_db):
        driver = MiddlewareDriver(middleware_db)
        driver.run(pagerank_query(iterations=5))
        native_db.execute(pagerank_query(iterations=5))
        assert middleware_db.transactions.stats.locks_acquired > 10
        assert native_db.transactions.stats.locks_acquired == 0

    def test_temp_tables_cleaned_up(self, middleware_db):
        driver = MiddlewareDriver(middleware_db)
        driver.run(ff_query(iterations=2, selectivity_mod=10,
                            order_and_limit=False))
        leftovers = [name for name in middleware_db.catalog.table_names()
                     if name.startswith("__mw_")]
        assert leftovers == []

    def test_cleanup_happens_on_failure(self, middleware_db):
        driver = MiddlewareDriver(middleware_db)
        bad = """
        WITH ITERATIVE r (k, v) AS (
          SELECT 1, 1 ITERATE SELECT k, no_such_column FROM r
          UNTIL 2 ITERATIONS
        ) SELECT v FROM r"""
        with pytest.raises(Exception):
            driver.run(bad)
        leftovers = [name for name in middleware_db.catalog.table_names()
                     if name.startswith("__mw_")]
        assert leftovers == []


class TestValidation:
    def test_rejects_plain_query(self, middleware_db):
        with pytest.raises(PlanError):
            MiddlewareDriver(middleware_db).run("SELECT 1")

    def test_rejects_multiple_iterative_ctes(self, middleware_db):
        sql = """
        WITH ITERATIVE a (x) AS (SELECT 1 ITERATE SELECT x FROM a
                                 UNTIL 1 ITERATIONS),
             ITERATIVE b (y) AS (SELECT 2 ITERATE SELECT y FROM b
                                 UNTIL 1 ITERATIONS)
        SELECT * FROM a, b"""
        with pytest.raises(PlanError):
            MiddlewareDriver(middleware_db).run(sql)
