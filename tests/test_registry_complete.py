"""Every Step subclass dispatches through the runtime registry.

The static half of this guarantee is the engine lint's handler-coverage
rule (AST-level); this is the dynamic half: import the real handler
modules, enumerate the actual ``Step`` subclasses, and check the
registry resolves each one without the ``unknown step type`` fallback.
"""

import inspect

import pytest

import repro.plan.program as program_module
import repro.runtime.handlers  # noqa: F401  -- populates HANDLERS
from repro.plan.program import Step
from repro.runtime.registry import HANDLERS


def _step_subclasses():
    return sorted(
        (obj for _, obj in inspect.getmembers(program_module, inspect.isclass)
         if issubclass(obj, Step) and obj is not Step),
        key=lambda cls: cls.__name__)


def _resolve(step_type):
    for cls in step_type.__mro__:
        if cls in HANDLERS:
            return HANDLERS[cls]
    return None


@pytest.mark.parametrize("step_type", _step_subclasses(),
                         ids=lambda cls: cls.__name__)
def test_step_has_registered_handler(step_type):
    handler = _resolve(step_type)
    assert handler is not None, \
        f"{step_type.__name__} would raise 'unknown step type' at dispatch"
    assert callable(handler)


def test_registry_names_only_real_steps():
    for registered in HANDLERS:
        assert issubclass(registered, Step), \
            f"{registered.__name__} is registered but is not a Step"


def test_enumeration_is_not_vacuous():
    # The program IR currently defines 16 step kinds; a refactor that
    # moves them out of repro.plan.program must move this guard too.
    assert len(_step_subclasses()) >= 16
