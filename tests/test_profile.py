"""Profile aggregation and the ``repro-profile`` CLI (repro.obs.profile).

Folds real traces (from explain_analyze runs) into hot-stack profiles,
loop rollups joined against cost-model estimates, collapsed-stack
export, and the rendered decision timeline.
"""

from __future__ import annotations

import json

import pytest

from repro.datasets import dblp_like, generate_edges
from repro.engine.database import Database
from repro.execution import SessionOptions
from repro.obs.profile import (
    aggregate_profile,
    collapsed_stacks,
    main,
    render_decision_timeline,
    render_profile,
)
from repro.types import SqlType
from repro.workloads import pagerank_query, sssp_query

EDGES = generate_edges(dblp_like(nodes=200, seed=21))


def traced_trace(sql, **options) -> dict:
    db = Database(SessionOptions(**options))
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", EDGES)
    db.explain_analyze(sql)
    return json.loads(db.trace_json())


@pytest.fixture(scope="module")
def pagerank_trace() -> dict:
    return traced_trace(pagerank_query(iterations=8),
                        enable_delta_iteration=True)


class TestAggregation:
    def test_iterations_fold_into_one_frame(self, pagerank_trace):
        profile = aggregate_profile(pagerank_trace)
        iteration_entries = [e for e in profile.entries.values()
                             if e.frame == "iteration"]
        assert len(iteration_entries) == 1
        assert iteration_entries[0].count == 8

    def test_exclusive_never_exceeds_inclusive(self, pagerank_trace):
        profile = aggregate_profile(pagerank_trace)
        assert profile.entries, "profile folded no stacks"
        for entry in profile.entries.values():
            assert 0.0 <= entry.exclusive <= entry.inclusive + 1e-9

    def test_step_frames_keyed_by_program_position(self, pagerank_trace):
        profile = aggregate_profile(pagerank_trace)
        step_frames = {e.frame for e in profile.entries.values()
                       if "#" in e.frame}
        assert step_frames, "expected step frames keyed as name#index"

    def test_loop_rollup_joins_cost_estimate(self, pagerank_trace):
        profile = aggregate_profile(pagerank_trace)
        (rollup,) = profile.loops
        assert rollup.cte == "pagerank"
        assert rollup.iterations == 8
        assert rollup.total_seconds > 0
        assert rollup.estimated_iterations == 8
        assert rollup.estimate_basis is not None

    def test_decision_events_collected(self, pagerank_trace):
        profile = aggregate_profile(pagerank_trace)
        names = [event["name"] for event in profile.decisions]
        assert "strategy_selection" in names
        # PageRank's near-full frontier demotes the loop mid-flight.
        assert "strategy_demotion" in names


class TestCollapsedStacks:
    def test_lines_sum_to_total_within_rounding(self, pagerank_trace):
        lines = collapsed_stacks(pagerank_trace)
        assert lines
        total_us = 0
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert ";" in stack or stack  # root line has no separator
            assert int(weight) > 0
            total_us += int(weight)
        root_us = pagerank_trace["root"]["seconds"] * 1e6
        assert total_us <= root_us + len(lines)  # rounding slack only

    def test_stacks_are_semicolon_paths_from_root(self, pagerank_trace):
        lines = collapsed_stacks(pagerank_trace)
        root_name = pagerank_trace["root"]["name"]
        deep = [line for line in lines if ";" in line]
        assert deep
        for line in deep:
            assert line.startswith(root_name + ";")


class TestRendering:
    def test_render_profile_sections(self, pagerank_trace):
        text = render_profile(pagerank_trace)
        assert "hot frames" in text
        assert "loop pagerank" in text
        assert "estimated 8 iterations" in text
        assert "decision timeline:" in text
        assert "selected semi-naive-delta" in text

    def test_demotion_line_shows_frontier_vs_budget(self, pagerank_trace):
        profile = aggregate_profile(pagerank_trace)
        lines = render_decision_timeline(profile.decisions)
        demotions = [line for line in lines if "demoted" in line]
        assert demotions
        assert "vs budget" in demotions[0]

    def test_sssp_without_demotion_still_has_selection(self):
        trace = traced_trace(sssp_query(source=1, iterations=5),
                             enable_delta_iteration=True)
        text = render_profile(trace)
        assert "selected semi-naive-delta" in text
        assert "demoted" not in text


class TestCli:
    def test_report_and_collapsed_output(self, pagerank_trace, tmp_path,
                                         capsys):
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(json.dumps(pagerank_trace))
        folded_path = tmp_path / "folded.txt"
        assert main([str(trace_path), "--top", "3",
                     "--collapsed", str(folded_path)]) == 0
        out = capsys.readouterr().out
        assert "decision timeline:" in out
        folded = folded_path.read_text().splitlines()
        assert folded and all(line.rsplit(" ", 1)[1].isdigit()
                              for line in folded)

    def test_rejects_invalid_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        assert main([str(bad)]) == 2
        assert "repro-profile" in capsys.readouterr().err

    def test_rejects_unreadable_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err
