"""Chunked append-only storage (SegmentedTable).

Edge cases the recursive fixpoint leans on: empty-delta appends,
repeated appends across segment boundaries, lazy consolidation
semantics, metadata reads that must not consolidate, and DML
invalidation when base tables become segmented after INSERT."""

import pytest

from repro.engine.database import Database
from repro.errors import TypeCheckError
from repro.storage import Column, ColumnSchema, Schema, SegmentedTable, Table
from repro.types import SqlType


def make_table(values):
    schema = Schema((ColumnSchema("k", SqlType.INTEGER),
                     ColumnSchema("v", SqlType.TEXT)))
    return Table(schema, [
        Column.from_values(SqlType.INTEGER, [k for k, _ in values]),
        Column.from_values(SqlType.TEXT, [v for _, v in values]),
    ])


class TestAppend:
    def test_append_accumulates_segments_without_copying(self):
        table = SegmentedTable.wrap(make_table([(1, "a")]))
        for i in range(2, 6):
            table.append(make_table([(i, "x")]))
        assert table.segment_count == 5
        assert table.num_rows == 5
        assert table.consolidations == 0

    def test_empty_delta_is_a_no_op(self):
        table = SegmentedTable.wrap(make_table([(1, "a")]))
        table.append(Table.empty(table.schema))
        assert table.segment_count == 1
        assert table.num_rows == 1

    def test_arity_mismatch_rejected(self):
        table = SegmentedTable.wrap(make_table([(1, "a")]))
        narrow = Table(Schema((ColumnSchema("k", SqlType.INTEGER),)),
                       [Column.from_values(SqlType.INTEGER, [9])])
        with pytest.raises(TypeCheckError):
            table.append(narrow)

    def test_wrap_is_idempotent(self):
        table = SegmentedTable.wrap(make_table([(1, "a")]))
        assert SegmentedTable.wrap(table) is table


class TestConsolidation:
    def test_reads_consolidate_lazily_and_once(self):
        table = SegmentedTable.wrap(make_table([(1, "a"), (2, "b")]))
        table.append(make_table([(3, "c")]))
        table.append(make_table([(4, "d")]))
        assert table.consolidations == 0
        assert table.rows() == [(1, "a"), (2, "b"), (3, "c"), (4, "d")]
        assert table.consolidations == 1
        assert table.rows_consolidated == 4
        # A second read reuses the flattened segment.
        table.rows()
        assert table.consolidations == 1
        assert table.segment_count == 1

    def test_append_after_consolidation(self):
        table = SegmentedTable.wrap(make_table([(1, "a")]))
        table.append(make_table([(2, "b")]))
        table.rows()
        table.append(make_table([(3, "c")]))
        assert table.segment_count == 2
        assert table.rows() == [(1, "a"), (2, "b"), (3, "c")]

    def test_type_widening_across_segments(self):
        schema = Schema((ColumnSchema("k", SqlType.INTEGER),))
        table = SegmentedTable.wrap(
            Table(schema, [Column.from_values(SqlType.INTEGER, [1])]))
        wider = Table(Schema((ColumnSchema("k", SqlType.FLOAT),)),
                      [Column.from_values(SqlType.FLOAT, [2.5])])
        table.append(wider)
        # Schema widened eagerly, data converted at consolidation time.
        assert table.schema.columns[0].sql_type is SqlType.FLOAT
        assert table.rows() == [(1.0,), (2.5,)]


class TestMetadataReads:
    def test_num_rows_and_nbytes_do_not_consolidate(self):
        table = SegmentedTable.wrap(make_table([(1, "a")]))
        table.append(make_table([(2, "b")]))
        parts = sum(seg.nbytes() for seg in table._segments)
        assert table.num_rows == 2
        assert table.nbytes() == parts
        assert table.consolidations == 0

    def test_known_columns_exposes_all_segments(self):
        table = SegmentedTable.wrap(make_table([(1, "a")]))
        table.append(make_table([(2, "b")]))
        assert len(table.known_columns()) == 4  # 2 segments x 2 columns
        assert table.consolidations == 0


class TestDmlIntegration:
    def _db(self):
        db = Database()
        db.create_table("edge", [("a", SqlType.INTEGER),
                                 ("b", SqlType.INTEGER)])
        db.load_rows("edge", [(1, 2), (2, 3)])
        return db

    CLOSURE = """
    WITH RECURSIVE reach (a, b) AS (
      SELECT a, b FROM edge
      UNION
      SELECT r.a, e.b FROM reach r JOIN edge e ON r.b = e.a
    ) SELECT a, b FROM reach"""

    def test_insert_segments_the_base_table(self):
        db = self._db()
        db.execute("INSERT INTO edge VALUES (3, 4)")
        table = db.table("edge")
        assert isinstance(table, SegmentedTable)
        assert table.segment_count == 2
        assert db.execute("SELECT count(*) FROM edge").scalar() == 3

    def test_insert_invalidates_cached_state_on_segmented_tables(self):
        db = self._db()
        assert sorted(db.execute(self.CLOSURE).rows()) == [
            (1, 2), (1, 3), (2, 3)]
        db.execute("INSERT INTO edge VALUES (3, 4)")
        assert sorted(db.execute(self.CLOSURE).rows()) == [
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        # A second INSERT hits an already-segmented table.
        db.execute("INSERT INTO edge VALUES (4, 5)")
        assert (4, 5) in db.execute("SELECT a, b FROM edge").rows()

    def test_update_and_delete_on_segmented_table(self):
        db = self._db()
        db.execute("INSERT INTO edge VALUES (3, 4)")
        db.execute("UPDATE edge SET b = 9 WHERE a = 3")
        assert (3, 9) in db.execute("SELECT a, b FROM edge").rows()
        db.execute("DELETE FROM edge WHERE a = 1")
        assert db.execute("SELECT count(*) FROM edge").scalar() == 2

    def test_recursive_append_moves_only_the_delta(self):
        db = self._db()
        db.load_rows("edge", [(i, i + 1) for i in range(3, 50)])
        db.set_option("enable_tracing", True)
        db.execute(self.CLOSURE)
        records = db.last_trace().loops[0].records
        # Each iteration's merge appends |delta| rows; with the
        # accumulated result far larger, rows_moved must track the
        # delta, not the total (the O(|delta|) append guarantee).
        for record in records:
            assert record.rows_moved <= record.delta_rows
        assert any(r.total_rows > 10 * max(r.delta_rows, 1)
                   for r in records)
