"""Unified loop runtime tests.

Covers the strategy layer the ``repro.runtime`` package adds on top of
the step interpreter: cost-based strategy selection, feedback-driven
mid-loop demotion (semi-naive -> full recomputation when the frontier
stays near-full), the widened INNER-join delta safety analysis with its
run-time keyset guard, step-identity execution profiles, and the
baseline spans (middleware, stored procedures) published into
``Database.trace_json()``.
"""

import json

import pytest

from repro.datasets import dblp_like, generate_edges
from repro.engine.database import Database
from repro.execution import SessionOptions
from repro.middleware import MiddlewareDriver
from repro.obs.export import validate_trace_dict
from repro.plan.program import DeltaFusedStep, DeltaGateStep
from repro.procedures import ExecuteSql, Loop, Procedure, ProcedureCatalog, ReturnQuery
from repro.types import SqlType
from repro.workloads import pagerank_query, sssp_query

EDGES = generate_edges(dblp_like(nodes=200, seed=21))

# Node 4 has an outgoing edge but loses all its INNER-join partners once
# values cross 1.0 — the keyset-shrinking case the run-time guard exists
# for.
SMALL_EDGES = [(1, 2, 0.5), (1, 3, 0.5), (2, 3, 1.0), (3, 1, 1.0),
               (4, 1, 1.0)]


def graph_db(edges=EDGES, **options) -> Database:
    db = Database(SessionOptions(**options))
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", edges)
    return db


def both_modes(sql, edges=EDGES, **options):
    """(full rows, delta rows, delta-mode database) for one query."""
    full = graph_db(edges, enable_delta_iteration=False,
                    **options).execute(sql).rows()
    db = graph_db(edges, enable_delta_iteration=True, **options)
    delta = db.execute(sql).rows()
    return full, delta, db


INNER_JOIN_SQL = """
WITH ITERATIVE r (node, v) AS (
  SELECT src, 0.0 FROM edges GROUP BY src
  ITERATE SELECT r.node, min(r.v + e.weight)
          FROM r JOIN edges e ON e.src = r.node
          GROUP BY r.node
  UNTIL 4 ITERATIONS
) SELECT node, v FROM r ORDER BY node"""

KEY_DROPPING_SQL = """
WITH ITERATIVE r (node, v) AS (
  SELECT src, 0.0 FROM edges GROUP BY src
  ITERATE SELECT r.node, min(r.v + e.weight)
          FROM r JOIN edges e ON e.src = r.node AND r.v < 1.0
          GROUP BY r.node
  UNTIL 3 ITERATIONS
) SELECT node, v FROM r ORDER BY node"""


def _compile(db, sql):
    from repro.core.rewrite import compile_statement
    from repro.plan import PlanContext
    from repro.sql import parse
    return compile_statement(parse(sql), PlanContext(db.catalog),
                             db.options, db.stats)


class TestStrategySelection:
    def test_delta_safe_loop_selects_semi_naive(self):
        db = graph_db(enable_delta_iteration=True)
        report = db.explain_analyze(sssp_query(source=1, iterations=5))
        assert "strategy semi-naive-delta" in report

    def test_rename_without_delta_selects_rename_in_place(self):
        db = graph_db(enable_delta_iteration=False)
        report = db.explain_analyze(sssp_query(source=1, iterations=5))
        assert "strategy rename-in-place" in report

    def test_copy_movement_selects_full_recompute(self):
        db = graph_db(enable_delta_iteration=False, enable_rename=False)
        report = db.explain_analyze(sssp_query(source=1, iterations=5))
        assert "strategy full-recompute" in report


class TestMidLoopDemotion:
    """PageRank rewrites every row every iteration; the frontier stays
    near-full, so semi-naive bookkeeping is pure overhead and the engine
    demotes the loop mid-flight."""

    def test_pagerank_demotes_to_full_recompute(self):
        sql = pagerank_query(iterations=8)
        full, delta, db = both_modes(sql, enable_rename=False)
        assert full == delta
        assert db.stats.strategy_demotions == 1
        # Demotion happened mid-loop: some delta iterations did run.
        assert db.stats.delta_iterations > 0

    def test_pagerank_demotes_to_rename_in_place(self):
        sql = pagerank_query(iterations=8)
        full, delta, db = both_modes(sql)
        assert full == delta
        assert db.stats.strategy_demotions == 1

    def test_demotion_visible_in_explain_analyze(self):
        db = graph_db(enable_delta_iteration=True, enable_rename=False)
        report = db.explain_analyze(pagerank_query(iterations=8))
        assert "demoted semi-naive-delta -> full-recompute" in report

    def test_sparse_frontier_never_demotes(self):
        # SSSP waves shrink; the strategy keeps earning its keep.
        full, delta, db = both_modes(sssp_query(source=1, iterations=10))
        assert full == delta
        assert db.stats.strategy_demotions == 0
        assert db.stats.delta_iterations > 0

    def test_demotion_can_be_disabled(self):
        sql = pagerank_query(iterations=8)
        full, delta, db = both_modes(sql, enable_strategy_demotion=False)
        assert full == delta
        assert db.stats.strategy_demotions == 0
        # Without demotion, every iteration goes through the delta path.
        assert db.stats.delta_iterations >= 7


# Frontier profile by construction: iterations 1-3 rewrite every row
# (v < 3.0), demoting the loop after two near-full frontiers; from
# iteration 4 only the MOD(node, 10) = 0 stragglers keep moving, so the
# frontier collapses to ~10% and the promotion watcher hands the loop
# back to semi-naive delta for the remaining iterations.
PROMOTION_SQL = """
WITH ITERATIVE r (node, v) AS (
  SELECT src, 0.0 FROM edges GROUP BY src
  ITERATE SELECT r.node,
          CASE WHEN r.v < 3.0 OR MOD(r.node, 10) = 0
               THEN r.v + 1.0 ELSE r.v END
          FROM r
  UNTIL 12 ITERATIONS
) SELECT node, v FROM r ORDER BY node"""


class TestMidLoopPromotion:
    """The inverse of demotion: a demoted loop whose frontier later
    collapses gets promoted back to semi-naive delta mid-flight."""

    def test_demoted_loop_repromotes_when_the_frontier_collapses(self):
        full, delta, db = both_modes(PROMOTION_SQL)
        assert full == delta
        assert db.stats.strategy_demotions == 1
        assert db.stats.strategy_promotions == 1
        # Delta iterations ran both before the demotion and after the
        # promotion.
        assert db.stats.delta_iterations > 2

    def test_promotion_visible_in_explain_analyze(self):
        db = graph_db(enable_delta_iteration=True)
        report = db.explain_analyze(PROMOTION_SQL)
        assert "promoted" in report
        assert "-> semi-naive-delta" in report

    def test_telemetry_records_the_strategy_chain(self):
        db = graph_db(enable_delta_iteration=True, enable_tracing=True)
        db.execute(PROMOTION_SQL)
        chain = db.last_trace().loops[0].strategy
        assert chain is not None and chain.count("->") == 2
        assert chain.startswith("semi-naive-delta")
        assert chain.endswith("semi-naive-delta")

    def test_promotion_can_be_disabled(self):
        full, delta, db = both_modes(PROMOTION_SQL,
                                     enable_strategy_promotion=False)
        assert full == delta
        assert db.stats.strategy_demotions == 1
        assert db.stats.strategy_promotions == 0

    def test_full_frontier_never_promotes(self):
        # PageRank's frontier never collapses: the loop demotes once and
        # stays demoted.
        full, delta, db = both_modes(pagerank_query(iterations=8))
        assert full == delta
        assert db.stats.strategy_demotions == 1
        assert db.stats.strategy_promotions == 0

    def test_permanent_disqualification_never_promotes(self):
        # Duplicate keys disable delta evaluation outright; the frontier
        # being tiny afterwards must not resurrect it.
        sql = """
        WITH ITERATIVE r (node, v) AS (
          SELECT src, 0.0 FROM edges
          ITERATE SELECT r.node, r.v + 1.0 FROM r
          UNTIL 6 ITERATIONS
        ) SELECT node, v FROM r"""
        full, delta, db = both_modes(sql)
        assert full == delta
        assert db.stats.strategy_promotions == 0
        assert db.stats.delta_iterations == 0


class TestInnerJoinSafety:
    def test_analyzer_accepts_inner_join_without_where(self):
        db = graph_db(enable_delta_iteration=True)
        program = _compile(db, INNER_JOIN_SQL)
        gates = [s for s in program.steps
                 if isinstance(s, DeltaFusedStep)]
        assert gates and gates[0].spec.guard_keyset

    def test_analyzer_leaves_left_joins_unguarded(self):
        db = graph_db(enable_delta_iteration=True)
        program = _compile(db, INNER_JOIN_SQL.replace(
            "FROM r JOIN edges", "FROM r LEFT JOIN edges"))
        gates = [s for s in program.steps
                 if isinstance(s, DeltaFusedStep)]
        assert gates and not gates[0].spec.guard_keyset

    def test_inner_join_body_runs_in_delta_mode(self):
        full, delta, db = both_modes(
            INNER_JOIN_SQL, enable_strategy_demotion=False)
        assert full == delta
        assert db.stats.delta_iterations > 0
        assert db.stats.delta_guard_fallbacks == 0

    def test_keyset_guard_catches_dropped_keys(self):
        # On SMALL_EDGES the r.v < 1.0 join predicate starts dropping
        # keys at iteration 2; the guard must detect the shrunken keyset
        # and rerun the full body instead of scattering a wrong delta.
        sql = KEY_DROPPING_SQL.replace("UNTIL 3 ITERATIONS",
                                       "UNTIL 2 ITERATIONS")
        full, delta, db = both_modes(sql, edges=SMALL_EDGES)
        assert full == delta == [(1, 1.0)]
        assert db.stats.delta_guard_fallbacks == 1

    def test_keyset_guard_stays_correct_once_the_table_empties(self):
        # One more iteration and the join drops every key; both modes
        # agree on the empty result, with exactly one guarded fallback.
        full, delta, db = both_modes(KEY_DROPPING_SQL, edges=SMALL_EDGES)
        assert full == delta == []
        assert db.stats.delta_guard_fallbacks == 1

    def test_inner_join_with_where_needs_no_guard(self):
        # WHERE-filtered bodies merge by key (dropped keys keep their
        # old values), so an INNER join there never shrinks the keyset
        # and the analyzer skips the run-time guard.
        sql = """
        WITH ITERATIVE r (node, v) AS (
          SELECT src, 0.0 FROM edges GROUP BY src
          ITERATE SELECT r.node, min(r.v + e.weight)
                  FROM r JOIN edges e ON e.src = r.node
                  WHERE r.v >= 0.0
                  GROUP BY r.node
          UNTIL 4 ITERATIONS
        ) SELECT node, v FROM r ORDER BY node"""
        db = graph_db(enable_delta_iteration=True)
        program = _compile(db, sql)
        gates = [s for s in program.steps
                 if isinstance(s, DeltaFusedStep)]
        assert gates and not gates[0].spec.guard_keyset


class TestStepIdentityProfiles:
    def test_profiles_key_on_step_objects_not_positions(self):
        from repro.execution import ExecutionContext
        from repro.runtime import ProgramRunner

        db = graph_db(enable_delta_iteration=True)
        program = _compile(db, sssp_query(source=1, iterations=5))
        ctx = ExecutionContext(db.catalog, db.registry, db.options,
                               db.stats, db.kernel_cache)
        runner = ProgramRunner(program, ctx, instrument=True)
        runner.run()
        by_id = {id(step): step for step in program.steps}
        assert runner.profiles
        for key, profile in runner.profiles.items():
            # Every profile key resolves to the very step object it
            # measured — identity, not list position.
            assert by_id[key] is not None
            assert profile.executions >= 1

    def test_delta_and_full_bodies_profile_separately(self):
        """The gate forks execution: the delta body and the full body of
        the same loop must not alias each other's profiles."""
        from repro.execution import ExecutionContext
        from repro.runtime import ProgramRunner

        from repro.plan.program import DeltaApplyStep

        db = graph_db(SMALL_EDGES, enable_delta_iteration=True,
                      enable_delta_fusion=False)
        program = _compile(db, KEY_DROPPING_SQL)
        ctx = ExecutionContext(db.catalog, db.registry, db.options,
                               db.stats, db.kernel_cache)
        runner = ProgramRunner(program, ctx, instrument=True)
        runner.run()
        gate = next(s for s in program.steps
                    if isinstance(s, DeltaGateStep))
        apply_step = next(s for s in program.steps
                          if isinstance(s, DeltaApplyStep))
        # The gate runs every iteration; the apply step only on the one
        # delta attempt (which its keyset guard aborts).
        assert runner.profiles[id(gate)].executions == 3
        assert runner.profiles[id(apply_step)].executions == 1


class TestBaselineTraces:
    def test_middleware_run_publishes_baseline_trace(self):
        db = graph_db(enable_tracing=True)
        MiddlewareDriver(db).run(pagerank_query(iterations=4))
        payload = json.loads(db.trace_json())
        validate_trace_dict(payload)
        kinds = _span_kinds([payload["root"]])
        assert "baseline" in kinds and "statement" in kinds
        assert payload["loops"][0]["kind"] == "middleware"
        assert len(payload["loops"][0]["iterations"]) == 4

    def test_middleware_trace_off_by_default(self):
        db = graph_db()
        driver = MiddlewareDriver(db)
        driver.run(pagerank_query(iterations=4))
        assert driver.last_telemetry is not None
        assert driver.last_telemetry.iterations == 4

    def test_procedure_call_publishes_baseline_trace(self):
        db = graph_db(enable_tracing=True)
        catalog = ProcedureCatalog(db)
        catalog.register(Procedure("count_edges", [
            ExecuteSql("SELECT count(*) FROM edges"),
            Loop(3, [ExecuteSql("SELECT max(src) FROM edges")]),
            ReturnQuery("SELECT count(*) FROM edges"),
        ]))
        catalog.call("count_edges")
        payload = json.loads(db.trace_json())
        validate_trace_dict(payload)
        baseline = _spans_of_kind([payload["root"]], "baseline")
        assert baseline and baseline[0]["name"] == \
            "procedure:count_edges"
        assert payload["loops"][0]["kind"] == "procedure"
        records = payload["loops"][0]["iterations"]
        assert len(records) == 3
        assert [r["working_rows"] for r in records] == [1, 1, 1]

    def test_loop_strategy_appears_in_loop_telemetry(self):
        db = graph_db(enable_delta_iteration=True, enable_tracing=True,
                      enable_rename=False)
        db.execute(pagerank_query(iterations=8))
        payload = json.loads(db.trace_json())
        validate_trace_dict(payload)
        strategies = [loop.get("strategy") for loop in payload["loops"]]
        assert "semi-naive-delta->full-recompute" in strategies


def _span_kinds(spans, acc=None):
    acc = set() if acc is None else acc
    for span in spans:
        acc.add(span["kind"])
        _span_kinds(span["children"], acc)
    return acc


def _spans_of_kind(spans, kind):
    found = []
    for span in spans:
        if span["kind"] == kind:
            found.append(span)
        found.extend(_spans_of_kind(span["children"], kind))
    return found
