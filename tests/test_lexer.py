"""Lexer unit tests."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(sql):
    return [t.type for t in tokenize(sql)[:-1]]  # drop EOF


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_recognized(self):
        tokens = tokenize("SELECT FROM WHERE")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_keywords_are_case_insensitive(self):
        assert kinds("select SeLeCt SELECT") == [TokenType.KEYWORD] * 3

    def test_identifiers(self):
        assert kinds("edges foo_bar x1") == [TokenType.IDENTIFIER] * 3

    def test_iterative_extension_keywords(self):
        tokens = tokenize("ITERATIVE ITERATE UNTIL ITERATIONS UPDATES")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_eof_is_last(self):
        assert tokenize("x")[-1].type is TokenType.EOF

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF


class TestNumbers:
    def test_integer(self):
        (token,) = tokenize("42")[:-1]
        assert token.type is TokenType.NUMBER
        assert token.text == "42"

    def test_float(self):
        assert texts("0.15") == ["0.15"]

    def test_leading_dot(self):
        assert texts(".5") == [".5"]

    def test_exponent(self):
        assert texts("1e5 1.5E-3 2e+4") == ["1e5", "1.5E-3", "2e+4"]

    def test_number_then_dot_identifier_is_trailing_dot_float(self):
        # "1." is a float per the grammar.
        tokens = tokenize("1.")
        assert tokens[0].text == "1."


class TestStrings:
    def test_simple_string(self):
        (token,) = tokenize("'hello'")[:-1]
        assert token.type is TokenType.STRING
        assert token.text == "hello"

    def test_escaped_quote(self):
        (token,) = tokenize("'it''s'")[:-1]
        assert token.text == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_empty_string(self):
        (token,) = tokenize("''")[:-1]
        assert token.text == ""


class TestQuotedIdentifiers:
    def test_quoted_identifier(self):
        (token,) = tokenize('"My Table"')[:-1]
        assert token.type is TokenType.IDENTIFIER
        assert token.text == "My Table"

    def test_quoted_keyword_stays_identifier(self):
        (token,) = tokenize('"select"')[:-1]
        assert token.type is TokenType.IDENTIFIER

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')


class TestOperatorsAndPunctuation:
    def test_multi_char_operators(self):
        assert texts("<> != <= >= ||") == ["<>", "!=", "<=", ">=", "||"]

    def test_single_char_operators(self):
        assert texts("= < > + - * / %") == list("=<>+-*/%")

    def test_punctuation(self):
        assert kinds("( ) , . ;") == [TokenType.PUNCTUATION] * 5

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert texts("a -- comment\n b") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert texts("a -- no newline") == ["a"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a /* oops")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("select\n  x")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("a\n@")
        assert "line 2" in str(excinfo.value)
