"""Optimization-rewrite unit tests: constant folding, predicate pushdown,
outer-to-inner conversion, the inner-over-left commute, and common-result
extraction — operating directly on logical plans."""

import itertools

import pytest

from repro.plan import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
    LogicalTempScan,
    LogicalUnion,
    PlanContext,
    build_statement,
)
from repro.rewrite import (
    apply_rules,
    extract_common_results,
    fold_expr,
    fold_plan_filters,
    inner_over_left_commute,
    is_loop_invariant,
    outer_to_inner,
    push_filters,
    optimize_plan,
)
from repro.execution import SessionOptions
from repro.sql import ast, parse
from repro.storage import Catalog, Schema, ColumnSchema
from repro.types import SqlType


def make_catalog():
    catalog = Catalog()
    catalog.create("edges", Schema.of(("src", SqlType.INTEGER),
                                      ("dst", SqlType.INTEGER),
                                      ("weight", SqlType.FLOAT)))
    catalog.create("vertexstatus", Schema.of(("node", SqlType.INTEGER),
                                             ("status", SqlType.INTEGER)))
    return catalog


def plan_of(sql, catalog=None):
    return build_statement(parse(sql), PlanContext(catalog or make_catalog()))


def expr_of(text):
    return parse(f"SELECT {text}").items[0].expr


def find_nodes(plan, node_type):
    return [n for n in plan.walk() if isinstance(n, node_type)]


class TestConstantFolding:
    def test_arithmetic(self):
        assert fold_expr(expr_of("1 + 2 * 3")) == ast.Literal(7)

    def test_integer_division_truncates(self):
        assert fold_expr(expr_of("7 / 2")) == ast.Literal(3)
        assert fold_expr(expr_of("-7 / 2")) == ast.Literal(-3)

    def test_comparison(self):
        assert fold_expr(expr_of("2 > 1")) == ast.Literal(True)

    def test_null_propagates(self):
        assert fold_expr(expr_of("1 + NULL")) == ast.Literal(None)

    def test_division_by_zero_not_folded(self):
        folded = fold_expr(expr_of("1 / 0"))
        assert isinstance(folded, ast.BinaryOp)

    def test_column_refs_untouched(self):
        expr = expr_of("x + (1 + 2)")
        folded = fold_expr(expr)
        assert folded == ast.BinaryOp(ast.BinaryOperator.ADD,
                                      ast.ColumnRef("x"), ast.Literal(3))

    def test_true_filter_removed_from_plan(self):
        plan = plan_of("SELECT src FROM edges WHERE 1 = 1")
        rewritten = apply_rules(plan, [fold_plan_filters])
        assert not find_nodes(rewritten, LogicalFilter)


class TestGenericPushdown:
    def test_filter_pushes_below_project(self):
        plan = plan_of("SELECT s FROM (SELECT src AS s FROM edges) t "
                       "WHERE t.s = 1")
        rewritten = apply_rules(plan, [push_filters])
        filters = find_nodes(rewritten, LogicalFilter)
        assert len(filters) == 1
        assert isinstance(filters[0].child, LogicalScan)

    def test_filter_splits_across_inner_join(self):
        plan = plan_of("""
            SELECT * FROM edges e1 JOIN edges e2 ON e1.dst = e2.src
            WHERE e1.weight > 1 AND e2.weight < 5""")
        rewritten = apply_rules(plan, [push_filters])
        join = find_nodes(rewritten, LogicalJoin)[0]
        assert isinstance(join.left, LogicalFilter)
        assert isinstance(join.right, LogicalFilter)

    def test_left_join_keeps_right_side_filter_above(self):
        plan = plan_of("""
            SELECT * FROM edges e1 LEFT JOIN edges e2 ON e1.dst = e2.src
            WHERE e2.weight IS NULL""")
        rewritten = apply_rules(plan, [push_filters])
        join = find_nodes(rewritten, LogicalJoin)[0]
        # IS NULL is not null-rejecting: must stay above the join.
        assert not isinstance(join.right, LogicalFilter)

    def test_left_join_pushes_left_side_filter(self):
        plan = plan_of("""
            SELECT * FROM edges e1 LEFT JOIN edges e2 ON e1.dst = e2.src
            WHERE e1.weight > 1""")
        rewritten = apply_rules(plan, [push_filters])
        join = find_nodes(rewritten, LogicalJoin)[0]
        assert isinstance(join.left, LogicalFilter)

    def test_filter_pushes_into_union_arms(self):
        plan = plan_of("""
            SELECT * FROM (SELECT src AS n FROM edges
                           UNION SELECT dst FROM edges) u
            WHERE u.n > 2""")
        rewritten = apply_rules(plan, [push_filters])
        union = find_nodes(rewritten, LogicalUnion)[0]
        assert find_nodes(union.left, LogicalFilter)
        assert find_nodes(union.right, LogicalFilter)

    def test_key_filter_pushes_below_aggregate(self):
        plan = plan_of("""
            SELECT * FROM (SELECT src, COUNT(*) AS c FROM edges
                           GROUP BY src) g
            WHERE g.src = 5""")
        rewritten = apply_rules(plan, [push_filters])
        agg = find_nodes(rewritten, LogicalAggregate)[0]
        assert find_nodes(agg.child, LogicalFilter)

    def test_aggregate_filter_stays_above(self):
        plan = plan_of("""
            SELECT * FROM (SELECT src, COUNT(*) AS c FROM edges
                           GROUP BY src) g
            WHERE g.c > 1""")
        rewritten = apply_rules(plan, [push_filters])
        agg = find_nodes(rewritten, LogicalAggregate)[0]
        assert not find_nodes(agg.child, LogicalFilter)

    def test_pushdown_preserves_results(self, graph_db):
        sql = """
            SELECT t.s FROM (SELECT src AS s, weight FROM edges) t
            WHERE t.s > 1 AND t.weight >= 1.0 ORDER BY t.s"""
        graph_db.set_option("enable_predicate_pushdown", True)
        with_opt = graph_db.execute(sql).rows()
        graph_db.set_option("enable_predicate_pushdown", False)
        without_opt = graph_db.execute(sql).rows()
        assert with_opt == without_opt


class TestOuterToInner:
    def test_null_rejecting_filter_converts(self):
        plan = plan_of("""
            SELECT * FROM edges e1 LEFT JOIN edges e2 ON e1.dst = e2.src
            WHERE e2.weight > 1""")
        rewritten = apply_rules(plan, [outer_to_inner])
        join = find_nodes(rewritten, LogicalJoin)[0]
        assert join.kind is ast.JoinKind.INNER

    def test_is_null_does_not_convert(self):
        plan = plan_of("""
            SELECT * FROM edges e1 LEFT JOIN edges e2 ON e1.dst = e2.src
            WHERE e2.weight IS NULL""")
        rewritten = apply_rules(plan, [outer_to_inner])
        join = find_nodes(rewritten, LogicalJoin)[0]
        assert join.kind is ast.JoinKind.LEFT

    def test_is_not_null_converts(self):
        plan = plan_of("""
            SELECT * FROM edges e1 LEFT JOIN edges e2 ON e1.dst = e2.src
            WHERE e2.weight IS NOT NULL""")
        rewritten = apply_rules(plan, [outer_to_inner])
        assert find_nodes(rewritten, LogicalJoin)[0].kind \
            is ast.JoinKind.INNER

    def test_filter_on_left_side_does_not_convert(self):
        plan = plan_of("""
            SELECT * FROM edges e1 LEFT JOIN edges e2 ON e1.dst = e2.src
            WHERE e1.weight > 1""")
        rewritten = apply_rules(plan, [outer_to_inner])
        assert find_nodes(rewritten, LogicalJoin)[0].kind \
            is ast.JoinKind.LEFT

    def test_inner_join_condition_converts_child_left_join(self):
        plan = plan_of("""
            SELECT * FROM edges e1
            LEFT JOIN edges e2 ON e1.dst = e2.src
            JOIN vertexstatus v ON v.node = e2.dst""")
        rewritten = apply_rules(plan, [outer_to_inner])
        kinds = [j.kind for j in find_nodes(rewritten, LogicalJoin)]
        assert ast.JoinKind.LEFT not in kinds

    def test_conversion_preserves_results(self, graph_db):
        sql = """
            SELECT e1.src, e2.dst FROM edges e1
            LEFT JOIN edges e2 ON e1.dst = e2.src
            WHERE e2.weight > 0.6 ORDER BY e1.src, e2.dst"""
        graph_db.set_option("enable_outer_to_inner", True)
        converted = graph_db.execute(sql).rows()
        graph_db.set_option("enable_outer_to_inner", False)
        plain = graph_db.execute(sql).rows()
        assert converted == plain


class TestInnerOverLeftCommute:
    def test_commute_fires(self):
        plan = plan_of("""
            SELECT * FROM edges e1
            LEFT JOIN edges e2 ON e1.dst = e2.src
            JOIN vertexstatus v ON v.node = e1.src""")
        rewritten = apply_rules(plan, [inner_over_left_commute])
        top = find_nodes(rewritten, LogicalJoin)[0]
        assert top.kind is ast.JoinKind.LEFT  # LEFT is now on top

    def test_commute_blocked_when_condition_touches_left_joins_right(self):
        plan = plan_of("""
            SELECT * FROM edges e1
            LEFT JOIN edges e2 ON e1.dst = e2.src
            JOIN vertexstatus v ON v.node = e2.dst""")
        rewritten = apply_rules(plan, [inner_over_left_commute])
        top = find_nodes(rewritten, LogicalJoin)[0]
        assert top.kind is ast.JoinKind.INNER  # unchanged


class TestCommonResultExtraction:
    def _step_plan(self):
        """A PR-VS-shaped iterative step plan with the CTE as TempScan."""
        catalog = make_catalog()
        context = PlanContext(catalog)
        from repro.plan import CteBinding
        context.cte_bindings["pagerank"] = CteBinding(
            "__cte_pr", (("node", SqlType.INTEGER),
                         ("rank", SqlType.FLOAT),
                         ("delta", SqlType.FLOAT)))
        sql = """
            SELECT PageRank.node, SUM(i.delta * e.weight)
            FROM PageRank
            JOIN edges e ON PageRank.node = e.dst
            JOIN PageRank AS i ON i.node = e.src
            JOIN vertexstatus v ON v.node = e.dst
            WHERE v.status != 0
            GROUP BY PageRank.node"""
        plan = build_statement(parse(sql), context)
        return optimize_plan(plan, SessionOptions())

    def test_invariance_detection(self):
        plan = self._step_plan()
        scan = find_nodes(plan, LogicalScan)[0]
        assert is_loop_invariant(scan, {"__cte_pr"})
        temp = find_nodes(plan, LogicalTempScan)[0]
        assert not is_loop_invariant(temp, {"__cte_pr"})

    def test_extraction_produces_common_block(self):
        plan = self._step_plan()
        rewritten, blocks = extract_common_results(
            plan, {"__cte_pr"}, itertools.count())
        assert len(blocks) == 1
        block = blocks[0]
        assert block.result_name == "COMMON#1"
        # The block joins edges with vertexstatus and nothing else.
        scans = {n.table_name.lower()
                 for n in find_nodes(block.plan, LogicalScan)}
        assert scans == {"edges", "vertexstatus"}
        assert not find_nodes(block.plan, LogicalTempScan)
        # The rewritten step references the block.
        refs = [n for n in find_nodes(rewritten, LogicalTempScan)
                if n.result_name == "COMMON#1"]
        assert len(refs) == 1

    def test_no_extraction_without_invariant_group(self):
        catalog = make_catalog()
        context = PlanContext(catalog)
        from repro.plan import CteBinding
        context.cte_bindings["r"] = CteBinding(
            "__cte_r", (("node", SqlType.INTEGER),))
        sql = """SELECT r.node FROM r JOIN edges e ON r.node = e.src"""
        plan = build_statement(parse(sql), context)
        plan = optimize_plan(plan, SessionOptions())
        _, blocks = extract_common_results(plan, {"__cte_r"},
                                           itertools.count())
        assert blocks == []

    def test_two_invariant_tables_without_cte_not_extracted_mid_plan(self):
        # If everything is invariant, there is no loop-varying part to
        # protect; the component is left intact (callers hoist whole-plan
        # invariants elsewhere).
        plan = plan_of("""
            SELECT * FROM edges e JOIN vertexstatus v ON v.node = e.dst""")
        _, blocks = extract_common_results(plan, {"__cte_x"},
                                           itertools.count())
        assert blocks == []


class TestIterativePushdownSafety:
    """The §V-B rule: when may a Qf predicate move into R0?"""

    def _cte(self, step_sql):
        sql = f"""
            WITH ITERATIVE f (node, friends, friendsprev) AS (
              SELECT src, count(dst), count(dst) FROM edges GROUP BY src
              ITERATE {step_sql}
              UNTIL 5 ITERATIONS)
            SELECT node FROM f"""
        stmt = parse(sql)
        return stmt.with_clause.ctes[0]

    def test_ff_shape_is_pushable(self):
        from repro.rewrite import pushable_into_iterative
        cte = self._cte("SELECT node, friends * 2, friends FROM f")
        predicate = expr_of("MOD(node, 100) = 0")
        assert pushable_into_iterative(
            cte, ["node", "friends", "friendsprev"], predicate)

    def test_predicate_on_recomputed_column_not_pushable(self):
        from repro.rewrite import pushable_into_iterative
        cte = self._cte("SELECT node, friends * 2, friends FROM f")
        predicate = expr_of("friends > 10")
        assert not pushable_into_iterative(
            cte, ["node", "friends", "friendsprev"], predicate)

    def test_self_join_not_pushable(self):
        from repro.rewrite import pushable_into_iterative
        cte = self._cte("SELECT a.node, a.friends, a.friendsprev "
                        "FROM f a JOIN f b ON a.node = b.node")
        predicate = expr_of("MOD(node, 100) = 0")
        assert not pushable_into_iterative(
            cte, ["node", "friends", "friendsprev"], predicate)

    def test_aggregation_not_pushable(self):
        from repro.rewrite import pushable_into_iterative
        cte = self._cte("SELECT node, SUM(friends), MAX(friends) FROM f "
                        "GROUP BY node")
        predicate = expr_of("MOD(node, 100) = 0")
        assert not pushable_into_iterative(
            cte, ["node", "friends", "friendsprev"], predicate)

    def test_pr_shape_not_pushable(self):
        """The paper's example: pushing Node = 10 into PR is incorrect."""
        from repro.rewrite import pushable_into_iterative
        sql = """
            WITH ITERATIVE PageRank (node, rank, delta) AS (
              SELECT src, 0, 0.15 FROM edges
              ITERATE
              SELECT PageRank.node, PageRank.rank + PageRank.delta,
                     SUM(i.delta * e.weight)
              FROM PageRank
                JOIN edges e ON PageRank.node = e.dst
                JOIN PageRank i ON i.node = e.src
              GROUP BY PageRank.node, PageRank.rank + PageRank.delta
              UNTIL 10 ITERATIONS)
            SELECT node, rank FROM PageRank WHERE node = 10"""
        cte = parse(sql).with_clause.ctes[0]
        predicate = expr_of("node = 10")
        assert not pushable_into_iterative(
            cte, ["node", "rank", "delta"], predicate)
