"""Observability overhead budget.

Tracing is opt-in; when it *is* on, span bookkeeping plus profile
aggregation must stay a small fixed fraction of the untraced
(NULL_TRACER) runtime on an execution-dominated workload — otherwise
EXPLAIN ANALYZE stops being usable on real queries.  Measured locally
the ratio sits near 1.10 (see EXPERIMENTS.md); the budget is 1.35 to
absorb CI timing noise while still catching accidental per-row or
per-kernel span emission (which blows the ratio past 2x immediately).
"""

from __future__ import annotations

import json
import statistics
import time

import pytest

from repro.datasets import dblp_like, generate_edges
from repro.engine.database import Database
from repro.execution import SessionOptions
from repro.obs.profile import aggregate_profile
from repro.types import SqlType
from repro.workloads import pagerank_query

EDGES = generate_edges(dblp_like(nodes=500, seed=21))
SQL = pagerank_query(iterations=10)  # joins dominate; spans are O(steps)
OVERHEAD_BUDGET = 1.35
REPEATS = 7


def build_db(tracing: bool) -> Database:
    db = Database(SessionOptions(enable_tracing=tracing,
                                 enable_delta_iteration=True))
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", EDGES)
    return db


def run_once(tracing: bool) -> float:
    """One timed sample on fresh state; the traced variant pays for the
    full pipeline users actually run: spans + export + aggregation."""
    db = build_db(tracing)
    start = time.perf_counter()
    db.execute(SQL)
    if tracing:
        aggregate_profile(json.loads(db.trace_json()))
    return time.perf_counter() - start


@pytest.mark.perf_smoke
def test_tracing_and_profiling_within_budget():
    # Interleave the two variants so clock drift and thermal effects
    # land on both sides equally; compare medians.
    run_once(False), run_once(True)  # warmup
    untraced, traced = [], []
    for _ in range(REPEATS):
        untraced.append(run_once(False))
        traced.append(run_once(True))
    ratio = statistics.median(traced) / statistics.median(untraced)
    assert ratio <= OVERHEAD_BUDGET, (
        f"tracing+profiling costs {ratio:.2f}x the untraced run "
        f"(budget {OVERHEAD_BUDGET}x): untraced median "
        f"{statistics.median(untraced) * 1000:.2f}ms, traced "
        f"{statistics.median(traced) * 1000:.2f}ms")


def test_untraced_run_records_no_trace():
    db = build_db(tracing=False)
    db.execute(SQL)
    assert db.last_trace() is None
