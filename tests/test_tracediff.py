"""Trace diff: native vs baseline span-tree comparison.

The ``tracediff_smoke`` marker is the tier-1 guard wired into
``scripts/check_trace_diff.sh`` / ``scripts/check_all_smoke.sh``: a real
native run and a real middleware run of the same query must diff to full
agreement (same iterations, same delta_rows convergence curve).
"""

import copy
import json

import pytest

from repro.datasets import dblp_like, fresh_database
from repro.errors import ReproError
from repro.middleware.driver import MiddlewareDriver
from repro.obs.tracediff import (
    diff_traces,
    main,
    render_diff,
    summarize_trace,
)
from repro.workloads import pagerank_query, sssp_query

SPEC = dblp_like(nodes=80, seed=9)


def _native_trace(sql):
    db = fresh_database(SPEC)
    db.options.enable_tracing = True
    db.execute(sql)
    return json.loads(db.trace_json())


def _middleware_trace(sql):
    db = fresh_database(SPEC)
    db.options.enable_tracing = True
    MiddlewareDriver(db).run(sql)
    return json.loads(db.trace_json())


@pytest.fixture(scope="module")
def pagerank_traces():
    sql = pagerank_query(iterations=5)
    return _native_trace(sql), _middleware_trace(sql)


@pytest.mark.tracediff_smoke
class TestNativeVsMiddleware:
    def test_summaries_classify_both_sides(self, pagerank_traces):
        native, middleware = map(summarize_trace, pagerank_traces)
        assert native.family == "native"
        assert native.step_spans > 0
        assert not native.statements
        assert middleware.family == "middleware"
        assert middleware.step_spans == 0
        assert middleware.statements["ddl"] > 0
        assert middleware.statements["dml"] > 0
        assert middleware.statements["probe"] > 0

    def test_diff_agrees_on_convergence(self, pagerank_traces):
        diff = diff_traces(*pagerank_traces)
        assert diff.agreement
        assert len(diff.loops) == 1
        comparison = diff.loops[0]
        assert comparison.cte == "pagerank"
        assert comparison.native.iterations == 5
        assert comparison.iterations_match
        assert comparison.convergence_match

    def test_baseline_statement_storm(self, pagerank_traces):
        # The Fig. 1 point: the middleware issues one statement per
        # round trip while the native engine runs one statement total.
        diff = diff_traces(*pagerank_traces)
        assert diff.baseline.statement_total \
            > diff.baseline.loops[0].iterations

    def test_order_insensitive(self, pagerank_traces):
        native, middleware = pagerank_traces
        diff = diff_traces(middleware, native)
        assert diff.native.family == "native"
        assert diff.baseline.family == "middleware"

    def test_render_mentions_verdict(self, pagerank_traces):
        text = render_diff(diff_traces(*pagerank_traces))
        assert "trace diff: native vs middleware" in text
        assert "agreement  : ok" in text
        assert "convergence (delta_rows): identical" in text


@pytest.mark.tracediff_smoke
def test_sssp_measurement_gap_is_surfaced():
    # Full-refresh rename-in-place loops report delta_rows as the whole
    # working table, while the middleware probes the rows that actually
    # changed; the diff must surface that measurement gap (iterations
    # still align) rather than paper over it.
    sql = sssp_query(source=0)
    diff = diff_traces(_native_trace(sql), _middleware_trace(sql))
    comparison = diff.loops[0]
    assert comparison.iterations_match
    assert not comparison.convergence_match
    assert not diff.agreement


class TestDivergenceDetection:
    def test_iteration_mismatch_flagged(self, pagerank_traces):
        native, middleware = pagerank_traces
        corrupted = copy.deepcopy(middleware)
        corrupted["loops"][0]["iterations"].pop()
        for index, record in enumerate(
                corrupted["loops"][0]["iterations"]):
            record["index"] = index + 1
        diff = diff_traces(native, corrupted)
        assert not diff.agreement
        assert not diff.loops[0].iterations_match
        assert "MISMATCH" in render_diff(diff)

    def test_convergence_mismatch_flagged(self, pagerank_traces):
        native, middleware = pagerank_traces
        corrupted = copy.deepcopy(middleware)
        corrupted["loops"][0]["iterations"][-1]["delta_rows"] += 1
        diff = diff_traces(native, corrupted)
        assert not diff.agreement
        assert diff.loops[0].iterations_match
        assert not diff.loops[0].convergence_match
        assert "DIVERGE" in render_diff(diff)

    def test_two_native_traces_rejected(self, pagerank_traces):
        native, _ = pagerank_traces
        with pytest.raises(ReproError, match="both traces are native"):
            diff_traces(native, copy.deepcopy(native))

    def test_two_baseline_traces_rejected(self, pagerank_traces):
        _, middleware = pagerank_traces
        with pytest.raises(ReproError, match="neither trace"):
            diff_traces(middleware, copy.deepcopy(middleware))

    def test_invalid_trace_rejected(self, pagerank_traces):
        native, middleware = pagerank_traces
        corrupted = copy.deepcopy(middleware)
        del corrupted["loops"]
        with pytest.raises(ValueError, match="schema violation"):
            diff_traces(native, corrupted)


class TestCli:
    def _write(self, tmp_path, pagerank_traces):
        native, middleware = pagerank_traces
        native_path = tmp_path / "native.json"
        baseline_path = tmp_path / "middleware.json"
        native_path.write_text(json.dumps(native))
        baseline_path.write_text(json.dumps(middleware))
        return str(native_path), str(baseline_path)

    def test_cli_agreement_exit_zero(self, tmp_path, pagerank_traces,
                                     capsys):
        native, baseline = self._write(tmp_path, pagerank_traces)
        assert main([native, baseline, "--require-agreement"]) == 0
        out = capsys.readouterr().out
        assert "trace diff: native vs middleware" in out

    def test_cli_disagreement_exit_nonzero(self, tmp_path,
                                           pagerank_traces, capsys):
        native, middleware = pagerank_traces
        corrupted = copy.deepcopy(middleware)
        corrupted["loops"][0]["iterations"][-1]["delta_rows"] += 7
        native_path = tmp_path / "native.json"
        baseline_path = tmp_path / "bad.json"
        native_path.write_text(json.dumps(native))
        baseline_path.write_text(json.dumps(corrupted))
        assert main([str(native_path), str(baseline_path),
                     "--require-agreement"]) == 1
        assert "DIVERGE" in capsys.readouterr().out
