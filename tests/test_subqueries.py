"""Subquery predicates (EXISTS / IN) and set operations
(EXCEPT / INTERSECT): decorrelation into semi/anti joins, SQL NULL
semantics, and planner restrictions."""

import pytest

from repro import Database
from repro.errors import PlanError
from repro.plan import LogicalSemiJoin, PlanContext, build_statement
from repro.sql import parse


@pytest.fixture
def orders_db(db):
    db.execute("CREATE TABLE customers (id int, name text, city text)")
    db.execute("CREATE TABLE orders (id int, customer_id int, total float)")
    db.load_rows("customers", [
        (1, "ada", "london"), (2, "grace", "ny"),
        (3, "alan", "london"), (4, "edsger", None),
    ])
    db.load_rows("orders", [
        (10, 1, 100.0), (11, 1, 50.0), (12, 3, 75.0), (13, None, 20.0),
    ])
    return db


class TestExists:
    def test_correlated_exists(self, orders_db):
        rows = orders_db.execute("""
            SELECT name FROM customers
            WHERE EXISTS (SELECT 1 FROM orders
                          WHERE orders.customer_id = customers.id)
            ORDER BY name""").rows()
        assert rows == [("ada",), ("alan",)]

    def test_correlated_not_exists(self, orders_db):
        rows = orders_db.execute("""
            SELECT name FROM customers
            WHERE NOT EXISTS (SELECT 1 FROM orders
                              WHERE orders.customer_id = customers.id)
            ORDER BY name""").rows()
        assert rows == [("edsger",), ("grace",)]

    def test_exists_with_local_filter(self, orders_db):
        rows = orders_db.execute("""
            SELECT name FROM customers
            WHERE EXISTS (SELECT 1 FROM orders
                          WHERE orders.customer_id = customers.id
                            AND orders.total > 80)""").rows()
        assert rows == [("ada",)]

    def test_uncorrelated_exists_true(self, orders_db):
        rows = orders_db.execute("""
            SELECT COUNT(*) FROM customers
            WHERE EXISTS (SELECT 1 FROM orders)""").scalar()
        assert rows == 4

    def test_uncorrelated_exists_false(self, orders_db):
        rows = orders_db.execute("""
            SELECT COUNT(*) FROM customers
            WHERE EXISTS (SELECT 1 FROM orders WHERE total > 9999)
        """).scalar()
        assert rows == 0

    def test_uncorrelated_not_exists(self, orders_db):
        rows = orders_db.execute("""
            SELECT COUNT(*) FROM customers
            WHERE NOT EXISTS (SELECT 1 FROM orders WHERE total > 9999)
        """).scalar()
        assert rows == 4

    def test_exists_with_aggregated_subquery(self, orders_db):
        # Aggregated subqueries are supported in uncorrelated form.
        rows = orders_db.execute("""
            SELECT COUNT(*) FROM customers
            WHERE EXISTS (SELECT customer_id FROM orders
                          GROUP BY customer_id HAVING COUNT(*) > 1)
        """).scalar()
        assert rows == 4

    def test_exists_combined_with_plain_predicates(self, orders_db):
        rows = orders_db.execute("""
            SELECT name FROM customers
            WHERE city = 'london'
              AND EXISTS (SELECT 1 FROM orders
                          WHERE orders.customer_id = customers.id)
              AND id < 3""").rows()
        assert rows == [("ada",)]

    def test_plans_as_semi_join(self, orders_db):
        plan = build_statement(parse("""
            SELECT name FROM customers
            WHERE EXISTS (SELECT 1 FROM orders
                          WHERE orders.customer_id = customers.id)"""),
            PlanContext(orders_db.catalog))
        semis = [n for n in plan.walk() if isinstance(n, LogicalSemiJoin)]
        assert len(semis) == 1
        assert not semis[0].anti

    def test_nested_subquery_predicate_rejected(self, orders_db):
        with pytest.raises(PlanError):
            orders_db.execute("""
                SELECT name FROM customers
                WHERE id = 1 OR EXISTS (SELECT 1 FROM orders)""")


class TestInSubquery:
    def test_in(self, orders_db):
        rows = orders_db.execute("""
            SELECT name FROM customers
            WHERE id IN (SELECT customer_id FROM orders)
            ORDER BY name""").rows()
        assert rows == [("ada",), ("alan",)]

    def test_not_in_with_null_in_subquery_is_empty(self, orders_db):
        # orders.customer_id contains NULL: NOT IN returns nothing.
        rows = orders_db.execute("""
            SELECT name FROM customers
            WHERE id NOT IN (SELECT customer_id FROM orders)""").rows()
        assert rows == []

    def test_not_in_without_nulls(self, orders_db):
        rows = orders_db.execute("""
            SELECT name FROM customers
            WHERE id NOT IN (SELECT customer_id FROM orders
                             WHERE customer_id IS NOT NULL)
            ORDER BY name""").rows()
        assert rows == [("edsger",), ("grace",)]

    def test_null_probe_never_qualifies_for_not_in(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("CREATE TABLE u (x int)")
        db.load_rows("t", [(None,), (1,)])
        db.load_rows("u", [(2,)])
        rows = db.execute(
            "SELECT a FROM t WHERE a NOT IN (SELECT x FROM u)").rows()
        assert rows == [(1,)]  # the NULL row is UNKNOWN, not kept

    def test_in_with_expression_operand(self, orders_db):
        rows = orders_db.execute("""
            SELECT name FROM customers
            WHERE id + 0 IN (SELECT customer_id FROM orders)
            ORDER BY name""").rows()
        assert rows == [("ada",), ("alan",)]

    def test_correlated_in(self, orders_db):
        rows = orders_db.execute("""
            SELECT name FROM customers
            WHERE id IN (SELECT customer_id FROM orders
                         WHERE orders.total > customers.id * 30)
            ORDER BY name""").rows()
        # ada (id 1): orders > 30 exist (100, 50); alan (id 3): needs > 90.
        assert rows == [("ada",)]

    def test_in_aggregated_subquery(self, orders_db):
        rows = orders_db.execute("""
            SELECT name FROM customers
            WHERE id IN (SELECT customer_id FROM orders
                         GROUP BY customer_id HAVING COUNT(*) > 1)
        """).rows()
        assert rows == [("ada",)]

    def test_in_requires_single_column(self, orders_db):
        with pytest.raises(PlanError):
            orders_db.execute("""
                SELECT name FROM customers
                WHERE id IN (SELECT id, customer_id FROM orders)""")

    def test_matches_in_list_semantics(self, orders_db):
        via_subquery = orders_db.execute("""
            SELECT name FROM customers
            WHERE id IN (SELECT customer_id FROM orders
                         WHERE customer_id IS NOT NULL)
            ORDER BY name""").rows()
        via_list = orders_db.execute("""
            SELECT name FROM customers WHERE id IN (1, 3)
            ORDER BY name""").rows()
        assert via_subquery == via_list


class TestExceptIntersect:
    def test_except(self, graph_db):
        rows = graph_db.execute("""
            SELECT src FROM edges EXCEPT SELECT dst FROM edges""").rows()
        assert rows == [(4,)]  # node 4 has no incoming edge

    def test_intersect(self, graph_db):
        rows = sorted(graph_db.execute("""
            SELECT src FROM edges INTERSECT SELECT dst FROM edges""").rows())
        assert rows == [(1,), (2,), (3,)]

    def test_results_are_distinct(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.load_rows("t", [(1,), (1,), (2,)])
        db.execute("CREATE TABLE u (a int)")
        db.load_rows("u", [(2,)])
        assert db.execute("SELECT a FROM t EXCEPT SELECT a FROM u"
                          ).rows() == [(1,)]
        assert db.execute("SELECT a FROM t INTERSECT SELECT a FROM u"
                          ).rows() == [(2,)]

    def test_null_is_one_value(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.load_rows("t", [(None,), (1,)])
        db.execute("CREATE TABLE u (a int)")
        db.load_rows("u", [(None,)])
        assert db.execute("SELECT a FROM t INTERSECT SELECT a FROM u"
                          ).rows() == [(None,)]
        assert db.execute("SELECT a FROM t EXCEPT SELECT a FROM u"
                          ).rows() == [(1,)]

    def test_intersect_binds_tighter_than_except(self, db):
        # a EXCEPT b INTERSECT c  ==  a EXCEPT (b INTERSECT c)
        rows = db.execute("""
            SELECT 1 EXCEPT SELECT 1 INTERSECT SELECT 2""").rows()
        assert rows == [(1,)]

    def test_type_widening(self, db):
        rows = db.execute("SELECT 1 INTERSECT SELECT 1.0").rows()
        assert rows == [(1.0,)]

    def test_arity_mismatch(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT 1 EXCEPT SELECT 1, 2")

    def test_in_iterative_cte_body(self, graph_db):
        """Set difference inside an iterative CTE's parts works."""
        sql = """
        WITH ITERATIVE frontier (node, gen) AS (
          SELECT src, 0 FROM edges WHERE src = 1
          ITERATE SELECT node, gen + 1 FROM frontier
          UNTIL 2 ITERATIONS
        )
        SELECT node FROM frontier
        INTERSECT SELECT dst FROM edges"""
        assert graph_db.execute(sql).rows() == [(1,)]
