"""The perf ledger (repro.obs.ledger) and the ``repro-perf`` gate
(repro.harness.perfgate).

Unit tests for the record model, the MAD statistics, and the noise-aware
regression verdict; the ``perf_smoke``-marked tests drive the real gate
end to end against a throwaway ledger — a clean rerun passes, a seeded
slowdown trips it (the acceptance criterion for the regression gate).
"""

from __future__ import annotations

import json

import pytest

from repro.harness.perfgate import main as perfgate_main
from repro.obs.ledger import (
    CheckResult,
    RunRecord,
    append_records,
    check_regression,
    latest_baseline,
    mad,
    options_hash,
    read_ledger,
    record_from_samples,
    validate_record_dict,
)


class TestMad:
    def test_zero_for_fewer_than_two_samples(self):
        assert mad([]) == 0.0
        assert mad([1.5]) == 0.0

    def test_robust_to_one_outlier(self):
        quiet = [1.0, 1.0, 1.0, 1.0, 100.0]
        assert mad(quiet) == 0.0  # median-of-deviations ignores the spike

    def test_symmetric_spread(self):
        assert mad([1.0, 2.0, 3.0]) == 1.0


class TestRunRecord:
    def test_round_trips_through_dict(self):
        record = record_from_samples("perfgate", "sssp_delta",
                                     [0.01, 0.012, 0.011],
                                     options={"enable": True})
        data = record.to_dict()
        validate_record_dict(data)
        assert json.loads(json.dumps(data)) == data
        restored = RunRecord.from_dict(data)
        assert restored == record

    def test_validator_rejects_unknown_kind_and_missing_keys(self):
        record = record_from_samples("b", "l", [0.1])
        data = record.to_dict()
        data["kind"] = "mystery"
        with pytest.raises(ValueError):
            validate_record_dict(data)
        data = record.to_dict()
        del data["median_seconds"]
        with pytest.raises(ValueError):
            validate_record_dict(data)

    def test_options_hash_is_order_insensitive(self):
        assert options_hash({"a": 1, "b": 2}) \
            == options_hash({"b": 2, "a": 1})
        assert options_hash({"a": 1}) != options_hash({"a": 2})


class TestLedgerIo:
    def test_append_then_read_preserves_order(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        first = record_from_samples("b", "one", [0.1])
        second = record_from_samples("b", "two", [0.2])
        assert append_records([first], path) == 1
        assert append_records([second], path) == 1
        labels = [r.label for r in read_ledger(path)]
        assert labels == ["one", "two"]

    def test_missing_ledger_reads_empty(self, tmp_path):
        assert read_ledger(str(tmp_path / "absent.jsonl")) == []

    def test_unknown_schema_versions_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        record = record_from_samples("b", "l", [0.1])
        future = record.to_dict()
        future["schema_version"] = 99
        path.write_text(json.dumps(record.to_dict()) + "\n"
                        + json.dumps(future) + "\n")
        assert len(read_ledger(str(path))) == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            read_ledger(str(path))


class TestLatestBaseline:
    def _records(self):
        baseline_old = record_from_samples("perfgate", "w", [0.1],
                                           kind="baseline")
        check = record_from_samples("perfgate", "w", [0.5], kind="check")
        baseline_new = record_from_samples("perfgate", "w", [0.2],
                                           kind="baseline")
        return [baseline_old, check, baseline_new]

    def test_most_recent_matching_baseline_wins(self):
        records = self._records()
        found = latest_baseline(records, "perfgate", "w")
        assert found is records[-1]

    def test_check_records_never_become_baselines(self):
        # A failing check run must not poison the baseline history.
        records = self._records()
        found = latest_baseline(records, "perfgate", "w")
        assert found.kind == "baseline"
        assert found.median_seconds != 0.5

    def test_options_hash_filter(self):
        records = self._records()
        assert latest_baseline(records, "perfgate", "w",
                               options=options_hash({"x": 1})) is None


class TestCheckRegression:
    def _baseline(self, samples):
        return record_from_samples("perfgate", "w", samples,
                                   kind="baseline")

    def test_within_noise_passes(self):
        baseline = self._baseline([0.100, 0.102, 0.101])
        fresh = record_from_samples("perfgate", "w", [0.104, 0.105, 0.103])
        result = check_regression(baseline, fresh)
        assert not result.regressed
        assert "ok" in result.describe()

    def test_clear_slowdown_regresses(self):
        baseline = self._baseline([0.100, 0.102, 0.101])
        fresh = record_from_samples("perfgate", "w", [0.200, 0.210, 0.205])
        result = check_regression(baseline, fresh)
        assert result.regressed
        assert "REGRESSED" in result.describe()
        assert result.ratio == pytest.approx(2.03, rel=0.05)

    def test_zero_mad_baseline_keeps_relative_floor(self):
        # Quantized timers can record identical samples; the gate must
        # still tolerate min_rel_spread of noise instead of tripping on
        # any nonzero delta.
        baseline = self._baseline([0.100, 0.100, 0.100])
        fresh = record_from_samples("perfgate", "w", [0.105])
        assert not check_regression(baseline, fresh).regressed
        slower = record_from_samples("perfgate", "w", [0.125])
        assert check_regression(baseline, slower).regressed

    def test_host_mismatch_noted(self):
        baseline = self._baseline([0.1])
        fresh = record_from_samples("perfgate", "w", [0.1],
                                    host={"platform": "elsewhere"})
        result = check_regression(baseline, fresh)
        assert any("host" in note for note in result.notes)


@pytest.mark.perf_smoke
class TestPerfGateEndToEnd:
    """The acceptance criterion: ``repro-perf check`` passes on an
    unmodified rerun and detects a seeded regression, against a
    throwaway ledger (one workload keeps the guard fast)."""

    def _run(self, ledger, *argv):
        return perfgate_main(["--ledger", str(ledger), *argv])

    def test_record_then_clean_check_then_seeded_regression(self, tmp_path):
        ledger = tmp_path / "PERF_LEDGER.jsonl"
        args = ["--repeats", "3", "-w", "reach_fixpoint"]

        assert self._run(ledger, "record", *args) == 0
        assert self._run(ledger, "check", *args) == 0
        assert self._run(ledger, "check", *args, "--slowdown", "0.2") == 1

        records = read_ledger(str(ledger))
        kinds = [record.kind for record in records]
        assert kinds == ["baseline", "check", "check"]
        assert [record.verdict for record in records] \
            == [None, "ok", "regressed"]

    def test_check_without_baseline_fails_unless_bootstrapped(
            self, tmp_path):
        ledger = tmp_path / "PERF_LEDGER.jsonl"
        args = ["--repeats", "2", "-w", "reach_fixpoint"]
        assert self._run(ledger, "check", *args) == 1
        assert self._run(ledger, "check", *args,
                         "--bootstrap-missing") == 0
        (record,) = read_ledger(str(ledger))
        assert record.kind == "baseline"

    def test_list_renders_the_ledger(self, tmp_path, capsys):
        ledger = tmp_path / "PERF_LEDGER.jsonl"
        assert self._run(ledger, "list") == 0
        assert "no records" in capsys.readouterr().out
