"""Connected-components workload tests (DELTA-convergence on a real
iterative computation) plus LogicalRename edge cases."""

import pytest

from repro import Database
from repro.datasets import dblp_like, fresh_database, generate_edges
from repro.types import SqlType
from repro.workloads import (
    component_count,
    components_query,
    reference_components,
)


def island_db(edges):
    db = Database()
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", edges)
    return db


class TestConnectedComponents:
    ISLANDS = [(1, 2, 1.0), (2, 3, 1.0), (5, 6, 1.0), (8, 8, 1.0),
               (9, 10, 1.0), (10, 9, 1.0)]

    def test_matches_networkx(self):
        db = island_db(self.ISLANDS)
        labels = dict(db.execute(components_query()).rows())
        assert labels == reference_components(self.ISLANDS)

    def test_component_count(self):
        db = island_db(self.ISLANDS)
        labels = dict(db.execute(components_query()).rows())
        assert component_count(labels) == 4  # {1,2,3} {5,6} {8} {9,10}

    def test_converges_via_delta(self):
        db = island_db(self.ISLANDS)
        db.reset_stats()
        db.execute(components_query())
        # Longest chain has 3 nodes: convergence plus one confirming
        # iteration.
        assert db.stats.iterations <= 4

    def test_connected_synthetic_graph_is_one_component(self):
        # The generators chain all nodes, so everything is connected.
        spec = dblp_like(nodes=120, seed=13)
        db = fresh_database(spec)
        labels = dict(db.execute(components_query()).rows())
        assert component_count(labels) == 1
        assert set(labels.values()) == {0}

    def test_direction_is_ignored(self):
        # 1->2 and 3->2: weakly connected despite opposing directions.
        db = island_db([(1, 2, 1.0), (3, 2, 1.0)])
        labels = dict(db.execute(components_query()).rows())
        assert component_count(labels) == 1

    def test_metadata_termination_variant(self):
        db = island_db(self.ISLANDS)
        partial = dict(db.execute(
            components_query(max_iterations=1)).rows())
        converged = dict(db.execute(components_query()).rows())
        # One iteration is not enough for the 3-chain.
        assert partial != converged
        assert partial[3] == 2  # moved one hop toward the minimum


class TestDuplicateOutputColumns:
    """LogicalRename regression tests: positional relabeling must survive
    duplicate names that defeat name-based projection."""

    def test_select_same_column_twice(self, graph_db):
        rows = graph_db.execute(
            "SELECT src, src FROM edges WHERE dst = 3 ORDER BY src").rows()
        assert rows == [(1, 1), (2, 2)]

    def test_duplicate_columns_in_cte(self, graph_db):
        rows = graph_db.execute("""
            WITH pairs (a, b) AS (SELECT src, src FROM edges)
            SELECT a, b FROM pairs WHERE a = b AND a = 1""").rows()
        assert rows == [(1, 1), (1, 1)]

    def test_duplicate_columns_in_iterative_init(self, db):
        rows = db.execute("""
            WITH ITERATIVE r (x, y) AS (
              SELECT 7, 7 ITERATE SELECT x, y + 1 FROM r
              UNTIL 3 ITERATIONS
            ) SELECT x, y FROM r""").rows()
        assert rows == [(7, 10)]

    def test_duplicate_columns_in_derived_table(self, graph_db):
        rows = graph_db.execute("""
            SELECT t.a FROM (SELECT src AS a, src AS b FROM edges) t
            WHERE t.b = 4""").rows()
        assert rows == [(4,)]

    def test_filter_still_pushes_through_rename(self, graph_db):
        """The rename operator must not block pushdown for the common
        unique-name case."""
        from repro.plan import (
            LogicalFilter, LogicalScan, PlanContext, build_statement,
        )
        from repro.rewrite import apply_rules, push_filters
        from repro.sql import parse
        plan = build_statement(parse("""
            WITH pairs (a, b) AS (SELECT src, dst FROM edges)
            SELECT a FROM pairs WHERE b = 3"""),
            PlanContext(graph_db.catalog))
        rewritten = apply_rules(plan, [push_filters])
        filters = [n for n in rewritten.walk()
                   if isinstance(n, LogicalFilter)]
        assert filters
        assert all(isinstance(f.child, LogicalScan) for f in filters)
