"""Dataset IO tests: SNAP edge lists, weight normalization, CSV loading,
and EXPLAIN ANALYZE output."""

import pytest

from repro import Database
from repro.datasets import (
    dblp_like,
    generate_edges,
    load_delimited,
    load_edge_file,
    normalize_weights,
    read_snap_edge_list,
    write_snap_edge_list,
)
from repro.errors import ReproError
from repro.types import SqlType


SNAP_SAMPLE = """\
# Directed graph (each unordered pair of nodes is saved once)
# FromNodeId\tToNodeId
0\t1
0\t2
1\t2
2\t0
"""


@pytest.fixture
def snap_file(tmp_path):
    path = tmp_path / "sample.txt"
    path.write_text(SNAP_SAMPLE)
    return path


class TestSnapReader:
    def test_reads_edges_skipping_comments(self, snap_file):
        edges = read_snap_edge_list(snap_file)
        assert edges == [(0, 1), (0, 2), (1, 2), (2, 0)]

    def test_undirected_doubles_edges(self, snap_file):
        edges = read_snap_edge_list(snap_file, directed=False)
        assert len(edges) == 8
        assert (1, 0) in edges

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ReproError):
            read_snap_edge_list(path)

    def test_non_integer_ids(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a\tb\n")
        with pytest.raises(ReproError):
            read_snap_edge_list(path)

    def test_roundtrip_with_writer(self, tmp_path):
        edges = generate_edges(dblp_like(nodes=50))
        path = tmp_path / "out.txt"
        written = write_snap_edge_list(edges, path, comment="synthetic")
        assert written == len(edges)
        read_back = read_snap_edge_list(path)
        assert read_back == [(s, d) for s, d, _ in edges]


class TestWeightNormalization:
    def test_weights_sum_to_one_per_source(self):
        weighted = normalize_weights([(1, 2), (1, 3), (2, 3)])
        totals = {}
        for src, _, weight in weighted:
            totals[src] = totals.get(src, 0.0) + weight
        assert totals == pytest.approx({1: 1.0, 2: 1.0})

    def test_empty(self):
        assert normalize_weights([]) == []


class TestLoadEdgeFile:
    def test_load_and_query(self, snap_file):
        db = Database()
        count = load_edge_file(db, snap_file)
        assert count == 4
        assert db.execute("SELECT COUNT(*) FROM edges").scalar() == 4
        # Node 0 has two outgoing edges, each weighted 0.5.
        weight = db.execute(
            "SELECT weight FROM edges WHERE src = 0 AND dst = 1").scalar()
        assert weight == 0.5

    def test_loaded_graph_runs_pagerank(self, snap_file):
        from repro.workloads import pagerank_query, reference_pagerank
        db = Database()
        load_edge_file(db, snap_file)
        rows = dict(db.execute(
            pagerank_query(iterations=5, coalesced=True)).rows())
        edges = normalize_weights(read_snap_edge_list(snap_file))
        reference = reference_pagerank(edges, iterations=5)
        for node, rank in rows.items():
            assert rank == pytest.approx(reference[node])


class TestDelimitedLoader:
    def test_csv_with_header_and_nulls(self, tmp_path, db):
        path = tmp_path / "status.csv"
        path.write_text("node,status\n1,1\n2,\n3,0\n")
        count = load_delimited(db, path, "vertexstatus",
                               [("node", SqlType.INTEGER),
                                ("status", SqlType.INTEGER)])
        assert count == 3
        rows = db.execute(
            "SELECT node, status FROM vertexstatus ORDER BY node").rows()
        assert rows == [(1, 1), (2, None), (3, 0)]

    def test_tsv_without_header(self, tmp_path, db):
        path = tmp_path / "data.tsv"
        path.write_text("1\tx\n2\ty\n")
        count = load_delimited(db, path, "t",
                               [("id", SqlType.INTEGER),
                                ("label", SqlType.TEXT)],
                               delimiter="\t", header=False)
        assert count == 2

    def test_field_count_mismatch(self, tmp_path, db):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(ReproError):
            load_delimited(db, path, "t", [("a", SqlType.INTEGER),
                                           ("b", SqlType.INTEGER)])

    def test_unparsable_value(self, tmp_path, db):
        path = tmp_path / "bad.csv"
        path.write_text("a\nnot_a_number\n")
        with pytest.raises(ReproError):
            load_delimited(db, path, "t", [("a", SqlType.INTEGER)])


class TestExplainAnalyze:
    def test_iterative_step_counts(self, graph_db):
        from repro.workloads import pagerank_query
        text = graph_db.explain_analyze(pagerank_query(iterations=7))
        assert "executions=7" in text  # the iterative materialize
        assert "executions=1" in text  # the non-iterative part
        assert "ms)" in text

    def test_rows_counted(self, graph_db):
        text = graph_db.explain_analyze("SELECT * FROM edges")
        assert "rows=5" in text

    def test_rejects_dml(self, graph_db):
        with pytest.raises(ReproError):
            graph_db.explain_analyze("DELETE FROM edges")
