"""Storage tests: columns, tables, catalog, and the result registry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CatalogError, TypeCheckError
from repro.storage import Catalog, Column, ResultRegistry, Schema, Table
from repro.storage.table import ColumnSchema, pretty_table
from repro.types import SqlType

values_with_nulls = st.lists(
    st.one_of(st.none(), st.integers(-1000, 1000)), max_size=30)


class TestColumn:
    def test_from_values_tracks_nulls(self):
        column = Column.from_values(SqlType.INTEGER, [1, None, 3])
        assert column.to_list() == [1, None, 3]
        assert column.mask.tolist() == [False, True, False]

    def test_getitem(self):
        column = Column.from_values(SqlType.FLOAT, [1.5, None])
        assert column[0] == 1.5
        assert column[1] is None

    def test_python_scalars_returned(self):
        column = Column.from_values(SqlType.INTEGER, [1])
        assert type(column[0]) is int

    def test_constant_and_nulls(self):
        assert Column.constant(SqlType.INTEGER, 7, 3).to_list() == [7, 7, 7]
        assert Column.nulls(SqlType.FLOAT, 2).to_list() == [None, None]

    def test_take_with_null_pad(self):
        column = Column.from_values(SqlType.INTEGER, [10, 20, 30])
        taken = column.take(np.array([2, -1, 0]))
        assert taken.to_list() == [30, None, 10]

    def test_take_from_empty_all_pads(self):
        column = Column.from_values(SqlType.INTEGER, [])
        taken = column.take(np.array([-1, -1]))
        assert taken.to_list() == [None, None]

    def test_take_from_empty_with_real_index_fails(self):
        column = Column.from_values(SqlType.INTEGER, [])
        with pytest.raises(IndexError):
            column.take(np.array([0]))

    def test_filter(self):
        column = Column.from_values(SqlType.INTEGER, [1, 2, 3, 4])
        kept = column.filter(np.array([True, False, True, False]))
        assert kept.to_list() == [1, 3]

    def test_cast_int_to_float(self):
        column = Column.from_values(SqlType.INTEGER, [1, None])
        cast = column.cast(SqlType.FLOAT)
        assert cast.sql_type is SqlType.FLOAT
        assert cast.to_list() == [1.0, None]

    def test_cast_float_to_text(self):
        column = Column.from_values(SqlType.FLOAT, [1.0, None])
        assert column.cast(SqlType.TEXT).to_list() == ["1.0", None]

    def test_cast_text_to_int(self):
        column = Column.from_values(SqlType.TEXT, ["42", None])
        assert column.cast(SqlType.INTEGER).to_list() == [42, None]

    def test_invalid_cast_raises(self):
        column = Column.from_values(SqlType.TEXT, ["x"])
        with pytest.raises(TypeCheckError):
            column.cast(SqlType.BOOLEAN)

    def test_concat_widens(self):
        ints = Column.from_values(SqlType.INTEGER, [1])
        floats = Column.from_values(SqlType.FLOAT, [2.5])
        combined = ints.concat(floats)
        assert combined.sql_type is SqlType.FLOAT
        assert combined.to_list() == [1.0, 2.5]

    def test_is_distinct_from(self):
        a = Column.from_values(SqlType.INTEGER, [1, None, 3, None])
        b = Column.from_values(SqlType.INTEGER, [1, None, 4, 5])
        assert a.is_distinct_from(b).tolist() == [False, False, True, True]

    def test_equals_null_is_false(self):
        a = Column.from_values(SqlType.INTEGER, [None])
        b = Column.from_values(SqlType.INTEGER, [None])
        assert a.equals(b).tolist() == [False]

    @given(values_with_nulls)
    def test_roundtrip_property(self, values):
        column = Column.from_values(SqlType.INTEGER, values)
        assert column.to_list() == values

    @given(values_with_nulls)
    def test_filter_then_len(self, values):
        column = Column.from_values(SqlType.INTEGER, values)
        keep = np.array([v is not None for v in values], dtype=bool)
        assert len(column.filter(keep)) == int(keep.sum())

    @given(values_with_nulls, values_with_nulls)
    def test_is_distinct_from_is_symmetric(self, a_vals, b_vals):
        size = min(len(a_vals), len(b_vals))
        a = Column.from_values(SqlType.INTEGER, a_vals[:size])
        b = Column.from_values(SqlType.INTEGER, b_vals[:size])
        assert (a.is_distinct_from(b) == b.is_distinct_from(a)).all()

    @given(values_with_nulls)
    def test_never_distinct_from_itself(self, values):
        column = Column.from_values(SqlType.INTEGER, values)
        assert not column.is_distinct_from(column).any()


class TestTable:
    def _table(self):
        return Table.from_columns([
            ("a", SqlType.INTEGER, [1, 2, 3]),
            ("b", SqlType.TEXT, ["x", None, "z"]),
        ])

    def test_rows(self):
        assert self._table().rows() == [(1, "x"), (2, None), (3, "z")]

    def test_to_dicts(self):
        assert self._table().to_dicts()[0] == {"a": 1, "b": "x"}

    def test_empty(self):
        schema = Schema.of(("a", SqlType.INTEGER))
        assert Table.empty(schema).num_rows == 0

    def test_ragged_columns_rejected(self):
        schema = Schema.of(("a", SqlType.INTEGER), ("b", SqlType.INTEGER))
        with pytest.raises(TypeCheckError):
            Table(schema, [Column.from_values(SqlType.INTEGER, [1]),
                           Column.from_values(SqlType.INTEGER, [1, 2])])

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema.of(("a", SqlType.INTEGER), ("a", SqlType.FLOAT))

    def test_primary_key_must_exist(self):
        with pytest.raises(CatalogError):
            Schema.of(("a", SqlType.INTEGER), primary_key="missing")

    def test_concat(self):
        table = self._table()
        doubled = table.concat(table)
        assert doubled.num_rows == 6

    def test_rename_columns(self):
        renamed = self._table().rename_columns(["x", "y"])
        assert renamed.schema.names == ["x", "y"]

    def test_rename_wrong_count(self):
        with pytest.raises(TypeCheckError):
            self._table().rename_columns(["only_one"])

    def test_take_and_filter(self):
        table = self._table()
        assert table.take(np.array([2, 0])).rows() == [(3, "z"), (1, "x")]
        assert table.filter(np.array([True, False, True])).num_rows == 2

    def test_pretty_table_renders(self):
        text = pretty_table(self._table())
        assert "a" in text and "NULL" in text

    def test_pretty_table_truncates(self):
        table = Table.from_columns([
            ("a", SqlType.INTEGER, list(range(100)))])
        text = pretty_table(table, limit=5)
        assert "100 rows total" in text


class TestCatalog:
    def test_create_get_drop(self):
        catalog = Catalog()
        catalog.create("t", Schema.of(("a", SqlType.INTEGER)))
        assert catalog.get("t").num_rows == 0
        catalog.drop("t")
        assert not catalog.exists("t")

    def test_names_are_case_insensitive(self):
        catalog = Catalog()
        catalog.create("MyTable", Schema.of(("a", SqlType.INTEGER)))
        assert catalog.exists("mytable")
        assert catalog.exists("MYTABLE")

    def test_duplicate_create_raises(self):
        catalog = Catalog()
        catalog.create("t", Schema.of(("a", SqlType.INTEGER)))
        with pytest.raises(CatalogError):
            catalog.create("t", Schema.of(("a", SqlType.INTEGER)))

    def test_if_not_exists_suppresses(self):
        catalog = Catalog()
        catalog.create("t", Schema.of(("a", SqlType.INTEGER)))
        catalog.create("t", Schema.of(("a", SqlType.INTEGER)),
                       if_not_exists=True)

    def test_drop_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().drop("nope")

    def test_drop_if_exists(self):
        Catalog().drop("nope", if_exists=True)

    def test_stats_counters(self):
        catalog = Catalog()
        catalog.create("t", Schema.of(("a", SqlType.INTEGER)))
        catalog.get("t")
        catalog.drop("t")
        snapshot = catalog.stats.snapshot()
        assert snapshot["tables_created"] == 1
        assert snapshot["tables_dropped"] == 1
        assert snapshot["lookups"] == 1


class TestResultRegistry:
    def _table(self, values):
        return Table.from_columns([("a", SqlType.INTEGER, values)])

    def test_store_fetch(self):
        registry = ResultRegistry()
        registry.store("r", self._table([1]))
        assert registry.fetch("r").num_rows == 1

    def test_fetch_missing_raises(self):
        with pytest.raises(CatalogError):
            ResultRegistry().fetch("nope")

    def test_rename_moves_pointer(self):
        registry = ResultRegistry()
        registry.store("working", self._table([1, 2]))
        registry.rename("working", "main")
        assert registry.fetch("main").num_rows == 2
        assert not registry.exists("working")

    def test_rename_releases_old_target(self):
        """§VI-A: when the new name exists, its memory is released."""
        registry = ResultRegistry()
        registry.store("main", self._table([1, 2, 3]))
        registry.store("working", self._table([9]))
        registry.rename("working", "main")
        assert registry.fetch("main").rows() == [(9,)]
        assert registry.bytes_released > 0
        assert registry.renames == 1

    def test_rename_missing_source_raises(self):
        registry = ResultRegistry()
        with pytest.raises(CatalogError):
            registry.rename("ghost", "main")

    def test_rename_is_constant_time_pointer_update(self):
        """The stored table object is *the same object* after rename —
        no data movement happens (the heart of Fig. 8)."""
        registry = ResultRegistry()
        table = self._table(list(range(1000)))
        registry.store("working", table)
        registry.rename("working", "main")
        assert registry.fetch("main") is table

    def test_drop_and_clear(self):
        registry = ResultRegistry()
        registry.store("a", self._table([1]))
        registry.store("b", self._table([2]))
        registry.drop("a")
        assert registry.names() == ["b"]
        registry.clear()
        assert registry.names() == []
