"""Property-style tests for the vectorized columnar kernels.

Each kernel is checked against a deliberately naive row-at-a-time
reference implementation over the same inputs — NULL-heavy, empty, and
single-row columns included — so the vectorized paths must be
bit-identical to first-principles row semantics, not merely
self-consistent.  A second family of tests drives whole queries through
the morsel scheduler at several chunk sizes (including degenerate
1-row morsels) and asserts results never depend on morsel boundaries.
"""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.execution import SessionOptions
from repro.execution.kernels import (
    build_probe_index,
    distinct_indices,
    encode_keys,
    equi_join_pairs,
    factorize,
    group_ids,
    scatter_update,
    sort_indices,
)
from repro.storage import Column
from repro.types import SqlType


def ints(*values) -> Column:
    return Column.from_values(SqlType.INTEGER, list(values))


def floats(*values) -> Column:
    return Column.from_values(SqlType.FLOAT, list(values))


def texts(*values) -> Column:
    return Column.from_values(SqlType.TEXT, list(values))


# Input corpus: NULL-heavy, empty, single-row, all-NULL, duplicates.
COLUMNS = {
    "null_heavy": ints(None, 3, None, 3, None, 7, None),
    "empty": ints(),
    "single": ints(42),
    "single_null": ints(None),
    "all_null": ints(None, None, None),
    "duplicates": ints(5, 5, 5, 2, 2, 9),
    "floats": floats(1.5, None, -0.0, 0.0, 1.5, None),
    "texts": texts("b", None, "a", "b", "", None),
}


def rows_of(*columns):
    """Row tuples with None for NULL slots (the row-path view)."""
    lists = [c.to_list() for c in columns]
    return list(zip(*lists))


class TestFactorize:
    """codes must induce exactly the row-equality partition."""

    @pytest.mark.parametrize("name", sorted(COLUMNS), ids=sorted(COLUMNS))
    @pytest.mark.parametrize("nulls_match", [True, False])
    def test_codes_partition_like_row_equality(self, name, nulls_match):
        column = COLUMNS[name]
        codes, cardinality = factorize(column, nulls_match)
        values = column.to_list()
        assert len(codes) == len(values)
        for i, vi in enumerate(values):
            if vi is None and not nulls_match:
                assert codes[i] == -1
                continue
            assert 0 <= codes[i] < cardinality
            for j, vj in enumerate(values):
                if vj is None and not nulls_match:
                    continue
                same_value = (vi is None and vj is None) or (
                    vi is not None and vj is not None and vi == vj)
                assert (codes[i] == codes[j]) == same_value, (
                    f"rows {i} ({vi!r}) and {j} ({vj!r})")


class TestEncodeKeys:
    @pytest.mark.parametrize("nulls_match", [True, False])
    def test_multi_column_codes_match_tuple_equality(self, nulls_match):
        a = ints(1, None, 1, 2, 1, None)
        b = texts("x", "x", "x", None, "y", None)
        codes = encode_keys([a, b], nulls_match=nulls_match)
        rows = rows_of(a, b)
        for i, ri in enumerate(rows):
            if not nulls_match and None in ri:
                assert codes[i] == -1
                continue
            for j, rj in enumerate(rows):
                if not nulls_match and None in rj:
                    continue
                assert (codes[i] == codes[j]) == (ri == rj)

    def test_empty_input(self):
        codes = encode_keys([ints()], nulls_match=True)
        assert len(codes) == 0


class TestEquiJoin:
    def reference_pairs(self, left, right):
        """Nested-loop inner join on one key; NULL never matches."""
        pairs = []
        for i, lv in enumerate(left.to_list()):
            for j, rv in enumerate(right.to_list()):
                if lv is not None and rv is not None and lv == rv:
                    pairs.append((i, j))
        return pairs

    CASES = [
        (ints(1, 2, None, 3, 2), ints(2, None, 2, 4, 1)),
        (ints(), ints(1, 2)),
        (ints(1, 2), ints()),
        (ints(None), ints(None)),
        (ints(7), ints(7, 7, 7)),
    ]

    @pytest.mark.parametrize("left,right", CASES)
    @pytest.mark.parametrize("prebuilt", [False, True])
    def test_pairs_match_nested_loop_reference(self, left, right, prebuilt):
        left_codes = encode_keys([left.concat(right)],
                                 nulls_match=False)[:len(left)]
        # Encode both sides jointly so equal values share codes.
        joint = encode_keys([left.concat(right)], nulls_match=False)
        left_codes, right_codes = joint[:len(left)], joint[len(left):]
        right_sorted = build_probe_index(right_codes) if prebuilt else None
        li, ri = equi_join_pairs(left_codes, right_codes, right_sorted)
        got = sorted(zip(li.tolist(), ri.tolist()))
        assert got == self.reference_pairs(left, right)
        # Pairs must arrive grouped by left row in left-row order.
        assert li.tolist() == sorted(li.tolist())


class TestGrouping:
    @pytest.mark.parametrize("name", ["null_heavy", "duplicates",
                                      "floats", "texts", "single",
                                      "all_null"])
    def test_group_ids_match_first_occurrence_reference(self, name):
        column = COLUMNS[name]
        codes = encode_keys([column], nulls_match=True)
        ids, firsts = group_ids(codes)
        values = column.to_list()
        assert len(ids) == len(values)
        for i, vi in enumerate(values):
            representative = values[firsts[ids[i]]]
            assert representative == vi or (
                representative is None and vi is None)
        # One group per distinct value.
        distinct = {(v is None, v) for v in values}
        assert len(set(ids.tolist())) == len(distinct)

    def test_distinct_indices_match_reference(self):
        a = ints(1, None, 1, 2, None, 2, 1)
        b = texts("x", "x", "x", None, "x", None, "y")
        got = distinct_indices([a, b]).tolist()
        seen, expected = set(), []
        for i, row in enumerate(rows_of(a, b)):
            if row not in seen:
                seen.add(row)
                expected.append(i)
        assert got == expected

    def test_distinct_on_empty(self):
        assert distinct_indices([ints()]).tolist() == []


class TestScatterUpdate:
    def test_matches_row_loop_reference(self):
        old = floats(1.0, None, 3.0, 4.0, 5.0)
        positions = np.array([1, 2, 4], dtype=np.int64)
        new = floats(None, 3.0, 9.0)
        merged, changed = scatter_update(old, positions, new)
        expected = old.to_list()
        expected_changed = []
        for pos, value in zip(positions.tolist(), new.to_list()):
            # SQL IS DISTINCT FROM: NULLs equal each other here.
            expected_changed.append(expected[pos] != value
                                    if (expected[pos] is None)
                                    == (value is None)
                                    else True)
            expected[pos] = value
        assert merged.to_list() == expected
        assert changed.tolist() == expected_changed

    def test_no_change_returns_the_same_object(self):
        old = ints(1, 2, None)
        merged, changed = scatter_update(
            old, np.array([0, 2], dtype=np.int64), ints(1, None))
        assert merged is old
        assert not changed.any()

    def test_empty_positions(self):
        old = ints(1, 2)
        merged, changed = scatter_update(
            old, np.empty(0, dtype=np.int64), ints())
        assert merged is old
        assert len(changed) == 0


class TestSort:
    def test_matches_reference_with_nulls_last(self):
        column = floats(3.0, None, 1.0, 2.0, None, 1.0)
        order = sort_indices([column], [True]).tolist()
        values = column.to_list()
        sentinel = float("inf")  # NULL sorts last under ASC
        expected = sorted(range(len(values)),
                          key=lambda i: (values[i] is None,
                                         values[i] if values[i] is not None
                                         else sentinel, i))
        assert order == expected

    def test_two_keys_stable(self):
        a = ints(1, 1, 2, 2, 1)
        b = texts("b", "a", "z", None, "a")
        order = sort_indices([a, b], [True, False]).tolist()
        rows = rows_of(a, b)

        def key(i):
            va, vb = rows[i]
            # b DESC with NULLs first (NULL = largest, negated rank).
            return (va, vb is not None,
                    tuple(-ord(ch) for ch in vb) if vb is not None else ())

        assert order == sorted(range(len(rows)), key=lambda i: (key(i), i))

    def test_empty(self):
        assert sort_indices([ints()], [True]).tolist() == []


# -- morsel boundaries ---------------------------------------------------

MORSEL_SQL = """
SELECT e.src, e.dst, n.label, e.weight * 2.0 AS w2
FROM edges e JOIN nodes n ON e.dst = n.id
WHERE e.weight > 0.3
ORDER BY e.src, e.dst"""


def _morsel_db(**options) -> Database:
    rng = np.random.default_rng(17)
    db = Database(SessionOptions(**options))
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.create_table("nodes", [("id", SqlType.INTEGER),
                              ("label", SqlType.TEXT)])
    db.load_rows("edges", [
        (int(rng.integers(1, 60)), int(rng.integers(1, 60)),
         round(float(rng.uniform(0, 1)), 6))
        for _ in range(500)])
    db.load_rows("nodes", [(i, f"n{i}") for i in range(1, 60)])
    return db


class TestMorselBoundaries:
    def test_results_independent_of_chunk_size(self):
        baseline = _morsel_db(parallel_morsels=False) \
            .execute(MORSEL_SQL).rows()
        assert len(baseline) > 0
        for morsel_size in (1, 3, 64, 100_000):
            db = _morsel_db(parallel_morsels=True,
                            morsel_size=morsel_size,
                            morsel_workers=3, morsel_min_rows=0)
            assert db.execute(MORSEL_SQL).rows() == baseline, (
                f"morsel_size={morsel_size} changed query results")
            if morsel_size < 500:
                assert db.stats.morsel_batches > 0
            else:
                # Everything fits one chunk: the scheduler must step
                # aside entirely rather than pay dispatch overhead.
                assert db.stats.morsel_batches == 0

    def test_parallel_dispatch_engages_above_threshold(self):
        db = _morsel_db(parallel_morsels=True, morsel_size=64,
                        morsel_workers=3, morsel_min_rows=0)
        db.execute(MORSEL_SQL)
        assert db.stats.morsel_parallel_batches > 0
        assert db.stats.morsel_rows > 0

    def test_iterative_delta_path_unaffected_by_morsels(self):
        from repro.workloads import sssp_query
        from tests.conftest import SMALL_EDGES

        def graph(**options):
            db = Database(SessionOptions(enable_delta_iteration=True,
                                         **options))
            db.create_table("edges", [("src", SqlType.INTEGER),
                                      ("dst", SqlType.INTEGER),
                                      ("weight", SqlType.FLOAT)])
            db.load_rows("edges", SMALL_EDGES)
            return db

        sql = sssp_query(source=1, iterations=6)
        plain = graph().execute(sql).rows()
        morsels = graph(parallel_morsels=True, morsel_size=2,
                        morsel_workers=2, morsel_min_rows=0)
        assert morsels.execute(sql).rows() == plain
