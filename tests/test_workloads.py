"""Workload correctness: the paper's PR / PR-VS / SSSP / FF queries checked
against direct reference implementations and (for PR/SSSP) against
networkx; plus the central invariant that every optimization is
result-preserving."""

import itertools

import pytest

from repro import Database
from repro.datasets import (
    dblp_like,
    fresh_database,
    generate_edges,
    generate_vertex_status,
    load_graph,
    pokec_like,
)
from repro.workloads import (
    INFINITY,
    ff_query,
    pagerank_query,
    reference_ff,
    reference_pagerank,
    reference_sssp,
    sssp_query,
    true_shortest_paths,
)

SPEC = dblp_like(nodes=250, seed=42)
EDGES = generate_edges(SPEC)
STATUS = generate_vertex_status(SPEC, available_fraction=0.7)


@pytest.fixture(scope="module")
def loaded_db():
    db = Database()
    load_graph(db, SPEC, with_vertex_status=True,
               available_fraction=0.7)
    return db


class TestPageRank:
    def test_matches_reference(self, loaded_db):
        rows = dict(loaded_db.execute(pagerank_query(iterations=6)).rows())
        reference = reference_pagerank(EDGES, iterations=6)
        assert rows.keys() == reference.keys()
        for node, rank in rows.items():
            assert rank == pytest.approx(reference[node], abs=1e-9)

    def test_converges_to_networkx_ranking(self, loaded_db):
        """After many iterations the delta-accumulative PR orders nodes
        like networkx's PageRank (same damping, weighted)."""
        networkx = pytest.importorskip("networkx")
        rows = dict(loaded_db.execute(
            pagerank_query(iterations=40, coalesced=True)).rows())
        graph = networkx.DiGraph()
        graph.add_nodes_from(rows.keys())
        graph.add_weighted_edges_from(EDGES)
        nx_rank = networkx.pagerank(graph, alpha=0.85, weight="weight")
        ours_top = sorted(rows, key=rows.get, reverse=True)[:10]
        theirs_top = sorted(nx_rank, key=nx_rank.get, reverse=True)[:10]
        # Top-10 sets agree (scores are scaled by n relative to networkx).
        assert len(set(ours_top) & set(theirs_top)) >= 8

    def test_pr_vs_matches_reference(self, loaded_db):
        available = {node: bool(flag) for node, flag in STATUS}
        rows = dict(loaded_db.execute(
            pagerank_query(iterations=5, with_vertex_status=True)).rows())
        reference = reference_pagerank(EDGES, iterations=5,
                                       available=available)
        for node, rank in rows.items():
            assert rank == pytest.approx(reference[node], abs=1e-9)

    def test_unavailable_nodes_keep_initial_rank(self, loaded_db):
        rows = dict(loaded_db.execute(
            pagerank_query(iterations=5, with_vertex_status=True)).rows())
        for node, flag in STATUS:
            if not flag and node in rows:
                assert rows[node] == 0


class TestSssp:
    def test_matches_reference(self, loaded_db):
        rows = dict(loaded_db.execute(
            sssp_query(source=1, iterations=8)).rows())
        reference = reference_sssp(EDGES, source=1, iterations=8)
        for node, distance in rows.items():
            assert distance == pytest.approx(reference[node], abs=1e-9)

    def test_converges_to_dijkstra(self, loaded_db):
        rows = dict(loaded_db.execute(
            sssp_query(source=1, iterations=60)).rows())
        truth = true_shortest_paths(EDGES, source=1)
        for node, distance in rows.items():
            if truth[node] == INFINITY:
                assert distance == INFINITY
            else:
                assert distance == pytest.approx(truth[node], abs=1e-9)

    def test_source_distance_reaches_zero(self, loaded_db):
        # Fig. 7's recurrence only assigns the source its 0 once some
        # in-neighbour of the source becomes reachable (the query takes
        # LEAST(distance, previous delta) for rows entering the working
        # table) — so this needs enough iterations, not just one.
        rows = dict(loaded_db.execute(
            sssp_query(source=1, iterations=40)).rows())
        assert rows[1] == 0

    def test_final_filter(self, loaded_db):
        rows = loaded_db.execute(
            sssp_query(source=1, iterations=5,
                       final_where="Node = 10")).rows()
        assert len(rows) == 1
        assert rows[0][0] == 10


class TestFf:
    def test_matches_reference(self, loaded_db):
        rows = dict(loaded_db.execute(
            ff_query(iterations=5, selectivity_mod=10,
                     order_and_limit=False)).rows())
        reference = reference_ff(EDGES, iterations=5, selectivity_mod=10)
        assert rows.keys() == reference.keys()
        for node, friends in rows.items():
            assert friends == pytest.approx(reference[node], rel=1e-9)

    def test_selectivity_controls_output_size(self, loaded_db):
        dense = loaded_db.execute(
            ff_query(iterations=2, selectivity_mod=2,
                     order_and_limit=False)).rows()
        sparse = loaded_db.execute(
            ff_query(iterations=2, selectivity_mod=50,
                     order_and_limit=False)).rows()
        assert len(dense) > len(sparse)

    def test_order_and_limit(self, loaded_db):
        rows = loaded_db.execute(
            ff_query(iterations=3, selectivity_mod=2)).rows()
        assert len(rows) <= 10
        friends = [f for _, f in rows]
        assert friends == sorted(friends, reverse=True)


OPTION_GRID = list(itertools.product([True, False], repeat=3))


class TestOptimizationInvariance:
    """The paper's optimizations must never change results — only cost.

    Every combination of the three switches is run over every workload on
    the same dataset and compared row-for-row.
    """

    @pytest.mark.parametrize("query_builder", [
        lambda: pagerank_query(iterations=4),
        lambda: pagerank_query(iterations=4, with_vertex_status=True),
        lambda: sssp_query(source=1, iterations=5),
        lambda: sssp_query(source=1, iterations=4,
                           with_vertex_status=True),
        lambda: ff_query(iterations=4, selectivity_mod=10,
                         order_and_limit=False),
    ], ids=["pr", "pr-vs", "sssp", "sssp-vs", "ff"])
    def test_options_do_not_change_results(self, query_builder, loaded_db):
        sql = query_builder()
        expected = None
        for rename, common, pushdown in OPTION_GRID:
            loaded_db.set_option("enable_rename", rename)
            loaded_db.set_option("enable_common_results", common)
            loaded_db.set_option("enable_predicate_pushdown", pushdown)
            rows = sorted(loaded_db.execute(sql).rows())
            if expected is None:
                expected = rows
            else:
                assert rows == pytest.approx(expected), (
                    f"options ({rename}, {common}, {pushdown}) changed "
                    "the result")
        # Restore defaults for other tests in the module-scoped fixture.
        loaded_db.set_option("enable_rename", True)
        loaded_db.set_option("enable_common_results", True)
        loaded_db.set_option("enable_predicate_pushdown", True)


class TestDatasets:
    def test_dblp_ratio(self):
        from repro.datasets import edge_list_stats
        stats = edge_list_stats(EDGES)
        assert stats["edges_per_node"] == pytest.approx(3.31, abs=0.6)

    def test_pokec_is_denser_than_dblp(self):
        pokec_edges = generate_edges(pokec_like(nodes=250))
        assert len(pokec_edges) > len(EDGES) * 3

    def test_determinism(self):
        again = generate_edges(dblp_like(nodes=250, seed=42))
        assert again == EDGES

    def test_every_node_has_an_incoming_edge(self):
        # Keeps the faithful (non-COALESCE) PR query NULL-free.
        destinations = {dst for _, dst, _ in EDGES}
        nodes = {src for src, _, _ in EDGES} | destinations
        assert nodes == destinations

    def test_weights_are_transition_probabilities(self):
        from collections import defaultdict
        totals = defaultdict(float)
        for src, _, weight in EDGES:
            totals[src] += weight
        for total in totals.values():
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_vertex_status_covers_all_nodes(self):
        assert len(STATUS) == SPEC.nodes
        fraction = sum(flag for _, flag in STATUS) / len(STATUS)
        assert 0.6 < fraction < 0.8

    def test_fresh_database_loads(self):
        db = fresh_database(dblp_like(nodes=50))
        count = db.execute("SELECT COUNT(*) FROM edges").scalar()
        assert count > 50
