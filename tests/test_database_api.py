"""Database façade tests: results, scripts, options, stats, harness."""

import pytest

from repro import Database
from repro.errors import ReproError
from repro.harness import Comparison, Measurement, time_callable, time_query
from repro.harness.reporting import format_table, print_series
from repro.types import SqlType


class TestQueryResult:
    def test_rows_and_dicts(self, people_db):
        result = people_db.execute("SELECT id, name FROM people "
                                   "WHERE id = 1")
        assert result.rows() == [(1, "ada")]
        assert result.to_dicts() == [{"id": 1, "name": "ada"}]
        assert result.column_names() == ["id", "name"]

    def test_scalar(self, people_db):
        assert people_db.execute(
            "SELECT COUNT(*) FROM people").scalar() == 5

    def test_scalar_rejects_non_scalar(self, people_db):
        with pytest.raises(ReproError):
            people_db.execute("SELECT id, name FROM people").scalar()

    def test_pretty_renders(self, people_db):
        text = people_db.execute("SELECT * FROM people").pretty()
        assert "ada" in text

    def test_dml_result_has_rowcount(self, people_db):
        result = people_db.execute("DELETE FROM people WHERE id = 1")
        assert result.rowcount == 1
        assert result.rows() == []
        assert "rows affected" in result.pretty()


class TestScripts:
    def test_execute_script(self, db):
        results = db.execute_script("""
            CREATE TABLE t (a int);
            INSERT INTO t VALUES (1), (2);
            SELECT COUNT(*) FROM t;
        """)
        assert len(results) == 3
        assert results[-1].scalar() == 2


class TestOptions:
    def test_set_option(self, db):
        db.set_option("enable_rename", False)
        assert db.options.enable_rename is False

    def test_unknown_option(self, db):
        with pytest.raises(ReproError):
            db.set_option("enable_warp_drive", True)

    def test_options_object_injection(self):
        from repro.engine import SessionOptions
        options = SessionOptions(enable_rename=False)
        db = Database(options)
        assert db.options.enable_rename is False


class TestStats:
    def test_statement_counter(self, db):
        db.execute("SELECT 1")
        db.execute("SELECT 2")
        assert db.stats.statements == 2

    def test_reset(self, db):
        db.execute("SELECT 1")
        db.reset_stats()
        assert db.stats.statements == 0
        assert db.workload.units_admitted == 0

    def test_scan_counters(self, graph_db):
        graph_db.reset_stats()
        graph_db.execute("SELECT * FROM edges")
        assert graph_db.stats.rows_scanned == 5

    def test_snapshot_is_plain_dict(self, db):
        db.execute("SELECT 1")
        snapshot = db.stats.snapshot()
        assert isinstance(snapshot, dict)
        assert snapshot["statements"] == 1


class TestLoaders:
    def test_create_table_helper(self, db):
        db.create_table("t", [("a", SqlType.INTEGER)], primary_key="a")
        assert db.table("t").schema.primary_key == "a"

    def test_load_rows(self, db):
        db.create_table("t", [("a", SqlType.INTEGER)])
        assert db.load_rows("t", [(i,) for i in range(10)]) == 10
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 10

    def test_load_rows_appends(self, db):
        db.create_table("t", [("a", SqlType.INTEGER)])
        db.load_rows("t", [(1,)])
        db.load_rows("t", [(2,)])
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2


class TestHarness:
    def test_time_callable(self):
        measurement = time_callable("noop", lambda: None, repeats=3,
                                    warmup=1)
        assert measurement.repeats == 3
        assert measurement.seconds >= 0
        assert len(measurement.all_seconds) == 3

    def test_time_query(self, db):
        measurement = time_query(db, "SELECT 1", repeats=2, warmup=0)
        assert measurement.seconds >= 0

    def test_comparison_metrics(self):
        baseline = Measurement("base", 2.0, 1)
        optimized = Measurement("opt", 1.0, 1)
        comparison = Comparison("x", baseline, optimized)
        assert comparison.improvement_pct == pytest.approx(50.0)
        assert comparison.speedup == pytest.approx(2.0)

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["xx", "y"]])
        assert "a" in text and "2.5000" in text

    def test_print_series(self, capsys):
        print_series("demo", ["x"], [[1]], paper_claim="n/a")
        captured = capsys.readouterr().out
        assert "demo" in captured and "paper claim" in captured
