"""IR verifier mutation harness.

Compiles real programs (rename-in-place iterative, semi-naive delta,
recursive fixpoint, WHERE-body merge), corrupts each one in a systematic
way, and requires the verifier to reject every corruption with a
structured, pass-attributed :class:`VerificationError`.  The pristine
programs must verify clean — the full test suite running with
``enable_plan_verifier`` on is the zero-false-positive check; this file
is the zero-false-negative one.
"""

import dataclasses

import pytest

from repro.core.rewrite import compile_statement
from repro.datasets import dblp_like, generate_edges
from repro.engine.database import Database
from repro.errors import VerificationError
from repro.execution import SessionOptions
from repro.plan import PlanContext
from repro.plan.logical import LogicalTempScan
from repro.plan.program import CopyStep, DropStep
from repro.sql import ast, parse
from repro.types import SqlType
from repro.verify import check_plan, check_program, verify_program
from repro.workloads import sssp_query

EDGES = generate_edges(dblp_like(nodes=60, seed=3))

RECURSIVE_SQL = """
WITH RECURSIVE reach (node) AS (
  SELECT dst FROM edges WHERE src = 1
  UNION
  SELECT e.dst FROM reach r JOIN edges e ON e.src = r.node
) SELECT node FROM reach"""

WHERE_SQL = """
WITH ITERATIVE r (node, v) AS (
  SELECT src, 0.0 FROM edges GROUP BY src
  ITERATE SELECT r.node, min(r.v + e.weight)
          FROM r JOIN edges e ON e.src = r.node
          WHERE r.v < 2.0
          GROUP BY r.node
  UNTIL 3 ITERATIONS
) SELECT node, v FROM r ORDER BY node"""


def _graph_db(**options) -> Database:
    db = Database(SessionOptions(**options))
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", EDGES)
    return db


def _compile(db, sql):
    return compile_statement(parse(sql), PlanContext(db.catalog),
                             db.options, db.stats)


def _fresh(shape):
    """(program, catalog) for one of the four program shapes, compiled
    fresh so mutations never leak between tests."""
    if shape == "iterative":
        db = _graph_db(enable_delta_iteration=False)
        sql = sssp_query(source=1, iterations=5)
    elif shape == "delta":
        # The quartet shape: fusion off keeps the five-step delta block
        # the index-based mutations below rely on.
        db = _graph_db(enable_delta_iteration=True,
                       enable_delta_fusion=False)
        sql = sssp_query(source=1, iterations=5)
    elif shape == "fused":
        db = _graph_db(enable_delta_iteration=True)
        sql = sssp_query(source=1, iterations=5)
    elif shape == "recursive":
        db = _graph_db()
        sql = RECURSIVE_SQL
    elif shape == "where":
        db = _graph_db(enable_delta_iteration=False)
        sql = WHERE_SQL
    else:  # pragma: no cover
        raise AssertionError(shape)
    return _compile(db, sql), db.catalog


def _first_column_ref(node):
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.ColumnRef):
            return current
        if dataclasses.is_dataclass(current):
            stack.extend(getattr(current, f.name)
                         for f in dataclasses.fields(current))
        elif isinstance(current, (list, tuple)):
            stack.extend(current)
    raise AssertionError("plan has no ColumnRef to corrupt")


# -- the mutation catalogue -------------------------------------------------
#
# Step layouts the index-based corruptions rely on (from _emit_iterative /
# _emit_recursive; the layout tests below pin them):
#
#   iterative/where: 0 mat cte, 1 init, 2 mat work, 3 dupcheck,
#                    4 mat merge, 5 rename, 6 inc, 7 loop, 8 ret, 9 drop
#   delta:           0 mat cte, 1 init, 2 gate, 3 partition, 4 mat dwork,
#                    5 dupcheck, 6 apply, 7 snapshot, 8 mat work,
#                    9 dupcheck, 10 mat merge, 11 rename, 12 capture,
#                    13 inc, 14 loop, 15 ret, 16 drop
#   fused:           0 mat cte, 1 init, 2 fused, 3 snapshot, 4 mat work,
#                    5 dupcheck, 6 mat merge, 7 rename, 8 capture,
#                    9 inc, 10 loop, 11 ret, 12 drop
#   recursive:       0 mat cte, 1 mat work, 2 init, 3 mat cand,
#                    4 merge, 5 loop, 6 ret, 7 drop


def _mut_jump_past_end(program):
    program.steps[7].jump_to = 99


def _mut_unpatched_delta_jump(program):
    program.steps[2].jump_full = -1


def _mut_drop_delta_capture(program):
    program.steps[12] = DropStep([])


def _mut_drop_init(program):
    program.steps[1] = DropStep([])


def _mut_drop_increment(program):
    program.steps[6] = DropStep([])


def _mut_drop_return(program):
    program.steps[8] = DropStep([])


def _mut_rename_undefined_source(program):
    program.steps[5].source = "__ghost"


def _mut_plan_scans_ghost_temp(program):
    scan = next(op for op in program.steps[4].plan.walk()
                if isinstance(op, LogicalTempScan))
    object.__setattr__(scan, "result_name", "__ghost")


def _mut_drop_live_table(program):
    program.steps[3] = DropStep([program.loops[0].cte_result])


def _mut_orphan_snapshot(program):
    program.steps[7].target = "__orphan"


def _mut_materialize_arity(program):
    program.steps[0].column_names = \
        list(program.steps[0].column_names) + ["extra"]


def _mut_return_plan_bad_column(program):
    ref = _first_column_ref(program.steps[8].plan)
    object.__setattr__(ref, "name", "no_such_column")


def _mut_movement_kind_flip(program):
    old = program.steps[5]
    program.steps[5] = CopyStep(source=old.source, target=old.target)


def _mut_rename_bypasses_merge(program):
    program.steps[5].source = program.steps[2].result_name


def _mut_unknown_loop_id(program):
    program.steps[6].loop_id = 7


def _mut_swap_gate_partition(program):
    program.steps[2], program.steps[3] = \
        program.steps[3], program.steps[2]


def _mut_merge_feeds_wrong_working(program):
    program.steps[4].working = "__other"


def _mut_fused_unpatched_jump(program):
    program.steps[2].jump_full = -1


def _mut_fused_dup_check_flip(program):
    program.steps[2].dup_check = False


def _mut_fused_columns_diverge(program):
    names = list(program.steps[2].column_names)
    names[0] = "not_the_key"
    program.steps[2].column_names = names


def _mut_fused_jump_targets_diverge(program):
    program.steps[2].jump_done = program.steps[2].jump_full


def _mut_fused_coexists_with_quartet(program):
    from repro.plan.program import DeltaPartitionStep
    program.steps[3] = DeltaPartitionStep(program.steps[2].spec)


def _mut_fused_capture_missing(program):
    program.steps[8] = DropStep([])


MUTATIONS = [
    ("jump_past_end", "iterative", _mut_jump_past_end,
     "past the end"),
    ("unpatched_delta_jump", "delta", _mut_unpatched_delta_jump,
     "never patched"),
    ("missing_delta_capture", "delta", _mut_drop_delta_capture,
     "DeltaCaptureStep"),
    ("missing_init_loop", "iterative", _mut_drop_init,
     "InitLoopStep"),
    ("missing_increment", "iterative", _mut_drop_increment,
     "IncrementLoopStep"),
    ("missing_return", "iterative", _mut_drop_return,
     "ReturnSteps, expected 1"),
    ("rename_undefined_source", "iterative", _mut_rename_undefined_source,
     "reads '__ghost'"),
    ("plan_scans_ghost_temp", "iterative", _mut_plan_scans_ghost_temp,
     "reads '__ghost'"),
    ("drop_live_table", "iterative", _mut_drop_live_table,
     "drops live result"),
    ("orphan_snapshot", "delta", _mut_orphan_snapshot,
     "never consumed"),
    ("materialize_arity", "iterative", _mut_materialize_arity,
     "column names"),
    ("return_plan_bad_column", "iterative", _mut_return_plan_bad_column,
     "no_such_column"),
    ("movement_kind_flip", "iterative", _mut_movement_kind_flip,
     "declares movement"),
    ("rename_bypasses_merge", "where", _mut_rename_bypasses_merge,
     "without merging"),
    ("unknown_loop_id", "iterative", _mut_unknown_loop_id,
     "unknown loop 7"),
    ("swap_gate_partition", "delta", _mut_swap_gate_partition,
     "out of order"),
    ("merge_feeds_wrong_working", "recursive",
     _mut_merge_feeds_wrong_working, "RecursiveMergeStep"),
    ("fused_unpatched_jump", "fused", _mut_fused_unpatched_jump,
     "never patched"),
    ("fused_dup_check_flip", "fused", _mut_fused_dup_check_flip,
     "duplicate-check"),
    ("fused_columns_diverge", "fused", _mut_fused_columns_diverge,
     "diverge from the DeltaSpec"),
    ("fused_jump_targets_diverge", "fused",
     _mut_fused_jump_targets_diverge, "diverge; both must target"),
    ("fused_coexists_with_quartet", "fused",
     _mut_fused_coexists_with_quartet, "coexists"),
    ("fused_capture_missing", "fused", _mut_fused_capture_missing,
     "DeltaCaptureStep"),
]


class TestPristinePrograms:
    @pytest.mark.parametrize(
        "shape", ["iterative", "delta", "fused", "recursive", "where"])
    def test_compiles_clean(self, shape):
        program, catalog = _fresh(shape)
        assert check_program(program, catalog) == []

    def test_compile_attaches_verdict(self):
        program, _ = _fresh("iterative")
        assert program.verifier_verdict is not None
        assert program.verifier_verdict.startswith("ok (")
        assert f"verifier: {program.verifier_verdict}" \
            in program.explain()


class TestMutations:
    @pytest.mark.parametrize(
        "name,shape,mutate,expected",
        MUTATIONS, ids=[m[0] for m in MUTATIONS])
    def test_corruption_rejected(self, name, shape, mutate, expected):
        program, catalog = _fresh(shape)
        mutate(program)
        violations = check_program(program, catalog)
        assert violations, f"{name}: corruption went undetected"
        assert any(expected in v for v in violations), \
            f"{name}: none of {violations!r} mentions {expected!r}"

    @pytest.mark.parametrize(
        "name,shape,mutate,expected",
        MUTATIONS, ids=[m[0] for m in MUTATIONS])
    def test_error_names_the_pass(self, name, shape, mutate, expected):
        program, catalog = _fresh(shape)
        mutate(program)
        with pytest.raises(VerificationError) as excinfo:
            verify_program(program, f"mutation:{name}", catalog)
        error = excinfo.value
        assert error.pass_name == f"mutation:{name}"
        assert any(expected in v for v in error.violations)
        assert f"after pass 'mutation:{name}'" in str(error)


class TestErrorStructure:
    def test_long_violation_lists_are_elided(self):
        error = VerificationError(
            "compile", [f"violation {i}" for i in range(7)])
        assert error.pass_name == "compile"
        assert len(error.violations) == 7
        assert "... 3 more" in str(error)

    def test_plan_checker_rejects_unknown_base_column(self):
        # The recursive base case scans the edges table directly, so its
        # materializing plan is a convenient plan-over-base-table victim.
        program, catalog = _fresh("recursive")
        plan = program.steps[0].plan
        ref = _first_column_ref(plan)
        object.__setattr__(ref, "name", "no_such_column")
        violations = check_plan(plan, catalog)
        assert any("no_such_column" in v for v in violations)


class TestVerifierToggle:
    def test_pytest_runs_default_on(self):
        # PYTEST_CURRENT_TEST is set while this test runs, so the
        # factory default must be on — the whole suite doubles as the
        # zero-false-positive corpus.
        assert SessionOptions().enable_plan_verifier

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "0")
        assert not SessionOptions().enable_plan_verifier
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert SessionOptions().enable_plan_verifier

    def test_disabled_sessions_skip_verification(self):
        db = _graph_db(enable_plan_verifier=False)
        program = _compile(db, sssp_query(source=1, iterations=3))
        assert program.verifier_verdict is None

    def test_verdict_reaches_explain_output(self):
        db = _graph_db()
        report = db.explain(sssp_query(source=1, iterations=3))
        assert "verifier: ok (" in report

    def test_verdict_reaches_trace_json(self):
        import json

        db = _graph_db(enable_tracing=True)
        db.execute(sssp_query(source=1, iterations=3))
        trace = json.loads(db.trace_json())

        def spans(span):
            yield span
            for child in span["children"]:
                yield from spans(child)

        compile_span = next(s for s in spans(trace["root"])
                            if s["name"] == "compile")
        assert compile_span["attributes"]["verifier"].startswith("ok (")


# -- exchange plans (the distributed IR) ---------------------------------

from repro.mpp.plan import (ExchangeOp, ExchangePlan, LocalOp,  # noqa: E402
                            RegisterDef, pagerank_exchange_plan,
                            sssp_exchange_plan)
from repro.verify import check_exchange_plan, verify_exchange_plan  # noqa: E402


def _xmut_duplicate_register(plan):
    return dataclasses.replace(
        plan, registers=plan.registers + (plan.registers[0],))


def _xmut_key_not_a_column(plan):
    bad = dataclasses.replace(plan.registers[0], key="no_such_column")
    return dataclasses.replace(
        plan, registers=(bad,) + plan.registers[1:])


def _xmut_read_undefined(plan):
    first = dataclasses.replace(
        plan.steps[0], reads=plan.steps[0].reads + ("phantom",))
    return dataclasses.replace(plan, steps=(first,) + plan.steps[1:])


def _xmut_ship_undefined(plan):
    steps = tuple(
        dataclasses.replace(step, register="phantom")
        if isinstance(step, ExchangeOp) else step
        for step in plan.steps)
    return dataclasses.replace(plan, steps=steps)


def _xmut_route_key_not_a_column(plan):
    steps = tuple(
        dataclasses.replace(step, key="no_such_column")
        if isinstance(step, ExchangeOp) else step
        for step in plan.steps)
    return dataclasses.replace(plan, steps=steps)


def _xmut_delta_under_naive(plan):
    steps = tuple(
        dataclasses.replace(step, delta=True)
        if isinstance(step, ExchangeOp) else step
        for step in plan.steps)
    return dataclasses.replace(plan, strategy="naive", steps=steps)


def _xmut_drop_exchange(plan):
    # Remove the motion: the apply phase's co-location contract on the
    # shuffled register can no longer hold (it was never re-keyed).
    return dataclasses.replace(
        plan, steps=tuple(step for step in plan.steps
                          if not isinstance(step, ExchangeOp)))


def _xmut_unknown_strategy(plan):
    return dataclasses.replace(plan, strategy="speculative")


EXCHANGE_MUTATIONS = [
    ("duplicate_register", _xmut_duplicate_register, "duplicate register"),
    ("key_not_a_column", _xmut_key_not_a_column, "not one of its columns"),
    ("read_undefined", _xmut_read_undefined, "undefined register"),
    ("ship_undefined", _xmut_ship_undefined, "undefined register"),
    ("route_key_not_a_column", _xmut_route_key_not_a_column,
     "routes on"),
    ("delta_under_naive", _xmut_delta_under_naive,
     "delta suppression"),
    ("drop_exchange", _xmut_drop_exchange, "requires"),
    ("unknown_strategy", _xmut_unknown_strategy, "unknown plan strategy"),
]


class TestExchangePlanVerifier:
    @pytest.mark.parametrize("build", [
        lambda: pagerank_exchange_plan(delta_shuffle=False),
        lambda: pagerank_exchange_plan(delta_shuffle=True),
        lambda: sssp_exchange_plan(delta_shuffle=False),
        lambda: sssp_exchange_plan(delta_shuffle=True),
    ], ids=["pagerank", "pagerank_delta", "sssp", "sssp_delta"])
    def test_pristine_plans_pass(self, build):
        assert check_exchange_plan(build()) == []

    @pytest.mark.parametrize(
        "name,mutate,expected",
        EXCHANGE_MUTATIONS, ids=[m[0] for m in EXCHANGE_MUTATIONS])
    def test_corruption_rejected(self, name, mutate, expected):
        for build in (pagerank_exchange_plan, sssp_exchange_plan):
            plan = mutate(build())
            violations = check_exchange_plan(plan)
            assert violations, f"{name}: corruption went undetected"
            assert any(expected in v for v in violations), \
                f"{name}: none of {violations!r} mentions {expected!r}"

    def test_error_names_the_pass(self):
        plan = _xmut_ship_undefined(pagerank_exchange_plan())
        with pytest.raises(VerificationError) as excinfo:
            verify_exchange_plan(plan, "pagerank:exchange_plan")
        assert excinfo.value.pass_name == "pagerank:exchange_plan"
        assert "after pass 'pagerank:exchange_plan'" in str(excinfo.value)

    def test_colocation_tracks_exchange_rekey(self):
        # A register shuffled onto one key then required on another must
        # be flagged — the exchange is what establishes the distribution.
        plan = ExchangePlan(
            name="rekey", strategy="naive",
            registers=(RegisterDef("state", ("node", "rank"), key="node"),),
            steps=(
                LocalOp("produce", reads=("state",), writes=("out",)),
                ExchangeOp("out", key="dst", columns=("dst", "value")),
                LocalOp("consume", reads=("state", "out"),
                        requires=((("state", "node"), ("out", "value")),)),
            ))
        violations = check_exchange_plan(plan)
        assert any("hashed on" in v and "'out'" in v for v in violations)

    def test_local_write_invalidates_key_knowledge(self):
        # Rebuilding a shuffled register locally (not reading it) drops
        # its partition-key fact; a later contract on the old key fails.
        plan = ExchangePlan(
            name="invalidate", strategy="naive",
            registers=(RegisterDef("state", ("node", "rank"), key="node"),),
            steps=(
                LocalOp("produce", reads=("state",), writes=("out",)),
                ExchangeOp("out", key="dst", columns=("dst", "value")),
                LocalOp("rebuild", reads=("state",), writes=("out",)),
                LocalOp("consume", reads=("out",),
                        requires=((("out", "dst"),),)),
            ))
        violations = check_exchange_plan(plan)
        assert any("not hash-partitioned" in v for v in violations)

    def test_drivers_verify_before_running(self):
        # The distributed drivers must reject a broken plan before any
        # partitioning work happens.
        from repro.mpp.iterative import _verify_spec
        from repro.mpp.superstep import SuperstepSpec

        spec = SuperstepSpec(
            name="broken", produce=lambda regs: None,
            apply=lambda regs, pieces, aux: None, route_key="dst",
            state="state",
            plan=_xmut_ship_undefined(pagerank_exchange_plan()))
        with pytest.raises(VerificationError) as excinfo:
            _verify_spec(spec)
        assert excinfo.value.pass_name == "broken:exchange_plan"
