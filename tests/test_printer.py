"""SQL printer tests: parse → print → parse must be a fixed point
(structural round-trip), for hand-written and generated statements."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast, parse, statement_to_sql
from repro.workloads import (
    components_query,
    ff_query,
    pagerank_query,
    sssp_query,
)


def roundtrip(sql: str) -> None:
    """print(parse(x)) must parse to the same rendering again."""
    first = statement_to_sql(parse(sql))
    second = statement_to_sql(parse(first))
    assert first == second


CORPUS = [
    "SELECT 1",
    "SELECT a, b AS c FROM t",
    "SELECT DISTINCT a FROM t WHERE b > 1 AND c IS NOT NULL",
    "SELECT * FROM t ORDER BY a DESC, b LIMIT 3 OFFSET 1",
    "SELECT t.a, u.b FROM t JOIN u ON t.x = u.x",
    "SELECT * FROM t LEFT JOIN u ON t.x = u.x AND u.y > 0",
    "SELECT * FROM a CROSS JOIN b",
    "SELECT a FROM (SELECT a FROM t) AS s",
    "SELECT a FROM t UNION SELECT b FROM u",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
    "SELECT a FROM t EXCEPT SELECT b FROM u",
    "SELECT a FROM t INTERSECT SELECT b FROM u",
    "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
    "SELECT CASE a WHEN 1 THEN 2 END FROM t",
    "SELECT CAST(a AS float), COALESCE(b, 0) FROM t",
    "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b) FROM t GROUP BY c "
    "HAVING COUNT(*) > 1",
    "SELECT a FROM t WHERE a IN (1, 2, 3)",
    "SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5",
    "SELECT a FROM t WHERE s LIKE 'x%'",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a)",
    "SELECT a FROM t WHERE a NOT IN (SELECT x FROM u)",
    "SELECT 'it''s', -1.5, 1e3 FROM t",
    "WITH x AS (SELECT 1) SELECT * FROM x",
    "WITH RECURSIVE r (n) AS (SELECT 1 UNION SELECT n + 1 FROM r) "
    "SELECT * FROM r",
    "WITH ITERATIVE r (x) AS (SELECT 1 ITERATE SELECT x + 1 FROM r "
    "UNTIL 10 ITERATIONS) SELECT * FROM r",
    "WITH ITERATIVE r (x) AS (SELECT 1 ITERATE SELECT x FROM r "
    "UNTIL DELTA = 0) SELECT * FROM r",
    "WITH ITERATIVE r (x) AS (SELECT 1 ITERATE SELECT x FROM r "
    "UNTIL ALL x > 5) SELECT * FROM r",
    "CREATE TABLE t (a int PRIMARY KEY, b float)",
    "CREATE TEMPORARY TABLE IF NOT EXISTS t (a int)",
    "DROP TABLE IF EXISTS t",
    "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
    "INSERT INTO t SELECT a FROM u",
    "UPDATE t SET a = 1, b = b + 1 FROM u WHERE t.id = u.id",
    "DELETE FROM t WHERE a = 1",
    "EXPLAIN SELECT 1",
    "ANALYZE",
    "ANALYZE edges",
    "BEGIN", "COMMIT", "ROLLBACK",
]


@pytest.mark.parametrize("sql", CORPUS, ids=range(len(CORPUS)))
def test_roundtrip_corpus(sql):
    roundtrip(sql)


def test_paper_queries_roundtrip():
    for sql in [pagerank_query(iterations=10),
                pagerank_query(iterations=25, with_vertex_status=True),
                sssp_query(source=1, iterations=10),
                ff_query(iterations=5, selectivity_mod=100),
                components_query()]:
        roundtrip(sql)


# -- generated expressions --------------------------------------------------

names = st.sampled_from(["a", "b", "c"])
# Non-negative numeric literals: a negative literal prints as "-1",
# which necessarily reparses as unary-minus-of-1 (a normalization, not a
# bug); negation itself is exercised through the UnaryOp strategy.
literals = st.one_of(
    st.integers(0, 999).map(ast.Literal),
    st.floats(0, 100, allow_nan=False).map(ast.Literal),
    st.sampled_from([None, True, False]).map(ast.Literal),
    st.text(alphabet="xy'z ", max_size=6).map(ast.Literal),
)


def exprs(depth: int = 2):
    leaf = st.one_of(literals, names.map(ast.ColumnRef))
    if depth == 0:
        return leaf
    sub = exprs(depth - 1)
    return st.one_of(
        leaf,
        st.builds(ast.BinaryOp,
                  st.sampled_from([ast.BinaryOperator.ADD,
                                   ast.BinaryOperator.MUL,
                                   ast.BinaryOperator.EQ,
                                   ast.BinaryOperator.LT,
                                   ast.BinaryOperator.AND,
                                   ast.BinaryOperator.OR]),
                  sub, sub),
        st.builds(ast.UnaryOp,
                  st.sampled_from([ast.UnaryOperator.NOT,
                                   ast.UnaryOperator.NEG]),
                  sub),
        st.builds(ast.IsNull, sub, st.booleans()),
        st.builds(lambda op, items: ast.InList(op, tuple(items)),
                  sub, st.lists(literals, min_size=1, max_size=3)),
        st.builds(lambda w, d: ast.Case(whens=(w,), default=d),
                  st.tuples(sub, sub), sub),
        st.builds(lambda args: ast.FunctionCall("coalesce", tuple(args)),
                  st.lists(sub, min_size=1, max_size=3)),
    )


class TestGeneratedRoundtrip:
    @given(exprs())
    @settings(max_examples=150)
    def test_expression_roundtrip(self, expr):
        from repro.sql.printer import expr_to_sql
        sql = f"SELECT {expr_to_sql(expr)} FROM t"
        reparsed = parse(sql)
        assert statement_to_sql(reparsed) == statement_to_sql(parse(
            statement_to_sql(reparsed)))

    @given(exprs(depth=1))
    @settings(max_examples=80)
    def test_expression_structure_preserved(self, expr):
        """Printing then parsing yields a structurally equal expression
        (modulo float repr round-trip, which Python guarantees exact)."""
        from repro.sql.printer import expr_to_sql
        printed = expr_to_sql(expr)
        reparsed = parse(f"SELECT {printed}").items[0].expr
        assert expr_to_sql(reparsed) == printed
