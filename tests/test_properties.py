"""Property-based tests on the iterative-CTE machinery and the engine's
core invariants, using hypothesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.core.loop import count_changed_rows
from repro.storage import Table
from repro.types import SqlType

small_ints = st.integers(-50, 50)


def fresh_db(rows):
    db = Database()
    db.create_table("t", [("k", SqlType.INTEGER), ("v", SqlType.INTEGER)])
    db.load_rows("t", rows)
    return db


class TestIterativeInvariants:
    @given(st.integers(1, 12))
    @settings(max_examples=10, deadline=None)
    def test_identity_step_is_fixed_point(self, iterations):
        """N iterations of an identity step leave the table unchanged."""
        db = fresh_db([(1, 10), (2, 20)])
        sql = f"""
        WITH ITERATIVE r (k, v) AS (
          SELECT k, v FROM t ITERATE SELECT k, v FROM r
          UNTIL {iterations} ITERATIONS
        ) SELECT k, v FROM r ORDER BY k"""
        assert db.execute(sql).rows() == [(1, 10), (2, 20)]

    @given(st.integers(1, 10), st.integers(1, 9))
    @settings(max_examples=10, deadline=None)
    def test_additive_step_is_linear_in_iterations(self, iterations, delta):
        db = fresh_db([(1, 0)])
        sql = f"""
        WITH ITERATIVE r (k, v) AS (
          SELECT k, v FROM t ITERATE SELECT k, v + {delta} FROM r
          UNTIL {iterations} ITERATIONS
        ) SELECT v FROM r"""
        assert db.execute(sql).scalar() == iterations * delta

    @given(st.integers(1, 8))
    @settings(max_examples=8, deadline=None)
    def test_rename_and_copy_paths_agree(self, iterations):
        """Fig. 8's two execution paths must be semantically identical."""
        sql = f"""
        WITH ITERATIVE r (k, v) AS (
          SELECT k, v FROM t ITERATE SELECT k, v * 2 + k FROM r
          UNTIL {iterations} ITERATIONS
        ) SELECT k, v FROM r ORDER BY k"""
        rows = [(1, 3), (2, 5), (3, 1)]
        with_rename = fresh_db(rows)
        with_rename.set_option("enable_rename", True)
        without_rename = fresh_db(rows)
        without_rename.set_option("enable_rename", False)
        assert with_rename.execute(sql).rows() \
            == without_rename.execute(sql).rows()

    @given(st.lists(st.tuples(st.integers(0, 20), small_ints),
                    min_size=1, max_size=15, unique_by=lambda r: r[0]))
    @settings(max_examples=20, deadline=None)
    def test_partial_update_only_touches_selected_keys(self, rows):
        db = fresh_db(rows)
        sql = """
        WITH ITERATIVE r (k, v) AS (
          SELECT k, v FROM t
          ITERATE SELECT k, v + 100 FROM r WHERE MOD(k, 2) = 0
          UNTIL 1 ITERATIONS
        ) SELECT k, v FROM r ORDER BY k"""
        result = dict(db.execute(sql).rows())
        for key, value in rows:
            if key % 2 == 0:
                assert result[key] == value + 100
            else:
                assert result[key] == value

    @given(st.integers(1, 30))
    @settings(max_examples=10, deadline=None)
    def test_data_termination_stops_at_threshold(self, threshold):
        db = Database()
        sql = f"""
        WITH ITERATIVE r (k, v) AS (
          SELECT 1, 0 ITERATE SELECT k, v + 1 FROM r UNTIL v >= {threshold}
        ) SELECT v FROM r"""
        assert db.execute(sql).scalar() == threshold


class TestCountChangedRows:
    def _table(self, rows):
        return Table.from_columns([
            ("k", SqlType.INTEGER, [r[0] for r in rows]),
            ("v", SqlType.INTEGER, [r[1] for r in rows]),
        ])

    def test_identical_tables_have_zero_changes(self):
        table = self._table([(1, 10), (2, 20)])
        assert count_changed_rows(table, table, 0) == 0

    def test_changed_value_counts(self):
        before = self._table([(1, 10), (2, 20)])
        after = self._table([(1, 10), (2, 99)])
        assert count_changed_rows(before, after, 0) == 1

    def test_new_key_counts_as_change(self):
        before = self._table([(1, 10)])
        after = self._table([(1, 10), (2, 20)])
        assert count_changed_rows(before, after, 0) == 1

    def test_null_to_null_is_not_a_change(self):
        before = self._table([(1, None)])
        after = self._table([(1, None)])
        assert count_changed_rows(before, after, 0) == 0

    def test_null_to_value_is_a_change(self):
        before = self._table([(1, None)])
        after = self._table([(1, 5)])
        assert count_changed_rows(before, after, 0) == 1

    def test_empty_previous_counts_everything(self):
        before = self._table([])
        after = self._table([(1, 1), (2, 2)])
        assert count_changed_rows(before, after, 0) == 2

    @given(st.lists(st.tuples(st.integers(0, 30), small_ints),
                    max_size=20, unique_by=lambda r: r[0]),
           st.lists(st.tuples(st.integers(0, 30), small_ints),
                    max_size=20, unique_by=lambda r: r[0]))
    @settings(max_examples=40)
    def test_matches_brute_force(self, before_rows, after_rows):
        before_map = dict(before_rows)
        expected = sum(
            1 for key, value in after_rows
            if key not in before_map or before_map[key] != value)
        if not before_rows:
            expected = len(after_rows)
        before = self._table(before_rows)
        after = self._table(after_rows)
        assert count_changed_rows(before, after, 0) == expected


class TestEngineInvariants:
    @given(st.lists(st.tuples(small_ints, small_ints), max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_union_is_distinct_union_all_is_not(self, rows):
        db = fresh_db(rows)
        distinct = db.execute(
            "SELECT k FROM t UNION SELECT v FROM t").rows()
        keep_all = db.execute(
            "SELECT k FROM t UNION ALL SELECT v FROM t").rows()
        assert len(distinct) == len({r[0] for r in keep_all}) \
            if rows else len(distinct) == 0
        assert len(keep_all) == 2 * len(rows)

    @given(st.lists(st.tuples(small_ints, small_ints), min_size=1,
                    max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_group_by_partitions_rows(self, rows):
        db = fresh_db(rows)
        grouped = db.execute(
            "SELECT k, COUNT(*) FROM t GROUP BY k").rows()
        assert sum(count for _, count in grouped) == len(rows)
        assert len(grouped) == len({k for k, _ in rows})

    @given(st.lists(st.tuples(small_ints, small_ints), max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_sum_decomposes_over_filter(self, rows):
        db = fresh_db(rows)
        total = db.execute("SELECT SUM(v) FROM t").scalar() or 0
        positive = db.execute(
            "SELECT SUM(v) FROM t WHERE k >= 0").scalar() or 0
        negative = db.execute(
            "SELECT SUM(v) FROM t WHERE k < 0").scalar() or 0
        assert total == positive + negative

    @given(st.lists(st.tuples(small_ints, small_ints), min_size=1,
                    max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_order_by_then_limit_is_prefix(self, rows):
        db = fresh_db(rows)
        full = db.execute("SELECT v FROM t ORDER BY v, k").rows()
        prefix = db.execute(
            "SELECT v FROM t ORDER BY v, k LIMIT 3").rows()
        assert prefix == full[:3]

    @given(st.lists(st.tuples(small_ints, small_ints), max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_join_on_equality_matches_filter_of_cross(self, rows):
        db = fresh_db(rows)
        joined = db.execute("""
            SELECT a.k, b.v FROM t a JOIN t b ON a.k = b.k
            ORDER BY a.k, b.v""").rows()
        cross = db.execute("""
            SELECT a.k, b.v FROM t a CROSS JOIN t b WHERE a.k = b.k
            ORDER BY a.k, b.v""").rows()
        assert joined == cross
