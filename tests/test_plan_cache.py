"""Shared plan cache: normalization, hit/miss accounting, invalidation.

The cache's correctness contract: a hit must return a program that
produces bit-identical results to a fresh compile, and any catalog
change a compiled plan could have baked in (DDL, schema-signature
changes) must invalidate.  The counters surface through
``metrics_snapshot()`` and the EXPLAIN ANALYZE footer.
"""

import pytest

from repro import Database
from repro.engine import Engine
from repro.errors import ReproError
from repro.execution import SessionOptions
from repro.sql import parse
from repro.sql.normalize import normalize_statement
from repro.storage import ColumnSchema, Schema, Table
from repro.types import SqlType


class TestNormalizer:
    def test_literals_parameterized_away(self):
        a = normalize_statement(
            parse("SELECT name FROM people WHERE age > 30"))
        b = normalize_statement(
            parse("SELECT name FROM people WHERE age > 40"))
        assert a.shape == b.shape
        assert a.literals == (30,)
        assert b.literals == (40,)
        assert a.parameter_count == 1

    def test_case_and_whitespace_insensitive(self):
        a = normalize_statement(
            parse("SELECT  name FROM people WHERE age > 30"))
        b = normalize_statement(
            parse("select name from PEOPLE where AGE > 30"))
        assert a == b

    def test_structural_difference_changes_shape(self):
        a = normalize_statement(
            parse("SELECT name FROM people WHERE age > 30"))
        b = normalize_statement(
            parse("SELECT name FROM people WHERE age < 30"))
        c = normalize_statement(
            parse("SELECT age FROM people WHERE age > 30"))
        assert a.shape != b.shape
        assert a.shape != c.shape

    def test_literal_order_is_traversal_order(self):
        norm = normalize_statement(parse(
            "SELECT name FROM people WHERE age > 18 AND age < 65"))
        assert norm.literals == (18, 65)


class TestCacheCounters:
    def test_repeated_text_hits_without_reparsing(self, people_db):
        sql = "SELECT name FROM people WHERE age > 40 ORDER BY name"
        first = people_db.execute(sql).rows()
        built = people_db.stats.plans_built
        assert people_db.stats.plan_cache_misses == 1
        for _ in range(3):
            assert people_db.execute(sql).rows() == first
        assert people_db.stats.plan_cache_hits == 3
        # A text-level hit skips parse and compile entirely.
        assert people_db.stats.plans_built == built

    def test_different_literals_count_shape_hits(self, people_db):
        people_db.execute("SELECT name FROM people WHERE age > 40")
        people_db.execute("SELECT name FROM people WHERE age > 50")
        assert people_db.stats.plan_cache_shape_hits == 1
        assert people_db.stats.plan_cache_misses == 2

    def test_results_identical_with_cache_off(self, people_db):
        sql = "SELECT city, COUNT(*) FROM people GROUP BY city ORDER BY city"
        cached = [people_db.execute(sql).rows() for _ in range(2)]
        cold = Database(SessionOptions(enable_plan_cache=False))
        cold.create_table("people", [("id", SqlType.INTEGER),
                                     ("name", SqlType.TEXT),
                                     ("age", SqlType.INTEGER),
                                     ("city", SqlType.TEXT)])
        cold.load_rows("people", [
            (1, "ada", 36, "london"),
            (2, "grace", 45, "new york"),
            (3, "alan", 41, "london"),
            (4, "edsger", 72, None),
            (5, "barbara", None, "boston"),
        ])
        assert cold.execute(sql).rows() == cached[0] == cached[1]
        assert cold.stats.plan_cache_hits == 0
        assert cold.stats.plan_cache_misses == 0

    def test_counters_surface_in_metrics_snapshot(self, people_db):
        sql = "SELECT name FROM people WHERE age > 40"
        people_db.execute(sql)
        people_db.execute(sql)
        gauges = people_db.metrics_snapshot()["gauges"]
        assert gauges["stats.plan_cache_hits"] == 1
        assert gauges["stats.plan_cache_misses"] == 1

    def test_explain_analyze_reports_plan_cache(self, people_db):
        report = people_db.explain_analyze(
            "SELECT name FROM people WHERE age > 40")
        assert "plan cache:" in report
        assert "misses" in report


class TestInvalidation:
    def test_ddl_invalidates_cached_plans(self, people_db):
        sql = "SELECT name FROM people WHERE age > 40 ORDER BY name"
        before = people_db.execute(sql).rows()
        people_db.execute("CREATE TABLE scratch (x INTEGER)")
        assert people_db.execute(sql).rows() == before
        assert people_db.stats.plan_cache_invalidations == 1
        # The recompiled program is cached under the new version.
        assert people_db.execute(sql).rows() == before
        assert people_db.stats.plan_cache_hits == 1

    def test_drop_table_invalidates(self, people_db):
        sql = "SELECT COUNT(*) FROM people"
        people_db.execute(sql)
        people_db.execute("CREATE TABLE scratch (x INTEGER)")
        people_db.execute("DROP TABLE scratch")
        people_db.execute(sql)
        assert people_db.stats.plan_cache_invalidations == 1
        assert people_db.stats.plan_cache_shape_hits == 1

    def test_catalog_version_counter(self):
        catalog = Database().catalog
        v0 = catalog.version
        schema = Schema((ColumnSchema("x", SqlType.INTEGER),), None)
        catalog.create("t", schema)
        assert catalog.version == v0 + 1
        # Content replacement with the same schema: no bump.
        catalog.put("t", Table.from_rows(schema, [(1,)]))
        assert catalog.version == v0 + 1
        # Replacement that changes the schema signature: bump.
        widened = Schema((ColumnSchema("x", SqlType.FLOAT),), None)
        catalog.put("t", Table.empty(widened))
        assert catalog.version == v0 + 2
        catalog.drop("t")
        assert catalog.version == v0 + 3

    def test_options_fingerprint_separates_entries(self):
        engine = Engine()
        a = engine.create_session()
        b = engine.create_session()
        a.execute("CREATE TABLE t (x INTEGER)")
        a.execute("INSERT INTO t VALUES (1), (2)")
        b.set_option("enable_predicate_pushdown", False)
        sql = "SELECT x FROM t WHERE x > 0 ORDER BY x"
        assert a.execute(sql).rows() == b.execute(sql).rows()
        # Different compile fingerprints must not share a program.
        assert engine.stats.plan_cache_hits == 0
        assert engine.stats.plan_cache_misses == 2
        # Same fingerprint does share.
        assert a.execute(sql).rows() == [(1,), (2,)]
        assert engine.stats.plan_cache_hits == 1


class TestSetOption:
    def test_unknown_option_lists_valid_fields(self, db):
        with pytest.raises(ReproError) as excinfo:
            db.set_option("enable_warp_drive", True)
        message = str(excinfo.value)
        assert "enable_warp_drive" in message
        assert "valid options:" in message
        assert "enable_plan_cache" in message
        assert "enable_rename" in message

    def test_known_option_still_settable(self, db):
        db.set_option("enable_plan_cache", False)
        assert db.options.enable_plan_cache is False
