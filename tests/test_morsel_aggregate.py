"""Morselized grouped aggregation: chunk-size independence.

The two-phase partial/final merge in ``repro.execution.aggregate`` must
return bit-identical results whatever the morsel size — by construction,
not tolerance (see the module docstring for the per-kernel argument).
"""

import numpy as np

from repro.engine import Database
from repro.execution.context import SessionOptions
from repro.types import SqlType

AGG_SQL = """
SELECT dept,
       COUNT(*)       AS n,
       COUNT(salary)  AS n_paid,
       SUM(salary)    AS total,
       AVG(salary)    AS mean,
       MIN(salary)    AS lowest,
       MAX(salary)    AS highest
FROM staff
GROUP BY dept
ORDER BY dept"""

GLOBAL_SQL = "SELECT COUNT(*), SUM(score), MIN(score), MAX(score) FROM staff"


def _staff_db(**options) -> Database:
    rng = np.random.default_rng(23)
    db = Database(SessionOptions(**options))
    db.create_table("staff", [("dept", SqlType.INTEGER),
                              ("salary", SqlType.FLOAT),
                              ("score", SqlType.FLOAT)])
    rows = []
    for _ in range(700):
        dept = int(rng.integers(0, 12))
        # Sprinkle NULL salaries so the valid-counts path is exercised,
        # and keep irrational-ish floats so any reassociation of the sum
        # would actually change low-order bits.
        salary = None if rng.uniform() < 0.15 \
            else float(rng.uniform(1, 2)) * np.pi
        rows.append((dept, salary, float(rng.normal())))
    # One department with NULL-only salaries: every aggregate but
    # COUNT(*) must go NULL/0 for it, morselized or not.
    rows.extend((99, None, 0.5) for _ in range(10))
    db.load_rows("staff", rows)
    return db


class TestMorselAggregate:
    def test_results_independent_of_chunk_size(self):
        baseline = _staff_db(parallel_morsels=False).execute(AGG_SQL).rows()
        assert len(baseline) == 13
        for morsel_size in (1, 7, 64, 100_000):
            db = _staff_db(parallel_morsels=True, morsel_size=morsel_size,
                           morsel_workers=3, morsel_min_rows=0)
            assert db.execute(AGG_SQL).rows() == baseline, (
                f"morsel_size={morsel_size} changed aggregate results")
            if morsel_size < 700:
                assert db.stats.morsel_agg_batches > 0
            else:
                # Single chunk: the two-phase path must step aside.
                assert db.stats.morsel_agg_batches == 0

    def test_global_aggregate_bit_identical(self):
        baseline = _staff_db(parallel_morsels=False).execute(GLOBAL_SQL)
        for morsel_size in (3, 50):
            db = _staff_db(parallel_morsels=True, morsel_size=morsel_size,
                           morsel_workers=2, morsel_min_rows=0)
            assert db.execute(GLOBAL_SQL).rows() == baseline.rows()

    def test_null_only_group(self):
        db = _staff_db(parallel_morsels=True, morsel_size=16,
                       morsel_workers=2, morsel_min_rows=0)
        by_dept = {row[0]: row for row in db.execute(AGG_SQL).rows()}
        dept99 = by_dept[99]
        assert dept99[1] == 10          # COUNT(*) counts NULL rows
        assert dept99[2] == 0           # COUNT(salary) ignores them
        assert dept99[3:] == (None, None, None, None)

    def test_integer_and_distinct_paths_survive(self):
        db = _staff_db(parallel_morsels=True, morsel_size=9,
                       morsel_workers=2, morsel_min_rows=0)
        plain = _staff_db()
        sql = ("SELECT SUM(dept), COUNT(DISTINCT dept), MIN(dept), "
               "MAX(dept) FROM staff")
        assert db.execute(sql).rows() == plain.execute(sql).rows()
