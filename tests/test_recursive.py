"""Recursive-CTE tests: fixed-point semantics and the ANSI restrictions
that motivate the paper (aggregates forbidden, append-only results)."""

import pytest

from repro import Database
from repro.errors import IterationLimitError, RecursionNotSupportedError


@pytest.fixture
def chain_db(db):
    db.execute("CREATE TABLE edge (a int, b int)")
    db.load_rows("edge", [(1, 2), (2, 3), (3, 4)])
    return db


class TestFixedPoint:
    def test_counting(self, db):
        sql = """
        WITH RECURSIVE n (x) AS (
          SELECT 1 UNION SELECT x + 1 FROM n WHERE x < 5
        ) SELECT x FROM n ORDER BY x"""
        assert db.execute(sql).rows() == [(1,), (2,), (3,), (4,), (5,)]

    def test_transitive_closure(self, chain_db):
        sql = """
        WITH RECURSIVE reach (a, b) AS (
          SELECT a, b FROM edge
          UNION
          SELECT reach.a, edge.b FROM reach JOIN edge ON reach.b = edge.a
        ) SELECT a, b FROM reach ORDER BY a, b"""
        assert chain_db.execute(sql).rows() == [
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]

    def test_union_dedup_terminates_on_cycles(self, db):
        db.execute("CREATE TABLE edge (a int, b int)")
        db.load_rows("edge", [(1, 2), (2, 1)])  # a 2-cycle
        sql = """
        WITH RECURSIVE reach (a, b) AS (
          SELECT a, b FROM edge
          UNION
          SELECT reach.a, edge.b FROM reach JOIN edge ON reach.b = edge.a
        ) SELECT COUNT(*) FROM reach"""
        assert db.execute(sql).scalar() == 4  # (1,2),(2,1),(1,1),(2,2)

    def test_union_all_on_cycle_hits_safety_cap(self, db):
        db.execute("CREATE TABLE edge (a int, b int)")
        db.load_rows("edge", [(1, 2), (2, 1)])
        db.set_option("max_iterations", 20)
        sql = """
        WITH RECURSIVE reach (a, b) AS (
          SELECT a, b FROM edge
          UNION ALL
          SELECT reach.a, edge.b FROM reach JOIN edge ON reach.b = edge.a
        ) SELECT COUNT(*) FROM reach"""
        with pytest.raises(IterationLimitError):
            db.execute(sql)

    def test_union_all_multiplies_paths(self, db):
        db.execute("CREATE TABLE edge (a int, b int)")
        # Two parallel paths 1->2 and then 2->3.
        db.load_rows("edge", [(1, 2), (1, 2), (2, 3)])
        sql = """
        WITH RECURSIVE reach (a, b) AS (
          SELECT a, b FROM edge
          UNION ALL
          SELECT reach.a, edge.b FROM reach JOIN edge ON reach.b = edge.a
        ) SELECT COUNT(*) FROM reach"""
        # base: 3 rows; round 1: (1,3) twice via dup edges, (1,3)... etc.
        assert db.execute(sql).scalar() == 5

    def test_empty_base_returns_empty(self, db):
        db.execute("CREATE TABLE edge (a int, b int)")
        sql = """
        WITH RECURSIVE reach (a, b) AS (
          SELECT a, b FROM edge
          UNION
          SELECT reach.a, edge.b FROM reach JOIN edge ON reach.b = edge.a
        ) SELECT COUNT(*) FROM reach"""
        assert db.execute(sql).scalar() == 0

    def test_final_query_can_aggregate(self, chain_db):
        # Aggregation over the finished CTE is fine; only the recursive
        # arm is restricted.
        sql = """
        WITH RECURSIVE reach (a, b) AS (
          SELECT a, b FROM edge
          UNION
          SELECT reach.a, edge.b FROM reach JOIN edge ON reach.b = edge.a
        ) SELECT a, COUNT(*) FROM reach GROUP BY a ORDER BY a"""
        assert chain_db.execute(sql).rows() == [(1, 3), (2, 2), (3, 1)]


class TestAnsiRestrictions:
    """The limitations that make recursive CTEs unable to express PR
    (paper §I-II) — each must be rejected with a clear error."""

    def test_aggregate_in_recursive_arm_rejected(self, db):
        sql = """
        WITH RECURSIVE r (x) AS (
          SELECT 1 UNION SELECT SUM(x) FROM r
        ) SELECT * FROM r"""
        with pytest.raises(RecursionNotSupportedError) as excinfo:
            db.execute(sql)
        assert "ITERATIVE" in str(excinfo.value)  # points at the fix

    def test_group_by_in_recursive_arm_rejected(self, db):
        sql = """
        WITH RECURSIVE r (x) AS (
          SELECT 1 UNION SELECT x FROM r GROUP BY x
        ) SELECT * FROM r"""
        with pytest.raises(RecursionNotSupportedError):
            db.execute(sql)

    def test_distinct_in_recursive_arm_rejected(self, db):
        sql = """
        WITH RECURSIVE r (x) AS (
          SELECT 1 UNION SELECT DISTINCT x FROM r
        ) SELECT * FROM r"""
        with pytest.raises(RecursionNotSupportedError):
            db.execute(sql)

    def test_limit_in_recursive_arm_rejected(self, db):
        sql = """
        WITH RECURSIVE r (x) AS (
          SELECT 1 UNION (SELECT x + 1 FROM r LIMIT 1)
        ) SELECT * FROM r"""
        with pytest.raises(RecursionNotSupportedError):
            db.execute(sql)

    def test_body_must_be_union(self, db):
        sql = """
        WITH RECURSIVE r (x) AS (
          SELECT x + 1 FROM r
        ) SELECT * FROM r"""
        with pytest.raises(RecursionNotSupportedError):
            db.execute(sql)

    def test_base_arm_must_not_reference_cte(self, db):
        sql = """
        WITH RECURSIVE r (x) AS (
          SELECT x FROM r UNION SELECT 1
        ) SELECT * FROM r"""
        with pytest.raises(RecursionNotSupportedError):
            db.execute(sql)

    def test_second_arm_must_reference_cte(self, db):
        sql = """
        WITH RECURSIVE r (x) AS (
          SELECT 1 UNION SELECT 2
        ) SELECT * FROM r"""
        with pytest.raises(RecursionNotSupportedError):
            db.execute(sql)

    def test_pagerank_is_inexpressible_recursively(self, graph_db):
        """The paper's headline motivation, as an executable fact."""
        sql = """
        WITH RECURSIVE pr (node, rank) AS (
          SELECT src, 1.0 FROM edges
          UNION
          SELECT e.dst, SUM(pr.rank * e.weight)
          FROM pr JOIN edges e ON pr.node = e.src
          GROUP BY e.dst
        ) SELECT * FROM pr"""
        with pytest.raises(RecursionNotSupportedError):
            graph_db.execute(sql)
