"""Observability subsystem: span traces, loop telemetry, metrics, and
the stable JSON schemas (repro.obs + the engine/runner plumbing).

Golden-shape tests pin the trace JSON schema and the EXPLAIN ANALYZE
rendering for the three loop kinds (ITERATIVE, recursive fixpoint,
MPP-iterative), plus the instrumentation-hygiene guarantees: tracing off
by default, per-run stats snapshots, and the two kernel-cache overflow
fallbacks surfaced as counters.
"""

from __future__ import annotations

import json
import re

import numpy as np
import pytest

from repro import Database
from repro.errors import ReproError
from repro.execution import ExecutionContext, SessionOptions
from repro.execution.kernel_cache import KernelCache
from repro.mpp import Cluster, distributed_pagerank
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    build_trace,
    render_span_tree,
    validate_bench_dict,
    validate_trace_dict,
)
from repro.storage import Column
from repro.types import SqlType
from repro.workloads import pagerank_query
from tests.conftest import SMALL_EDGES

RECURSIVE_REACH = """
WITH RECURSIVE reach(n) AS (
  SELECT dst FROM edges WHERE src = 1
  UNION
  SELECT e.dst FROM edges e JOIN reach r ON e.src = r.n
)
SELECT count(*) FROM reach"""

ITERATIVE_COUNT = """
WITH ITERATIVE r (k, v) AS (
  SELECT 1, 1 ITERATE SELECT k, v + 1 FROM r UNTIL 5 ITERATIONS
) SELECT v FROM r"""


def traced_db(edges=SMALL_EDGES) -> Database:
    db = Database(SessionOptions(enable_tracing=True))
    db.create_table("edges", [("src", SqlType.INTEGER),
                              ("dst", SqlType.INTEGER),
                              ("weight", SqlType.FLOAT)])
    db.load_rows("edges", edges)
    return db


class TestTraceGoldenShape:
    def test_iterative_trace_schema_and_phases(self):
        db = traced_db()
        db.execute(ITERATIVE_COUNT)
        payload = json.loads(db.trace_json())
        validate_trace_dict(payload)
        assert payload["sql"] == ITERATIVE_COUNT

        root = db.last_trace().root
        statement = root.find("statement", kind="query")
        assert statement is not None
        for phase in ("parse", "compile", "execute"):
            assert statement.find(phase, kind="phase") is not None, phase
        compile_span = statement.find("compile", kind="phase")
        assert compile_span.find("plan", kind="phase") is not None
        assert compile_span.find("rewrite", kind="phase") is not None

        (loop,) = payload["loops"]
        assert loop["kind"] == "iterative"
        assert loop["cte"] == "r"
        assert len(loop["iterations"]) == 5
        assert [r["index"] for r in loop["iterations"]] == [1, 2, 3, 4, 5]

    def test_recursive_trace_converges_to_zero_delta(self):
        db = traced_db()
        db.execute(RECURSIVE_REACH)
        payload = json.loads(db.trace_json())
        validate_trace_dict(payload)
        (loop,) = payload["loops"]
        assert loop["kind"] == "fixpoint"
        assert loop["cte"] == "reach"
        # The convergence curve: the final trip discovers nothing new.
        assert loop["iterations"][-1]["delta_rows"] == 0
        assert all(r["total_rows"] == 3 for r in loop["iterations"][-1:])

        loop_span = db.last_trace().root.find("loop:reach", kind="loop")
        assert loop_span is not None
        iteration_spans = [c for c in loop_span.children
                           if c.kind == "iteration"]
        assert len(iteration_spans) == len(loop["iterations"])
        # Step spans nest inside iterations.
        assert any(c.kind == "step"
                   for c in iteration_spans[0].children)

    def test_mpp_trace_carries_motion(self):
        tracer = Tracer()
        result = distributed_pagerank(Cluster(3), SMALL_EDGES,
                                      iterations=4, tracer=tracer)
        trace = build_trace(tracer, loops=[result.telemetry])
        payload = json.loads(trace.to_json())
        validate_trace_dict(payload)
        (loop,) = payload["loops"]
        assert loop["kind"] == "mpp"
        assert len(loop["iterations"]) == 4
        for record in loop["iterations"]:
            assert record["shuffles"] == 1
            assert record["rows_moved"] > 0
        assert trace.root.find("loop:pr_state", kind="loop") is not None
        assert "rows_moved" in result.report()

    def test_trace_json_round_trips(self):
        db = traced_db()
        db.execute("SELECT 1")
        assert json.loads(db.trace_json(indent=2))["engine"] \
            == "repro-dbspinner"
        assert db.last_trace().metrics["statements"] == 1

    def test_render_span_tree_is_textual(self):
        db = traced_db()
        db.execute(ITERATIVE_COUNT)
        text = render_span_tree(db.last_trace().root)
        assert "statement [query]" in text
        assert "loop:r [loop]" in text


class TestTracingDisabledByDefault:
    def test_no_trace_without_opt_in(self, graph_db):
        graph_db.execute("SELECT count(*) FROM edges")
        assert graph_db.last_trace() is None
        with pytest.raises(ReproError):
            graph_db.trace_json()

    def test_context_defaults_to_null_tracer(self, graph_db):
        ctx = ExecutionContext(graph_db.catalog, graph_db.registry,
                               graph_db.options, graph_db.stats,
                               graph_db.kernel_cache)
        assert ctx.tracer is NULL_TRACER
        assert not ctx.tracer.enabled


class TestExplainAnalyze:
    def test_pagerank_25_iterations_breakdown(self, graph_db):
        report = graph_db.explain_analyze(
            pagerank_query(iterations=25, coalesced=True))
        assert "loop 0 (pagerank, iterative): 25 iterations" in report
        assert "delta_rows" in report and "cache_hits" in report
        rows = re.findall(r"^\s+(\d+)\s+\d+\.\d+\s+\d+", report,
                          flags=re.MULTILINE)
        assert len(rows) == 25
        # explain_analyze always records a trace, even with the session
        # option off.
        payload = json.loads(graph_db.trace_json())
        validate_trace_dict(payload)
        assert payload["loops"][0]["iterations"][0]["delta_rows"] > 0

    def test_recursive_breakdown_and_overflow_counters(self, graph_db):
        report = graph_db.explain_analyze(RECURSIVE_REACH)
        assert re.search(r"loop 0 \(reach, fixpoint\): \d+ iterations",
                         report)
        assert "join index:" in report and "overflows=0" in report
        assert "merge index:" in report

    def test_back_to_back_runs_do_not_double_count(self, graph_db):
        """Satellite: the runner snapshots stats per run(), so a second
        EXPLAIN ANALYZE reports only its own executions and deltas."""
        sql = RECURSIVE_REACH
        first = graph_db.explain_analyze(sql)
        second = graph_db.explain_analyze(sql)

        def executions(report):
            return re.findall(r"executions=(\d+)", report)

        assert executions(first) == executions(second)

        def merge_hits(report):
            return int(re.search(r"merge index: hits=(\d+)",
                                 report).group(1))

        # Cumulative counters would at least double on the second run.
        assert merge_hits(second) <= merge_hits(first) + 1


class TestRunnerSnapshotHygiene:
    def test_profiles_reset_between_runs(self, graph_db):
        from repro.core.rewrite import compile_statement
        from repro.core.runner import ProgramRunner
        from repro.plan import PlanContext
        from repro.sql import parse

        program = compile_statement(parse(RECURSIVE_REACH),
                                    PlanContext(graph_db.catalog),
                                    graph_db.options, graph_db.stats)
        ctx = ExecutionContext(graph_db.catalog, graph_db.registry,
                               graph_db.options, graph_db.stats,
                               graph_db.kernel_cache)
        runner = ProgramRunner(program, ctx, instrument=True)
        runner.run()
        first = {pc: p.executions for pc, p in runner.profiles.items()}
        runner.run()
        second = {pc: p.executions for pc, p in runner.profiles.items()}
        assert first == second
        assert runner.loop_telemetry[0].iterations > 0


class TestOverflowCounters:
    def test_join_index_mixed_radix_overflow_counted(self):
        from repro.execution.context import ExecutionStats
        stats = ExecutionStats()
        cache = KernelCache(stats)
        # 4 columns x 70000 distinct values: 70000**4 ~ 2.4e19 > 2**62,
        # so the mixed-radix combined key cannot fit int64.
        columns = [Column.from_numpy(SqlType.INTEGER, np.arange(70000))
                   for _ in range(4)]
        assert cache.join_index(columns) is None  # first touch: candidate
        assert stats.join_index_overflows == 0
        assert cache.join_index(columns) is None  # build attempt fails
        assert stats.join_index_overflows == 1

    def test_merge_index_bit_budget_exhaustion_repacks(self, db):
        # 8 columns leave 62 // 8 = 7 bits (128 codes) per column in the
        # incremental distinct index; column `a` sees 201 distinct
        # values.  The seven constant columns only need 1 bit each, so
        # the index repacks to wider widths for `a` and stays
        # incremental — no full-rescan fallback.
        sql = """
        WITH RECURSIVE r (a, b, c, d, e, f, g, h) AS (
          SELECT 0, 0, 0, 0, 0, 0, 0, 0
          UNION
          SELECT a + 1, b, c, d, e, f, g, h FROM r WHERE a < 200
        ) SELECT count(*) FROM r"""
        report = db.explain_analyze(sql)
        assert db.stats.merge_index_repacks >= 1
        assert db.stats.merge_index_overflows == 0
        match = re.search(r"merge index: .*repacks=(\d+)", report)
        assert match and int(match.group(1)) >= 1
        assert "overflows=0" in report

    def test_merge_index_bit_budget_overflow_counted(self, db):
        # All 8 columns grow together: 201 distinct values per column
        # need 8 bits each, 8 x 8 = 64 > 62, so not even repacking can
        # keep the packed identity in an int64 and the index falls back
        # to full re-encoding.
        sql = """
        WITH RECURSIVE r (a, b, c, d, e, f, g, h) AS (
          SELECT 0, 0, 0, 0, 0, 0, 0, 0
          UNION
          SELECT a + 1, b + 1, c + 1, d + 1, e + 1, f + 1, g + 1, h + 1
          FROM r WHERE a < 200
        ) SELECT count(*) FROM r"""
        report = db.explain_analyze(sql)
        assert db.stats.merge_index_overflows >= 1
        match = re.search(r"merge index: .*overflows=(\d+)", report)
        assert match and int(match.group(1)) >= 1

    def test_overflow_counters_start_at_zero(self, graph_db):
        graph_db.execute(RECURSIVE_REACH)
        assert graph_db.stats.join_index_overflows == 0
        assert graph_db.stats.merge_index_overflows == 0


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.counter("c").add(3)
        registry.gauge("g").set(7.5)
        for value in (1.0, 2.0, 3.0):
            registry.histogram("h").observe(value)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 7.5
        assert snap["histograms"]["h"]["count"] == 3
        assert snap["histograms"]["h"]["mean"] == pytest.approx(2.0)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}

    def test_database_ingests_execution_stats(self, graph_db):
        graph_db.execute("SELECT 1")
        snap = graph_db.metrics_snapshot()
        assert snap["counters"]["statements"] == 1
        assert snap["gauges"]["stats.statements"] == 1
        assert snap["histograms"]["statement_seconds"]["count"] == 1
        graph_db.reset_stats()
        assert graph_db.metrics_snapshot()["counters"] \
            .get("statements", 0) == 0


class TestRewriteVisibility:
    def test_fired_rules_appear_on_rewrite_span(self):
        db = traced_db()
        db.execute("""
            SELECT e.dst FROM edges e
            JOIN edges f ON e.dst = f.src
            WHERE e.src = 1""")
        rewrite = db.last_trace().root.find("rewrite", kind="phase")
        assert rewrite is not None
        fired = {k: v for k, v in rewrite.attributes.items()
                 if k.startswith("rule.")}
        assert fired, "expected at least one rewrite rule to fire"
        assert all(isinstance(v, int) and v >= 1 for v in fired.values())


class TestValidators:
    def _valid_trace(self) -> dict:
        db = traced_db()
        db.execute(RECURSIVE_REACH)
        return json.loads(db.trace_json())

    def test_rejects_extra_and_missing_keys(self):
        payload = self._valid_trace()
        payload["surprise"] = 1
        with pytest.raises(ValueError):
            validate_trace_dict(payload)
        payload = self._valid_trace()
        del payload["metrics"]
        with pytest.raises(ValueError):
            validate_trace_dict(payload)

    def test_rejects_bad_loop_kind_and_sparse_indexes(self):
        payload = self._valid_trace()
        payload["loops"][0]["kind"] = "while"
        with pytest.raises(ValueError):
            validate_trace_dict(payload)
        payload = self._valid_trace()
        payload["loops"][0]["iterations"][0]["index"] = 9
        with pytest.raises(ValueError):
            validate_trace_dict(payload)

    def test_rejects_non_scalar_attributes(self):
        payload = self._valid_trace()
        payload["root"]["attributes"]["bad"] = {"nested": True}
        with pytest.raises(ValueError):
            validate_trace_dict(payload)

    def test_bench_validator(self, tmp_path):
        from repro.harness import (Comparison, Measurement,
                                   write_bench_artifact)
        comparison = Comparison(
            "demo", Measurement("base", 2.0, 1, [2.0]),
            Measurement("opt", 1.0, 1, [1.0]))
        path = write_bench_artifact(
            "demo", comparisons=[comparison],
            measurements=[comparison.baseline],
            extra={"note": "test"}, directory=str(tmp_path))
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        validate_bench_dict(payload)
        assert payload["comparisons"][0]["speedup"] == 2.0
        payload["measurements"][0].pop("stdev")
        with pytest.raises(ValueError):
            validate_bench_dict(payload)
