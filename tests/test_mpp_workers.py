"""The persistent worker pool: real shared-nothing execution.

Pins the PR's core contract — the pool substrate is **bit-identical**
to the inline simulation (results, motion counters, trace shapes) —
plus the failure-containment behaviour: a dead or wedged worker
surfaces as a structured :class:`~repro.errors.MppWorkerError` naming
the segment and superstep, and the pool never leaves orphan processes
behind.
"""

import json
import os
import signal
import time

import pytest

from repro.datasets import dblp_like, generate_edges
from repro.errors import MppWorkerError
from repro.mpp import (Cluster, WorkerPool, distributed_pagerank,
                       distributed_sssp, pagerank_superstep_spec)
from repro.obs import Tracer, build_trace, validate_trace_dict
from tests.test_trace_context import shape

EDGES = generate_edges(dblp_like(nodes=120, seed=7))
CHAIN = [(i, i + 1, 1.0) for i in range(1, 30)]


def _assert_no_orphans(pool):
    for process in pool._procs:
        assert not process.is_alive(), f"{process.name} survived shutdown"


class TestPoolParity:
    def test_pagerank_bit_identical_to_inline(self):
        inline = distributed_pagerank(Cluster(3), EDGES, iterations=6)
        with WorkerPool(3) as pool:
            pooled = distributed_pagerank(Cluster(3), EDGES,
                                          iterations=6, pool=pool)
        # Exact float equality, not approx: same kernels, same piece
        # assembly order, so the accumulation order is identical.
        assert pooled.ranks == inline.ranks
        assert pooled.rows_moved == inline.rows_moved
        assert pooled.bytes_moved == inline.bytes_moved
        assert pooled.shuffles == inline.shuffles

    def test_sssp_bit_identical_to_inline(self):
        inline = distributed_sssp(Cluster(3), EDGES, source=1)
        with WorkerPool(3) as pool:
            pooled = distributed_sssp(Cluster(3), EDGES, source=1,
                                      pool=pool)
        assert pooled.distances == inline.distances
        assert pooled.iterations == inline.iterations
        assert pooled.rows_moved == inline.rows_moved
        assert pooled.bytes_moved == inline.bytes_moved

    def test_pool_reused_across_loops(self):
        # One spawn, many loops: set_spec resets the per-loop state.
        with WorkerPool(2) as pool:
            first = distributed_pagerank(Cluster(2), EDGES,
                                         iterations=3, pool=pool)
            again = distributed_pagerank(Cluster(2), EDGES,
                                         iterations=3, pool=pool)
            sssp = distributed_sssp(Cluster(2), EDGES, source=1,
                                    pool=pool)
        assert first.ranks == again.ranks
        assert sssp.iterations > 1

    def test_shared_memory_fast_path(self):
        # Force every block over shm: results must not change.
        inline = distributed_pagerank(Cluster(2), EDGES, iterations=4)
        with WorkerPool(2, shm_threshold=1) as pool:
            pooled = distributed_pagerank(Cluster(2), EDGES,
                                          iterations=4, pool=pool)
        assert pooled.ranks == inline.ranks
        assert pooled.bytes_moved == inline.bytes_moved

    def test_trace_shape_matches_inline(self):
        def traced(pool):
            tracer = Tracer("trace")
            result = distributed_pagerank(Cluster(2), EDGES,
                                          iterations=3, tracer=tracer,
                                          pool=pool)
            return build_trace(tracer, loops=[result.telemetry])

        inline_trace = traced(None)
        with WorkerPool(2) as pool:
            pool_trace = traced(pool)
        assert shape(pool_trace.root) == shape(inline_trace.root)
        validate_trace_dict(json.loads(pool_trace.to_json()))


class TestDeltaShuffleOnTheWire:
    # A zero-delta wave advances one hop per iteration from node 1; by
    # trip ~30 every partial piece is a constant all-zeros array and the
    # delta shuffle stops re-sending it (see TestDeltaShuffle in
    # test_mpp_iterative.py for the inline version of this argument).
    TRIPS = 40

    def test_suppression_matches_inline_accounting(self):
        inline = distributed_pagerank(Cluster(3), CHAIN,
                                      iterations=self.TRIPS,
                                      delta_shuffle=True)
        with WorkerPool(3) as pool:
            pooled = distributed_pagerank(Cluster(3), CHAIN,
                                          iterations=self.TRIPS,
                                          pool=pool, delta_shuffle=True)
        assert pooled.suppressed_bytes == inline.suppressed_bytes
        assert pooled.suppressed_batches == inline.suppressed_batches
        assert pooled.bytes_moved == inline.bytes_moved
        assert pooled.ranks == inline.ranks

    def test_zero_motion_for_unchanged_partitions(self):
        # Once the chain drains, every outbound piece stops changing —
        # real wire traffic must stop too, while the naive exchange
        # keeps paying for identical pieces.
        with WorkerPool(3) as pool:
            delta = distributed_pagerank(Cluster(3), CHAIN,
                                         iterations=self.TRIPS,
                                         pool=pool, delta_shuffle=True)
        with WorkerPool(3) as pool:
            naive = distributed_pagerank(Cluster(3), CHAIN,
                                         iterations=self.TRIPS,
                                         pool=pool)
        assert delta.suppressed_batches > 0
        assert delta.bytes_moved + delta.suppressed_bytes \
            == naive.bytes_moved
        assert delta.bytes_moved < naive.bytes_moved
        # The chain drains within 8 trips: the last iteration of the
        # delta run ships nothing at all.
        assert delta.telemetry.records[-1].rows_moved == 0


class TestFailureContainment:
    def test_killed_worker_raises_structured_error(self):
        pool = WorkerPool(3, timeout=30.0)
        try:
            distributed_pagerank(Cluster(3), EDGES, iterations=2,
                                 pool=pool)
            pool._procs[1].kill()
            pool._procs[1].join(timeout=5.0)
            with pytest.raises(MppWorkerError) as excinfo:
                distributed_pagerank(Cluster(3), EDGES, iterations=2,
                                     pool=pool)
            error = excinfo.value
            assert error.segment == 1
            assert error.operation in ("load", "spec", "superstep")
            assert "segment 1" in str(error)
        finally:
            pool.shutdown(force=True)
        _assert_no_orphans(pool)

    def test_wedged_worker_times_out(self):
        pool = WorkerPool(2, timeout=0.5)
        try:
            distributed_pagerank(Cluster(2), EDGES, iterations=1,
                                 pool=pool)
            os.kill(pool._procs[0].pid, signal.SIGSTOP)
            started = time.monotonic()
            with pytest.raises(MppWorkerError) as excinfo:
                pool.fetch("state")
            assert "timed out" in str(excinfo.value)
            assert excinfo.value.segment == 0
            # Bounded: the deadline plus the forced shutdown, not hung.
            assert time.monotonic() - started < 10.0
        finally:
            pool.shutdown(force=True)
        _assert_no_orphans(pool)

    def test_worker_error_reply_is_attributed(self):
        # A superstep without an installed spec fails *inside* the
        # worker; the error must come back attributed, not hang.
        pool = WorkerPool(2)
        try:
            with pytest.raises(MppWorkerError) as excinfo:
                pool.superstep()
            assert excinfo.value.superstep == 1
            assert excinfo.value.segment == 0
        finally:
            pool.shutdown(force=True)
        _assert_no_orphans(pool)

    def test_clean_shutdown_is_idempotent(self):
        pool = WorkerPool(2)
        distributed_pagerank(Cluster(2), EDGES, iterations=1, pool=pool)
        pool.shutdown()
        pool.shutdown()
        _assert_no_orphans(pool)


@pytest.mark.mpp_smoke
class TestMppSmoke:
    def test_two_worker_pagerank_parity(self):
        """The CI guard: spawn 2 real workers, run a short PageRank,
        demand exact parity with the inline simulation."""
        inline = distributed_pagerank(Cluster(2), EDGES, iterations=3)
        with WorkerPool(2) as pool:
            pooled = distributed_pagerank(Cluster(2), EDGES,
                                          iterations=3, pool=pool)
        assert pooled.ranks == inline.ranks
        assert pooled.bytes_moved == inline.bytes_moved
        _assert_no_orphans(pool)
