"""Parser unit tests: statements, expressions, and the iterative grammar."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast, parse, parse_script


class TestSelectBasics:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert isinstance(stmt.from_clause, ast.TableRef)

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[0].expr.table == "t"

    def test_select_without_from(self):
        stmt = parse("SELECT 1, 2")
        assert stmt.from_clause is None

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_where_group_having(self):
        stmt = parse("SELECT a, SUM(b) FROM t WHERE c > 0 "
                     "GROUP BY a HAVING SUM(b) > 10")
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_limit_offset(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2")
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_keyword_as_column_name(self):
        # The paper's queries use columns named delta/rank/key.
        stmt = parse("SELECT delta, rank, key FROM t")
        names = [item.expr.name for item in stmt.items]
        assert names == ["delta", "rank", "key"]


class TestJoins:
    def test_inner_join(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.x")
        join = stmt.from_clause
        assert isinstance(join, ast.Join)
        assert join.kind is ast.JoinKind.INNER

    def test_left_outer_join(self):
        join = parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x"
                     ).from_clause
        assert join.kind is ast.JoinKind.LEFT

    def test_right_and_full(self):
        assert parse("SELECT * FROM a RIGHT JOIN b ON a.x=b.x"
                     ).from_clause.kind is ast.JoinKind.RIGHT
        assert parse("SELECT * FROM a FULL JOIN b ON a.x=b.x"
                     ).from_clause.kind is ast.JoinKind.FULL

    def test_cross_join_has_no_condition(self):
        join = parse("SELECT * FROM a CROSS JOIN b").from_clause
        assert join.kind is ast.JoinKind.CROSS
        assert join.condition is None

    def test_comma_join_is_cross(self):
        join = parse("SELECT * FROM a, b").from_clause
        assert join.kind is ast.JoinKind.CROSS

    def test_chained_joins_are_left_deep(self):
        join = parse("SELECT * FROM a JOIN b ON a.x=b.x "
                     "LEFT JOIN c ON b.y=c.y").from_clause
        assert join.kind is ast.JoinKind.LEFT
        assert isinstance(join.left, ast.Join)
        assert join.left.kind is ast.JoinKind.INNER

    def test_derived_table_with_alias(self):
        rel = parse("SELECT * FROM (SELECT a FROM t) AS s").from_clause
        assert isinstance(rel, ast.SubqueryRef)
        assert rel.alias == "s"

    def test_derived_table_without_alias(self):
        # Fig. 2 uses an unaliased derived table.
        rel = parse("SELECT * FROM (SELECT a FROM t)").from_clause
        assert isinstance(rel, ast.SubqueryRef)
        assert rel.alias is None

    def test_join_requires_on(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM a JOIN b")


class TestExpressions:
    def _expr(self, text):
        return parse(f"SELECT {text}").items[0].expr

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op is ast.BinaryOperator.ADD
        assert expr.right.op is ast.BinaryOperator.MUL

    def test_precedence_and_over_or(self):
        expr = self._expr("a OR b AND c")
        assert expr.op is ast.BinaryOperator.OR
        assert expr.right.op is ast.BinaryOperator.AND

    def test_not_binds_tighter_than_and(self):
        expr = self._expr("NOT a AND b")
        assert expr.op is ast.BinaryOperator.AND
        assert isinstance(expr.left, ast.UnaryOp)

    def test_parentheses_override(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op is ast.BinaryOperator.MUL

    def test_unary_minus(self):
        expr = self._expr("-x")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op is ast.UnaryOperator.NEG

    def test_comparison_chain_is_rejected(self):
        # a < b < c is not valid SQL.
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a < b < c FROM t")

    def test_is_null_and_is_not_null(self):
        assert self._expr("a IS NULL").negated is False
        assert self._expr("a IS NOT NULL").negated is True

    def test_in_list(self):
        expr = self._expr("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in(self):
        assert self._expr("a NOT IN (1)").negated

    def test_between(self):
        expr = self._expr("a BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)

    def test_searched_case(self):
        expr = self._expr("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.Case)
        assert expr.operand is None
        assert expr.default is not None

    def test_simple_case(self):
        expr = self._expr("CASE a WHEN 1 THEN 'x' END")
        assert expr.operand is not None

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT CASE ELSE 1 END")

    def test_cast(self):
        expr = self._expr("CAST(a AS numeric)")
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "numeric"

    def test_cast_with_precision(self):
        expr = self._expr("CAST(a AS numeric(10, 2))")
        assert isinstance(expr, ast.Cast)

    def test_function_call_names_lowercase(self):
        expr = self._expr("CEILING(x)")
        assert expr.name == "ceiling"

    def test_count_star(self):
        expr = self._expr("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        assert self._expr("COUNT(DISTINCT a)").distinct

    def test_string_concat(self):
        expr = self._expr("'a' || 'b'")
        assert expr.op is ast.BinaryOperator.CONCAT

    def test_modulo_operator(self):
        expr = self._expr("src % 10")
        assert expr.op is ast.BinaryOperator.MOD

    def test_like(self):
        expr = self._expr("a LIKE 'x%'")
        assert expr.op is ast.BinaryOperator.LIKE

    def test_literals(self):
        assert self._expr("NULL").value is None
        assert self._expr("TRUE").value is True
        assert self._expr("FALSE").value is False
        assert self._expr("1.5").value == 1.5


class TestSetOperations:
    def test_union(self):
        stmt = parse("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(stmt, ast.SetOp)
        assert stmt.kind is ast.SetOpKind.UNION

    def test_union_all(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert stmt.kind is ast.SetOpKind.UNION_ALL

    def test_union_chain(self):
        stmt = parse("SELECT 1 UNION SELECT 2 UNION SELECT 3")
        assert isinstance(stmt.left, ast.SetOp)

    def test_union_with_order_by(self):
        stmt = parse("SELECT a FROM t UNION SELECT b FROM u ORDER BY 1")
        assert stmt.order_by


class TestCtes:
    def test_regular_cte(self):
        stmt = parse("WITH x AS (SELECT 1) SELECT * FROM x")
        (cte,) = stmt.with_clause.ctes
        assert isinstance(cte, ast.CommonTableExpr)
        assert not cte.recursive

    def test_recursive_cte(self):
        stmt = parse("WITH RECURSIVE x (n) AS "
                     "(SELECT 1 UNION SELECT n + 1 FROM x) "
                     "SELECT * FROM x")
        (cte,) = stmt.with_clause.ctes
        assert cte.recursive
        assert cte.columns == ["n"]

    def test_multiple_ctes(self):
        stmt = parse("WITH a AS (SELECT 1), b AS (SELECT 2) "
                     "SELECT * FROM a, b")
        assert len(stmt.with_clause.ctes) == 2

    def test_iterative_cte(self):
        stmt = parse(
            "WITH ITERATIVE r (x) AS (SELECT 1 ITERATE "
            "SELECT x + 1 FROM r UNTIL 10 ITERATIONS) SELECT * FROM r")
        (cte,) = stmt.with_clause.ctes
        assert isinstance(cte, ast.IterativeCte)
        assert cte.columns == ["x"]
        assert cte.termination.kind is ast.TerminationKind.ITERATIONS
        assert cte.termination.count == 10


class TestTerminationGrammar:
    def _termination(self, until):
        stmt = parse(
            f"WITH ITERATIVE r (x) AS (SELECT 1 ITERATE "
            f"SELECT x + 1 FROM r UNTIL {until}) SELECT * FROM r")
        return stmt.with_clause.ctes[0].termination

    def test_iterations(self):
        t = self._termination("25 ITERATIONS")
        assert t.kind is ast.TerminationKind.ITERATIONS
        assert t.count == 25
        assert t.kind.family == "Metadata"

    def test_updates(self):
        t = self._termination("100 UPDATES")
        assert t.kind is ast.TerminationKind.UPDATES
        assert t.kind.family == "Metadata"

    def test_delta(self):
        t = self._termination("DELTA = 0")
        assert t.kind is ast.TerminationKind.DELTA
        assert t.comparator == "="
        assert t.count == 0
        assert t.kind.family == "Delta"

    def test_delta_less_than(self):
        t = self._termination("DELTA < 5")
        assert t.comparator == "<"

    def test_data_any_implicit(self):
        t = self._termination("x > 100")
        assert t.kind is ast.TerminationKind.DATA_ANY
        assert t.kind.family == "Data"

    def test_data_any_explicit(self):
        t = self._termination("ANY x > 100")
        assert t.kind is ast.TerminationKind.DATA_ANY

    def test_data_all(self):
        t = self._termination("ALL x > 100")
        assert t.kind is ast.TerminationKind.DATA_ALL

    def test_data_condition_on_column_named_delta(self):
        # "delta" as a column in a data condition, not the DELTA keyword.
        t = self._termination("delta > 0.5")
        assert t.kind is ast.TerminationKind.DATA_ANY

    def test_number_without_unit_rejected(self):
        with pytest.raises(SqlSyntaxError):
            self._termination("10")


class TestDdlDml:
    def test_create_table(self):
        stmt = parse("CREATE TABLE t (a int, b float, c text)")
        assert isinstance(stmt, ast.CreateTable)
        assert [c.name for c in stmt.columns] == ["a", "b", "c"]

    def test_create_table_primary_key_inline(self):
        stmt = parse("CREATE TABLE t (a int PRIMARY KEY, b float)")
        assert stmt.columns[0].primary_key

    def test_create_table_primary_key_clause(self):
        stmt = parse("CREATE TABLE t (a int, b float, PRIMARY KEY (b))")
        assert stmt.columns[1].primary_key

    def test_create_temporary_if_not_exists(self):
        stmt = parse("CREATE TEMP TABLE IF NOT EXISTS t (a int)")
        assert stmt.temporary
        assert stmt.if_not_exists

    def test_drop_table(self):
        stmt = parse("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, ast.DropTable)
        assert stmt.if_exists

    def test_insert_values(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.source) == 2

    def test_insert_select(self):
        stmt = parse("INSERT INTO t SELECT a FROM u")
        assert isinstance(stmt.source, ast.Select)

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_update_from(self):
        stmt = parse("UPDATE t SET a = u.a FROM u WHERE t.id = u.id")
        assert stmt.from_clause is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_transactions(self):
        assert isinstance(parse("BEGIN"), ast.BeginTransaction)
        assert isinstance(parse("COMMIT"), ast.CommitTransaction)
        assert isinstance(parse("ROLLBACK"), ast.RollbackTransaction)

    def test_explain(self):
        stmt = parse("EXPLAIN SELECT 1")
        assert isinstance(stmt, ast.Explain)


class TestScripts:
    def test_parse_script(self):
        stmts = parse_script("SELECT 1; SELECT 2; SELECT 3;")
        assert len(stmts) == 3

    def test_empty_statements_skipped(self):
        assert len(parse_script(";;SELECT 1;;")) == 1

    def test_missing_semicolon_between_statements(self):
        with pytest.raises(SqlSyntaxError):
            parse_script("SELECT 1 SELECT 2")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 garbage junk")
