"""Distributed iterative PageRank tests: correctness vs the single-node
reference, and the motion properties the shared-nothing design predicts."""

import pytest

from repro.datasets import dblp_like, generate_edges
from repro.mpp import Cluster, distributed_pagerank
from repro.workloads import reference_pagerank

EDGES = generate_edges(dblp_like(nodes=250, seed=31))


class TestDistributedPageRank:
    def test_matches_reference_exactly(self):
        result = distributed_pagerank(Cluster(4), EDGES, iterations=8)
        reference = reference_pagerank(EDGES, iterations=8)
        assert result.ranks.keys() == reference.keys()
        for node, rank in result.ranks.items():
            assert rank == pytest.approx(reference[node], abs=1e-12)

    def test_segment_count_does_not_change_results(self):
        baseline = distributed_pagerank(Cluster(1), EDGES,
                                        iterations=5).ranks
        for segments in (2, 3, 8):
            ranks = distributed_pagerank(Cluster(segments), EDGES,
                                         iterations=5).ranks
            assert ranks == pytest.approx(baseline)

    def test_single_segment_moves_nothing(self):
        result = distributed_pagerank(Cluster(1), EDGES, iterations=5)
        assert result.rows_moved == 0

    def test_motion_grows_with_iterations(self):
        short = distributed_pagerank(Cluster(4), EDGES, iterations=2)
        long = distributed_pagerank(Cluster(4), EDGES, iterations=8)
        assert long.rows_moved > short.rows_moved
        assert long.shuffles == 8
        assert short.shuffles == 2

    def test_per_iteration_motion_bounded_by_cross_segment_edges(self):
        cluster = Cluster(4)
        result = distributed_pagerank(cluster, EDGES, iterations=1)
        # At most one partial per edge crosses the interconnect.
        assert result.rows_moved <= len(EDGES)

    def test_matches_sql_engine(self, graph_db):
        """The distributed loop computes what the SQL query computes."""
        from tests.conftest import SMALL_EDGES
        from repro.workloads import pagerank_query
        sql_ranks = dict(graph_db.execute(
            pagerank_query(iterations=6, coalesced=True)).rows())
        distributed = distributed_pagerank(Cluster(3), SMALL_EDGES,
                                           iterations=6).ranks
        assert distributed == pytest.approx(sql_ranks)


class TestDeltaShuffle:
    CHAIN = [(i, i + 1, 1.0) for i in range(1, 30)]

    def test_identical_results(self):
        naive = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50)
        delta = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50,
                                     delta_shuffle=True)
        assert naive.ranks == delta.ranks

    def test_motion_suppressed_once_the_chain_drains(self):
        # Node 1 has no incoming edge, so a zero-delta wave advances one
        # hop per iteration; once it reaches the chain's end every
        # partial-contribution piece is a constant all-zeros array,
        # which the delta shuffle recognizes and stops re-sending.
        naive = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50)
        delta = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50,
                                     delta_shuffle=True)
        assert delta.rows_moved < naive.rows_moved
        drained = delta.telemetry.records[-1]
        assert drained.rows_moved == 0

    def test_default_keeps_the_naive_motion_bill(self):
        naive = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50)
        again = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50)
        assert naive.rows_moved == again.rows_moved
