"""Distributed iterative PageRank tests: correctness vs the single-node
reference, and the motion properties the shared-nothing design predicts."""

import pytest

from repro.datasets import dblp_like, generate_edges
from repro.mpp import Cluster, distributed_pagerank
from repro.workloads import reference_pagerank

EDGES = generate_edges(dblp_like(nodes=250, seed=31))


class TestDistributedPageRank:
    def test_matches_reference_exactly(self):
        result = distributed_pagerank(Cluster(4), EDGES, iterations=8)
        reference = reference_pagerank(EDGES, iterations=8)
        assert result.ranks.keys() == reference.keys()
        for node, rank in result.ranks.items():
            assert rank == pytest.approx(reference[node], abs=1e-12)

    def test_segment_count_does_not_change_results(self):
        baseline = distributed_pagerank(Cluster(1), EDGES,
                                        iterations=5).ranks
        for segments in (2, 3, 8):
            ranks = distributed_pagerank(Cluster(segments), EDGES,
                                         iterations=5).ranks
            assert ranks == pytest.approx(baseline)

    def test_single_segment_moves_nothing(self):
        result = distributed_pagerank(Cluster(1), EDGES, iterations=5)
        assert result.rows_moved == 0

    def test_motion_grows_with_iterations(self):
        short = distributed_pagerank(Cluster(4), EDGES, iterations=2)
        long = distributed_pagerank(Cluster(4), EDGES, iterations=8)
        assert long.rows_moved > short.rows_moved
        assert long.shuffles == 8
        assert short.shuffles == 2

    def test_per_iteration_motion_bounded_by_cross_segment_edges(self):
        cluster = Cluster(4)
        result = distributed_pagerank(cluster, EDGES, iterations=1)
        # At most one partial per edge crosses the interconnect.
        assert result.rows_moved <= len(EDGES)

    def test_matches_sql_engine(self, graph_db):
        """The distributed loop computes what the SQL query computes."""
        from tests.conftest import SMALL_EDGES
        from repro.workloads import pagerank_query
        sql_ranks = dict(graph_db.execute(
            pagerank_query(iterations=6, coalesced=True)).rows())
        distributed = distributed_pagerank(Cluster(3), SMALL_EDGES,
                                           iterations=6).ranks
        assert distributed == pytest.approx(sql_ranks)


class TestDeltaShuffle:
    CHAIN = [(i, i + 1, 1.0) for i in range(1, 30)]

    def test_identical_results(self):
        naive = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50)
        delta = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50,
                                     delta_shuffle=True)
        assert naive.ranks == delta.ranks

    def test_motion_suppressed_once_the_chain_drains(self):
        # Node 1 has no incoming edge, so a zero-delta wave advances one
        # hop per iteration; once it reaches the chain's end every
        # partial-contribution piece is a constant all-zeros array,
        # which the delta shuffle recognizes and stops re-sending.
        naive = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50)
        delta = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50,
                                     delta_shuffle=True)
        assert delta.rows_moved < naive.rows_moved
        drained = delta.telemetry.records[-1]
        assert drained.rows_moved == 0

    def test_default_keeps_the_naive_motion_bill(self):
        naive = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50)
        again = distributed_pagerank(Cluster(4), self.CHAIN, iterations=50)
        assert naive.rows_moved == again.rows_moved


class TestDistributedSssp:
    EDGES = generate_edges(dblp_like(nodes=200, seed=13))

    @staticmethod
    def _bellman_ford(edges, source):
        nodes = {e[0] for e in edges} | {e[1] for e in edges} | {source}
        dist = {v: float("inf") for v in nodes}
        dist[source] = 0.0
        for _ in range(len(nodes)):
            changed = False
            for src, dst, weight in edges:
                candidate = dist[src] + weight
                if candidate < dist[dst]:
                    dist[dst] = candidate
                    changed = True
            if not changed:
                break
        return dist

    def test_matches_bellman_ford(self):
        from repro.mpp import distributed_sssp
        result = distributed_sssp(Cluster(4), self.EDGES, source=1)
        reference = self._bellman_ford(self.EDGES, source=1)
        assert result.distances.keys() == reference.keys()
        for node, dist in result.distances.items():
            assert dist == pytest.approx(reference[node], abs=1e-12)

    def test_segment_count_does_not_change_results(self):
        from repro.mpp import distributed_sssp
        baseline = distributed_sssp(Cluster(1), self.EDGES,
                                    source=1).distances
        for segments in (2, 3, 8):
            assert distributed_sssp(Cluster(segments), self.EDGES,
                                    source=1).distances == baseline

    def test_converges_before_the_iteration_cap(self):
        from repro.mpp import distributed_sssp
        result = distributed_sssp(Cluster(4), self.EDGES, source=1,
                                  max_iterations=64)
        assert result.iterations < 64
        # The last trip relaxed nothing (the convergence proof).
        assert result.telemetry.records[-1].delta_rows == 0

    def test_unreachable_nodes_stay_infinite(self):
        from repro.mpp import distributed_sssp
        edges = [(1, 2, 1.0), (2, 3, 1.0), (9, 10, 1.0)]
        result = distributed_sssp(Cluster(2), edges, source=1)
        assert result.distances[3] == 2.0
        assert result.distances[9] == float("inf")
        assert result.distances[10] == float("inf")

    def test_delta_shuffle_identical_results(self):
        from repro.mpp import distributed_sssp
        naive = distributed_sssp(Cluster(4), self.EDGES, source=1)
        delta = distributed_sssp(Cluster(4), self.EDGES, source=1,
                                 delta_shuffle=True)
        assert naive.distances == delta.distances
        assert naive.iterations == delta.iterations

    def test_single_segment_moves_nothing(self):
        from repro.mpp import distributed_sssp
        result = distributed_sssp(Cluster(1), self.EDGES, source=1)
        assert result.rows_moved == 0
