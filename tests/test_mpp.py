"""Shared-nothing simulation tests: placement, motions, join strategy
selection, and two-phase aggregation."""

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.mpp import (
    Cluster,
    Distribution,
    DistributionKind,
    JoinStrategy,
    distributed_aggregate_sum,
    distributed_join,
    hash_partition_indices,
    plan_join,
)
from repro.storage import Column, Table
from repro.types import SqlType


def make_table(keys, values=None):
    keys = list(keys)
    if values is None:
        values = [None if k is None else float(k) for k in keys]
    return Table.from_columns([
        ("k", SqlType.INTEGER, list(keys)),
        ("v", SqlType.FLOAT, list(values)),
    ])


class TestPartitioning:
    def test_hash_partition_is_deterministic(self):
        column = Column.from_values(SqlType.INTEGER, list(range(100)))
        first = hash_partition_indices(column, 4)
        second = hash_partition_indices(column, 4)
        assert (first == second).all()

    def test_partitions_cover_all_rows(self):
        cluster = Cluster(4)
        table = make_table(range(1000))
        distributed = cluster.distribute("t", table,
                                         Distribution.hashed("k"))
        assert distributed.num_rows == 1000
        assert len(distributed.partitions) == 4

    def test_hash_distribution_is_reasonably_balanced(self):
        cluster = Cluster(4)
        distributed = cluster.distribute("t", make_table(range(4000)),
                                         Distribution.hashed("k"))
        sizes = [p.num_rows for p in distributed.partitions]
        assert min(sizes) > 500  # no segment starves

    def test_same_key_lands_on_same_segment(self):
        cluster = Cluster(8)
        table = make_table([7] * 50)
        distributed = cluster.distribute("t", table,
                                         Distribution.hashed("k"))
        nonempty = [p for p in distributed.partitions if p.num_rows]
        assert len(nonempty) == 1

    def test_replicated_copies_everywhere(self):
        cluster = Cluster(3)
        distributed = cluster.distribute("t", make_table(range(10)),
                                         Distribution.replicated())
        assert all(p.num_rows == 10 for p in distributed.partitions)

    def test_round_robin_balances_exactly(self):
        cluster = Cluster(4)
        distributed = cluster.distribute("t", make_table(range(8)),
                                         Distribution.round_robin())
        assert [p.num_rows for p in distributed.partitions] == [2, 2, 2, 2]

    def test_null_keys_go_to_segment_zero(self):
        cluster = Cluster(4)
        table = make_table([None, None, None])
        distributed = cluster.distribute("t", table,
                                         Distribution.hashed("k"))
        assert distributed.partitions[0].num_rows == 3

    def test_gather_reassembles(self):
        cluster = Cluster(4)
        table = make_table(range(100))
        distributed = cluster.distribute("t", table,
                                         Distribution.hashed("k"))
        gathered = distributed.gather()
        assert sorted(r[0] for r in gathered.rows()) == list(range(100))

    def test_missing_table_lookup(self):
        with pytest.raises(CatalogError):
            Cluster(2).table("ghost")


class TestJoinPlanning:
    def test_colocated_join_moves_nothing(self):
        cluster = Cluster(4)
        a = cluster.distribute("a", make_table(range(100)),
                               Distribution.hashed("k"))
        b = cluster.distribute("b", make_table(range(100)),
                               Distribution.hashed("k"))
        decision = plan_join(cluster, a, b, "k", "k")
        assert decision.strategy is JoinStrategy.COLOCATED
        assert decision.estimated_rows_moved == 0

    def test_redistribute_smaller_side(self):
        cluster = Cluster(4)
        big = cluster.distribute("big", make_table(range(1000)),
                                 Distribution.hashed("k"))
        small = cluster.distribute("small", make_table(range(10)),
                                   Distribution.round_robin())
        decision = plan_join(cluster, big, small, "k", "k")
        assert decision.strategy in (JoinStrategy.REDISTRIBUTE_RIGHT,
                                     JoinStrategy.BROADCAST_RIGHT)

    def test_replicated_side_is_colocated(self):
        cluster = Cluster(4)
        a = cluster.distribute("a", make_table(range(100)),
                               Distribution.hashed("k"))
        b = cluster.distribute("b", make_table(range(10)),
                               Distribution.replicated())
        assert plan_join(cluster, a, b, "k", "k").strategy \
            is JoinStrategy.COLOCATED


class TestDistributedExecution:
    def test_join_result_matches_single_node(self):
        cluster = Cluster(4)
        left = make_table(range(50))
        right = make_table([k % 10 for k in range(30)])
        a = cluster.distribute("a", left, Distribution.hashed("k"))
        b = cluster.distribute("b", right, Distribution.round_robin())
        joined, _ = distributed_join(cluster, a, b, "k", "k")
        expected = sum(1 for lk, _ in left.rows()
                       for rk, _ in right.rows() if lk == rk)
        assert joined.num_rows == expected

    def test_join_charges_motion(self):
        cluster = Cluster(4)
        a = cluster.distribute("a", make_table(range(100)),
                               Distribution.hashed("k"))
        b = cluster.distribute("b", make_table(range(100)),
                               Distribution.round_robin())
        cluster.motion.reset()
        _, decision = distributed_join(cluster, a, b, "k", "k")
        assert decision.strategy is JoinStrategy.REDISTRIBUTE_RIGHT
        assert cluster.motion.rows_moved == 100

    def test_colocated_join_charges_nothing(self):
        cluster = Cluster(4)
        a = cluster.distribute("a", make_table(range(100)),
                               Distribution.hashed("k"))
        b = cluster.distribute("b", make_table(range(100)),
                               Distribution.hashed("k"))
        cluster.motion.reset()
        distributed_join(cluster, a, b, "k", "k")
        assert cluster.motion.rows_moved == 0

    def test_two_phase_aggregate_matches_single_node(self):
        cluster = Cluster(4)
        keys = [k % 7 for k in range(200)]
        values = [float(k) for k in range(200)]
        table = make_table(keys, values)
        distributed = cluster.distribute("t", table,
                                         Distribution.round_robin())
        result = distributed_aggregate_sum(cluster, distributed, "k", "v")
        gathered = dict(result.gather().rows())
        expected = {}
        for key, value in zip(keys, values):
            expected[key] = expected.get(key, 0.0) + value
        assert gathered == pytest.approx(expected)

    def test_partial_aggregation_reduces_motion(self):
        """The point of two-phase aggregation: partials, not rows, move."""
        cluster = Cluster(4)
        table = make_table([k % 5 for k in range(1000)])
        distributed = cluster.distribute("t", table,
                                         Distribution.round_robin())
        cluster.motion.reset()
        distributed_aggregate_sum(cluster, distributed, "k", "v")
        # At most segments * groups partial rows move (plus the
        # redistribute of those partials), never the 1000 input rows.
        assert cluster.motion.rows_moved <= 2 * 4 * 5

    def test_broadcast_multiplies_rows(self):
        cluster = Cluster(5)
        distributed = cluster.distribute("t", make_table(range(10)),
                                         Distribution.hashed("k"))
        cluster.motion.reset()
        replicated = cluster.broadcast(distributed)
        assert cluster.motion.rows_moved == 50
        assert replicated.distribution.kind is DistributionKind.REPLICATED

    def test_more_segments_do_not_change_results(self):
        tables = {}
        for segments in (1, 2, 8):
            cluster = Cluster(segments)
            table = make_table([k % 9 for k in range(300)])
            distributed = cluster.distribute(
                "t", table, Distribution.round_robin())
            result = distributed_aggregate_sum(cluster, distributed,
                                               "k", "v")
            tables[segments] = dict(result.gather().rows())
        assert tables[1] == pytest.approx(tables[2])
        assert tables[1] == pytest.approx(tables[8])
