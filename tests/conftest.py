"""Shared fixtures: small graphs and pre-loaded databases.

Also wires the dynamic lockset race detector: running the suite with
``REPRO_RACECHECK=1`` instruments the guarded classes for the whole
session and writes the collected report (even when empty) to
``$REPRO_RACECHECK_REPORT`` (default ``RACECHECK_REPORT.json``) at
session end, for ``repro-racecheck --replay``.
"""

from __future__ import annotations

import os

import pytest

from repro import Database
from repro.types import SqlType

_RACECHECK = os.environ.get("REPRO_RACECHECK") == "1"


def pytest_configure(config):
    if _RACECHECK:
        from repro.verify.concurrency import enable_racecheck
        enable_racecheck()


def pytest_sessionfinish(session, exitstatus):
    if _RACECHECK:
        from repro.verify.concurrency import write_report
        path = os.environ.get("REPRO_RACECHECK_REPORT",
                              "RACECHECK_REPORT.json")
        write_report(path)

# A small weighted digraph used across tests:
#
#   1 -> 2 (0.5)   1 -> 3 (0.5)   2 -> 3 (1.0)   3 -> 1 (1.0)   4 -> 1 (1.0)
#
# Every node has an incoming edge except 4; weights on 1's edges are
# out-degree-normalized.
SMALL_EDGES = [
    (1, 2, 0.5),
    (1, 3, 0.5),
    (2, 3, 1.0),
    (3, 1, 1.0),
    (4, 1, 1.0),
]

# Availability used by PR-VS / SSSP-VS tests: node 3 is unavailable.
SMALL_STATUS = [(1, 1), (2, 1), (3, 0), (4, 1)]


@pytest.fixture
def db() -> Database:
    """An empty database."""
    return Database()


@pytest.fixture
def graph_db() -> Database:
    """A database with the small edges table loaded."""
    database = Database()
    database.create_table("edges", [("src", SqlType.INTEGER),
                                    ("dst", SqlType.INTEGER),
                                    ("weight", SqlType.FLOAT)])
    database.load_rows("edges", SMALL_EDGES)
    return database


@pytest.fixture
def graph_vs_db(graph_db: Database) -> Database:
    """The small graph plus the vertexStatus table."""
    graph_db.create_table("vertexStatus", [("node", SqlType.INTEGER),
                                           ("status", SqlType.INTEGER)])
    graph_db.load_rows("vertexStatus", SMALL_STATUS)
    return graph_db


@pytest.fixture
def people_db() -> Database:
    """A small non-graph table for general SQL tests."""
    database = Database()
    database.create_table("people", [("id", SqlType.INTEGER),
                                     ("name", SqlType.TEXT),
                                     ("age", SqlType.INTEGER),
                                     ("city", SqlType.TEXT)])
    database.load_rows("people", [
        (1, "ada", 36, "london"),
        (2, "grace", 45, "new york"),
        (3, "alan", 41, "london"),
        (4, "edsger", 72, None),
        (5, "barbara", None, "boston"),
    ])
    return database
