#!/usr/bin/env sh
# Tier-1 MPP smoke: spawn 2 real shared-nothing workers, run a short
# distributed PageRank, and demand exact (bit-identical) parity with
# the inline simulation — results, motion counters, no orphan
# processes.  Fast (< 10s) and safe on single-CPU runners: the pool
# uses fork and the graph is smoke-scale.
#
# Usage: scripts/check_mpp_smoke.sh [extra pytest args...]
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src exec python -m pytest -m mpp_smoke -q "$@"
