#!/usr/bin/env sh
# Tier-1 perf smoke: run the tiny iterative benchmark guard (< 10s).
#
# Usage: scripts/check_bench_smoke.sh [extra pytest args...]
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src exec python -m pytest -m bench_smoke -q "$@"
