#!/usr/bin/env bash
# Perf-gate self-test: prove the regression gate trips on a seeded
# slowdown and passes on an unmodified rerun, against a throwaway
# ledger (the repo ledger is never touched).
#
#   1. record baselines into a temp ledger
#   2. check with no change        -> must exit 0
#   3. check with --slowdown 0.2   -> must exit non-zero
#
# Usage: scripts/check_perf_gate.sh
set -euo pipefail

cd "$(dirname "$0")/.."

ledger="$(mktemp -d)/PERF_LEDGER.jsonl"
trap 'rm -rf "$(dirname "$ledger")"' EXIT

run_perf() {
    env PYTHONPATH=src python -m repro.harness.perfgate \
        --ledger "$ledger" "$@"
}

echo "== perf gate: record baselines =="
run_perf record --repeats 3

echo "== perf gate: unmodified rerun must pass =="
run_perf check --repeats 3

echo "== perf gate: seeded 200ms slowdown must trip =="
if run_perf check --repeats 3 --slowdown 0.2 > /dev/null; then
    echo "perf gate: FAILED — seeded regression not detected" >&2
    exit 1
fi

echo "perf gate: ok (clean pass + seeded regression detected)"
