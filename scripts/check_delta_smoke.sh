#!/usr/bin/env sh
# Tier-1 delta-evaluation smoke: semi-naive delta mode must stay
# bit-identical to full recomputation on the three graph workloads, the
# frontier must actually drive the loop, and the segmented append path
# must move O(|delta|) rows per iteration (< 10s).
#
# Usage: scripts/check_delta_smoke.sh [extra pytest args...]
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src exec python -m pytest -m delta_smoke -q "$@"
