#!/usr/bin/env bash
# Tier-1 trace-diff guard: run the same iterative query natively and
# through the middleware baseline, export both traces, and require the
# diff to agree (same iteration count, same delta_rows convergence
# curve).  Exercises the repro.obs.tracediff CLI end to end, including
# the JSON round trip through real files (< 15s).
#
# Usage: scripts/check_trace_diff.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

PYTHONPATH=src python - "$workdir" <<'EOF'
import sys
from pathlib import Path

from repro.datasets import dblp_like, fresh_database
from repro.middleware.driver import MiddlewareDriver
from repro.workloads import pagerank_query

out = Path(sys.argv[1])
spec = dblp_like(nodes=80, seed=9)
sql = pagerank_query(iterations=5)

native = fresh_database(spec)
native.options.enable_tracing = True
native.execute(sql)
(out / "native.json").write_text(native.trace_json(indent=2))

baseline = fresh_database(spec)
baseline.options.enable_tracing = True
MiddlewareDriver(baseline).run(sql)
(out / "middleware.json").write_text(baseline.trace_json(indent=2))
EOF

PYTHONPATH=src python -m repro.obs.tracediff --require-agreement \
    "$workdir/native.json" "$workdir/middleware.json"

PYTHONPATH=src python -m pytest -m tracediff_smoke -q "$@"
