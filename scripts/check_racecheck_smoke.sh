#!/usr/bin/env sh
# Tier-1 racecheck smoke: the concurrency safety net in both prongs.
# First the static lock-discipline pass over the real tree (must be
# clean: the guard map declares every lock-held context, so any finding
# is a regression), then the racecheck_smoke pytest subset — the seeded
# mutation harness (every violation class caught with file/line
# attribution) and the dynamic lockset detector re-finding the
# KernelCache race when its lock is knocked out.
#
# Usage: scripts/check_racecheck_smoke.sh [extra pytest args...]
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src python -m repro.verify.concurrency.cli
PYTHONPATH=src exec python -m pytest -m racecheck_smoke -q "$@"
