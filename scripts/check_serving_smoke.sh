#!/usr/bin/env sh
# Tier-1 serving smoke: start the in-process thread-pool server over a
# shared Engine, drive concurrent sessions (snapshot-pinned reads while
# writers append), and demand serial-equivalent results plus working
# admission control and plan-cache invalidation.  Fast (< 15s): the
# tables are smoke-scale and the worker pool is threads, not processes.
#
# Usage: scripts/check_serving_smoke.sh [extra pytest args...]
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src exec python -m pytest -m serving_smoke -q "$@"
