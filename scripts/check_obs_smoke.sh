#!/usr/bin/env sh
# Tier-1 observability smoke: run a traced iterative query, validate the
# trace JSON against the stable schema, and check the benchmark harness
# writes a parseable BENCH_*.json artifact (< 10s).
#
# Usage: scripts/check_obs_smoke.sh [extra pytest args...]
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src exec python -m pytest -m obs_smoke -q "$@"
