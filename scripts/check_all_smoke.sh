#!/usr/bin/env sh
# Tier-1 combined smoke: the bench, observability and delta-evaluation
# guards in one pytest invocation (< 30s).  Equivalent to running
# check_bench_smoke.sh, check_obs_smoke.sh and check_delta_smoke.sh
# back to back, minus two interpreter startups.
#
# Usage: scripts/check_all_smoke.sh [extra pytest args...]
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src exec python -m pytest \
    -m "bench_smoke or obs_smoke or delta_smoke" -q "$@"
