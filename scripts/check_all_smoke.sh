#!/usr/bin/env bash
# Tier-1 combined smoke: every guard in sequence, with per-guard failure
# attribution — when something breaks, the summary names the guard that
# failed instead of burying it in one merged pytest run.
#
# Guards (each also runnable standalone via its own script):
#   bench      scripts/check_bench_smoke.sh   benchmark harness artifact
#   obs        scripts/check_obs_smoke.sh     trace schema round trip
#   delta      scripts/check_delta_smoke.sh   semi-naive delta evaluation
#   lint       repro-lint + its pytest guard  engine lint (AST rules)
#   procedures tests/test_procedures_smoke.py stored-procedure baseline
#   tracediff  scripts/check_trace_diff.sh    native vs baseline diff
#   perf       scripts/check_perf_gate.sh     perf ledger + regression gate
#   mpp        scripts/check_mpp_smoke.sh     2-worker shared-nothing parity
#   serving    scripts/check_serving_smoke.sh multi-session server + snapshots
#   racecheck  scripts/check_racecheck_smoke.sh lock discipline + lockset races
#
# Usage: scripts/check_all_smoke.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

failed=""

run_guard() {
    name="$1"
    shift
    echo "== guard: $name =="
    if "$@"; then
        echo "== guard: $name ok =="
    else
        echo "== guard: $name FAILED ==" >&2
        failed="$failed $name"
    fi
}

run_pytest_guard() {
    name="$1" marker="$2"
    shift 2
    run_guard "$name" env PYTHONPATH=src \
        python -m pytest -m "$marker" -q "$@"
}

run_pytest_guard bench bench_smoke "$@"
run_pytest_guard obs obs_smoke "$@"
run_pytest_guard delta delta_smoke "$@"
run_pytest_guard lint lint_smoke "$@"
run_guard repro-lint env PYTHONPATH=src python -m repro.verify.lint
run_pytest_guard procedures procedures_smoke "$@"
run_pytest_guard tracediff tracediff_smoke "$@"
run_guard trace-diff-cli scripts/check_trace_diff.sh
run_pytest_guard perf perf_smoke "$@"
run_guard perf-gate-cli scripts/check_perf_gate.sh
run_pytest_guard mpp mpp_smoke "$@"
run_pytest_guard serving serving_smoke "$@"
run_pytest_guard racecheck racecheck_smoke "$@"
run_guard repro-racecheck env PYTHONPATH=src \
    python -m repro.verify.concurrency.cli

if [ -n "$failed" ]; then
    echo "smoke: FAILED guards:$failed" >&2
    exit 1
fi
echo "smoke: all guards ok"
