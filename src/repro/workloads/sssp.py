"""The SSSP query (paper Fig. 7) and its reference oracle.

The query maintains, per node, the best known distance and a ``delta``
holding the best distance discovered through paths explored in the last
round:

    delta_{i+1}(v)    = min over incoming (u,v), delta_i(u) ≠ ∞,
                        of delta_i(u) + weight(u,v)   (∞ if none)
    distance_{i+1}(v) = LEAST(distance_i(v), delta_i(v))

with distance_0 = ∞ and delta_0 = 0 for the source, ∞ otherwise (∞ is the
sentinel 9999999, as in the paper).  The WHERE clause makes this a
*partial* update — only reached nodes enter the working table — so the
rewrite takes the merge path of Algorithm 1.
"""

from __future__ import annotations

INFINITY = 9999999


def sssp_query(source: int = 1, iterations: int = 10,
               with_vertex_status: bool = False,
               final_where: str | None = None) -> str:
    """The iterative-CTE single-source-shortest-path query."""
    status_join = ""
    status_where = ""
    if with_vertex_status:
        status_join = ("\n    JOIN vertexStatus AS avail_d"
                       "\n      ON avail_d.node = IncomingEdges.dst")
        status_where = " AND avail_d.status != 0"
    where_clause = f" WHERE {final_where}" if final_where else ""
    return f"""
WITH ITERATIVE sssp (Node, Distance, Delta)
AS (SELECT src, {INFINITY}, CASE WHEN src = {source}
         THEN 0 ELSE {INFINITY} END
FROM (SELECT src FROM edges
      UNION SELECT dst FROM edges)
 ITERATE
   SELECT sssp.node,
     LEAST(sssp.distance, sssp.delta),
     COALESCE(MIN(IncomingDistance.delta
         + IncomingEdges.weight), {INFINITY})
   FROM sssp
    LEFT JOIN edges AS IncomingEdges ON
     sssp.node = IncomingEdges.dst
    LEFT JOIN sssp AS IncomingDistance ON
     IncomingDistance.node = IncomingEdges.src{status_join}
   WHERE IncomingDistance.Delta != {INFINITY}{status_where}
   GROUP BY sssp.node,
       LEAST(sssp.distance, sssp.delta)
  UNTIL {iterations} ITERATIONS)
SELECT Node, Distance FROM sssp{where_clause}
"""


def reference_sssp(edges: list[tuple[int, int, float]], source: int = 1,
                   iterations: int = 10,
                   available: dict[int, bool] | None = None
                   ) -> dict[int, float]:
    """Direct evaluation of the query's recurrence (the oracle).

    Note this mirrors the *query*, not textbook Bellman-Ford: ``distance``
    lags ``delta`` by one round, exactly as Fig. 7 computes it.
    """
    nodes = sorted({e[0] for e in edges} | {e[1] for e in edges})
    incoming: dict[int, list[tuple[int, float]]] = {v: [] for v in nodes}
    for src, dst, weight in edges:
        incoming[dst].append((src, weight))

    distance = {v: float(INFINITY) for v in nodes}
    delta = {v: 0.0 if v == source else float(INFINITY) for v in nodes}

    for _ in range(iterations):
        new_distance = {}
        new_delta = {}
        for v in nodes:
            if available is not None and not available.get(v, False):
                continue
            candidates = [delta[u] + w for u, w in incoming[v]
                          if delta[u] != INFINITY]
            if not candidates:
                # WHERE filters the node out: it keeps its old values.
                continue
            new_distance[v] = min(distance[v], delta[v])
            new_delta[v] = min(candidates)
        distance.update(new_distance)
        delta.update(new_delta)
    return distance


def true_shortest_paths(edges: list[tuple[int, int, float]],
                        source: int = 1) -> dict[int, float]:
    """Dijkstra distances (via networkx) — the convergence target."""
    import networkx as nx

    graph = nx.DiGraph()
    nodes = {e[0] for e in edges} | {e[1] for e in edges}
    graph.add_nodes_from(nodes)
    graph.add_weighted_edges_from(edges)
    lengths = nx.single_source_dijkstra_path_length(graph, source)
    return {v: lengths.get(v, float(INFINITY)) for v in nodes}


def stored_procedure_script(source: int = 1, iterations: int = 10,
                            with_vertex_status: bool = False) -> list[str]:
    """Multi-statement SSSP for the §VII-E comparison."""
    status_join = ""
    status_where = ""
    if with_vertex_status:
        status_join = ("\n  JOIN vertexStatus AS avail_d"
                       "\n    ON avail_d.node = IncomingEdges.dst")
        status_where = " AND avail_d.status != 0"

    statements = [
        "CREATE TABLE __sssp_intermediate "
        "(node int, distance float, delta float)",
        "CREATE TABLE __sssp_result "
        "(node int, distance float, delta float)",
        f"""INSERT INTO __sssp_result
             SELECT src, {INFINITY}, CASE WHEN src = {source}
                 THEN 0 ELSE {INFINITY} END
             FROM (SELECT src FROM edges UNION SELECT dst FROM edges)""",
    ]
    iteration_body = [
        "DELETE FROM __sssp_intermediate",
        f"""INSERT INTO __sssp_intermediate
             SELECT sssp.node,
                    LEAST(sssp.distance, sssp.delta),
                    COALESCE(MIN(IncomingDistance.delta
                        + IncomingEdges.weight), {INFINITY})
             FROM __sssp_result AS sssp
              LEFT JOIN edges AS IncomingEdges
                ON sssp.node = IncomingEdges.dst
              LEFT JOIN __sssp_result AS IncomingDistance
                ON IncomingDistance.node = IncomingEdges.src{status_join}
             WHERE IncomingDistance.Delta != {INFINITY}{status_where}
             GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)""",
        """UPDATE __sssp_result
              SET distance = i.distance, delta = i.delta
             FROM __sssp_intermediate AS i
            WHERE __sssp_result.node = i.node""",
    ]
    for _ in range(iterations):
        statements.extend(iteration_body)
    statements.append("DROP TABLE __sssp_intermediate")
    return statements
