"""The FF (Forecast Friends) query (paper Fig. 6) and its oracle.

The query forecasts each node's number of friends as a geometric sequence:
the non-iterative part computes the current friend count and a synthetic
"previous year" count; each iteration multiplies by the growth ratio.
Its iterative part is deliberately trivial (no joins, no aggregation) —
the paper uses it to isolate data-movement cost (§VII-B) and to
demonstrate predicate push down, whose benefit is controlled through the
selectivity parameter X in ``MOD(node, X) = 0`` (§VII-D).
"""

from __future__ import annotations

import math


def ff_query(iterations: int = 5, selectivity_mod: int | None = 100,
             order_and_limit: bool = True) -> str:
    """The iterative-CTE forecast query.

    ``selectivity_mod`` is the paper's X: the final part keeps nodes with
    ``MOD(node, X) = 0`` — roughly a 1/X sample.  ``None`` drops the
    final predicate entirely.
    """
    where_clause = ""
    if selectivity_mod is not None:
        where_clause = f"\nWHERE MOD(node, {selectivity_mod}) = 0"
    tail = "\nORDER BY friends DESC LIMIT 10" if order_and_limit else ""
    return f"""
WITH ITERATIVE forecast (node, friends, friendsPrev)
AS( SELECT src AS node, count(dst) AS friends,
        ceiling(count(dst)
            * (1.0-(src%10)/100.0)) AS friendsPrev
    FROM edges GROUP BY src
  ITERATE
     SELECT node AS node,
        round(cast((friends / friendsPrev)
           * friends AS numeric), 5) AS friends,
        friends AS friendsPrev
     FROM forecast
  UNTIL {iterations} ITERATIONS )
SELECT node, friends
FROM forecast{where_clause}{tail}
"""


def reference_ff(edges: list[tuple[int, int, float]],
                 iterations: int = 5,
                 selectivity_mod: int | None = 100
                 ) -> dict[int, float]:
    """Direct evaluation of the forecast recurrence for each source node.

    Matches the SQL exactly, including the type promotion: the CTE
    column ``friends`` unifies to FLOAT across R0 (count, integer) and Ri
    (round(...), numeric), so the division is float division from the
    first iteration.
    """
    outdegree: dict[int, int] = {}
    for src, _dst, _w in edges:
        outdegree[src] = outdegree.get(src, 0) + 1

    result: dict[int, float] = {}
    for node, degree in outdegree.items():
        friends = float(degree)
        previous = float(math.ceil(degree * (1.0 - (node % 10) / 100.0)))
        for _ in range(iterations):
            friends, previous = (round((friends / previous) * friends, 5),
                                 friends)
        if selectivity_mod is None or node % selectivity_mod == 0:
            result[node] = friends
    return result


def stored_procedure_script(iterations: int = 5,
                            selectivity_mod: int | None = 100) -> list[str]:
    """Multi-statement FF for the §VII-E comparison."""
    statements = [
        "CREATE TABLE __ff_intermediate "
        "(node int, friends float, friendsprev float)",
        "CREATE TABLE __ff_result "
        "(node int, friends float, friendsprev float)",
        """INSERT INTO __ff_result
             SELECT src AS node, count(dst) AS friends,
                    ceiling(count(dst) * (1.0-(src%10)/100.0))
             FROM edges GROUP BY src""",
    ]
    iteration_body = [
        "DELETE FROM __ff_intermediate",
        """INSERT INTO __ff_intermediate
             SELECT node,
                    round(cast((friends / friendsprev)
                        * friends AS numeric), 5),
                    friends
             FROM __ff_result""",
        """UPDATE __ff_result
              SET friends = i.friends, friendsprev = i.friendsprev
             FROM __ff_intermediate AS i
            WHERE __ff_result.node = i.node""",
    ]
    for _ in range(iterations):
        statements.extend(iteration_body)
    statements.append("DROP TABLE __ff_intermediate")
    return statements
