"""The paper's evaluation queries: PR, PR-VS, SSSP, SSSP-VS and FF."""

from . import components, friends, pagerank, sssp
from .components import (
    component_count,
    components_query,
    reference_components,
)
from .friends import ff_query, reference_ff
from .pagerank import pagerank_query, reference_pagerank
from .sssp import INFINITY, reference_sssp, sssp_query, true_shortest_paths

__all__ = [
    "components",
    "friends",
    "pagerank",
    "sssp",
    "component_count",
    "components_query",
    "reference_components",
    "ff_query",
    "reference_ff",
    "pagerank_query",
    "reference_pagerank",
    "INFINITY",
    "reference_sssp",
    "sssp_query",
    "true_shortest_paths",
]
