"""The PR and PR-VS queries (paper Fig. 2 and §V-A) plus a reference
implementation used as a correctness oracle.

The paper's PR is the delta-accumulative formulation of [19] (Maiter):

    rank_{i+1}(v)  = rank_i(v) + delta_i(v)
    delta_{i+1}(v) = 0.85 * Σ_{(u,v) ∈ E} delta_i(u) * weight(u, v)

with rank_0 = 0 and delta_0 = 0.15.  With weight(u,v) = 1/outdegree(u)
this converges to the unnormalized PageRank (per-node score scaled by n
relative to the textbook 1/n-normalized variant).

Fidelity note: as written in Fig. 2 the query leaves ``delta`` NULL for
nodes with no incoming edges (SUM over an empty LEFT JOIN group), which
then poisons ``rank``.  The synthetic graphs guarantee in-degree ≥ 1 so
the faithful text is exact on them; ``coalesced=True`` produces the
NULL-safe variant for arbitrary graphs.
"""

from __future__ import annotations

from typing import Mapping

DAMPING = 0.85
BASE_DELTA = 0.15


def pagerank_query(iterations: int = 10, coalesced: bool = False,
                   with_vertex_status: bool = False,
                   final_where: str | None = None) -> str:
    """The iterative-CTE PageRank query.

    ``with_vertex_status`` adds the §V-A join with ``vertexStatus``
    (the PR-VS query); ``final_where`` adds a predicate to Qf.
    """
    delta_expr = "0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)"
    if coalesced:
        delta_expr = f"COALESCE({delta_expr}, 0.0)"

    status_join = ""
    status_where = ""
    if with_vertex_status:
        status_join = (
            "\n     JOIN vertexStatus AS avail_pr"
            "\n       ON avail_pr.node = IncomingEdges.dst")
        status_where = "\n   WHERE avail_pr.status != 0"

    where_clause = f" WHERE {final_where}" if final_where else ""

    return f"""
WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, {BASE_DELTA}
      FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
  ITERATE
   SELECT PageRank.node,
     PageRank.rank + PageRank.delta,
     {delta_expr}
   FROM PageRank
     LEFT JOIN edges AS IncomingEdges
       ON PageRank.node = IncomingEdges.dst
     LEFT JOIN PageRank AS IncomingRank
       ON IncomingRank.node = IncomingEdges.src{status_join}{status_where}
   GROUP BY PageRank.node, PageRank.rank + PageRank.delta
  UNTIL {iterations} ITERATIONS )
SELECT Node, Rank FROM PageRank{where_clause}
"""


def reference_pagerank(edges: list[tuple[int, int, float]],
                       iterations: int = 10,
                       available: Mapping[int, bool] | None = None
                       ) -> dict[int, float]:
    """Direct evaluation of the paper's recurrence (the oracle).

    ``available`` restricts the update to available nodes (PR-VS):
    unavailable nodes keep their initial state, and — matching the SQL,
    where the working table only contains available nodes — their deltas
    still propagate to neighbours.
    """
    nodes = sorted({e[0] for e in edges} | {e[1] for e in edges})
    incoming: dict[int, list[tuple[int, float]]] = {v: [] for v in nodes}
    for src, dst, weight in edges:
        incoming[dst].append((src, weight))

    rank = {v: 0.0 for v in nodes}
    delta = {v: BASE_DELTA for v in nodes}
    for _ in range(iterations):
        new_rank = {}
        new_delta = {}
        for v in nodes:
            if available is not None and not available.get(v, False):
                continue
            new_rank[v] = rank[v] + delta[v]
            new_delta[v] = DAMPING * sum(
                delta[u] * w for u, w in incoming[v])
        rank.update(new_rank)
        delta.update(new_delta)
    return rank


def stored_procedure_script(iterations: int = 10,
                            with_vertex_status: bool = False) -> list[str]:
    """The equivalent multi-statement implementation (§VII-E).

    One statement list mirroring Fig. 1: create working tables, run the
    non-iterative insert, then per iteration a DELETE + INSERT + UPDATE.
    The engine executes these one at a time, exactly how it treats a
    stored procedure body.
    """
    status_join = ""
    status_where = ""
    if with_vertex_status:
        status_join = ("\n   JOIN vertexStatus AS avail_pr"
                       "\n     ON avail_pr.node = IncomingEdges.dst")
        status_where = "\n   AND avail_pr.status != 0"

    statements = [
        "CREATE TABLE __pr_intermediate (node int, rank float, delta float)",
        "CREATE TABLE __pr_result (node int, rank float, delta float)",
        """INSERT INTO __pr_result
             SELECT src, 0, 0.15
             FROM (SELECT src FROM edges UNION SELECT dst FROM edges)""",
    ]
    iteration_body = [
        "DELETE FROM __pr_intermediate",
        f"""INSERT INTO __pr_intermediate
             SELECT PageRank.node,
                    PageRank.rank + PageRank.delta,
                    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
             FROM __pr_result AS PageRank
              LEFT JOIN edges AS IncomingEdges
                ON PageRank.node = IncomingEdges.dst
              LEFT JOIN __pr_result AS IncomingRank
                ON IncomingRank.node = IncomingEdges.src{status_join}
             WHERE TRUE{status_where}
             GROUP BY PageRank.node, PageRank.rank + PageRank.delta""",
        """UPDATE __pr_result
              SET rank = i.rank, delta = i.delta
             FROM __pr_intermediate AS i
            WHERE __pr_result.node = i.node""",
    ]
    for _ in range(iterations):
        statements.extend(iteration_body)
    statements.append("DROP TABLE __pr_intermediate")
    return statements
