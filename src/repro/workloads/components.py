"""Connected components via min-label propagation — a classic iterative
workload (cf. the paper's related-work graph systems) that exercises the
DELTA termination condition: labels are monotone non-increasing, so
``UNTIL DELTA = 0`` detects the fixed point and the query stops itself.
"""

from __future__ import annotations


def components_query(max_iterations: int | None = None) -> str:
    """Weakly connected components of the ``edges`` graph.

    Every node starts labelled with its own id; each iteration lowers the
    label to the minimum among itself and its (undirected) neighbours.
    At the fixed point every node carries its component's smallest id.

    ``max_iterations`` switches to metadata termination (for benchmarks);
    the default is convergence via ``UNTIL DELTA = 0``.
    """
    until = ("DELTA = 0" if max_iterations is None
             else f"{max_iterations} ITERATIONS")
    return f"""
WITH ITERATIVE cc (node, label) AS (
  SELECT n, n FROM (SELECT src AS n FROM edges
                    UNION SELECT dst FROM edges)
  ITERATE
  SELECT cc.node,
         LEAST(cc.label, COALESCE(MIN(nbr.label), cc.label))
  FROM cc
   LEFT JOIN (SELECT src AS a, dst AS b FROM edges
              UNION SELECT dst, src FROM edges) e
     ON cc.node = e.a
   LEFT JOIN cc AS nbr ON nbr.node = e.b
  GROUP BY cc.node, cc.label
  UNTIL {until}
)
SELECT node, label FROM cc
"""


def reference_components(edges: list[tuple[int, int, float]]
                         ) -> dict[int, int]:
    """Oracle: each node mapped to the smallest node id in its weakly
    connected component (via networkx)."""
    import networkx as nx

    graph = nx.Graph()
    nodes = {e[0] for e in edges} | {e[1] for e in edges}
    graph.add_nodes_from(nodes)
    graph.add_edges_from((s, d) for s, d, _ in edges)
    labels: dict[int, int] = {}
    for component in nx.connected_components(graph):
        root = min(component)
        for node in component:
            labels[node] = root
    return labels


def component_count(labels: dict[int, int]) -> int:
    return len(set(labels.values()))
