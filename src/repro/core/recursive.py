"""ANSI recursive CTEs as a fixed-point step program.

Included for two reasons: the engine should stay a complete SQL substrate,
and the paper's motivation (§I–II) hinges on the ANSI restrictions —
aggregates are *not allowed* in the recursive arm, termination is implied
by the fixed point, and rows can only be appended.  This module enforces
those restrictions (raising :class:`RecursionNotSupportedError`) so tests
can demonstrate exactly why PageRank cannot be a recursive query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import RecursionNotSupportedError
from ..plan import CteBinding, build_statement, rename_outputs
from ..plan.program import (
    InitLoopStep,
    LoopSpec,
    LoopStep,
    MaterializeStep,
    RecursiveMergeStep,
)
from ..rewrite import optimize_plan
from ..sql import ast
from ..types import SqlType, common_type

if TYPE_CHECKING:  # pragma: no cover
    from .rewrite import CompilerState


def emit_recursive_cte(cte: ast.CommonTableExpr,
                       state: "CompilerState") -> None:
    """Append the fixed-point program for one recursive CTE."""
    base, recursive, distinct = _split_arms(cte)
    _check_restrictions(cte, recursive)

    context = state.context
    cte_name = cte.name.lower()
    suffix = context.fresh_name("rec").lstrip("_")
    cte_result = f"__cte_{cte_name}_{suffix}"
    working = f"__work_{cte_name}_{suffix}"
    candidate = f"__cand_{cte_name}_{suffix}"

    base_plan = build_statement(base, context.child())
    columns = [c.lower() for c in (cte.columns or base_plan.field_names())]
    if len(columns) != len(base_plan.fields):
        raise RecursionNotSupportedError(
            f"recursive CTE {cte.name!r} declares {len(columns)} columns "
            f"but its base produces {len(base_plan.fields)}")

    types = [SqlType.FLOAT if f.sql_type is SqlType.NULL else f.sql_type
             for f in base_plan.fields]
    # In the recursive arm the CTE reference denotes the *working table*
    # (the rows produced by the previous step), per the SQL standard.
    step_plan = None
    for _ in range(4):
        step_context = context.child()
        step_context.cte_bindings[cte_name] = CteBinding(
            working, tuple(zip(columns, types)))
        step_plan = build_statement(recursive, step_context)
        if len(step_plan.fields) != len(columns):
            raise RecursionNotSupportedError(
                f"the recursive arm of {cte.name!r} produces "
                f"{len(step_plan.fields)} columns, expected {len(columns)}")
        unified = [common_type(t, f.sql_type)
                   for t, f in zip(types, step_plan.fields)]
        unified = [SqlType.FLOAT if t is SqlType.NULL else t
                   for t in unified]
        if unified == types:
            break
        types = unified
    assert step_plan is not None

    base_plan = optimize_plan(rename_outputs(base_plan, columns, cte_name),
                              state.options, state.estimator, state.tracer,
                              context.catalog)
    step_plan = optimize_plan(step_plan, state.options, state.estimator,
                              state.tracer, context.catalog)

    loop_id = next(state.loop_counter)
    spec = LoopSpec(loop_id=loop_id, termination=None,
                    cte_result=cte_result, cte_name=cte_name,
                    columns=columns, until_empty=working)
    state.loops[loop_id] = spec

    steps = state.steps
    steps.append(MaterializeStep(
        cte_result, base_plan, columns,
        comment=f"base of recursive {cte.name}"))
    # Seed the working table: under UNION the base rows are deduplicated
    # against themselves by the merge step of the first iteration; seeding
    # with the same plan keeps the program uniform.
    steps.append(MaterializeStep(
        working, base_plan, columns,
        comment=f"seed working table of {cte.name}"))
    steps.append(InitLoopStep(spec))

    loop_start = len(steps)
    steps.append(MaterializeStep(
        candidate, step_plan, columns,
        comment=f"recursive step of {cte.name}"))
    steps.append(RecursiveMergeStep(cte_result, candidate, working,
                                    distinct))
    steps.append(LoopStep(loop_id, loop_start))

    state.temp_results.extend([cte_result, working, candidate])
    context.cte_bindings[cte_name] = CteBinding(
        cte_result, tuple(zip(columns, types)))


def _split_arms(cte: ast.CommonTableExpr):
    """A recursive CTE body must be ``base UNION [ALL] recursive``."""
    body = cte.query
    if not isinstance(body, ast.SetOp):
        raise RecursionNotSupportedError(
            f"recursive CTE {cte.name!r} must be 'base UNION [ALL] "
            "recursive-step'")
    if _references_cte(body.left, cte.name):
        raise RecursionNotSupportedError(
            f"the first UNION arm of recursive CTE {cte.name!r} must not "
            "reference the CTE")
    if not _references_cte(body.right, cte.name):
        raise RecursionNotSupportedError(
            f"the second UNION arm of recursive CTE {cte.name!r} must "
            "reference the CTE")
    distinct = body.kind is ast.SetOpKind.UNION
    return body.left, body.right, distinct


def _check_restrictions(cte: ast.CommonTableExpr,
                        recursive: ast.SelectLike) -> None:
    """Enforce the ANSI fixed-point restrictions the paper motivates."""
    if isinstance(recursive, ast.SetOp):
        raise RecursionNotSupportedError(
            "nested set operations in the recursive arm are not supported")
    if recursive.group_by or recursive.having is not None:
        raise RecursionNotSupportedError(
            "GROUP BY is not allowed in the recursive arm of a recursive "
            "CTE (ANSI fixed-point semantics); use WITH ITERATIVE instead")
    for item in recursive.items:
        if ast.contains_aggregate(item.expr):
            raise RecursionNotSupportedError(
                "aggregate functions are not allowed in the recursive arm "
                "of a recursive CTE (ANSI fixed-point semantics); use "
                "WITH ITERATIVE instead")
    if recursive.distinct:
        raise RecursionNotSupportedError(
            "DISTINCT is not allowed in the recursive arm")
    if recursive.limit is not None or recursive.offset is not None:
        raise RecursionNotSupportedError(
            "LIMIT/OFFSET is not allowed in the recursive arm")


def _references_cte(query: ast.SelectLike, cte_name: str) -> bool:
    from ..rewrite.pushdown import count_cte_references
    return count_cte_references(query, cte_name) > 0
