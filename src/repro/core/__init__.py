"""The paper's contribution: iterative CTEs as a functional rewrite.

* :mod:`repro.core.rewrite` — Algorithm 1: iterative CTE → step program.
* :mod:`repro.core.recursive` — ANSI recursive CTEs (fixed point), with
  the aggregate restriction the paper motivates.
The loop operator's termination evaluation and the program executor
moved to :mod:`repro.runtime` (the unified loop runtime);
:mod:`repro.core.loop` and :mod:`repro.core.runner` re-export them for
compatibility.
"""

from .loop import LoopState, count_changed_rows, should_continue
from .rewrite import compile_statement
from .runner import ProgramRunner, run_program

__all__ = [
    "LoopState",
    "count_changed_rows",
    "should_continue",
    "compile_statement",
    "ProgramRunner",
    "run_program",
]
