"""The paper's contribution: iterative CTEs as a functional rewrite.

* :mod:`repro.core.rewrite` — Algorithm 1: iterative CTE → step program.
* :mod:`repro.core.recursive` — ANSI recursive CTEs (fixed point), with
  the aggregate restriction the paper motivates.
* :mod:`repro.core.loop` — the loop operator's termination evaluation.
* :mod:`repro.core.runner` — the program executor (rename/loop included).
"""

from .loop import LoopState, count_changed_rows, should_continue
from .rewrite import compile_statement
from .runner import ProgramRunner, run_program

__all__ = [
    "LoopState",
    "count_changed_rows",
    "should_continue",
    "compile_statement",
    "ProgramRunner",
    "run_program",
]
