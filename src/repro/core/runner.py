"""Compatibility shim: the program executor moved to
:mod:`repro.runtime` — the step interpreter lives in
:mod:`repro.runtime.interpreter`, the step handlers in
:mod:`repro.runtime.handlers`, and loop control in
:mod:`repro.runtime.loop_engine`."""

from ..runtime.handlers.delta import _expand_ranges  # noqa: F401
from ..runtime.handlers.merge import _merge_rescan  # noqa: F401
from ..runtime.interpreter import (  # noqa: F401
    ProgramRunner,
    StepProfile,
    run_program,
)
from ..runtime.strategies import DeltaLoopRuntime as _DeltaRuntime  # noqa: F401

__all__ = ["ProgramRunner", "StepProfile", "run_program"]
