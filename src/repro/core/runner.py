"""Program executor: runs step programs with a program counter.

This is the engine-side half of the paper's execution-engine changes
(§VI): materialize steps run ordinary plans; the *rename* step updates the
intermediate-result lookup table; the *loop* step evaluates the
termination condition and conditionally jumps backwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..errors import DuplicateKeyError, ExecutionError, IterationLimitError
from ..execution import ExecutionContext, execute_to_table
from ..execution.kernels import factorize
from ..obs.telemetry import (
    IterationRecord,
    LoopTelemetry,
    render_iteration_table,
)
from ..sql import ast
from ..plan.program import (
    CopyStep,
    CountUpdatesStep,
    DeltaApplyStep,
    DeltaCaptureStep,
    DeltaGateStep,
    DeltaPartitionStep,
    DeltaSpec,
    DropStep,
    DuplicateCheckStep,
    IncrementLoopStep,
    InitLoopStep,
    LoopStep,
    MaterializeStep,
    Program,
    RecursiveMergeStep,
    RenameStep,
    ReturnStep,
    SnapshotStep,
    Step,
)
from ..storage import SegmentedTable, Table
from .loop import LoopState, count_changed_rows, should_continue


class _DeltaRuntime:
    """Mutable per-loop state for the semi-naive delta path.

    Created by the first :class:`DeltaGateStep` execution, populated by
    :class:`DeltaCaptureStep` after a full iteration, consumed and updated
    by the partition/apply steps on every delta iteration.
    """

    __slots__ = ("spec", "active", "disabled", "schema", "columns",
                 "key_sorted", "key_positions", "in_working",
                 "frontier_keys", "last_frontier", "pending_positions",
                 "link_indexes")

    def __init__(self, spec: DeltaSpec):
        self.spec = spec
        # Delta state captured and valid: the gate may take the delta path.
        self.active = False
        # Permanently off for this run (key validation failed).
        self.disabled = False
        self.schema = None
        # Column objects of the current CTE table (shared, immutable).
        self.columns: list = []
        # Sorted comparable key values + the row position of each.
        self.key_sorted = None
        self.key_positions = None
        # Merge path only: per-row "key was in last iteration's working
        # table" flags, which drive the merge join's row ordering.
        self.in_working = None
        # Comparable key values changed by the last iteration.
        self.frontier_keys = None
        self.last_frontier = 0
        # Row positions gathered by the pending partition step.
        self.pending_positions = None
        # (table, src, dst) -> (sorted src values, dst values in that
        # order) for frontier expansion through base tables.
        self.link_indexes: dict = {}


@dataclass
class StepProfile:
    """Accumulated runtime of one program step (EXPLAIN ANALYZE)."""

    executions: int = 0
    rows: int = 0
    seconds: float = 0.0


class ProgramRunner:
    """Executes one program against an execution context.

    Instrumentation (per-step profiles, the stats snapshot backing the
    cache report, and per-iteration loop telemetry) is reset explicitly
    at the start of every :meth:`run` call, so a runner reused for
    back-to-back runs — or an EXPLAIN ANALYZE issued after
    ``ExecutionStats.reset()`` — reports exactly one run, never a
    double-counted accumulation.
    """

    def __init__(self, program: Program, ctx: ExecutionContext,
                 instrument: bool = False):
        self._program = program
        self._ctx = ctx
        self._loop_states: dict[int, LoopState] = {}
        self._result: Optional[Table] = None
        self._instrument = instrument
        self.profiles: dict[int, StepProfile] = {}
        # Per-loop iteration records (repro.obs), keyed by loop id.
        self.loop_telemetry: dict[int, LoopTelemetry] = {}
        # Incremental UNION DISTINCT state, one per recursive result name,
        # carried across the iterations of this program run.
        self._merge_indexes: dict[str, tuple[tuple, object]] = {}
        # Semi-naive delta evaluation state, one per delta-rewritten loop.
        self._delta_runtimes: dict[int, _DeltaRuntime] = {}
        self._stats_at_start: Optional[dict[str, int]] = None
        # loop_id -> (perf_counter mark, stats snapshot) at iteration start.
        self._iter_marks: dict[int, tuple[float, dict[str, int]]] = {}
        # loop_id -> [loop span, current iteration span] while tracing.
        self._loop_spans: dict[int, list] = {}

    def _begin_run(self, observe: bool) -> None:
        """Reset all instrumentation state for exactly one run."""
        self.profiles = {}
        self.loop_telemetry = {}
        self._iter_marks = {}
        self._loop_spans = {}
        self._delta_runtimes = {}
        self._result = None
        self._stats_at_start = (self._ctx.stats.snapshot() if observe
                                else None)

    def run(self) -> Optional[Table]:
        ctx = self._ctx
        tracer = ctx.tracer
        observe = self._instrument or tracer.enabled
        self._begin_run(observe)
        pc = 0
        safety_budget = ctx.options.max_iterations
        steps = self._program.steps
        try:
            while pc < len(steps):
                if observe:
                    jump = self._run_observed_step(pc, steps[pc], tracer)
                else:
                    jump = self._run_step(steps[pc])
                if jump is not None:
                    if jump <= pc:
                        # Only backward jumps (new iterations) consume the
                        # budget; the delta gate's forward jumps within one
                        # iteration do not.
                        safety_budget -= 1
                        if safety_budget <= 0:
                            raise IterationLimitError(
                                "iterative query exceeded max_iterations "
                                f"({ctx.options.max_iterations}); raise "
                                "the session option if this is "
                                "intentional")
                    pc = jump
                else:
                    pc += 1
        finally:
            # Close spans a raising step left open so the trace tree
            # stays well formed.
            for spans in list(self._loop_spans.values()):
                tracer.end(spans[1])
                tracer.end(spans[0])
            self._loop_spans = {}
        return self._result

    def _run_observed_step(self, pc: int, step: Step,
                           tracer) -> Optional[int]:
        """One step with profiling, span emission, and loop telemetry."""
        started = time.perf_counter()
        before = self._ctx.stats.rows_materialized
        span = None
        if tracer.enabled:
            span = tracer.start(type(step).__name__, kind="step",
                                index=pc + 1, detail=step.describe())
        try:
            jump = self._run_step(step)
        finally:
            if span is not None:
                tracer.end(span)
        profile = self.profiles.setdefault(pc, StepProfile())
        profile.executions += 1
        profile.seconds += time.perf_counter() - started
        profile.rows += self._ctx.stats.rows_materialized - before
        if isinstance(step, InitLoopStep):
            self._begin_loop(step.spec, tracer)
        elif isinstance(step, LoopStep):
            self._finish_iteration(step.loop_id, jump is not None, tracer)
        return jump

    # -- loop telemetry ------------------------------------------------------

    def _begin_loop(self, spec, tracer) -> None:
        kind = "fixpoint" if spec.until_empty is not None else "iterative"
        self.loop_telemetry[spec.loop_id] = LoopTelemetry(
            spec.loop_id, spec.cte_name, kind)
        self._iter_marks[spec.loop_id] = (time.perf_counter(),
                                          self._ctx.stats.snapshot())
        if tracer.enabled:
            loop_span = tracer.start(f"loop:{spec.cte_name}", kind="loop",
                                     loop_id=spec.loop_id, loop_kind=kind)
            iter_span = tracer.start("iteration", kind="iteration",
                                     index=1)
            self._loop_spans[spec.loop_id] = [loop_span, iter_span]

    def _registry_rows(self, name: Optional[str]) -> int:
        registry = self._ctx.registry
        if name is None or not registry.exists(name):
            return 0
        return registry.fetch(name).num_rows

    def _finish_iteration(self, loop_id: int, continuing: bool,
                          tracer) -> None:
        telemetry = self.loop_telemetry.get(loop_id)
        if telemetry is None:
            return
        now = time.perf_counter()
        snapshot = self._ctx.stats.snapshot()
        mark_time, mark_stats = self._iter_marks[loop_id]
        delta = {key: snapshot[key] - mark_stats.get(key, 0)
                 for key in snapshot}
        spec = self._program.loops[loop_id]
        state = self._loop_states.get(loop_id)
        total_rows = self._registry_rows(spec.cte_result)
        if spec.until_empty is not None:
            # Fixpoint loop: the working table holds the new rows.
            working_rows = self._registry_rows(spec.until_empty)
            delta_rows = working_rows
        else:
            working_rows = total_rows
            counts_updates = (spec.termination is not None
                              and spec.termination.kind in (
                                  ast.TerminationKind.UPDATES,
                                  ast.TerminationKind.DELTA))
            runtime = self._delta_runtimes.get(loop_id)
            if runtime is not None and runtime.active \
                    and not runtime.disabled:
                # Delta-mode loop: report the true changed-row frontier,
                # whatever the termination condition counts.
                delta_rows = runtime.last_frontier
            elif counts_updates and state is not None:
                delta_rows = state.last_delta
            else:
                # Full-refresh loop (e.g. PageRank): every row rewritten.
                delta_rows = total_rows
        record = IterationRecord(
            index=telemetry.iterations + 1,
            seconds=now - mark_time,
            delta_rows=delta_rows,
            working_rows=working_rows,
            total_rows=total_rows,
            kernel_cache_hits=(delta["kernel_cache_hits"]
                               + delta["join_index_hits"]
                               + delta["merge_index_hits"]),
            kernel_cache_misses=(delta["kernel_cache_misses"]
                                 + delta["join_index_misses"]
                                 + delta["merge_index_rebuilds"]),
            rows_moved=delta["rows_moved"],
            bytes_moved=delta["bytes_moved"])
        telemetry.records.append(record)
        self._iter_marks[loop_id] = (now, snapshot)
        spans = self._loop_spans.get(loop_id)
        if spans is not None:
            loop_span, iter_span = spans
            iter_span.set(**record.to_dict())
            tracer.end(iter_span)
            if continuing:
                spans[1] = tracer.start("iteration", kind="iteration",
                                        index=telemetry.iterations + 1)
            else:
                loop_span.set(iterations=telemetry.iterations)
                tracer.end(loop_span)
                del self._loop_spans[loop_id]

    # -- reporting -----------------------------------------------------------

    def report(self) -> str:
        """Render the program with measured per-step counters, the
        kernel-cache counter deltas, and a per-iteration breakdown for
        every loop the run executed."""
        lines = []
        for index, step in enumerate(self._program.steps):
            profile = self.profiles.get(index, StepProfile())
            timing = (f"(executions={profile.executions}, "
                      f"rows={profile.rows}, "
                      f"time={profile.seconds * 1000:.2f}ms)")
            lines.append(f"{index + 1:>3}  {step.describe()}  {timing}")
            if isinstance(step, LoopStep):
                spec = self._program.loops[step.loop_id]
                lines.append(f"     loop {spec.annotation()}")
        lines.extend(self._cache_report())
        for loop_id in sorted(self.loop_telemetry):
            lines.extend(render_iteration_table(
                self.loop_telemetry[loop_id]))
        return "\n".join(lines)

    def _cache_report(self) -> list[str]:
        """Kernel-cache counter deltas for this run (EXPLAIN ANALYZE)."""
        if self._stats_at_start is None:
            return []
        delta = self._ctx.stats.delta_since(self._stats_at_start)
        state = ("on" if self._ctx.options.enable_kernel_cache else "off")
        return [
            f"kernel cache ({state}): "
            f"hits={delta['kernel_cache_hits']}, "
            f"misses={delta['kernel_cache_misses']}, "
            f"invalidations={delta['kernel_cache_invalidations']}",
            f"join index: hits={delta['join_index_hits']}, "
            f"misses={delta['join_index_misses']}, "
            f"overflows={delta['join_index_overflows']}",
            f"merge index: hits={delta['merge_index_hits']}, "
            f"rebuilds={delta['merge_index_rebuilds']}, "
            f"overflows={delta['merge_index_overflows']}, "
            f"repacks={delta['merge_index_repacks']}",
        ]

    def loop_iteration_counts(self) -> dict[str, int]:
        """Measured iteration count per CTE name from the last run.

        Feeds the cost model's measured-iterations registry (see
        :meth:`repro.stats.StatisticsCatalog.record_loop_iterations`)."""
        counts: dict[str, int] = {}
        for loop_id, state in self._loop_states.items():
            spec = self._program.loops.get(loop_id)
            if spec is not None and state.iterations:
                counts[spec.cte_name] = state.iterations
        return counts

    # -- step dispatch -------------------------------------------------------

    def _run_step(self, step: Step) -> Optional[int]:
        ctx = self._ctx

        if isinstance(step, MaterializeStep):
            table = execute_to_table(step.plan, ctx, step.column_names)
            ctx.registry.store(step.result_name, table)
            return None

        if isinstance(step, RenameStep):
            ctx.registry.rename(step.source, step.target)
            ctx.stats.renames += 1
            return None

        if isinstance(step, CopyStep):
            source = ctx.registry.fetch(step.source)
            # A physical copy: every column buffer is duplicated, so the
            # cost of moving the data is actually paid (the Fig. 8
            # baseline) — vectorized, as a real engine's block copy is.
            from ..storage import Column
            copied_columns = [
                Column(c.sql_type, c.data.copy(), c.mask.copy())
                for c in source.columns]
            copied = Table(source.schema, copied_columns)
            ctx.registry.store(step.target, copied)
            ctx.registry.drop(step.source)
            ctx.stats.rows_moved += copied.num_rows
            ctx.stats.bytes_moved += copied.nbytes()
            return None

        if isinstance(step, SnapshotStep):
            snapshot = ctx.registry.fetch(step.source).copy()
            ctx.registry.store(step.target, snapshot)
            return None

        if isinstance(step, DuplicateCheckStep):
            table = ctx.registry.fetch(step.result_name)
            key = table.column(step.key_column)
            codes, cardinality = factorize(key, nulls_match=True,
                                           cache=ctx.active_kernel_cache())
            if len(codes) and cardinality < len(codes):
                raise DuplicateKeyError(
                    "the iterative part produced duplicate values for key "
                    f"{step.key_column!r}; add an aggregation to resolve "
                    "them (paper §II)")
            return None

        if isinstance(step, CountUpdatesStep):
            previous = ctx.registry.fetch(step.previous)
            current = ctx.registry.fetch(step.current)
            key_index = current.schema.index_of(step.key_column)
            changed = count_changed_rows(previous, current, key_index,
                                         ctx.active_kernel_cache())
            self._loop_states[step.loop_id].record_updates(changed)
            return None

        if isinstance(step, InitLoopStep):
            self._loop_states[step.spec.loop_id] = LoopState(step.spec)
            return None

        if isinstance(step, IncrementLoopStep):
            self._loop_states[step.loop_id].iterations += 1
            ctx.stats.iterations += 1
            return None

        if isinstance(step, LoopStep):
            state = self._loop_states.get(step.loop_id)
            if state is None:
                raise ExecutionError(
                    "loop step executed before initialization")
            if should_continue(state, ctx):
                return step.jump_to
            return None

        if isinstance(step, RecursiveMergeStep):
            self._run_recursive_merge(step)
            return None

        if isinstance(step, DeltaGateStep):
            return self._run_delta_gate(step)

        if isinstance(step, DeltaPartitionStep):
            self._run_delta_partition(step.spec)
            return None

        if isinstance(step, DeltaApplyStep):
            return self._run_delta_apply(step)

        if isinstance(step, DeltaCaptureStep):
            self._run_delta_capture(step)
            return None

        if isinstance(step, ReturnStep):
            self._result = execute_to_table(step.plan, ctx)
            return None

        if isinstance(step, DropStep):
            for name in step.names:
                ctx.registry.drop(name)
            return None

        raise ExecutionError(f"unknown step type: {type(step).__name__}")

    # -- semi-naive delta evaluation ----------------------------------------

    def _delta_counts_updates(self, loop_id: int) -> bool:
        spec = self._program.loops[loop_id]
        return spec.termination is not None and spec.termination.kind in (
            ast.TerminationKind.UPDATES, ast.TerminationKind.DELTA)

    def _run_delta_gate(self, step: DeltaGateStep) -> Optional[int]:
        runtime = self._delta_runtimes.get(step.spec.loop_id)
        if runtime is None:
            runtime = _DeltaRuntime(step.spec)
            self._delta_runtimes[step.spec.loop_id] = runtime
        if runtime.disabled or not runtime.active:
            return step.jump_full
        if runtime.frontier_keys is None or not len(runtime.frontier_keys):
            # Empty frontier: no input of any key changed last iteration,
            # so no output can change this iteration (or ever after) —
            # this iteration costs O(1).
            runtime.last_frontier = 0
            if self._delta_counts_updates(step.spec.loop_id):
                self._loop_states[step.spec.loop_id].record_updates(0)
            self._ctx.stats.delta_iterations += 1
            return step.jump_done
        return None

    def _key_positions_of(self, runtime: _DeltaRuntime, keys,
                          strict: bool):
        """Row positions of comparable ``keys`` in the CTE table."""
        import numpy as np

        if not len(keys):
            return np.empty(0, dtype=np.int64)
        haystack = runtime.key_sorted
        positions = np.searchsorted(haystack, keys)
        inside = positions < len(haystack)
        clipped = np.where(inside, positions, 0)
        found = inside & (haystack[clipped] == keys)
        if strict and not found.all():
            raise ExecutionError(
                "delta evaluation lost track of a CTE key; this is a bug "
                "in the delta safety analysis")
        return runtime.key_positions[clipped[found]]

    def _expand_influence(self, runtime: _DeltaRuntime,
                          link: tuple[str, str, str], frontier):
        """Keys influenced by ``frontier`` through one base-table link."""
        import numpy as np

        from ..execution.kernel_cache import _comparable_values

        entry = runtime.link_indexes.get(link)
        if entry is None:
            table_name, src_name, dst_name = link
            base = self._ctx.catalog.get(table_name)
            src = base.column(src_name)
            dst = base.column(dst_name)
            # A NULL on either side of an equi join never matches.
            valid = ~(src.mask | dst.mask)
            src_values = _comparable_values(src.data[valid])
            dst_values = _comparable_values(dst.data[valid])
            order = np.argsort(src_values, kind="stable")
            entry = (src_values[order], dst_values[order])
            runtime.link_indexes[link] = entry
        src_sorted, dst_by_src = entry
        left = np.searchsorted(src_sorted, frontier, side="left")
        right = np.searchsorted(src_sorted, frontier, side="right")
        return dst_by_src[_expand_ranges(left, right)]

    def _run_delta_partition(self, spec: DeltaSpec) -> None:
        import numpy as np

        ctx = self._ctx
        runtime = self._delta_runtimes[spec.loop_id]
        frontier = runtime.frontier_keys
        # A changed key always influences itself (its own row is
        # recomputed); links add the keys reachable through base tables.
        position_sets = [self._key_positions_of(runtime, frontier,
                                                strict=True)]
        for link in spec.influences:
            influenced = self._expand_influence(runtime, link, frontier)
            position_sets.append(
                self._key_positions_of(runtime, influenced, strict=False))
        positions = np.unique(np.concatenate(position_sets))
        table = ctx.registry.fetch(spec.cte_result)
        partition = table.take(positions)
        ctx.registry.store(spec.partition, partition)
        runtime.pending_positions = positions
        ctx.stats.rows_moved += int(len(positions))
        ctx.stats.bytes_moved += partition.nbytes()

    def _run_delta_apply(self, step: DeltaApplyStep) -> int:
        import numpy as np

        from ..execution.kernel_cache import _comparable_values
        from ..storage import Column

        ctx = self._ctx
        spec = step.spec
        runtime = self._delta_runtimes[spec.loop_id]
        working = ctx.registry.fetch(spec.delta_working)
        w_keys = _comparable_values(working.columns[0].data)
        positions = self._key_positions_of(runtime, w_keys, strict=True)

        changed = np.zeros(working.num_rows, dtype=np.bool_)
        new_columns = list(runtime.columns)
        for i in range(1, len(new_columns)):
            old = runtime.columns[i]
            new_col = working.columns[i]
            if new_col.sql_type is not old.sql_type:
                new_col = new_col.cast(old.sql_type)
            col_changed = old.take(positions).is_distinct_from(new_col)
            changed |= col_changed
            if not col_changed.any():
                # Unchanged column: keep the old object so its version —
                # and any kernel-cache state keyed by it — survives.
                continue
            data = old.data.copy()
            mask = old.mask.copy()
            data[positions] = new_col.data
            mask[positions] = new_col.mask
            new_columns[i] = Column(old.sql_type, data, mask)
        ctx.stats.rows_moved += working.num_rows
        ctx.stats.bytes_moved += working.nbytes()

        runtime.frontier_keys = w_keys[changed]
        runtime.last_frontier = int(changed.sum())

        if spec.merge_by_key:
            # The full body's merge join emits matched (working) rows
            # first, then the rest; replicate that reordering from the
            # membership flags so delta iterations stay bit-identical.
            in_working = runtime.in_working.copy()
            in_working[runtime.pending_positions] = False
            in_working[positions] = True
            perm = np.concatenate([np.flatnonzero(in_working),
                                   np.flatnonzero(~in_working)])
            if not np.array_equal(perm,
                                  np.arange(len(perm), dtype=perm.dtype)):
                new_columns = [c.take(perm) for c in new_columns]
                in_working = in_working[perm]
                self._set_key_index(runtime, new_columns[0])
                ctx.stats.rows_moved += int(len(perm))
            runtime.in_working = in_working

        new_table = Table(runtime.schema, new_columns)
        ctx.registry.store(spec.cte_result, new_table)
        runtime.columns = new_columns
        runtime.pending_positions = None
        if self._delta_counts_updates(spec.loop_id):
            self._loop_states[spec.loop_id].record_updates(
                runtime.last_frontier)
        ctx.stats.delta_iterations += 1
        return step.jump_to

    def _set_key_index(self, runtime: _DeltaRuntime, key_column) -> None:
        import numpy as np

        from ..execution.kernel_cache import _comparable_values

        values = _comparable_values(key_column.data)
        order = np.argsort(values, kind="stable")
        runtime.key_sorted = values[order]
        runtime.key_positions = order.astype(np.int64)

    def _run_delta_capture(self, step: DeltaCaptureStep) -> None:
        import numpy as np

        from ..execution.kernel_cache import _comparable_values

        ctx = self._ctx
        spec = step.spec
        runtime = self._delta_runtimes.get(spec.loop_id)
        if runtime is None:
            runtime = _DeltaRuntime(spec)
            self._delta_runtimes[spec.loop_id] = runtime
        if runtime.disabled:
            return
        table = ctx.registry.fetch(spec.cte_result)
        key_column = table.columns[0]
        if key_column.mask.any():
            # NULL keys cannot be tracked by key; stay on the full path.
            runtime.disabled = True
            runtime.active = False
            return
        values = _comparable_values(key_column.data)
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        if len(sorted_values) > 1 \
                and (sorted_values[1:] == sorted_values[:-1]).any():
            # Duplicate keys break per-key alignment; full path forever.
            runtime.disabled = True
            runtime.active = False
            return
        runtime.schema = table.schema
        runtime.columns = list(table.columns)
        runtime.key_sorted = sorted_values
        runtime.key_positions = order.astype(np.int64)
        previous = ctx.registry.fetch(step.previous)
        changed = self._diff_by_key(table, previous, values)
        runtime.frontier_keys = values[changed]
        runtime.last_frontier = int(changed.sum())
        if spec.merge_by_key:
            working = ctx.registry.fetch(spec.working)
            w_keys = _comparable_values(working.columns[0].data)
            flags = np.zeros(table.num_rows, dtype=np.bool_)
            flags[self._key_positions_of(runtime, w_keys,
                                         strict=False)] = True
            runtime.in_working = flags
        runtime.active = True

    def _diff_by_key(self, current: Table, previous: Table, current_keys):
        """Mask of ``current`` rows whose non-key values differ from the
        row of ``previous`` with the same key (new keys count as
        changed)."""
        import numpy as np

        from ..execution.kernel_cache import _comparable_values

        if previous.num_rows == 0:
            return np.ones(current.num_rows, dtype=np.bool_)
        prev_values = _comparable_values(previous.columns[0].data)
        order = np.argsort(prev_values, kind="stable")
        prev_sorted = prev_values[order]
        positions = np.searchsorted(prev_sorted, current_keys)
        inside = positions < len(prev_sorted)
        clipped = np.where(inside, positions, 0)
        found = inside & (prev_sorted[clipped] == current_keys)
        changed = ~found
        if found.any():
            idx_cur = np.flatnonzero(found)
            idx_prev = order[clipped[found]]
            differs = np.zeros(len(idx_cur), dtype=np.bool_)
            for i in range(1, len(current.columns)):
                cur_col = current.columns[i].take(idx_cur)
                prev_col = previous.columns[i].take(idx_prev)
                differs |= cur_col.is_distinct_from(prev_col)
            changed[idx_cur] = differs
        return changed

    def _run_recursive_merge(self, step: RecursiveMergeStep) -> None:
        """UNION / UNION ALL fixed-point bookkeeping for recursive CTEs."""
        import numpy as np

        ctx = self._ctx
        result = ctx.registry.fetch(step.result)
        candidate = ctx.registry.fetch(step.candidate)
        ctx.stats.merge_steps += 1

        if not step.distinct:
            # UNION ALL: everything is new.
            self._append_segment(step.result, result, candidate)
            ctx.registry.store(step.working, candidate)
            return

        if candidate.num_rows == 0:
            ctx.registry.store(step.working, candidate)
            return

        if not len(result.schema):
            # Zero-column rows are all identical: nothing is ever new.
            new_mask = np.zeros(candidate.num_rows, dtype=np.bool_)
        elif ctx.options.enable_kernel_cache:
            new_mask = self._merge_incremental(step, result, candidate)
        else:
            new_mask = _merge_rescan(result, candidate)
        new_rows = candidate.filter(new_mask)
        self._append_segment(step.result, result, new_rows)
        ctx.registry.store(step.working, new_rows)

    def _append_segment(self, name: str, result: Table,
                        new_rows: Table) -> None:
        """``result ++ delta`` in O(|delta|): append a segment instead of
        copying the accumulated result (read paths consolidate lazily).
        Only the delta is charged as data movement."""
        ctx = self._ctx
        segmented = SegmentedTable.wrap(result)
        segmented.append(new_rows)
        ctx.registry.store(name, segmented)
        ctx.stats.rows_moved += new_rows.num_rows
        ctx.stats.bytes_moved += new_rows.nbytes()

    def _merge_incremental(self, step: RecursiveMergeStep, result: Table,
                           candidate: Table) -> "np.ndarray":
        """Dedup the candidate delta against the persistent seen-row
        index instead of re-encoding ``result ++ candidate``.

        The index lives for the duration of this program run, keyed by
        the result name; it is rebuilt (one O(result) scan) whenever the
        result table changed outside this merge step or the UNION's
        common column types drifted."""
        from ..execution.kernel_cache import IncrementalDistinctIndex
        from ..types import common_type

        ctx = self._ctx
        # Types come from the schemas: reading .columns on a segmented
        # result would force a consolidation every iteration.
        types = tuple(
            common_type(rc.sql_type, cc.sql_type)
            for rc, cc in zip(result.schema.columns,
                              candidate.schema.columns))
        entry = self._merge_indexes.get(step.result)
        index = None
        repacks_before = 0
        if entry is not None:
            entry_types, entry_index = entry
            if entry_index is None and entry_types == types:
                # The index genuinely needs more than 62 id bits; stay on
                # the rescan path rather than rebuild every merge.
                return _merge_rescan(result, candidate)
            if entry_index is not None and entry_types == types \
                    and entry_index.rows_absorbed == result.num_rows:
                index = entry_index
                repacks_before = index.repacks
                ctx.stats.merge_index_hits += 1
        if index is None:
            index = IncrementalDistinctIndex(len(types))
            result_cols = [rc if rc.sql_type is t else rc.cast(t)
                           for rc, t in zip(result.columns, types)]
            if index.absorb(result_cols, result.num_rows) is None:
                self._merge_indexes[step.result] = (types, None)
                ctx.stats.merge_index_overflows += 1
                ctx.stats.merge_index_repacks += index.repacks
                return _merge_rescan(result, candidate)
            self._merge_indexes[step.result] = (types, index)
            ctx.stats.merge_index_rebuilds += 1
        candidate_cols = [cc if cc.sql_type is t else cc.cast(t)
                          for cc, t in zip(candidate.columns, types)]
        new_mask = index.filter_new(candidate_cols, candidate.num_rows)
        ctx.stats.merge_index_repacks += index.repacks - repacks_before
        if new_mask is None:
            # Even a repack cannot fit the per-column id spaces into 62
            # bits, so every later merge of this result full-rescans.
            # Counted (once per transition) for EXPLAIN ANALYZE and the
            # ROADMAP repack-on-overflow trigger.
            self._merge_indexes[step.result] = (types, None)
            ctx.stats.merge_index_overflows += 1
            return _merge_rescan(result, candidate)
        return new_mask


def _expand_ranges(left, right):
    """Concatenate ``arange(left[i], right[i])`` for all i, vectorized."""
    import numpy as np

    counts = (right - left).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cumulative = np.cumsum(counts)
    shift = np.repeat(left - np.concatenate(([0], cumulative[:-1])),
                      counts)
    return np.arange(total, dtype=np.int64) + shift


def _merge_rescan(result: Table, candidate: Table):
    """Cache-off UNION DISTINCT dedup: joint-encode ``result ++
    candidate`` from scratch each iteration, but with sorted-search
    membership instead of the per-row Python set loop this replaces.
    Produces exactly the masks of the incremental path."""
    import numpy as np

    from ..execution.kernels import encode_keys

    joint = [rc.concat(cc) for rc, cc in
             zip(result.columns, candidate.columns)]
    codes = encode_keys(joint, nulls_match=True)
    seen_sorted = np.sort(codes[:result.num_rows])
    cand_codes = codes[result.num_rows:]

    _, first_index = np.unique(cand_codes, return_index=True)
    first_mask = np.zeros(candidate.num_rows, dtype=np.bool_)
    first_mask[first_index] = True
    if len(seen_sorted):
        positions = np.searchsorted(seen_sorted, cand_codes)
        inside = positions < len(seen_sorted)
        clipped = np.where(inside, positions, 0)
        in_seen = inside & (seen_sorted[clipped] == cand_codes)
        return first_mask & ~in_seen
    return first_mask


def run_program(program: Program, ctx: ExecutionContext) -> Optional[Table]:
    """Execute a plan program; returns the ReturnStep's table (if any)."""
    return ProgramRunner(program, ctx).run()
