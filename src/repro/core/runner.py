"""Program executor: runs step programs with a program counter.

This is the engine-side half of the paper's execution-engine changes
(§VI): materialize steps run ordinary plans; the *rename* step updates the
intermediate-result lookup table; the *loop* step evaluates the
termination condition and conditionally jumps backwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..errors import DuplicateKeyError, ExecutionError, IterationLimitError
from ..execution import ExecutionContext, execute_to_table
from ..execution.kernels import factorize
from ..obs.telemetry import (
    IterationRecord,
    LoopTelemetry,
    render_iteration_table,
)
from ..sql import ast
from ..plan.program import (
    CopyStep,
    CountUpdatesStep,
    DropStep,
    DuplicateCheckStep,
    IncrementLoopStep,
    InitLoopStep,
    LoopStep,
    MaterializeStep,
    Program,
    RecursiveMergeStep,
    RenameStep,
    ReturnStep,
    SnapshotStep,
    Step,
)
from ..storage import Table
from .loop import LoopState, count_changed_rows, should_continue


@dataclass
class StepProfile:
    """Accumulated runtime of one program step (EXPLAIN ANALYZE)."""

    executions: int = 0
    rows: int = 0
    seconds: float = 0.0


class ProgramRunner:
    """Executes one program against an execution context.

    Instrumentation (per-step profiles, the stats snapshot backing the
    cache report, and per-iteration loop telemetry) is reset explicitly
    at the start of every :meth:`run` call, so a runner reused for
    back-to-back runs — or an EXPLAIN ANALYZE issued after
    ``ExecutionStats.reset()`` — reports exactly one run, never a
    double-counted accumulation.
    """

    def __init__(self, program: Program, ctx: ExecutionContext,
                 instrument: bool = False):
        self._program = program
        self._ctx = ctx
        self._loop_states: dict[int, LoopState] = {}
        self._result: Optional[Table] = None
        self._instrument = instrument
        self.profiles: dict[int, StepProfile] = {}
        # Per-loop iteration records (repro.obs), keyed by loop id.
        self.loop_telemetry: dict[int, LoopTelemetry] = {}
        # Incremental UNION DISTINCT state, one per recursive result name,
        # carried across the iterations of this program run.
        self._merge_indexes: dict[str, tuple[tuple, object]] = {}
        self._stats_at_start: Optional[dict[str, int]] = None
        # loop_id -> (perf_counter mark, stats snapshot) at iteration start.
        self._iter_marks: dict[int, tuple[float, dict[str, int]]] = {}
        # loop_id -> [loop span, current iteration span] while tracing.
        self._loop_spans: dict[int, list] = {}

    def _begin_run(self, observe: bool) -> None:
        """Reset all instrumentation state for exactly one run."""
        self.profiles = {}
        self.loop_telemetry = {}
        self._iter_marks = {}
        self._loop_spans = {}
        self._result = None
        self._stats_at_start = (self._ctx.stats.snapshot() if observe
                                else None)

    def run(self) -> Optional[Table]:
        ctx = self._ctx
        tracer = ctx.tracer
        observe = self._instrument or tracer.enabled
        self._begin_run(observe)
        pc = 0
        safety_budget = ctx.options.max_iterations
        steps = self._program.steps
        try:
            while pc < len(steps):
                if observe:
                    jump = self._run_observed_step(pc, steps[pc], tracer)
                else:
                    jump = self._run_step(steps[pc])
                if jump is not None:
                    safety_budget -= 1
                    if safety_budget <= 0:
                        raise IterationLimitError(
                            "iterative query exceeded max_iterations "
                            f"({ctx.options.max_iterations}); raise the "
                            "session option if this is intentional")
                    pc = jump
                else:
                    pc += 1
        finally:
            # Close spans a raising step left open so the trace tree
            # stays well formed.
            for spans in list(self._loop_spans.values()):
                tracer.end(spans[1])
                tracer.end(spans[0])
            self._loop_spans = {}
        return self._result

    def _run_observed_step(self, pc: int, step: Step,
                           tracer) -> Optional[int]:
        """One step with profiling, span emission, and loop telemetry."""
        started = time.perf_counter()
        before = self._ctx.stats.rows_materialized
        span = None
        if tracer.enabled:
            span = tracer.start(type(step).__name__, kind="step",
                                index=pc + 1, detail=step.describe())
        try:
            jump = self._run_step(step)
        finally:
            if span is not None:
                tracer.end(span)
        profile = self.profiles.setdefault(pc, StepProfile())
        profile.executions += 1
        profile.seconds += time.perf_counter() - started
        profile.rows += self._ctx.stats.rows_materialized - before
        if isinstance(step, InitLoopStep):
            self._begin_loop(step.spec, tracer)
        elif isinstance(step, LoopStep):
            self._finish_iteration(step.loop_id, jump is not None, tracer)
        return jump

    # -- loop telemetry ------------------------------------------------------

    def _begin_loop(self, spec, tracer) -> None:
        kind = "fixpoint" if spec.until_empty is not None else "iterative"
        self.loop_telemetry[spec.loop_id] = LoopTelemetry(
            spec.loop_id, spec.cte_name, kind)
        self._iter_marks[spec.loop_id] = (time.perf_counter(),
                                          self._ctx.stats.snapshot())
        if tracer.enabled:
            loop_span = tracer.start(f"loop:{spec.cte_name}", kind="loop",
                                     loop_id=spec.loop_id, loop_kind=kind)
            iter_span = tracer.start("iteration", kind="iteration",
                                     index=1)
            self._loop_spans[spec.loop_id] = [loop_span, iter_span]

    def _registry_rows(self, name: Optional[str]) -> int:
        registry = self._ctx.registry
        if name is None or not registry.exists(name):
            return 0
        return registry.fetch(name).num_rows

    def _finish_iteration(self, loop_id: int, continuing: bool,
                          tracer) -> None:
        telemetry = self.loop_telemetry.get(loop_id)
        if telemetry is None:
            return
        now = time.perf_counter()
        snapshot = self._ctx.stats.snapshot()
        mark_time, mark_stats = self._iter_marks[loop_id]
        delta = {key: snapshot[key] - mark_stats.get(key, 0)
                 for key in snapshot}
        spec = self._program.loops[loop_id]
        state = self._loop_states.get(loop_id)
        total_rows = self._registry_rows(spec.cte_result)
        if spec.until_empty is not None:
            # Fixpoint loop: the working table holds the new rows.
            working_rows = self._registry_rows(spec.until_empty)
            delta_rows = working_rows
        else:
            working_rows = total_rows
            counts_updates = (spec.termination is not None
                              and spec.termination.kind in (
                                  ast.TerminationKind.UPDATES,
                                  ast.TerminationKind.DELTA))
            if counts_updates and state is not None:
                delta_rows = state.last_delta
            else:
                # Full-refresh loop (e.g. PageRank): every row rewritten.
                delta_rows = total_rows
        record = IterationRecord(
            index=telemetry.iterations + 1,
            seconds=now - mark_time,
            delta_rows=delta_rows,
            working_rows=working_rows,
            total_rows=total_rows,
            kernel_cache_hits=(delta["kernel_cache_hits"]
                               + delta["join_index_hits"]
                               + delta["merge_index_hits"]),
            kernel_cache_misses=(delta["kernel_cache_misses"]
                                 + delta["join_index_misses"]
                                 + delta["merge_index_rebuilds"]),
            rows_moved=delta["rows_moved"],
            bytes_moved=delta["bytes_moved"])
        telemetry.records.append(record)
        self._iter_marks[loop_id] = (now, snapshot)
        spans = self._loop_spans.get(loop_id)
        if spans is not None:
            loop_span, iter_span = spans
            iter_span.set(**record.to_dict())
            tracer.end(iter_span)
            if continuing:
                spans[1] = tracer.start("iteration", kind="iteration",
                                        index=telemetry.iterations + 1)
            else:
                loop_span.set(iterations=telemetry.iterations)
                tracer.end(loop_span)
                del self._loop_spans[loop_id]

    # -- reporting -----------------------------------------------------------

    def report(self) -> str:
        """Render the program with measured per-step counters, the
        kernel-cache counter deltas, and a per-iteration breakdown for
        every loop the run executed."""
        lines = []
        for index, step in enumerate(self._program.steps):
            profile = self.profiles.get(index, StepProfile())
            timing = (f"(executions={profile.executions}, "
                      f"rows={profile.rows}, "
                      f"time={profile.seconds * 1000:.2f}ms)")
            lines.append(f"{index + 1:>3}  {step.describe()}  {timing}")
            if isinstance(step, LoopStep):
                spec = self._program.loops[step.loop_id]
                lines.append(f"     loop {spec.annotation()}")
        lines.extend(self._cache_report())
        for loop_id in sorted(self.loop_telemetry):
            lines.extend(render_iteration_table(
                self.loop_telemetry[loop_id]))
        return "\n".join(lines)

    def _cache_report(self) -> list[str]:
        """Kernel-cache counter deltas for this run (EXPLAIN ANALYZE)."""
        if self._stats_at_start is None:
            return []
        delta = self._ctx.stats.delta_since(self._stats_at_start)
        state = ("on" if self._ctx.options.enable_kernel_cache else "off")
        return [
            f"kernel cache ({state}): "
            f"hits={delta['kernel_cache_hits']}, "
            f"misses={delta['kernel_cache_misses']}, "
            f"invalidations={delta['kernel_cache_invalidations']}",
            f"join index: hits={delta['join_index_hits']}, "
            f"misses={delta['join_index_misses']}, "
            f"overflows={delta['join_index_overflows']}",
            f"merge index: hits={delta['merge_index_hits']}, "
            f"rebuilds={delta['merge_index_rebuilds']}, "
            f"overflows={delta['merge_index_overflows']}",
        ]

    # -- step dispatch -------------------------------------------------------

    def _run_step(self, step: Step) -> Optional[int]:
        ctx = self._ctx

        if isinstance(step, MaterializeStep):
            table = execute_to_table(step.plan, ctx, step.column_names)
            ctx.registry.store(step.result_name, table)
            return None

        if isinstance(step, RenameStep):
            ctx.registry.rename(step.source, step.target)
            ctx.stats.renames += 1
            return None

        if isinstance(step, CopyStep):
            source = ctx.registry.fetch(step.source)
            # A physical copy: every column buffer is duplicated, so the
            # cost of moving the data is actually paid (the Fig. 8
            # baseline) — vectorized, as a real engine's block copy is.
            from ..storage import Column
            copied_columns = [
                Column(c.sql_type, c.data.copy(), c.mask.copy())
                for c in source.columns]
            copied = Table(source.schema, copied_columns)
            ctx.registry.store(step.target, copied)
            ctx.registry.drop(step.source)
            ctx.stats.rows_moved += copied.num_rows
            ctx.stats.bytes_moved += copied.nbytes()
            return None

        if isinstance(step, SnapshotStep):
            snapshot = ctx.registry.fetch(step.source).copy()
            ctx.registry.store(step.target, snapshot)
            return None

        if isinstance(step, DuplicateCheckStep):
            table = ctx.registry.fetch(step.result_name)
            key = table.column(step.key_column)
            codes, cardinality = factorize(key, nulls_match=True,
                                           cache=ctx.active_kernel_cache())
            if len(codes) and cardinality < len(codes):
                raise DuplicateKeyError(
                    "the iterative part produced duplicate values for key "
                    f"{step.key_column!r}; add an aggregation to resolve "
                    "them (paper §II)")
            return None

        if isinstance(step, CountUpdatesStep):
            previous = ctx.registry.fetch(step.previous)
            current = ctx.registry.fetch(step.current)
            key_index = current.schema.index_of(step.key_column)
            changed = count_changed_rows(previous, current, key_index,
                                         ctx.active_kernel_cache())
            self._loop_states[step.loop_id].record_updates(changed)
            return None

        if isinstance(step, InitLoopStep):
            self._loop_states[step.spec.loop_id] = LoopState(step.spec)
            return None

        if isinstance(step, IncrementLoopStep):
            self._loop_states[step.loop_id].iterations += 1
            ctx.stats.iterations += 1
            return None

        if isinstance(step, LoopStep):
            state = self._loop_states.get(step.loop_id)
            if state is None:
                raise ExecutionError(
                    "loop step executed before initialization")
            if should_continue(state, ctx):
                return step.jump_to
            return None

        if isinstance(step, RecursiveMergeStep):
            self._run_recursive_merge(step)
            return None

        if isinstance(step, ReturnStep):
            self._result = execute_to_table(step.plan, ctx)
            return None

        if isinstance(step, DropStep):
            for name in step.names:
                ctx.registry.drop(name)
            return None

        raise ExecutionError(f"unknown step type: {type(step).__name__}")

    def _run_recursive_merge(self, step: RecursiveMergeStep) -> None:
        """UNION / UNION ALL fixed-point bookkeeping for recursive CTEs."""
        import numpy as np

        ctx = self._ctx
        result = ctx.registry.fetch(step.result)
        candidate = ctx.registry.fetch(step.candidate)
        ctx.stats.merge_steps += 1

        if not step.distinct:
            # UNION ALL: everything is new.
            ctx.registry.store(step.result, result.concat(candidate))
            ctx.registry.store(step.working, candidate)
            return

        if candidate.num_rows == 0:
            ctx.registry.store(step.working, candidate)
            return

        if not result.columns:
            # Zero-column rows are all identical: nothing is ever new.
            new_mask = np.zeros(candidate.num_rows, dtype=np.bool_)
        elif ctx.options.enable_kernel_cache:
            new_mask = self._merge_incremental(step, result, candidate)
        else:
            new_mask = _merge_rescan(result, candidate)
        new_rows = candidate.filter(new_mask)
        ctx.registry.store(step.result, result.concat(new_rows))
        ctx.registry.store(step.working, new_rows)

    def _merge_incremental(self, step: RecursiveMergeStep, result: Table,
                           candidate: Table) -> "np.ndarray":
        """Dedup the candidate delta against the persistent seen-row
        index instead of re-encoding ``result ++ candidate``.

        The index lives for the duration of this program run, keyed by
        the result name; it is rebuilt (one O(result) scan) whenever the
        result table changed outside this merge step or the UNION's
        common column types drifted."""
        from ..execution.kernel_cache import IncrementalDistinctIndex
        from ..types import common_type

        ctx = self._ctx
        types = tuple(
            common_type(rc.sql_type, cc.sql_type)
            for rc, cc in zip(result.columns, candidate.columns))
        entry = self._merge_indexes.get(step.result)
        index = None
        if entry is not None:
            entry_types, entry_index = entry
            if entry_index is None and entry_types == types:
                # The index overflowed its per-column id budget earlier;
                # stay on the rescan path rather than rebuild every merge.
                return _merge_rescan(result, candidate)
            if entry_index is not None and entry_types == types \
                    and entry_index.rows_absorbed == result.num_rows:
                index = entry_index
                ctx.stats.merge_index_hits += 1
        if index is None:
            index = IncrementalDistinctIndex(len(types))
            result_cols = [rc if rc.sql_type is t else rc.cast(t)
                           for rc, t in zip(result.columns, types)]
            if index.absorb(result_cols, result.num_rows) is None:
                self._merge_indexes[step.result] = (types, None)
                ctx.stats.merge_index_overflows += 1
                return _merge_rescan(result, candidate)
            self._merge_indexes[step.result] = (types, index)
            ctx.stats.merge_index_rebuilds += 1
        candidate_cols = [cc if cc.sql_type is t else cc.cast(t)
                          for cc, t in zip(candidate.columns, types)]
        new_mask = index.filter_new(candidate_cols, candidate.num_rows)
        if new_mask is None:
            # Bit-budget exhaustion: the per-column id space overflowed,
            # so every later merge of this result full-rescans.  Counted
            # (once per transition) for EXPLAIN ANALYZE and the ROADMAP
            # repack-on-overflow trigger.
            self._merge_indexes[step.result] = (types, None)
            ctx.stats.merge_index_overflows += 1
            return _merge_rescan(result, candidate)
        return new_mask


def _merge_rescan(result: Table, candidate: Table):
    """Cache-off UNION DISTINCT dedup: joint-encode ``result ++
    candidate`` from scratch each iteration, but with sorted-search
    membership instead of the per-row Python set loop this replaces.
    Produces exactly the masks of the incremental path."""
    import numpy as np

    from ..execution.kernels import encode_keys

    joint = [rc.concat(cc) for rc, cc in
             zip(result.columns, candidate.columns)]
    codes = encode_keys(joint, nulls_match=True)
    seen_sorted = np.sort(codes[:result.num_rows])
    cand_codes = codes[result.num_rows:]

    _, first_index = np.unique(cand_codes, return_index=True)
    first_mask = np.zeros(candidate.num_rows, dtype=np.bool_)
    first_mask[first_index] = True
    if len(seen_sorted):
        positions = np.searchsorted(seen_sorted, cand_codes)
        inside = positions < len(seen_sorted)
        clipped = np.where(inside, positions, 0)
        in_seen = inside & (seen_sorted[clipped] == cand_codes)
        return first_mask & ~in_seen
    return first_mask


def run_program(program: Program, ctx: ExecutionContext) -> Optional[Table]:
    """Execute a plan program; returns the ReturnStep's table (if any)."""
    return ProgramRunner(program, ctx).run()
