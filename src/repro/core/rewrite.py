"""The functional rewrite of iterative CTEs (paper §IV, Algorithm 1).

``compile_statement`` turns a SELECT containing iterative (and recursive)
CTEs into one plan *program*: a step sequence over existing operators plus
the two new ones, rename and loop.  The structure for a single iterative
CTE follows Algorithm 1 exactly:

1.  materialize R0 into cteTable;
2.  initialize loop operator;
3.  materialize Ri into workingTable;
4.  if Ri has no WHERE clause: rename workingTable to cteTable
    (with the rename optimization off, the engine instead merges and
    physically copies — the Fig. 8 baseline);
5.  else: merge via ``SELECT CASE WHEN w.key IS NOT NULL THEN w.col ELSE
    m.col END ... FROM cteTable m LEFT JOIN workingTable w`` and rename
    the merge result to cteTable;
6.  update the loop operator; jump back to 3 while it says continue;
7.  return Qf.

The two iterative-specific optimizer rules hook in here: predicate push
down from Qf into R0 (§V-B) and common-result extraction from Ri (§V-A).
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from ..errors import PlanError
from ..execution import ExecutionStats, SessionOptions
from ..plan import (
    CteBinding,
    Field,
    LogicalFilter,
    LogicalOp,
    PlanContext,
    build_statement,
    rename_outputs,
)
from ..plan.program import (
    CountUpdatesStep,
    DeltaApplyStep,
    DeltaCaptureStep,
    DeltaFusedStep,
    DeltaGateStep,
    DeltaPartitionStep,
    DeltaSpec,
    DropStep,
    DuplicateCheckStep,
    IncrementLoopStep,
    InitLoopStep,
    LoopSpec,
    LoopStep,
    MaterializeStep,
    Program,
    RenameStep,
    ReturnStep,
    SnapshotStep,
    Step,
    CopyStep,
)
from ..rewrite import (
    analyze_iterative_delta,
    conjoin,
    extract_common_results,
    optimize_plan,
    pushable_into_iterative,
    split_conjuncts,
)
from ..sql import ast
from ..types import SqlType, common_type
from .recursive import emit_recursive_cte


@dataclass
class CompilerState:
    """Shared state while compiling one statement into a program."""

    context: PlanContext
    options: SessionOptions
    stats: ExecutionStats
    estimator: object = None  # repro.stats.CardinalityEstimator or None
    tracer: object = None     # repro.obs.Tracer or None (untraced)
    steps: list[Step] = dataclass_field(default_factory=list)
    loops: dict[int, LoopSpec] = dataclass_field(default_factory=dict)
    temp_results: list[str] = dataclass_field(default_factory=list)
    loop_counter: itertools.count = dataclass_field(
        default_factory=lambda: itertools.count())
    common_counter: itertools.count = dataclass_field(
        default_factory=lambda: itertools.count())


def compile_statement(stmt: ast.SelectLike, context: PlanContext,
                      options: SessionOptions,
                      stats: ExecutionStats,
                      estimator=None, tracer=None) -> Program:
    """Compile a SELECT (possibly with iterative/recursive CTEs) into a
    runnable program ending in a ReturnStep.

    ``tracer`` (a :class:`repro.obs.Tracer`) makes plan building and the
    rewrite pipeline emit phase spans; ``None`` compiles untraced.
    """
    context.tracer = tracer if tracer is not None \
        and getattr(tracer, "enabled", False) else None
    state = CompilerState(context=context, options=options, stats=stats,
                          estimator=estimator, tracer=context.tracer)

    final = copy.copy(stmt)
    with_clause = final.with_clause
    final.with_clause = None

    if with_clause is not None:
        for cte in with_clause.ctes:
            if isinstance(cte, ast.IterativeCte):
                _emit_iterative(cte, state, final)
            elif cte.recursive:
                emit_recursive_cte(cte, state)
            else:
                state.context.inline_ctes[cte.name.lower()] = (
                    cte.query, cte.columns)

    final_plan = build_statement(final, state.context)
    final_plan = optimize_plan(final_plan, options, state.estimator,
                               state.tracer, context.catalog)
    state.steps.append(ReturnStep(final_plan))
    if state.temp_results:
        state.steps.append(DropStep(list(state.temp_results)))
    program = Program(state.steps, state.loops)
    if options.enable_plan_verifier:
        from ..verify import verify_program
        report = verify_program(program, "compile", context.catalog)
        program.verifier_verdict = report.verdict()
    return program


# ---------------------------------------------------------------------------
# Iterative CTE emission (Algorithm 1)
# ---------------------------------------------------------------------------


def _emit_iterative(cte: ast.IterativeCte, state: CompilerState,
                    final: ast.SelectLike) -> None:
    context = state.context
    options = state.options
    cte_name = cte.name.lower()
    suffix = context.fresh_name("it").lstrip("_")
    cte_result = f"__cte_{cte_name}_{suffix}"
    working = f"__work_{cte_name}_{suffix}"
    merge_result = f"__merge_{cte_name}_{suffix}"
    previous = f"__prev_{cte_name}_{suffix}"

    # -- the non-iterative part -------------------------------------------
    init_raw = build_statement(cte.init, context.child())
    columns = [c.lower() for c in (cte.columns or init_raw.field_names())]
    if len(columns) != len(init_raw.fields):
        raise PlanError(
            f"iterative CTE {cte.name!r} declares {len(columns)} columns "
            f"but its non-iterative part produces {len(init_raw.fields)}")
    key_column = columns[0]

    # -- type unification across R0 and Ri --------------------------------
    types = [f.sql_type for f in init_raw.fields]
    step_plan: Optional[LogicalOp] = None
    for _ in range(4):
        binding = CteBinding(cte_result, tuple(zip(columns, types)))
        step_context = context.child()
        step_context.cte_bindings[cte_name] = binding
        step_plan = build_statement(cte.step, step_context)
        if len(step_plan.fields) != len(columns):
            raise PlanError(
                f"the iterative part of {cte.name!r} produces "
                f"{len(step_plan.fields)} columns, expected {len(columns)}")
        unified = [common_type(t, f.sql_type)
                   for t, f in zip(types, step_plan.fields)]
        unified = [SqlType.FLOAT if t is SqlType.NULL else t
                   for t in unified]
        if unified == types:
            break
        types = unified
    assert step_plan is not None
    binding = CteBinding(cte_result, tuple(zip(columns, types)))

    # -- §V-B: push final-query predicates into R0 -------------------------
    init_plan = rename_outputs(init_raw, columns, cte_name)
    if options.enable_predicate_pushdown:
        pushed = _push_final_predicates(final, cte, columns)
        if pushed is not None:
            init_plan = LogicalFilter(init_plan, pushed)
            state.stats.predicate_pushdowns += 1
    init_plan = optimize_plan(init_plan, options, state.estimator,
                              state.tracer, context.catalog)

    step_plan = optimize_plan(step_plan, options, state.estimator,
                              state.tracer, context.catalog)

    # -- §V-A: hoist loop-invariant join blocks out of Ri ------------------
    common_steps: list[MaterializeStep] = []
    if options.enable_common_results:
        step_plan, blocks = extract_common_results(
            step_plan, {cte_result}, state.common_counter)
        for block in blocks:
            common_steps.append(MaterializeStep(
                block.result_name, block.plan, block.column_names,
                comment="loop-invariant common result (§V-A)"))
            state.temp_results.append(block.result_name)
            state.stats.common_results_built += 1

    # -- assemble the step program -----------------------------------------
    has_where = isinstance(cte.step, ast.Select) \
        and cte.step.where is not None
    loop_id = next(state.loop_counter)
    needs_update_count = cte.termination.kind in (
        ast.TerminationKind.UPDATES, ast.TerminationKind.DELTA)
    spec = LoopSpec(loop_id=loop_id, termination=cte.termination,
                    cte_result=cte_result, cte_name=cte_name,
                    columns=columns,
                    movement=("rename" if options.enable_rename
                              else "copy"),
                    has_where=has_where)
    state.loops[loop_id] = spec

    # -- semi-naive delta rewrite (when provably per-key independent) ------
    delta_spec = None
    delta_plan = None
    if state.options.enable_delta_iteration:
        safety = analyze_iterative_delta(cte, columns, context.catalog)
        if safety is not None:
            partition = f"__part_{cte_name}_{suffix}"
            delta_working = f"__dwork_{cte_name}_{suffix}"
            delta_spec = DeltaSpec(
                loop_id=loop_id, cte_name=cte_name, cte_result=cte_result,
                working=working, partition=partition,
                delta_working=delta_working, key_column=key_column,
                columns=columns, merge_by_key=has_where,
                influences=list(safety.influences),
                guard_keyset=safety.guard_keyset)
            spec.delta = delta_spec
            delta_plan = _build_delta_step_plan(
                state, cte, cte_name, binding, partition, columns, types)

    steps = state.steps
    steps.append(MaterializeStep(
        cte_result, init_plan, columns,
        comment=f"non-iterative part of {cte.name}"))
    steps.extend(common_steps)
    steps.append(InitLoopStep(spec))

    loop_start = len(steps)
    fused = None
    if delta_spec is not None and options.enable_delta_fusion:
        # Fused shape: one batched columnar step replaces the
        # gate/partition/materialize/dup-check/apply quintet.
        fused = DeltaFusedStep(delta_spec, delta_plan, columns,
                               dup_check=has_where)
        steps.append(fused)
        # Delta capture always needs the previous iteration to diff
        # against, even when the termination condition does not.
        fused.jump_full = len(steps)
        steps.append(SnapshotStep(cte_result, previous))
    elif delta_spec is not None:
        gate = DeltaGateStep(delta_spec)
        apply_step = DeltaApplyStep(delta_spec)
        steps.append(gate)
        steps.append(DeltaPartitionStep(delta_spec))
        steps.append(MaterializeStep(
            delta_spec.delta_working, delta_plan, columns,
            comment=f"iterative part of {cte.name} over the affected "
                    "partition"))
        if has_where:
            steps.append(DuplicateCheckStep(delta_spec.delta_working,
                                            key_column))
        steps.append(apply_step)
        # Delta capture always needs the previous iteration to diff
        # against, even when the termination condition does not.
        gate.jump_full = len(steps)
        apply_step.jump_full = gate.jump_full
        steps.append(SnapshotStep(cte_result, previous))
    elif needs_update_count:
        steps.append(SnapshotStep(cte_result, previous))
    steps.append(MaterializeStep(
        working, step_plan, columns,
        comment=f"iterative part of {cte.name}"))

    if not has_where:
        # Full-dataset update.
        if options.enable_rename:
            steps.append(RenameStep(working, cte_result))
        else:
            # Fig. 8 baseline: identify updated rows via the merge and
            # physically move the data back into the main table.
            merge_plan = _build_merge_plan(
                state, cte_name, cte_result, working, columns, types,
                key_column)
            steps.append(MaterializeStep(
                merge_result, merge_plan, columns,
                comment="identify updated rows (baseline)"))
            steps.append(CopyStep(merge_result, cte_result))
    else:
        # Partial update: merge workingTable into cteTable by key.
        steps.append(DuplicateCheckStep(working, key_column))
        merge_plan = _build_merge_plan(
            state, cte_name, cte_result, working, columns, types,
            key_column)
        steps.append(MaterializeStep(
            merge_result, merge_plan, columns,
            comment=f"merge updates into {cte.name}"))
        state.stats.merge_steps += 1
        if options.enable_rename:
            steps.append(RenameStep(merge_result, cte_result))
        else:
            steps.append(CopyStep(merge_result, cte_result))

    if needs_update_count:
        steps.append(CountUpdatesStep(previous, cte_result, key_column,
                                      loop_id))
    if delta_spec is not None:
        steps.append(DeltaCaptureStep(delta_spec, previous))
        if fused is not None:
            fused.jump_to = len(steps)
            fused.jump_done = len(steps)
        else:
            apply_step.jump_to = len(steps)
            gate.jump_done = len(steps)
    steps.append(IncrementLoopStep(loop_id))
    steps.append(LoopStep(loop_id, loop_start))

    state.temp_results.extend([cte_result, working])
    if needs_update_count or delta_spec is not None:
        state.temp_results.append(previous)
    if delta_spec is not None:
        state.temp_results.extend([delta_spec.partition,
                                   delta_spec.delta_working])

    # Later parts of the statement (including Qf) see the CTE as a
    # materialized result.
    context.cte_bindings[cte_name] = binding


def _build_delta_step_plan(state: CompilerState, cte: ast.IterativeCte,
                           cte_name: str, binding: CteBinding,
                           partition: str, columns: list[str],
                           types: list) -> LogicalOp:
    """The iterative part with its *anchor* scan rebound to the affected
    partition.

    The leftmost FROM leaf (the row being evolved — the safety analyzer
    guaranteed it is the CTE) is replaced by a scan of the partition
    result; every other CTE reference still reads the full CTE table, so
    joins against it see all keys.  Common-result extraction is skipped:
    the partition changes every iteration and the loop-invariant build
    sides are already cached by the kernel cache.
    """
    delta_select = copy.deepcopy(cte.step)
    source_name = f"__delta_src_{cte_name}"

    def rebind(leaf: ast.TableRef) -> ast.TableRef:
        return ast.TableRef(source_name, alias=leaf.binding_name)

    node = delta_select.from_clause
    if isinstance(node, ast.TableRef):
        delta_select.from_clause = rebind(node)
    else:
        parent = node
        while isinstance(parent.left, ast.Join):
            parent = parent.left
        parent.left = rebind(parent.left)

    delta_context = state.context.child()
    delta_context.cte_bindings[cte_name] = binding
    delta_context.cte_bindings[source_name] = CteBinding(
        partition, tuple(zip(columns, types)))
    plan = build_statement(delta_select, delta_context)
    return optimize_plan(plan, state.options, state.estimator,
                        state.tracer, state.context.catalog)


def _build_merge_plan(state: CompilerState, cte_name: str, cte_result: str,
                      working: str, columns: list[str],
                      types: list[SqlType],
                      key_column: str) -> LogicalOp:
    """Algorithm 1 line 8: the CASE/LEFT JOIN merge select."""
    main_name = f"__{cte_name}_merge_main"
    work_name = f"__{cte_name}_merge_work"
    sub_context = state.context.child()
    sub_context.cte_bindings[main_name] = CteBinding(
        cte_result, tuple(zip(columns, types)))
    sub_context.cte_bindings[work_name] = CteBinding(
        working, tuple(zip(columns, types)))

    items = []
    for column in columns:
        if column == key_column:
            items.append(ast.SelectItem(ast.ColumnRef(column, "m"), column))
            continue
        case = ast.Case(
            whens=((ast.IsNull(ast.ColumnRef(key_column, "w"),
                               negated=True),
                    ast.ColumnRef(column, "w")),),
            default=ast.ColumnRef(column, "m"))
        items.append(ast.SelectItem(case, column))

    select = ast.Select(
        items=items,
        from_clause=ast.Join(
            ast.JoinKind.LEFT,
            ast.TableRef(main_name, alias="m"),
            ast.TableRef(work_name, alias="w"),
            ast.BinaryOp(ast.BinaryOperator.EQ,
                         ast.ColumnRef(key_column, "m"),
                         ast.ColumnRef(key_column, "w"))))
    return build_statement(select, sub_context)


# ---------------------------------------------------------------------------
# §V-B: final-query predicate extraction
# ---------------------------------------------------------------------------


def _push_final_predicates(final: ast.SelectLike, cte: ast.IterativeCte,
                           columns: list[str]) -> Optional[ast.Expr]:
    """Find WHERE conjuncts of Qf that may move into R0, rebased onto the
    CTE's output columns.  Mutates nothing; the original predicate stays in
    Qf (it is cheap and keeps Qf's semantics independent of the rewrite).
    """
    if not isinstance(final, ast.Select) or final.where is None:
        return None
    binding_names = _cte_binding_names(final.from_clause, cte.name)
    if not binding_names:
        return None

    column_set = {c.lower() for c in columns}
    pushable: list[ast.Expr] = []
    for conjunct in split_conjuncts(final.where):
        refs = [node for node in conjunct.walk()
                if isinstance(node, ast.ColumnRef)]
        if not refs:
            continue
        if not all(_ref_targets_cte(ref, binding_names, column_set)
                   for ref in refs):
            continue
        if not pushable_into_iterative(cte, columns, conjunct):
            continue
        rebased = _rebase_onto_cte(conjunct, cte.name.lower())
        pushable.append(rebased)
    return conjoin(pushable)


def _cte_binding_names(relation: Optional[ast.Relation],
                       cte_name: str) -> set[str]:
    """Aliases under which Qf's FROM references the CTE."""
    names: set[str] = set()
    key = cte_name.lower()

    def visit(node: Optional[ast.Relation]) -> None:
        if node is None:
            return
        if isinstance(node, ast.TableRef):
            if node.name.lower() == key:
                names.add(node.binding_name.lower())
        elif isinstance(node, ast.Join):
            visit(node.left)
            visit(node.right)

    visit(relation)
    return names


def _ref_targets_cte(ref: ast.ColumnRef, binding_names: set[str],
                     columns: set[str]) -> bool:
    if ref.table is not None and ref.table.lower() not in binding_names:
        return False
    return ref.name.lower() in columns


def _rebase_onto_cte(expr: ast.Expr, cte_name: str) -> ast.Expr:
    from ..rewrite.expr_utils import map_column_refs

    def mapping(ref: ast.ColumnRef) -> ast.Expr:
        return ast.ColumnRef(ref.name.lower(), cte_name)

    return map_column_refs(expr, mapping)
