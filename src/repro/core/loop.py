"""Compatibility shim: loop-condition evaluation moved to
:mod:`repro.runtime.conditions` as part of the unified loop runtime."""

from ..runtime.conditions import (  # noqa: F401
    LoopState,
    count_changed_rows,
    should_continue,
)

__all__ = ["LoopState", "count_changed_rows", "should_continue"]
