"""Rewrite-rule infrastructure.

Optimization rewrites are functions ``LogicalOp -> LogicalOp`` applied
bottom-up repeatedly until the plan stops changing.  Rules must be
*reductive or stable* (no rule may undo another) — the pipeline caps the
number of passes defensively anyway.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..plan.logical import LogicalOp, transform

Rule = Callable[[LogicalOp], LogicalOp]
# Called once per rule firing with the rule that changed a node; used by
# the tracer to report which rewrites actually did something.
RuleObserver = Callable[[Rule], None]
# Called after every pass that changed the plan, with the rewritten plan
# and the names of the rules that fired — the IR verifier hooks in here
# so a malformed plan is attributed to the pass that produced it.
PassVerifier = Callable[[LogicalOp, str], None]

_MAX_PASSES = 16


def apply_rules(plan: LogicalOp, rules: Sequence[Rule],
                observer: Optional[RuleObserver] = None,
                verifier: Optional[PassVerifier] = None) -> LogicalOp:
    """Apply every rule bottom-up until a full pass changes nothing."""
    for _ in range(_MAX_PASSES):
        changed = False
        fired: list[str] = []

        def visitor(node: LogicalOp) -> LogicalOp:
            nonlocal changed
            for rule in rules:
                replacement = rule(node)
                if replacement is not node:
                    changed = True
                    fired.append(getattr(rule, "__name__", str(rule)))
                    if observer is not None:
                        observer(rule)
                    node = replacement
            return node

        plan = transform(plan, visitor)
        if not changed:
            return plan
        if verifier is not None:
            verifier(plan, "+".join(sorted(set(fired))))
    return plan
