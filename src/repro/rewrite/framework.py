"""Rewrite-rule infrastructure.

Optimization rewrites are functions ``LogicalOp -> LogicalOp`` applied
bottom-up repeatedly until the plan stops changing.  Rules must be
*reductive or stable* (no rule may undo another) — the pipeline caps the
number of passes defensively anyway.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..plan.logical import LogicalOp, transform

Rule = Callable[[LogicalOp], LogicalOp]
# Called once per rule firing with the rule that changed a node; used by
# the tracer to report which rewrites actually did something.
RuleObserver = Callable[[Rule], None]

_MAX_PASSES = 16


def apply_rules(plan: LogicalOp, rules: Sequence[Rule],
                observer: Optional[RuleObserver] = None) -> LogicalOp:
    """Apply every rule bottom-up until a full pass changes nothing."""
    for _ in range(_MAX_PASSES):
        changed = False

        def visitor(node: LogicalOp) -> LogicalOp:
            nonlocal changed
            for rule in rules:
                replacement = rule(node)
                if replacement is not node:
                    changed = True
                    if observer is not None:
                        observer(rule)
                    node = replacement
            return node

        plan = transform(plan, visitor)
        if not changed:
            return plan
    return plan
