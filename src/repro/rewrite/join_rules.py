"""Join-shape rewrites: outer-to-inner conversion and the inner-over-left
commute.

These are the enablers for common-result extraction (§V-A): the PR-VS
query's join with ``vertexStatus`` sits *above* two left joins, and only
after converting the null-rejected left join to inner and commuting the
inner join below the remaining left join does the loop-invariant
``edges ⋈ vertexStatus`` block become a contiguous inner-join component.
"""

from __future__ import annotations

from dataclasses import replace

from ..plan.logical import LogicalFilter, LogicalJoin, LogicalOp
from ..sql import ast
from .expr_utils import is_null_rejecting, refs_resolve_in, split_conjuncts


def outer_to_inner(node: LogicalOp) -> LogicalOp:
    """Convert LEFT joins to INNER when a predicate evaluated above them
    rejects NULLs of their null-supplying (right) side.

    Handles the two shapes that occur after generic pushdown:

    * ``Filter(pred) over LeftJoin`` where pred null-rejects the right side;
    * ``InnerJoin(cond) over LeftJoin`` where the inner join's condition
      null-rejects the left child's right side.
    """
    if isinstance(node, LogicalFilter) \
            and isinstance(node.child, LogicalJoin) \
            and node.child.kind is ast.JoinKind.LEFT:
        join = node.child
        if any(is_null_rejecting(conjunct, join.right.fields)
               for conjunct in split_conjuncts(node.predicate)):
            return replace(node,
                           child=replace(join, kind=ast.JoinKind.INNER))

    if isinstance(node, LogicalJoin) and node.kind is ast.JoinKind.INNER \
            and node.condition is not None:
        changed = False
        left = node.left
        right = node.right
        conjuncts = split_conjuncts(node.condition)
        if isinstance(left, LogicalJoin) and left.kind is ast.JoinKind.LEFT:
            if any(is_null_rejecting(c, left.right.fields)
                   for c in conjuncts):
                left = replace(left, kind=ast.JoinKind.INNER)
                changed = True
        if isinstance(right, LogicalJoin) \
                and right.kind is ast.JoinKind.LEFT:
            if any(is_null_rejecting(c, right.right.fields)
                   for c in conjuncts):
                right = replace(right, kind=ast.JoinKind.INNER)
                changed = True
        if changed:
            return replace(node, left=left, right=right)

    return node


def inner_over_left_commute(node: LogicalOp) -> LogicalOp:
    """``(X LEFT JOIN C) INNER JOIN D ON p(X, D)``
    becomes ``(X INNER JOIN D ON p) LEFT JOIN C``.

    Valid because the inner join's condition never touches C, so the two
    trees produce the same multiset of rows.  This sinks loop-invariant
    inner joins below the iterative reference's left joins, exposing them
    to common-result extraction.
    """
    if not (isinstance(node, LogicalJoin)
            and node.kind is ast.JoinKind.INNER
            and node.condition is not None):
        return node
    left = node.left
    if not (isinstance(left, LogicalJoin)
            and left.kind is ast.JoinKind.LEFT):
        return node
    inner_fields = (*left.left.fields, *node.right.fields)
    if not refs_resolve_in(node.condition, inner_fields):
        return node
    sunk = LogicalJoin(ast.JoinKind.INNER, left.left, node.right,
                       node.condition)
    return LogicalJoin(ast.JoinKind.LEFT, sunk, left.right, left.condition)
