"""Expression utilities shared by rewrite rules."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..errors import BindError
from ..plan.binding import resolve_column
from ..plan.logical import Field
from ..sql import ast


def split_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op is ast.BinaryOperator.AND:
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[ast.Expr]) -> Optional[ast.Expr]:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for item in conjuncts[1:]:
        result = ast.BinaryOp(ast.BinaryOperator.AND, result, item)
    return result


def refs_resolve_in(expr: ast.Expr, fields: Sequence[Field]) -> bool:
    """True if every column reference of ``expr`` binds within ``fields``."""
    for node in expr.walk():
        if isinstance(node, ast.ColumnRef):
            try:
                resolve_column(fields, node)
            except BindError:
                return False
    return True


def map_column_refs(expr: ast.Expr,
                    mapping: Callable[[ast.ColumnRef], ast.Expr]) -> ast.Expr:
    """Rebuild ``expr`` with every column reference replaced via mapping."""
    if isinstance(expr, ast.ColumnRef):
        return mapping(expr)
    if isinstance(expr, ast.Literal):
        return expr
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op,
                            map_column_refs(expr.left, mapping),
                            map_column_refs(expr.right, mapping))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, map_column_refs(expr.operand, mapping))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(map_column_refs(expr.operand, mapping),
                          expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(
            map_column_refs(expr.operand, mapping),
            tuple(map_column_refs(item, mapping) for item in expr.items),
            expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(map_column_refs(expr.operand, mapping),
                           map_column_refs(expr.low, mapping),
                           map_column_refs(expr.high, mapping),
                           expr.negated)
    if isinstance(expr, ast.Case):
        operand = (map_column_refs(expr.operand, mapping)
                   if expr.operand is not None else None)
        whens = tuple((map_column_refs(c, mapping),
                       map_column_refs(r, mapping))
                      for c, r in expr.whens)
        default = (map_column_refs(expr.default, mapping)
                   if expr.default is not None else None)
        return ast.Case(whens, operand, default)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(map_column_refs(arg, mapping) for arg in expr.args),
            expr.distinct)
    if isinstance(expr, ast.Cast):
        return ast.Cast(map_column_refs(expr.operand, mapping),
                        expr.type_name)
    if isinstance(expr, ast.Star):
        return expr
    raise TypeError(f"cannot map refs in {type(expr).__name__}")


def substitute_by_position(expr: ast.Expr, fields: Sequence[Field],
                           replacements: Sequence[ast.Expr]) -> ast.Expr:
    """Replace each column ref with the expression at its resolved index.

    Used to move a predicate through a projection: refs against the
    projection's output fields become the projection's input expressions.
    """

    def mapping(ref: ast.ColumnRef) -> ast.Expr:
        index = resolve_column(fields, ref)
        return replacements[index]

    return map_column_refs(expr, mapping)


def is_null_rejecting(expr: ast.Expr, fields: Sequence[Field]) -> bool:
    """Conservatively: does ``expr`` evaluate to non-TRUE whenever every
    column of ``fields`` it references is NULL?

    Sufficient for the outer-to-inner conversion: comparisons, BETWEEN,
    IN and IS NOT NULL on a referenced column reject NULL rows.  Anything
    wrapped in NULL-tolerant constructs (IS NULL, COALESCE, CASE, OR with
    an unrelated arm) is answered with False (no conversion).
    """
    referenced = [node for node in expr.walk()
                  if isinstance(node, ast.ColumnRef)]
    touches = any(_ref_in(ref, fields) for ref in referenced)
    if not touches:
        return False
    return _rejects(expr, fields)


def _ref_in(ref: ast.ColumnRef, fields: Sequence[Field]) -> bool:
    try:
        resolve_column(fields, ref)
        return True
    except BindError:
        return False


def _rejects(expr: ast.Expr, fields: Sequence[Field]) -> bool:
    if isinstance(expr, ast.BinaryOp):
        if expr.op is ast.BinaryOperator.AND:
            return _rejects(expr.left, fields) or _rejects(expr.right, fields)
        if expr.op is ast.BinaryOperator.OR:
            return (_rejects(expr.left, fields)
                    and _rejects(expr.right, fields))
        if expr.op.is_comparison or expr.op is ast.BinaryOperator.LIKE:
            # A comparison is UNKNOWN when an input is NULL, which a WHERE
            # or ON treats as false — so it rejects NULLs of any column it
            # directly references (through strict arithmetic only).
            return (_strictly_references(expr.left, fields)
                    or _strictly_references(expr.right, fields))
        return False
    if isinstance(expr, ast.IsNull):
        return expr.negated and _strictly_references(expr.operand, fields)
    if isinstance(expr, ast.Between):
        return _strictly_references(expr.operand, fields)
    if isinstance(expr, ast.InList):
        return (not expr.negated
                and _strictly_references(expr.operand, fields))
    return False


_STRICT_FUNCTIONS = frozenset({
    "abs", "ceiling", "ceil", "floor", "round", "sqrt", "ln", "exp",
    "power", "mod", "sign", "length", "upper", "lower",
})


def _strictly_references(expr: ast.Expr, fields: Sequence[Field]) -> bool:
    """Does NULL-ness of a referenced field propagate to ``expr``?"""
    if isinstance(expr, ast.ColumnRef):
        return _ref_in(expr, fields)
    if isinstance(expr, ast.BinaryOp) and (
            expr.op in (ast.BinaryOperator.ADD, ast.BinaryOperator.SUB,
                        ast.BinaryOperator.MUL, ast.BinaryOperator.DIV,
                        ast.BinaryOperator.MOD,
                        ast.BinaryOperator.CONCAT)):
        return (_strictly_references(expr.left, fields)
                or _strictly_references(expr.right, fields))
    if isinstance(expr, ast.UnaryOp) and expr.op in (
            ast.UnaryOperator.NEG, ast.UnaryOperator.POS):
        return _strictly_references(expr.operand, fields)
    if isinstance(expr, ast.Cast):
        return _strictly_references(expr.operand, fields)
    if isinstance(expr, ast.FunctionCall) \
            and expr.name in _STRICT_FUNCTIONS:
        return any(_strictly_references(arg, fields) for arg in expr.args)
    return False
