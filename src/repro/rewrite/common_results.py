"""Common result optimization (§V-A).

Join subtrees in the iterative part that do not touch the iterative
reference produce the same result in every iteration.  This rewrite finds
them, lifts each into a materialization performed once *before* the loop
(COMMON#k in the paper's Fig. 5), and replaces the subtree with a scan of
the materialized block.

The rewrite is a heuristic (not cost-based), exactly as the paper argues:
the iterative part is materialized anyway, and the saving multiplies with
the number of iterations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from ..plan.logical import (
    LogicalFilter,
    LogicalJoin,
    LogicalOp,
    LogicalTempScan,
)
from ..sql import ast
from .expr_utils import conjoin, refs_resolve_in, split_conjuncts


@dataclass
class CommonBlock:
    """One extracted loop-invariant block to materialize before the loop."""

    result_name: str
    plan: LogicalOp
    column_names: list[str]


def is_loop_invariant(plan: LogicalOp, varying_results: set[str]) -> bool:
    """True when no scan under ``plan`` reads a loop-varying result."""
    for node in plan.walk():
        if isinstance(node, LogicalTempScan) \
                and node.result_name.lower() in varying_results:
            return False
    return True


def extract_common_results(
        plan: LogicalOp, varying_results: set[str],
        name_counter: itertools.count) -> tuple[LogicalOp, list[CommonBlock]]:
    """Extract loop-invariant inner-join groups from ``plan``.

    Returns the rewritten plan and the blocks to materialize (in order)
    before the loop starts.
    """
    varying = {name.lower() for name in varying_results}
    blocks: list[CommonBlock] = []

    def visit(node: LogicalOp) -> LogicalOp:
        if isinstance(node, LogicalJoin) \
                and node.kind is ast.JoinKind.INNER:
            return _rewrite_component(node, varying, blocks, name_counter,
                                      visit)
        children = node.children()
        if not children:
            return node
        new_children = [visit(child) for child in children]
        if all(new is old for new, old in zip(new_children, children)):
            return node
        return node.with_children(new_children)

    rewritten = visit(plan)
    return rewritten, blocks


def _flatten_inner(node: LogicalOp,
                   members: list[LogicalOp],
                   conjuncts: list[ast.Expr]) -> None:
    if isinstance(node, LogicalJoin) and node.kind is ast.JoinKind.INNER:
        _flatten_inner(node.left, members, conjuncts)
        _flatten_inner(node.right, members, conjuncts)
        if node.condition is not None:
            conjuncts.extend(split_conjuncts(node.condition))
        return
    members.append(node)


def _rewrite_component(root: LogicalJoin, varying: set[str],
                       blocks: list[CommonBlock],
                       name_counter: itertools.count,
                       visit: Callable[[LogicalOp], LogicalOp]) -> LogicalOp:
    members: list[LogicalOp] = []
    conjuncts: list[ast.Expr] = []
    _flatten_inner(root, members, conjuncts)
    # Recurse inside members first (they may contain nested components
    # below outer joins or aggregates).
    members = [visit(member) for member in members]

    invariant_flags = [is_loop_invariant(member, varying)
                       for member in members]
    if sum(invariant_flags) >= 2 and not all(invariant_flags):
        members, conjuncts = _group_invariants(
            members, conjuncts, invariant_flags, blocks, name_counter)
    # If *all* members are invariant the whole component will be hoisted
    # by the caller (it is itself invariant); no grouping needed here.
    return _rebuild(members, conjuncts)


def _group_invariants(members, conjuncts, invariant_flags, blocks,
                      name_counter):
    """Merge connected invariant members into COMMON blocks."""
    invariant_indices = [i for i, flag in enumerate(invariant_flags) if flag]

    # Union-find over invariant members connected by conjuncts that bind
    # entirely within invariant members.
    parent = {i: i for i in invariant_indices}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    def binding_members(conjunct: ast.Expr) -> Optional[list[int]]:
        bound = []
        for i, member in enumerate(members):
            if refs_resolve_in(conjunct, member.fields):
                return [i]
        # Multi-member conjunct: find the minimal set it binds against.
        for count in (2, 3):
            for combo in itertools.combinations(range(len(members)), count):
                fields = tuple(f for i in combo for f in members[i].fields)
                if refs_resolve_in(conjunct, fields):
                    return list(combo)
        return None

    conjunct_members = [binding_members(c) for c in conjuncts]
    for conjunct, bound in zip(conjuncts, conjunct_members):
        if bound is not None and all(i in parent for i in bound) \
                and len(bound) > 1:
            for other in bound[1:]:
                union(bound[0], other)

    groups: dict[int, list[int]] = {}
    for i in invariant_indices:
        groups.setdefault(find(i), []).append(i)

    extracted_groups = [sorted(group) for group in groups.values()
                        if len(group) >= 2]
    if not extracted_groups:
        return members, conjuncts

    new_members = list(members)
    used_conjuncts = [False] * len(conjuncts)

    for group in extracted_groups:
        group_set = set(group)
        internal = []
        for index, (conjunct, bound) in enumerate(
                zip(conjuncts, conjunct_members)):
            if used_conjuncts[index] or bound is None:
                continue
            if set(bound) <= group_set:
                internal.append(conjunct)
                used_conjuncts[index] = True
        group_members = [members[i] for i in group]
        block_plan = _rebuild(group_members, internal)
        name = f"COMMON#{next(name_counter) + 1}"
        column_names = [f"c{i}" for i in range(len(block_plan.fields))]
        blocks.append(CommonBlock(name, block_plan, column_names))
        replacement = LogicalTempScan(
            result_name=name,
            alias=name.lower(),
            fields=block_plan.fields)
        new_members[group[0]] = replacement
        for i in group[1:]:
            new_members[i] = None

    members = [m for m in new_members if m is not None]
    conjuncts = [c for c, used in zip(conjuncts, used_conjuncts) if not used]
    return members, conjuncts


def _rebuild(members: list[LogicalOp],
             conjuncts: list[ast.Expr]) -> LogicalOp:
    """Left-deep inner join over ``members`` applying every conjunct as
    early as it binds."""
    if not members:
        raise ValueError("cannot rebuild an empty join component")
    remaining = list(conjuncts)
    plan = members[0]
    todo = list(members[1:])

    while todo:
        # Prefer a member connected to the current plan by some conjunct
        # (keeps joins equi- rather than cross-products).
        chosen = None
        for candidate in todo:
            fields = (*plan.fields, *candidate.fields)
            if any(refs_resolve_in(c, fields)
                   and not refs_resolve_in(c, plan.fields)
                   and not refs_resolve_in(c, candidate.fields)
                   for c in remaining):
                chosen = candidate
                break
        if chosen is None:
            chosen = todo[0]
        todo.remove(chosen)
        fields = (*plan.fields, *chosen.fields)
        applicable = [c for c in remaining if refs_resolve_in(c, fields)]
        remaining = [c for c in remaining if c not in applicable]
        plan = LogicalJoin(ast.JoinKind.INNER, plan, chosen,
                           conjoin(applicable))

    leftover = conjoin(remaining)
    if leftover is not None:
        plan = LogicalFilter(plan, leftover)
    return plan
