"""Constant folding over plan expressions.

Kept deliberately small: literal arithmetic, boolean short-circuits, and
trivial filter elimination (``WHERE TRUE``).  Runs as part of the standard
rewrite pipeline before the structural rules so null-rejection analysis
sees simplified predicates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..plan.logical import LogicalFilter, LogicalOp
from ..sql import ast


def fold_expr(expr: ast.Expr) -> ast.Expr:
    """Fold literal subexpressions; returns the same node if unchanged."""
    if isinstance(expr, ast.BinaryOp):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        folded = _fold_binary(expr.op, left, right)
        if folded is not None:
            return folded
        if left is not expr.left or right is not expr.right:
            return ast.BinaryOp(expr.op, left, right)
        return expr
    if isinstance(expr, ast.UnaryOp):
        operand = fold_expr(expr.operand)
        if isinstance(operand, ast.Literal):
            value = operand.value
            if expr.op is ast.UnaryOperator.NOT and isinstance(value, bool):
                return ast.Literal(not value)
            if expr.op is ast.UnaryOperator.NEG \
                    and isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                return ast.Literal(-value)
            if expr.op is ast.UnaryOperator.POS:
                return operand
        if operand is not expr.operand:
            return ast.UnaryOp(expr.op, operand)
        return expr
    return expr


def _fold_binary(op: ast.BinaryOperator, left: ast.Expr,
                 right: ast.Expr) -> Optional[ast.Expr]:
    if not (isinstance(left, ast.Literal) and isinstance(right, ast.Literal)):
        return None
    a, b = left.value, right.value
    if a is None or b is None:
        if op in (ast.BinaryOperator.AND, ast.BinaryOperator.OR):
            return None  # three-valued logic left to the evaluator
        return ast.Literal(None)
    numeric = (isinstance(a, (int, float)) and isinstance(b, (int, float))
               and not isinstance(a, bool) and not isinstance(b, bool))
    if op is ast.BinaryOperator.ADD and numeric:
        return ast.Literal(a + b)
    if op is ast.BinaryOperator.SUB and numeric:
        return ast.Literal(a - b)
    if op is ast.BinaryOperator.MUL and numeric:
        return ast.Literal(a * b)
    if op is ast.BinaryOperator.DIV and numeric and b != 0:
        if isinstance(a, int) and isinstance(b, int):
            quotient = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                quotient = -quotient
            return ast.Literal(quotient)
        return ast.Literal(a / b)
    if op.is_comparison and numeric:
        comparisons = {
            ast.BinaryOperator.EQ: a == b,
            ast.BinaryOperator.NE: a != b,
            ast.BinaryOperator.LT: a < b,
            ast.BinaryOperator.LE: a <= b,
            ast.BinaryOperator.GT: a > b,
            ast.BinaryOperator.GE: a >= b,
        }
        return ast.Literal(comparisons[op])
    return None


def fold_plan_filters(node: LogicalOp) -> LogicalOp:
    """Fold filter predicates; drop filters that fold to TRUE."""
    if not isinstance(node, LogicalFilter):
        return node
    folded = fold_expr(node.predicate)
    if isinstance(folded, ast.Literal) and folded.value is True:
        return node.child
    if folded is not node.predicate:
        return replace(node, predicate=folded)
    return node
