"""Predicate push down.

Two parts, matching the paper's §V-B:

* :func:`push_filters` — the ordinary rule: move filter conjuncts through
  projections, below joins (respecting outer-join semantics), into union
  arms and below aggregations when they only touch grouping keys.

* :func:`pushable_into_iterative` — the iterative-CTE-specific safety
  check: a predicate from the final query block may be pushed into the
  *non-iterative part* only when the iterative part evolves rows
  independently per key and the referenced columns pass through the
  iterative part unchanged.  Pushing blindly (as for regular CTEs) is
  incorrect — e.g. PageRank needs all neighbours even when the final query
  asks for one node.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..plan.logical import (
    Field,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalRename,
    LogicalSort,
    LogicalUnion,
)
from ..sql import ast
from .expr_utils import (
    conjoin,
    map_column_refs,
    refs_resolve_in,
    split_conjuncts,
    substitute_by_position,
)


def push_filters(node: LogicalOp) -> LogicalOp:
    """One bottom-up rewrite step for the generic pushdown rule."""
    if not isinstance(node, LogicalFilter):
        return node
    child = node.child

    if isinstance(child, LogicalFilter):
        merged = conjoin(split_conjuncts(node.predicate)
                         + split_conjuncts(child.predicate))
        return LogicalFilter(child.child, merged)

    if isinstance(child, LogicalProject):
        replacements = [expr for expr, _ in child.exprs]
        pushed = substitute_by_position(node.predicate, child.fields,
                                        replacements)
        if ast.contains_aggregate(pushed):
            return node
        new_child = replace(child,
                            child=LogicalFilter(child.child, pushed))
        return new_child

    if isinstance(child, LogicalRename):
        pushed = _rebase_through_rename(node.predicate, child)
        if pushed is None:
            return node
        return replace(child, child=LogicalFilter(child.child, pushed))

    if isinstance(child, LogicalJoin):
        return _push_into_join(node, child)

    if isinstance(child, LogicalUnion):
        pushed_left = _rebase_union_predicate(node.predicate, child,
                                              child.left)
        pushed_right = _rebase_union_predicate(node.predicate, child,
                                               child.right)
        if pushed_left is None or pushed_right is None:
            return node
        return replace(child,
                       left=LogicalFilter(child.left, pushed_left),
                       right=LogicalFilter(child.right, pushed_right))

    if isinstance(child, LogicalAggregate):
        return _push_into_aggregate(node, child)

    if isinstance(child, (LogicalSort, LogicalDistinct)):
        return child.with_children(
            [LogicalFilter(child.children()[0], node.predicate)])

    return node


def _push_into_join(node: LogicalFilter, join: LogicalJoin) -> LogicalOp:
    conjuncts = split_conjuncts(node.predicate)
    to_left: list[ast.Expr] = []
    to_right: list[ast.Expr] = []
    keep: list[ast.Expr] = []

    left_ok = join.kind in (ast.JoinKind.INNER, ast.JoinKind.LEFT,
                            ast.JoinKind.CROSS)
    right_ok = join.kind in (ast.JoinKind.INNER, ast.JoinKind.RIGHT,
                             ast.JoinKind.CROSS)

    for conjunct in conjuncts:
        if left_ok and refs_resolve_in(conjunct, join.left.fields):
            to_left.append(conjunct)
        elif right_ok and refs_resolve_in(conjunct, join.right.fields):
            to_right.append(conjunct)
        else:
            keep.append(conjunct)

    if not to_left and not to_right:
        return node

    left = join.left
    right = join.right
    if to_left:
        left = LogicalFilter(left, conjoin(to_left))
    if to_right:
        right = LogicalFilter(right, conjoin(to_right))
    new_join = replace(join, left=left, right=right)
    remaining = conjoin(keep)
    if remaining is None:
        return new_join
    return LogicalFilter(new_join, remaining)


def _rebase_through_rename(predicate: ast.Expr,
                           rename: "LogicalRename"):
    """Map a predicate over renamed outputs onto the child's columns.

    Refuses (returns None) when the child's names are ambiguous — the
    reason LogicalRename exists in the first place.
    """
    from ..plan.binding import resolve_column

    def mapping(ref: ast.ColumnRef) -> ast.Expr:
        index = resolve_column(rename.fields, ref)
        child_field = rename.child.fields[index]
        child_ref = ast.ColumnRef(child_field.name, child_field.qualifier)
        if resolve_column(rename.child.fields, child_ref) != index:
            raise _NotPushable()
        return child_ref

    try:
        return map_column_refs(predicate, mapping)
    except (_NotPushable, Exception):
        return None


def _rebase_union_predicate(predicate: ast.Expr, union: LogicalUnion,
                            arm: LogicalOp) -> Optional[ast.Expr]:
    """Rewrite a predicate over union output fields onto one arm."""
    from ..plan.binding import resolve_column

    def mapping(ref: ast.ColumnRef) -> ast.Expr:
        index = resolve_column(union.fields, ref)
        field = arm.fields[index]
        return ast.ColumnRef(field.name, field.qualifier)

    try:
        return map_column_refs(predicate, mapping)
    except Exception:
        return None


def _push_into_aggregate(node: LogicalFilter,
                         agg: LogicalAggregate) -> LogicalOp:
    """Push conjuncts that only reference grouping keys below the agg."""
    key_slots = {slot: expr for expr, slot in agg.keys}
    conjuncts = split_conjuncts(node.predicate)
    pushable: list[ast.Expr] = []
    keep: list[ast.Expr] = []

    output_by_name = {name: expr for expr, name in agg.outputs}

    for conjunct in conjuncts:
        rewritten = _rewrite_over_keys(conjunct, agg.fields, output_by_name,
                                       key_slots)
        if rewritten is not None:
            pushable.append(rewritten)
        else:
            keep.append(conjunct)

    if not pushable:
        return node
    new_agg = replace(agg, child=LogicalFilter(agg.child, conjoin(pushable)))
    remaining = conjoin(keep)
    if remaining is None:
        return new_agg
    return LogicalFilter(new_agg, remaining)


def _rewrite_over_keys(conjunct: ast.Expr, fields, output_by_name,
                       key_slots) -> Optional[ast.Expr]:
    """Map a predicate over aggregate outputs onto pre-aggregation input
    expressions; None when it touches an aggregate value."""

    def mapping(ref: ast.ColumnRef) -> ast.Expr:
        output = output_by_name.get(ref.name.lower())
        if output is None:
            raise _NotPushable()
        # The output must itself be a pure key-slot expression.
        resolved = _resolve_slots(output, key_slots)
        if resolved is None:
            raise _NotPushable()
        return resolved

    try:
        return map_column_refs(conjunct, mapping)
    except _NotPushable:
        return None


class _NotPushable(Exception):
    pass


def _resolve_slots(expr: ast.Expr, key_slots) -> Optional[ast.Expr]:
    """Replace __key slots with their defining expressions; None if the
    expression touches an aggregate slot."""

    def mapping(ref: ast.ColumnRef) -> ast.Expr:
        if ref.name in key_slots:
            return key_slots[ref.name]
        raise _NotPushable()

    try:
        return map_column_refs(expr, mapping)
    except _NotPushable:
        return None


# ---------------------------------------------------------------------------
# Iterative-CTE pushdown safety (§V-B)
# ---------------------------------------------------------------------------


def count_cte_references(query: ast.SelectLike, cte_name: str) -> int:
    """Occurrences of the CTE name in FROM clauses of ``query``."""
    count = 0
    key = cte_name.lower()

    def visit_relation(relation: ast.Relation) -> None:
        nonlocal count
        if isinstance(relation, ast.TableRef):
            if relation.name.lower() == key:
                count += 1
        elif isinstance(relation, ast.SubqueryRef):
            visit_query(relation.query)
        elif isinstance(relation, ast.Join):
            visit_relation(relation.left)
            visit_relation(relation.right)

    def visit_query(node: ast.SelectLike) -> None:
        if isinstance(node, ast.SetOp):
            visit_query(node.left)
            visit_query(node.right)
            return
        if node.from_clause is not None:
            visit_relation(node.from_clause)
        if node.with_clause is not None:
            for cte in node.with_clause.ctes:
                if isinstance(cte, ast.CommonTableExpr):
                    visit_query(cte.query)
                else:
                    visit_query(cte.init)
                    visit_query(cte.step)

    visit_query(query)
    return count


def invariant_columns(cte: ast.IterativeCte,
                      columns: list[str]) -> set[str]:
    """CTE columns that pass through the iterative part unchanged.

    A column is invariant when the step's select item at its position is a
    bare reference to the same column of the CTE.  Only these columns may
    appear in a predicate pushed into the non-iterative part.
    """
    step = cte.step
    if not isinstance(step, ast.Select):
        return set()
    invariant: set[str] = set()
    cte_key = cte.name.lower()
    for position, item in enumerate(step.items):
        if position >= len(columns):
            break
        expr = item.expr
        if isinstance(expr, ast.ColumnRef) \
                and expr.name.lower() == columns[position].lower() \
                and (expr.table is None or expr.table.lower() == cte_key):
            invariant.add(columns[position].lower())
    return invariant


def pushable_into_iterative(cte: ast.IterativeCte, columns: list[str],
                            predicate: ast.Expr) -> bool:
    """Is it safe to push ``predicate`` (over the CTE's output) into R0?

    Conditions (conservative reading of §V-B):

    * the iterative part references the CTE exactly once, with no self
      joins — each output row depends on exactly one current row;
    * the iterative part has no GROUP BY / aggregates / DISTINCT / set
      operations — no cross-row mixing;
    * every column the predicate references is invariant through the
      iterative part (identity pass-through), so selecting rows early
      selects exactly the rows the final predicate would keep.
    """
    step = cte.step
    if not isinstance(step, ast.Select):
        return False
    if step.group_by or step.having is not None or step.distinct:
        return False
    if any(ast.contains_aggregate(item.expr) for item in step.items):
        return False
    if step.limit is not None or step.offset is not None:
        return False
    if count_cte_references(step, cte.name) != 1:
        return False
    if not isinstance(step.from_clause, ast.TableRef):
        # Joins in the iterative part can make row evolution depend on
        # other rows; refuse.
        return False
    if step.from_clause.name.lower() != cte.name.lower():
        return False

    stable = invariant_columns(cte, columns)
    for node in predicate.walk():
        if isinstance(node, ast.ColumnRef):
            if node.name.lower() not in stable:
                return False
        if ast.is_aggregate_call(node):
            return False
    return True
