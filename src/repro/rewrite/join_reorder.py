"""Cost-based join reordering for inner-join components.

The paper leaves join reordering around iterative CTEs as future work
(§V-A: "the system needs to reorder the joins … this is something that we
will explore in future work").  This module implements the classic greedy
algorithm over flattened inner-join components: start from the
smallest-cardinality relation, then repeatedly join the member that
minimizes the estimated intermediate result, applying every conjunct as
early as it binds.

Outer joins are left untouched (reordering them is not generally valid —
the paper cites [23]); the rule only fires on maximal inner components
with three or more members, where order actually matters.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..plan.logical import LogicalFilter, LogicalJoin, LogicalOp
from ..sql import ast
from .expr_utils import conjoin, refs_resolve_in, split_conjuncts


def reorder_joins(plan: LogicalOp, estimator) -> LogicalOp:
    """One top-down pass reordering every maximal inner-join component.

    ``estimator`` is a :class:`repro.stats.CardinalityEstimator`; without
    one the pass is a no-op (rule-based rewrites must not guess).
    """
    if estimator is None:
        return plan

    def visit(node: LogicalOp) -> LogicalOp:
        if isinstance(node, LogicalJoin) \
                and node.kind is ast.JoinKind.INNER:
            return _reorder_component(node, estimator, visit)
        children = node.children()
        if not children:
            return node
        new_children = [visit(child) for child in children]
        if all(new is old for new, old in zip(new_children, children)):
            return node
        return node.with_children(new_children)

    return visit(plan)


def _flatten(node: LogicalOp, members: list[LogicalOp],
             conjuncts: list[ast.Expr]) -> None:
    if isinstance(node, LogicalJoin) and node.kind is ast.JoinKind.INNER:
        _flatten(node.left, members, conjuncts)
        _flatten(node.right, members, conjuncts)
        if node.condition is not None:
            conjuncts.extend(split_conjuncts(node.condition))
        return
    members.append(node)


def _reorder_component(root: LogicalJoin, estimator,
                       visit: Callable[[LogicalOp], LogicalOp]
                       ) -> LogicalOp:
    members: list[LogicalOp] = []
    conjuncts: list[ast.Expr] = []
    _flatten(root, members, conjuncts)
    members = [visit(member) for member in members]
    if len(members) < 3:
        return _rebuild_in_order(members, conjuncts)

    remaining = list(members)
    pending = list(conjuncts)
    # Seed with the smallest relation.
    current = min(remaining, key=estimator.estimate)
    remaining.remove(current)

    while remaining:
        best: Optional[LogicalOp] = None
        best_plan: Optional[LogicalOp] = None
        best_rows = float("inf")
        for candidate in remaining:
            joined = _join_with_applicable(current, candidate, pending)
            rows = estimator.estimate(joined)
            # Prefer connected joins strictly over cross products.
            connected = joined.condition is not None
            score = rows if connected else rows * 1e6
            if score < best_rows:
                best, best_plan, best_rows = candidate, joined, score
        assert best is not None and best_plan is not None
        remaining.remove(best)
        consumed = split_conjuncts(best_plan.condition) \
            if best_plan.condition is not None else []
        pending = [c for c in pending if c not in consumed]
        current = best_plan

    leftover = conjoin(pending)
    if leftover is not None:
        current = LogicalFilter(current, leftover)
    return current


def _join_with_applicable(left: LogicalOp, right: LogicalOp,
                          pending: list[ast.Expr]) -> LogicalJoin:
    fields = (*left.fields, *right.fields)
    applicable = [
        c for c in pending
        if refs_resolve_in(c, fields)
        and not refs_resolve_in(c, left.fields)
        and not refs_resolve_in(c, right.fields)]
    # Single-side conjuncts were already pushed down by push_filters;
    # anything binding only one side stays pending (it will be applied as
    # a filter at the end if never consumed).
    return LogicalJoin(ast.JoinKind.INNER, left, right,
                       conjoin(applicable))


def _rebuild_in_order(members: list[LogicalOp],
                      conjuncts: list[ast.Expr]) -> LogicalOp:
    plan = members[0]
    pending = list(conjuncts)
    for member in members[1:]:
        joined = _join_with_applicable(plan, member, pending)
        consumed = split_conjuncts(joined.condition) \
            if joined.condition is not None else []
        pending = [c for c in pending if c not in consumed]
        plan = joined
    leftover = conjoin(pending)
    if leftover is not None:
        plan = LogicalFilter(plan, leftover)
    return plan
