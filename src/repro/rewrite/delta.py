"""Safety analysis for semi-naive delta evaluation of ITERATIVE CTEs.

Full recomputation of the iterative part is always correct; recomputing
only the rows *affected* by the previous iteration's changes is correct
exactly when the step query evolves each key independently — the same
per-key property §V-B's predicate pushdown (Fig. 10) relies on.  This
module proves that property syntactically, conservatively:

* the step is a plain SELECT whose leftmost FROM leaf is the CTE itself
  (the *anchor*: the row being evolved);
* every other reference to the CTE in FROM is reachable from the anchor
  key through one equi-join link — either directly (``r.key = anchor.key``)
  or through one loop-invariant base table ``b`` (``r.key = b.x AND
  anchor.key = b.y``), so a changed key's influence on other keys can be
  expanded by scanning ``b``;
* the output key (item 0) is the anchor key, and grouping — if any — is
  by anchor columns with the key first, so each output row is a function
  of one anchor row plus its linked/base join partners.

Anything the analysis cannot prove returns None and the loop runs the
always-correct full body.  The affected set the links produce is an
over-approximation: recomputing an unchanged row is wasted work, never a
wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..sql import ast


@dataclass(frozen=True)
class DeltaSafety:
    """Proof artifact: how frontier keys reach other keys.

    ``influences`` holds one ``(base_table, frontier_column,
    affected_column)`` triple per non-identity link: keys in the frontier
    match ``base_table.frontier_column`` and influence the keys found in
    ``base_table.affected_column`` of the same rows.  Identity links
    need no entry — the frontier always influences itself.

    ``guard_keyset`` marks bodies with an INNER join but no WHERE clause:
    per-key evolution holds for *surviving* keys, but the join may drop a
    key whose partners vanish, so the delta apply must verify the
    recomputed partition reproduced its keyset exactly and fall back to
    the full body otherwise.
    """

    influences: tuple[tuple[str, str, str], ...]
    guard_keyset: bool = False


@dataclass(frozen=True)
class _Leaf:
    binding: str            # lowercase binding name (alias or table name)
    table: str              # lowercase underlying table / CTE name
    is_cte: bool
    columns: frozenset      # lowercase column names visible on this leaf


def analyze_iterative_delta(cte: ast.IterativeCte, columns: list[str],
                            catalog) -> Optional[DeltaSafety]:
    """Prove per-key independent evolution of ``cte.step`` or return None.

    ``columns`` are the CTE's lowercase output columns (key first);
    ``catalog`` resolves base-table schemas for unqualified references
    and loop-invariance of join inputs.
    """
    step = cte.step
    if not isinstance(step, ast.Select):
        return None
    if (step.with_clause is not None or step.distinct
            or step.having is not None or step.order_by
            or step.limit is not None or step.offset is not None):
        return None
    if step.from_clause is None:
        return None
    for expr in _step_exprs(step):
        for node in expr.walk():
            if isinstance(node, (ast.ExistsExpr, ast.InSubquery, ast.Star)):
                return None

    cte_name = cte.name.lower()
    key_column = columns[0]
    cte_columns = frozenset(columns)

    # -- FROM shape: TableRef leaves only, anchor leftmost -----------------
    leaves: list[_Leaf] = []
    joins: list[ast.Join] = []
    for node in _flatten_from(step.from_clause):
        if isinstance(node, ast.Join):
            joins.append(node)
            continue
        if not isinstance(node, ast.TableRef):
            return None
        name = node.name.lower()
        if name == cte_name:
            leaf_columns = cte_columns
            is_cte = True
        elif catalog.exists(name):
            leaf_columns = frozenset(
                c.lower() for c in catalog.get(name).schema.names)
            is_cte = False
        else:
            return None  # some other CTE or unknown relation
        leaves.append(_Leaf(node.binding_name.lower(), name, is_cte,
                            leaf_columns))
    if not leaves or not leaves[0].is_cte:
        return None
    bindings = [leaf.binding for leaf in leaves]
    if len(set(bindings)) != len(bindings):
        return None
    anchor = leaves[0]

    # -- join kinds --------------------------------------------------------
    # LEFT joins preserve every anchor row; INNER joins may drop anchor
    # rows whose partners vanish.  With a WHERE clause the body merges by
    # key anyway, so dropped rows simply keep their old values; without
    # one the full body *replaces* the table, so a dropped key changes the
    # result keyset — accepted, but flagged for a run-time keyset guard.
    allowed = {ast.JoinKind.LEFT, ast.JoinKind.INNER}
    if any(join.kind not in allowed for join in joins):
        return None
    guard_keyset = step.where is None and any(
        join.kind is ast.JoinKind.INNER for join in joins)

    def resolve(ref: ast.ColumnRef) -> Optional[_Leaf]:
        name = ref.name.lower()
        if ref.table is not None:
            qualifier = ref.table.lower()
            for leaf in leaves:
                if leaf.binding == qualifier:
                    return leaf if name in leaf.columns else None
            return None
        matches = [leaf for leaf in leaves if name in leaf.columns]
        return matches[0] if len(matches) == 1 else None

    # -- output key: item 0 is the bare anchor key -------------------------
    if not step.items:
        return None
    first = step.items[0].expr
    if not isinstance(first, ast.ColumnRef) \
            or first.name.lower() != key_column \
            or resolve(first) is not anchor:
        return None

    # -- grouping: by anchor columns, key first ----------------------------
    if step.group_by:
        head = step.group_by[0]
        if not isinstance(head, ast.ColumnRef) \
                or head.name.lower() != key_column \
                or resolve(head) is not anchor:
            return None
        for expr in step.group_by:
            for node in expr.walk():
                if isinstance(node, ast.ColumnRef) \
                        and resolve(node) is not anchor:
                    return None
    else:
        # Without grouping only a pure per-row map over the anchor is
        # per-key: joins could multiply rows and a full-table aggregate
        # collapses them.
        if len(leaves) > 1:
            return None
        for item in step.items:
            for node in item.expr.walk():
                if isinstance(node, ast.FunctionCall) \
                        and node.name in ast.AGGREGATE_FUNCTIONS:
                    return None

    # -- influence links for every non-anchor CTE reference ----------------
    equalities = []
    conditions = [join.condition for join in joins
                  if join.condition is not None]
    if step.where is not None:
        conditions.append(step.where)
    from .expr_utils import split_conjuncts
    for condition in conditions:
        for conjunct in split_conjuncts(condition):
            if isinstance(conjunct, ast.BinaryOp) \
                    and conjunct.op is ast.BinaryOperator.EQ \
                    and isinstance(conjunct.left, ast.ColumnRef) \
                    and isinstance(conjunct.right, ast.ColumnRef):
                left_leaf = resolve(conjunct.left)
                right_leaf = resolve(conjunct.right)
                if left_leaf is not None and right_leaf is not None:
                    equalities.append(
                        (left_leaf, conjunct.left.name.lower(),
                         right_leaf, conjunct.right.name.lower()))

    def key_links(ref_leaf: _Leaf):
        """(other leaf, other column) pairs equated with ``ref_leaf``'s
        key column."""
        for ll, lc, rl, rc in equalities:
            if ll is ref_leaf and lc == key_column:
                yield rl, rc
            if rl is ref_leaf and rc == key_column:
                yield ll, lc

    influences: list[tuple[str, str, str]] = []
    for leaf in leaves[1:]:
        if not leaf.is_cte:
            continue
        linked = False
        for other, other_column in key_links(leaf):
            if other is anchor and other_column == key_column:
                linked = True  # identity: frontier influences itself
                break
            if other.is_cte:
                continue
            # r.key = b.x; need anchor.key = b.y on the same base leaf.
            for anchor_side, anchor_column in key_links(anchor):
                if anchor_side is other:
                    influences.append(
                        (other.table, other_column, anchor_column))
                    linked = True
                    break
            if linked:
                break
        if not linked:
            return None
    return DeltaSafety(influences=tuple(influences),
                       guard_keyset=guard_keyset)


def _flatten_from(relation: ast.Relation) -> Iterator[ast.Relation]:
    """Yield every Join node and every leaf, leftmost leaf first."""
    if isinstance(relation, ast.Join):
        yield relation
        yield from _flatten_from(relation.left)
        yield from _flatten_from(relation.right)
    else:
        yield relation


def _step_exprs(step: ast.Select) -> Iterator[ast.Expr]:
    for item in step.items:
        yield item.expr
    if step.where is not None:
        yield step.where
    yield from step.group_by
    for node in _flatten_from(step.from_clause):
        if isinstance(node, ast.Join) and node.condition is not None:
            yield node.condition
