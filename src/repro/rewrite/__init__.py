"""Rewrite subsystem: rule framework plus the optimization rewrites.

The standard pipeline (applied to every materialized plan) is exposed as
:func:`optimize_plan`; the iterative-CTE-specific rewrites (pushdown
safety, common results) are invoked from :mod:`repro.core.rewrite`.
"""

from ..execution.context import SessionOptions
from ..plan.logical import LogicalOp
from .common_results import (
    CommonBlock,
    extract_common_results,
    is_loop_invariant,
)
from .delta import DeltaSafety, analyze_iterative_delta
from .expr_utils import conjoin, split_conjuncts
from .folding import fold_expr, fold_plan_filters
from .framework import apply_rules
from .join_reorder import reorder_joins
from .join_rules import inner_over_left_commute, outer_to_inner
from .pushdown import (
    invariant_columns,
    push_filters,
    pushable_into_iterative,
)

__all__ = [
    "CommonBlock",
    "extract_common_results",
    "is_loop_invariant",
    "DeltaSafety",
    "analyze_iterative_delta",
    "conjoin",
    "split_conjuncts",
    "fold_expr",
    "fold_plan_filters",
    "apply_rules",
    "inner_over_left_commute",
    "outer_to_inner",
    "push_filters",
    "pushable_into_iterative",
    "reorder_joins",
    "invariant_columns",
    "optimize_plan",
]


def optimize_plan(plan: LogicalOp, options: SessionOptions,
                  estimator=None, tracer=None, catalog=None) -> LogicalOp:
    """The standard optimization-rewrite pipeline for one plan tree.

    ``estimator`` (a :class:`repro.stats.CardinalityEstimator`) unlocks
    the cost-based passes; rule-based passes run regardless.  ``tracer``
    (a :class:`repro.obs.Tracer`) wraps the pass in a ``rewrite`` phase
    span whose ``rule.<name>`` attributes count how often each rule
    actually changed the plan.

    With the ``enable_plan_verifier`` option on, the IR verifier
    (:mod:`repro.verify`) checks the incoming plan (attributed to the
    ``build`` pass) and re-checks after every rewrite pass that changed
    it, so a broken rewrite is caught at the pass that broke it.
    """
    verifier = None
    if options.enable_plan_verifier:
        from ..verify.plans import verify_plan

        def verifier(p: LogicalOp, pass_name: str) -> None:
            verify_plan(p, f"rewrite:{pass_name}", catalog)

        verify_plan(plan, "build", catalog)

    rules = [fold_plan_filters]
    if options.enable_predicate_pushdown:
        rules.append(push_filters)
    if options.enable_outer_to_inner:
        rules.append(outer_to_inner)
        rules.append(inner_over_left_commute)

    def reorder(plan: LogicalOp, observer=None) -> LogicalOp:
        if not options.enable_join_reorder or estimator is None:
            return plan
        reordered = reorder_joins(plan, estimator)
        if reordered is not plan:
            if observer is not None:
                observer(reorder_joins)
            if verifier is not None:
                verifier(reordered, "reorder_joins")
        return reordered

    if tracer is None or not tracer.enabled:
        plan = apply_rules(plan, rules, verifier=verifier)
        return reorder(plan)

    fired: dict[str, int] = {}

    def observer(rule) -> None:
        name = getattr(rule, "__name__", str(rule))
        fired[name] = fired.get(name, 0) + 1

    with tracer.span("rewrite", kind="phase") as span:
        plan = apply_rules(plan, rules, observer, verifier=verifier)
        plan = reorder(plan, observer)
        span.set(**{f"rule.{name}": count
                    for name, count in sorted(fired.items())})
    return plan
