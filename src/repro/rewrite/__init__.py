"""Rewrite subsystem: rule framework plus the optimization rewrites.

The standard pipeline (applied to every materialized plan) is exposed as
:func:`optimize_plan`; the iterative-CTE-specific rewrites (pushdown
safety, common results) are invoked from :mod:`repro.core.rewrite`.
"""

from ..execution.context import SessionOptions
from ..plan.logical import LogicalOp
from .common_results import (
    CommonBlock,
    extract_common_results,
    is_loop_invariant,
)
from .expr_utils import conjoin, split_conjuncts
from .folding import fold_expr, fold_plan_filters
from .framework import apply_rules
from .join_reorder import reorder_joins
from .join_rules import inner_over_left_commute, outer_to_inner
from .pushdown import (
    invariant_columns,
    push_filters,
    pushable_into_iterative,
)

__all__ = [
    "CommonBlock",
    "extract_common_results",
    "is_loop_invariant",
    "conjoin",
    "split_conjuncts",
    "fold_expr",
    "fold_plan_filters",
    "apply_rules",
    "inner_over_left_commute",
    "outer_to_inner",
    "push_filters",
    "pushable_into_iterative",
    "reorder_joins",
    "invariant_columns",
    "optimize_plan",
]


def optimize_plan(plan: LogicalOp, options: SessionOptions,
                  estimator=None) -> LogicalOp:
    """The standard optimization-rewrite pipeline for one plan tree.

    ``estimator`` (a :class:`repro.stats.CardinalityEstimator`) unlocks
    the cost-based passes; rule-based passes run regardless.
    """
    rules = [fold_plan_filters]
    if options.enable_predicate_pushdown:
        rules.append(push_filters)
    if options.enable_outer_to_inner:
        rules.append(outer_to_inner)
        rules.append(inner_over_left_commute)
    plan = apply_rules(plan, rules)
    if options.enable_join_reorder and estimator is not None:
        plan = reorder_joins(plan, estimator)
    return plan
