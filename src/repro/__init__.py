"""repro — reproduction of DBSpinner (ICDE 2021): iterative CTEs in a
relational engine.

Public entry points::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
    db.execute("INSERT INTO edges VALUES (1, 2, 1.0)")
    result = db.execute("WITH ITERATIVE r (x) AS (...) SELECT * FROM r")
"""

__version__ = "1.0.0"

from .errors import (
    BindError,
    CatalogError,
    DuplicateKeyError,
    ExecutionError,
    PlanError,
    ReproError,
    SqlSyntaxError,
    TypeCheckError,
)

__all__ = [
    "Database",
    "BindError",
    "CatalogError",
    "DuplicateKeyError",
    "ExecutionError",
    "PlanError",
    "ReproError",
    "SqlSyntaxError",
    "TypeCheckError",
    "__version__",
]


def __getattr__(name):
    # Lazy import so `import repro` stays cheap and avoids import cycles
    # while submodules are loaded on demand.
    if name == "Database":
        from .engine import Database
        return Database
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
