"""Tables and schemas.

A :class:`Table` is an ordered collection of equally long named
:class:`~repro.storage.column.Column` objects.  Tables are the value flowing
between executor operators; base tables living in the catalog are also
Tables (plus catalog metadata such as the primary key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..errors import CatalogError, TypeCheckError
from ..types import SqlType
from .column import Column


@dataclass(frozen=True)
class ColumnSchema:
    """Name and type of one column."""

    name: str
    sql_type: SqlType

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} {self.sql_type}"


@dataclass(frozen=True)
class Schema:
    """Ordered column definitions plus an optional primary-key column.

    The primary key matters to iterative CTEs: it is the row identity used
    to merge the working table back into the main CTE table (paper §II).
    """

    columns: tuple[ColumnSchema, ...]
    primary_key: str | None = None

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in schema: {names}")
        if self.primary_key is not None and self.primary_key not in names:
            raise CatalogError(
                f"primary key {self.primary_key!r} is not a column")

    @classmethod
    def of(cls, *pairs: tuple[str, SqlType],
           primary_key: str | None = None) -> "Schema":
        return cls(tuple(ColumnSchema(n, t) for n, t in pairs), primary_key)

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def type_of(self, name: str) -> SqlType:
        for column in self.columns:
            if column.name == name:
                return column.sql_type
        raise CatalogError(f"no such column: {name!r}")

    def index_of(self, name: str) -> int:
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise CatalogError(f"no such column: {name!r}")

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[ColumnSchema]:
        return iter(self.columns)


class Table:
    """A materialized relation: a schema and one Column per schema entry."""

    def __init__(self, schema: Schema, columns: Sequence[Column]):
        if len(schema) != len(columns):
            raise TypeCheckError(
                f"schema has {len(schema)} columns, got {len(columns)}")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise TypeCheckError(f"ragged columns: lengths {sorted(lengths)}")
        self.schema = schema
        self.columns = list(columns)

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        return cls(schema, [Column.from_values(c.sql_type, [])
                            for c in schema])

    @classmethod
    def from_rows(cls, schema: Schema,
                  rows: Iterable[Sequence[Any]]) -> "Table":
        """Build a table from an iterable of row tuples."""
        rows = list(rows)
        columns = []
        for i, col_schema in enumerate(schema):
            columns.append(Column.from_values(
                col_schema.sql_type, (row[i] for row in rows)))
        return cls(schema, columns)

    @classmethod
    def from_columns(cls, names_types_values) -> "Table":
        """Build from [(name, type, values), ...] triples."""
        schema = Schema(tuple(ColumnSchema(n, t)
                              for n, t, _ in names_types_values))
        columns = [Column.from_values(t, vals)
                   for _, t, vals in names_types_values]
        return cls(schema, columns)

    # -- accessors ----------------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(self.columns[0])

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> Column:
        return self.columns[self.schema.index_of(name)]

    def rows(self) -> list[tuple[Any, ...]]:
        """Materialize all rows as Python tuples (None for NULL)."""
        lists = [c.to_list() for c in self.columns]
        return list(zip(*lists)) if lists else []

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows()]

    def nbytes(self) -> int:
        return sum(c.nbytes() for c in self.columns)

    # -- row-level transforms used by operators ----------------------------

    def take(self, indices: np.ndarray) -> "Table":
        return Table(self.schema, [c.take(indices) for c in self.columns])

    def filter(self, keep: np.ndarray) -> "Table":
        return Table(self.schema, [c.filter(keep) for c in self.columns])

    def slice(self, start: int, stop: int) -> "Table":
        return Table(self.schema,
                     [c.slice(start, stop) for c in self.columns])

    def rename_columns(self, names: Sequence[str]) -> "Table":
        if len(names) != len(self.schema):
            raise TypeCheckError(
                f"expected {len(self.schema)} names, got {len(names)}")
        schema = Schema(tuple(ColumnSchema(n, c.sql_type)
                              for n, c in zip(names, self.schema.columns)),
                        self.schema.primary_key
                        if self.schema.primary_key in names else None)
        return Table(schema, self.columns)

    def with_primary_key(self, key: str | None) -> "Table":
        schema = Schema(self.schema.columns, key)
        return Table(schema, self.columns)

    def concat(self, other: "Table") -> "Table":
        """UNION ALL two compatible tables; keeps this table's names."""
        if len(self.schema) != len(other.schema):
            raise TypeCheckError("UNION arms have different column counts")
        columns = [a.concat(b)
                   for a, b in zip(self.columns, other.columns)]
        schema = Schema(tuple(
            ColumnSchema(s.name, c.sql_type)
            for s, c in zip(self.schema.columns, columns)),
            self.schema.primary_key)
        return Table(schema, columns)

    def copy(self) -> "Table":
        """A snapshot safe to retain across updates (columns are immutable,
        so sharing them is enough)."""
        return Table(self.schema, list(self.columns))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Table({', '.join(map(str, self.schema.columns))};"
                f" {self.num_rows} rows)")


def pretty_table(table: Table, limit: int = 20) -> str:
    """Render a table as aligned text (used by examples and EXPLAIN)."""
    names = table.schema.names
    rows = table.rows()[:limit]
    cells = [[("NULL" if v is None else
               f"{v:.5f}".rstrip("0").rstrip(".") if isinstance(v, float)
               else str(v)) for v in row] for row in rows]
    widths = [max([len(n)] + [len(r[i]) for r in cells])
              for i, n in enumerate(names)]
    header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = [" | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in cells]
    lines = [header, rule, *body]
    if table.num_rows > limit:
        lines.append(f"... ({table.num_rows} rows total)")
    return "\n".join(lines)
