"""Columnar storage: columns, tables, schemas, catalog, result registry."""

from .catalog import Catalog, CatalogStats, ResultRegistry
from .column import Column
from .segmented import SegmentedTable
from .snapshot import SnapshotCatalog
from .table import ColumnSchema, Schema, Table, pretty_table

__all__ = [
    "Catalog",
    "CatalogStats",
    "ResultRegistry",
    "Column",
    "ColumnSchema",
    "Schema",
    "SegmentedTable",
    "SnapshotCatalog",
    "Table",
    "pretty_table",
]
