"""Catalog and the intermediate-result lookup table.

Two registries live here:

* :class:`Catalog` — durable base tables created through DDL.  DDL against
  the catalog is deliberately *instrumented*: the paper's argument against
  middleware solutions is the metadata and locking overhead of temp-table
  DDL/DML, so the catalog counts every such operation and the engine layer
  charges for it.

* :class:`ResultRegistry` — the executor's lookup table for in-memory
  intermediate results, exactly the two-column structure of §VI-A: a name,
  and the stored result.  The *rename* operator is a constant-time update of
  this registry; when the new name already exists, its previous result is
  dropped and its memory released (modelled by accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError
from .table import Schema, Table


@dataclass
class CatalogStats:
    """Counters for metadata operations; read by the overhead model."""

    tables_created: int = 0
    tables_dropped: int = 0
    lookups: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "tables_created": self.tables_created,
            "tables_dropped": self.tables_dropped,
            "lookups": self.lookups,
        }


def _schema_signature(schema: Schema) -> tuple:
    """Column names/types — what a compiled plan bakes in."""
    return tuple((c.name, c.sql_type) for c in schema.columns)


class Catalog:
    """Named base tables, as created by ``CREATE TABLE``.

    ``version`` increments on every change a compiled plan could have
    baked in: table creation, drops, and content replacement that
    changes a table's schema signature (a type-widening INSERT).  The
    shared plan cache (:mod:`repro.plan.cache`) keys its entries on it.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self.stats = CatalogStats()
        self.version = 0

    def create(self, name: str, schema: Schema,
               if_not_exists: bool = False) -> None:
        key = name.lower()
        if key in self._tables:
            if if_not_exists:
                return
            raise CatalogError(f"table {name!r} already exists")
        self._tables[key] = Table.empty(schema)
        self.stats.tables_created += 1
        self.version += 1

    def drop(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"no such table: {name!r}")
        del self._tables[key]
        self.stats.tables_dropped += 1
        self.version += 1

    def get(self, name: str) -> Table:
        self.stats.lookups += 1
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table: {name!r}") from None

    def put(self, name: str, table: Table,
            prior_schema: Schema | None = None) -> None:
        """Replace the contents of an existing table (used by DML).

        Content replacement alone leaves ``version`` untouched — cached
        plans reference tables by name, not by object — but a schema
        change (a widening INSERT) invalidates plans that baked in the
        old column types.  ``prior_schema`` supports in-place appenders
        (a SegmentedTable widened before this call *is* the stored
        object, so the stored schema is already the new one)."""
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no such table: {name!r}")
        before = prior_schema if prior_schema is not None \
            else self._tables[key].schema
        if _schema_signature(before) != _schema_signature(table.schema):
            self.version += 1
        self._tables[key] = table

    def register(self, name: str, table: Table) -> None:
        """Create-and-fill in one step (used by loaders)."""
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        self._tables[key] = table
        self.stats.tables_created += 1
        self.version += 1

    def exists(self, name: str) -> bool:
        return name.lower() in self._tables

    def peek(self, name: str) -> Table | None:
        """Uninstrumented lookup for introspection tools (the IR
        verifier, EXPLAIN): returns None when absent instead of raising,
        and does not count as a metadata lookup — introspection must not
        perturb the overhead model's counters."""
        return self._tables.get(name.lower())

    def table_names(self) -> list[str]:
        return sorted(self._tables)


class ResultRegistry:
    """The executor's in-memory intermediate-result lookup table (§VI-A).

    Column one is the result name; column two is the stored Table (schema
    plus a pointer to the column memory).  ``rename`` relabels an entry in
    O(1) without touching the data — this is the mechanism behind the
    minimize-data-movement optimization of Fig. 8.
    """

    def __init__(self) -> None:
        self._results: dict[str, Table] = {}
        self.renames = 0
        self.bytes_released = 0

    def store(self, name: str, table: Table) -> None:
        self._results[name.lower()] = table

    def fetch(self, name: str) -> Table:
        try:
            return self._results[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no intermediate result named {name!r}") from None

    def exists(self, name: str) -> bool:
        return name.lower() in self._results

    def rename(self, old: str, new: str) -> None:
        """Point ``new`` at the result currently named ``old``.

        Mirrors §VI-A: look up the old name, update it with the new value;
        if the new name already points at a result, remove that entry and
        release its memory.
        """
        old_key, new_key = old.lower(), new.lower()
        if old_key not in self._results:
            raise CatalogError(f"no intermediate result named {old!r}")
        if new_key in self._results:
            self.bytes_released += self._results[new_key].nbytes()
            del self._results[new_key]
        self._results[new_key] = self._results.pop(old_key)
        self.renames += 1

    def drop(self, name: str) -> None:
        key = name.lower()
        if key in self._results:
            self.bytes_released += self._results[key].nbytes()
            del self._results[key]

    def clear(self) -> None:
        self._results.clear()

    def names(self) -> list[str]:
        return sorted(self._results)
