"""Chunked append-only tables.

A :class:`SegmentedTable` stores its rows as a list of immutable segment
tables so that the recursive fixpoint's per-iteration ``result ++ delta``
concatenation appends one segment in O(|delta|) instead of copying the
accumulated result.  Read paths that need contiguous columns (scans, join
builds, aggregation) trigger a lazy one-shot consolidation; paths that only
need metadata (``num_rows``, ``nbytes``, cache invalidation) are overridden
to iterate segments without consolidating.
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import TypeCheckError
from ..types import common_type
from .column import Column
from .table import ColumnSchema, Schema, Table


class SegmentedTable(Table):
    """A Table whose rows live in appended segments.

    Deliberately does *not* call ``Table.__init__``: ``columns`` is a lazy
    property here, and ``num_rows`` is answered from segment lengths so the
    hot loop never pays for consolidation.  Any inherited method that reads
    ``self.columns`` (take, filter, rows, ...) transparently consolidates
    first and keeps full Table semantics.
    """

    def __init__(self, base: Table):
        if isinstance(base, SegmentedTable):
            self.schema = base.schema
            self._segments = list(base._segments)
            self._flat = base._flat
        else:
            self.schema = base.schema
            self._segments = [base]
            self._flat = base
        # Counters for tests/telemetry: how often reads forced a rebuild
        # and how many rows those rebuilds copied.
        self.consolidations = 0
        self.rows_consolidated = 0
        # Serializes structural mutation (append, consolidation) against
        # snapshot capture: concurrent server sessions pin read snapshots
        # while writer sessions append, and without the lock a reader's
        # consolidation could drop a segment appended mid-rebuild.
        self._lock = threading.RLock()

    @classmethod
    def wrap(cls, table: Table) -> "SegmentedTable":
        if isinstance(table, SegmentedTable):
            return table
        return cls(table)

    # -- append-only write path --------------------------------------------

    def append(self, delta: Table) -> None:
        """Append ``delta`` as a new segment in O(|delta|).

        The schema's column types are widened eagerly (cheap, metadata only)
        so type queries never have to consolidate; the data itself is cast
        lazily when a read path consolidates.
        """
        if len(delta.schema) != len(self.schema):
            raise TypeCheckError(
                f"append arity mismatch: {len(self.schema)} columns vs "
                f"{len(delta.schema)}")
        if delta.num_rows == 0:
            return
        with self._lock:
            self.schema = Schema(
                tuple(ColumnSchema(s.name,
                                   common_type(s.sql_type, c.sql_type))
                      for s, c in zip(self.schema.columns, delta.columns)),
                self.schema.primary_key)
            self._segments.append(delta)
            self._flat = None

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def watermarks(self) -> list[int]:
        """Cumulative row counts per segment: ``watermarks[i]`` is the
        number of rows held by segments ``0..i`` inclusive.  Monotone
        non-decreasing by construction (empty deltas are never appended);
        the storage verifier checks that invariant after every merge."""
        marks: list[int] = []
        total = 0
        for segment in self._segments:
            total += segment.num_rows
            marks.append(total)
        return marks

    # -- metadata reads that must not consolidate --------------------------

    @property
    def num_rows(self) -> int:
        return sum(seg.num_rows for seg in self._segments)

    def nbytes(self) -> int:
        return sum(seg.nbytes() for seg in self._segments)

    def known_columns(self) -> list[Column]:
        """Every Column object currently backing this table.

        Cache invalidation needs the live column versions without forcing a
        consolidation (invalidating a table should not copy it)."""
        columns: list[Column] = []
        for segment in self._segments:
            columns.extend(segment.columns)
        return columns

    # -- consolidating read path -------------------------------------------

    @property
    def columns(self) -> list[Column]:
        flat = self._flat
        if flat is None:
            with self._lock:
                self._consolidate()
                flat = self._flat
        return flat.columns

    def snapshot(self) -> Table:
        """A consistent, immutable view of the current contents.

        This is the serving layer's snapshot-read primitive: the returned
        plain :class:`Table` is never mutated again — later ``append``
        calls replace ``_flat`` on *this* object but cannot touch the
        consolidated table a reader pinned, so a scan running in one
        session can never be torn by DML appends in another.  The row
        count of the returned table is the reader's segment watermark.
        """
        with self._lock:
            if self._flat is None:
                self._consolidate()
            return self._flat

    def _consolidate(self) -> None:
        """Rebuild contiguous columns with one allocation per column.

        The output dtype is known up front (``append`` widens the schema
        eagerly), so each column is filled by slicing segments directly
        into a preallocated typed ndarray — no intermediate concat column,
        no post-hoc cast of the merged vector.  Segments whose stored type
        lags the widened schema are cast individually (O(|segment|)).
        Idempotent under the lock: a second caller that raced the first
        to the ``_flat is None`` check finds the work already done.
        """
        if self._flat is not None:
            return
        segments = self._segments
        total = sum(seg.num_rows for seg in segments)
        columns = []
        for i, col_schema in enumerate(self.schema.columns):
            target = col_schema.sql_type
            data = np.empty(total, dtype=target.numpy_dtype)
            mask = np.empty(total, dtype=np.bool_)
            at = 0
            for segment in segments:
                part = segment.columns[i]
                if part.sql_type is not target:
                    part = part.cast(target)
                stop = at + len(part)
                data[at:stop] = part.data
                mask[at:stop] = part.mask
                at = stop
            columns.append(Column(target, data, mask))
        flat = Table(self.schema, columns)
        self._flat = flat
        self._segments = [flat]
        self.consolidations += 1
        self.rows_consolidated += flat.num_rows
