"""Snapshot-isolated catalog views for concurrent sessions.

The engine's storage is effectively multi-version for free: UPDATE and
DELETE *replace* a table object in the catalog (the old object is
untouched), and INSERT appends immutable segments to a
:class:`~repro.storage.segmented.SegmentedTable`.  A reader therefore
gets snapshot isolation by pinning, per table, either

* the consolidated flat :class:`~repro.storage.table.Table` behind a
  SegmentedTable (:meth:`SegmentedTable.snapshot`), whose row count is
  the reader's *segment watermark* — later appends land in segments the
  pinned table does not reference; or
* the current table object itself, when it is a plain Table — replaced
  wholesale by writers, never mutated.

:class:`SnapshotCatalog` wraps the shared :class:`Catalog` and performs
that pinning lazily on first access, so a statement only pins the
tables it actually reads.  Once pinned, a name always resolves to the
same object for the lifetime of the snapshot — a self-join, or a query
that scans a table twice, can never observe two different versions.

Lifecycle (managed by :class:`repro.engine.session.Session`): one
snapshot per read statement in autocommit, one per transaction inside
BEGIN/COMMIT (dropped on the session's own writes so it reads its own
writes).  Metadata mutation (CREATE/DROP) is not snapshotted — DDL
takes the engine write lock and is serialized against everything.
"""

from __future__ import annotations

from .catalog import Catalog, CatalogStats
from .segmented import SegmentedTable
from .table import Table


class SnapshotCatalog:
    """A read view of a :class:`Catalog` pinned at first access.

    Duck-types the Catalog surface the execution layer touches
    (``get``/``peek``/``exists``/``table_names``/``stats``).  Write
    methods are deliberately absent: DML/DDL statements run against the
    base catalog under the engine write lock, never through a snapshot.
    """

    def __init__(self, base: Catalog):
        self._base = base
        self._pinned: dict[str, Table] = {}
        # Pinned at creation so plan-cache validity checks agree with
        # what this snapshot can see.
        self.catalog_version = base.version

    # -- pinning -----------------------------------------------------------

    def _pin(self, key: str, table: Table) -> Table:
        snap = table.snapshot() if isinstance(table, SegmentedTable) \
            else table
        self._pinned[key] = snap
        return snap

    def watermarks(self) -> dict[str, int]:
        """Row-count watermark of every pinned table (diagnostics and
        the concurrency stress harness's replay verification)."""
        return {name: table.num_rows
                for name, table in self._pinned.items()}

    # -- Catalog surface ---------------------------------------------------

    @property
    def stats(self) -> CatalogStats:
        return self._base.stats

    def get(self, name: str) -> Table:
        key = name.lower()
        pinned = self._pinned.get(key)
        if pinned is not None:
            self._base.stats.lookups += 1
            return pinned
        return self._pin(key, self._base.get(name))

    def peek(self, name: str) -> Table | None:
        key = name.lower()
        pinned = self._pinned.get(key)
        if pinned is not None:
            return pinned
        table = self._base.peek(name)
        if table is None:
            return None
        return self._pin(key, table)

    def exists(self, name: str) -> bool:
        return name.lower() in self._pinned or self._base.exists(name)

    def table_names(self) -> list[str]:
        return self._base.table_names()
