"""Columnar storage primitive: a typed vector with a validity mask.

A :class:`Column` is the unit the vectorized executor operates on.  Values
live in a numpy array; NULLs are tracked in a parallel boolean mask (True
means NULL).  Masked slots hold an arbitrary in-band value that must never be
observed — every consumer is required to respect the mask.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..errors import TypeCheckError
from ..types import SqlType, coerce_scalar, is_null

# Monotonic version source shared by every column.  A version uniquely
# identifies one column's contents for the lifetime of the process, which
# is what makes it safe to use as a kernel-cache key (see
# repro.execution.kernel_cache): two columns never share a version, and a
# "mutation" in this engine is always the construction of a new column.
_column_versions = itertools.count(1)

_FILL_VALUES = {
    SqlType.INTEGER: 0,
    SqlType.FLOAT: 0.0,
    SqlType.NUMERIC: 0.0,
    SqlType.BOOLEAN: False,
    SqlType.TEXT: None,
    SqlType.NULL: None,
}


class Column:
    """An immutable typed vector of SQL values with NULL tracking."""

    __slots__ = ("sql_type", "data", "mask", "version")

    def __init__(self, sql_type: SqlType, data: np.ndarray, mask: np.ndarray):
        if len(data) != len(mask):
            raise ValueError("data and mask lengths differ")
        self.sql_type = sql_type
        self.data = data
        self.mask = mask
        self.version = next(_column_versions)

    def bump_version(self) -> None:
        """Mark the column as mutated: any cached derived state (codes,
        dictionaries) keyed by the old version becomes unreachable.  The
        engine treats columns as immutable, so this only matters to code
        that mutates ``data``/``mask`` in place (none in-tree)."""
        self.version = next(_column_versions)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_values(cls, sql_type: SqlType, values: Iterable[Any]) -> "Column":
        """Build a column from Python scalars, coercing to ``sql_type``."""
        values = list(values)
        mask = np.fromiter((is_null(v) for v in values), dtype=np.bool_,
                           count=len(values))
        fill = _FILL_VALUES[sql_type]
        coerced = [fill if is_null(v) else coerce_scalar(v, sql_type)
                   for v in values]
        data = np.array(coerced, dtype=sql_type.numpy_dtype)
        return cls(sql_type, data, mask)

    @classmethod
    def from_numpy(cls, sql_type: SqlType, data: np.ndarray,
                   mask: np.ndarray | None = None) -> "Column":
        """Wrap an existing numpy array (no copy) as a column."""
        if mask is None:
            mask = np.zeros(len(data), dtype=np.bool_)
        return cls(sql_type, data, mask)

    @classmethod
    def nulls(cls, sql_type: SqlType, count: int) -> "Column":
        """A column of ``count`` NULLs of the given type."""
        fill = _FILL_VALUES[sql_type]
        data = np.full(count, fill, dtype=sql_type.numpy_dtype)
        return cls(sql_type, data, np.ones(count, dtype=np.bool_))

    @classmethod
    def constant(cls, sql_type: SqlType, value: Any, count: int) -> "Column":
        """A column repeating one scalar ``count`` times."""
        if is_null(value):
            return cls.nulls(sql_type, count)
        coerced = coerce_scalar(value, sql_type)
        data = np.full(count, coerced, dtype=sql_type.numpy_dtype)
        return cls(sql_type, data, np.zeros(count, dtype=np.bool_))

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_list())

    def __getitem__(self, index: int) -> Any:
        if self.mask[index]:
            return None
        value = self.data[index]
        return self._to_python(value)

    def _to_python(self, value: Any) -> Any:
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.bool_):
            return bool(value)
        return value

    def to_list(self) -> list[Any]:
        """Materialize as a list of Python scalars (None for NULL).

        ``ndarray.tolist`` converts the whole vector in one C pass (numpy
        scalars become native ints/floats/bools); only the NULL slots are
        then patched, so cost is O(n) + O(nulls) instead of n per-element
        numpy indexing round-trips.
        """
        values = self.data.tolist()
        if self.mask.any():
            for i in np.nonzero(self.mask)[0].tolist():
                values[i] = None
        return values

    # -- vector operations used by operators -------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position.  Negative indices mean 'emit NULL'.

        The NULL-on-negative convention is what the left outer join uses to
        pad unmatched probe rows.
        """
        indices = np.asarray(indices, dtype=np.int64)
        null_out = indices < 0
        safe = np.where(null_out, 0, indices)
        if len(self.data):
            data = self.data[safe]
            mask = self.mask[safe] | null_out
        else:
            # Gathering from an empty column only makes sense if every
            # index demands a NULL.
            if not null_out.all():
                raise IndexError("take from empty column with real indices")
            data = np.full(len(indices), _FILL_VALUES[self.sql_type],
                           dtype=self.sql_type.numpy_dtype)
            mask = np.ones(len(indices), dtype=np.bool_)
        return Column(self.sql_type, data, mask)

    def filter(self, keep: np.ndarray) -> "Column":
        """Keep rows where the boolean vector ``keep`` is True."""
        return Column(self.sql_type, self.data[keep], self.mask[keep])

    def slice(self, start: int, stop: int) -> "Column":
        return Column(self.sql_type, self.data[start:stop],
                      self.mask[start:stop])

    def cast(self, target: SqlType) -> "Column":
        """CAST to ``target``, preserving NULLs."""
        if target is self.sql_type:
            return self
        if self.sql_type is SqlType.NULL:
            # An untyped all-NULL column: retype without touching data.
            return Column.nulls(target, len(self))
        from ..types import can_cast
        if not can_cast(self.sql_type, target):
            raise TypeCheckError(
                f"cannot cast {self.sql_type} to {target}")
        if target is SqlType.TEXT:
            # Bulk-convert via tolist (one C pass), then stringify; the
            # masked slots keep an arbitrary in-band value.
            raw = self.data.tolist()
            if self.sql_type is SqlType.BOOLEAN:
                strings = ["true" if v else "false" for v in raw]
            else:
                strings = [str(v) for v in raw]
            data = np.empty(len(strings), dtype=object)
            data[:] = strings
            return Column(target, data, self.mask.copy())
        if self.sql_type is SqlType.TEXT:
            raw = self.data.tolist()
            nulls = self.mask.tolist()
            values = [None if null else coerce_scalar(value, target)
                      for value, null in zip(raw, nulls)]
            return Column.from_values(target, values)
        data = self.data.astype(target.numpy_dtype)
        return Column(target, data, self.mask.copy())

    def concat(self, other: "Column") -> "Column":
        """Append another column of a compatible type."""
        from ..types import common_type
        target = common_type(self.sql_type, other.sql_type)
        left = self if self.sql_type is target else self.cast(target)
        right = other if other.sql_type is target else other.cast(target)
        data = np.concatenate([left.data, right.data])
        mask = np.concatenate([left.mask, right.mask])
        return Column(target, data, mask)

    @classmethod
    def concat_many(cls, parts: Sequence["Column"]) -> "Column":
        """Concatenate many columns with a single allocation.

        Pairwise ``concat`` over N segments copies the accumulated prefix N
        times; this is the consolidation path segmented tables use to stay
        O(total) instead.
        """
        from ..types import common_type
        if not parts:
            raise ValueError("concat_many of zero columns")
        if len(parts) == 1:
            return parts[0]
        target = parts[0].sql_type
        for part in parts[1:]:
            target = common_type(target, part.sql_type)
        casted = [p if p.sql_type is target else p.cast(target)
                  for p in parts]
        data = np.concatenate([p.data for p in casted])
        mask = np.concatenate([p.mask for p in casted])
        return cls(target, data, mask)

    def equals(self, other: "Column") -> np.ndarray:
        """Element-wise SQL equality as a boolean vector where NULL = NULL
        yields False (used for change detection the DELTA condition needs a
        separate helper: :meth:`is_distinct_from`)."""
        both_valid = ~self.mask & ~other.mask
        eq = np.zeros(len(self), dtype=np.bool_)
        if both_valid.any():
            eq[both_valid] = self.data[both_valid] == other.data[both_valid]
        return eq

    def is_distinct_from(self, other: "Column") -> np.ndarray:
        """SQL IS DISTINCT FROM: NULL vs NULL is *not* distinct."""
        if len(self) != len(other):
            raise ValueError("length mismatch")
        both_null = self.mask & other.mask
        either_null = self.mask | other.mask
        differs = np.zeros(len(self), dtype=np.bool_)
        both_valid = ~either_null
        if both_valid.any():
            differs[both_valid] = (self.data[both_valid]
                                   != other.data[both_valid])
        return (either_null & ~both_null) | differs

    def nbytes(self) -> int:
        """Approximate memory footprint (drives movement accounting)."""
        if self.sql_type is SqlType.TEXT:
            payload = sum(len(v) for v, m in zip(self.data, self.mask)
                          if not m and isinstance(v, str))
            return payload + self.mask.nbytes
        return self.data.nbytes + self.mask.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        preview = self.to_list()[:8]
        suffix = "..." if len(self) > 8 else ""
        return f"Column({self.sql_type}, {preview}{suffix})"
