"""SQL data types and coercion rules.

The engine supports a deliberately small but complete set of scalar types —
the ones exercised by the paper's workloads (integers, floating point /
numeric, booleans, text).  Each SQL type maps onto a numpy dtype used by the
columnar storage layer; NULLs are carried in a separate validity mask, never
as sentinel values.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import TypeCheckError


class SqlType(enum.Enum):
    """Scalar SQL types understood by the engine."""

    INTEGER = "integer"
    FLOAT = "float"
    NUMERIC = "numeric"  # alias of FLOAT storage-wise, kept for CAST fidelity
    BOOLEAN = "boolean"
    TEXT = "text"
    # Pseudo-type for untyped NULL literals; unifies with anything.
    NULL = "null"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype backing columns of this SQL type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (SqlType.INTEGER, SqlType.FLOAT, SqlType.NUMERIC)


_NUMPY_DTYPES = {
    SqlType.INTEGER: np.dtype(np.int64),
    SqlType.FLOAT: np.dtype(np.float64),
    SqlType.NUMERIC: np.dtype(np.float64),
    SqlType.BOOLEAN: np.dtype(np.bool_),
    SqlType.TEXT: np.dtype(object),
    SqlType.NULL: np.dtype(object),
}

# Names accepted in SQL (CREATE TABLE / CAST) for each type.
_TYPE_NAMES = {
    "int": SqlType.INTEGER,
    "integer": SqlType.INTEGER,
    "bigint": SqlType.INTEGER,
    "smallint": SqlType.INTEGER,
    "float": SqlType.FLOAT,
    "double": SqlType.FLOAT,
    "real": SqlType.FLOAT,
    "numeric": SqlType.NUMERIC,
    "decimal": SqlType.NUMERIC,
    "bool": SqlType.BOOLEAN,
    "boolean": SqlType.BOOLEAN,
    "text": SqlType.TEXT,
    "varchar": SqlType.TEXT,
    "char": SqlType.TEXT,
    "string": SqlType.TEXT,
}


def type_from_name(name: str) -> SqlType:
    """Resolve a SQL type name (as written in DDL or CAST) to a SqlType."""
    try:
        return _TYPE_NAMES[name.lower()]
    except KeyError:
        raise TypeCheckError(f"unknown SQL type: {name!r}") from None


def common_type(left: SqlType, right: SqlType) -> SqlType:
    """The result type of combining two operand types (e.g. in arithmetic,
    CASE branches, set operations, or comparisons).

    Follows the usual SQL promotion lattice: NULL unifies with anything,
    INTEGER promotes to FLOAT/NUMERIC, NUMERIC and FLOAT unify to FLOAT.
    """
    if left is right:
        return left
    if left is SqlType.NULL:
        return right
    if right is SqlType.NULL:
        return left
    if left.is_numeric and right.is_numeric:
        if SqlType.FLOAT in (left, right) or SqlType.NUMERIC in (left, right):
            # NUMERIC + FLOAT and INTEGER + FLOAT both widen to FLOAT storage.
            if left is SqlType.NUMERIC and right is SqlType.NUMERIC:
                return SqlType.NUMERIC
            return SqlType.FLOAT
        return SqlType.INTEGER
    raise TypeCheckError(f"no common type for {left} and {right}")


def can_cast(source: SqlType, target: SqlType) -> bool:
    """Whether CAST(source AS target) is defined."""
    if source is target or source is SqlType.NULL:
        return True
    if source.is_numeric and target.is_numeric:
        return True
    if target is SqlType.TEXT:
        return True
    if source is SqlType.TEXT and target.is_numeric:
        return True
    if source is SqlType.BOOLEAN and target.is_numeric:
        return True
    if source.is_numeric and target is SqlType.BOOLEAN:
        return True
    return False


def python_to_sql_type(value: object) -> SqlType:
    """Infer the SqlType of a Python literal (used when loading rows)."""
    if value is None:
        return SqlType.NULL
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, (int, np.integer)):
        return SqlType.INTEGER
    if isinstance(value, (float, np.floating)):
        return SqlType.FLOAT
    if isinstance(value, str):
        return SqlType.TEXT
    raise TypeCheckError(f"unsupported Python value for SQL: {type(value).__name__}")
