"""Null-aware scalar value helpers.

Scalar values cross the engine boundary in two places: literals inside
expressions, and rows returned to the caller.  Inside the executor everything
is vectorized (see :mod:`repro.execution.expressions`); these helpers define
the *scalar* semantics that the vectorized code must agree with, and they are
what the property-based tests check the vectorized evaluator against.
"""

from __future__ import annotations

import math
from typing import Any

from .datatypes import SqlType


def is_null(value: Any) -> bool:
    """SQL NULL test for a Python-level scalar."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        # NaN never enters tables (the mask carries nullness), but guard
        # against it leaking from numpy reductions.
        return True
    return False


def sql_equal(left: Any, right: Any) -> bool | None:
    """Three-valued '=' on scalars: NULL if either side is NULL."""
    if is_null(left) or is_null(right):
        return None
    return left == right


def sql_compare(left: Any, right: Any) -> int | None:
    """Three-valued comparison: None on NULL, else -1/0/1."""
    if is_null(left) or is_null(right):
        return None
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def sql_and(left: bool | None, right: bool | None) -> bool | None:
    """Kleene three-valued AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: bool | None, right: bool | None) -> bool | None:
    """Kleene three-valued OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: bool | None) -> bool | None:
    """Kleene three-valued NOT."""
    if value is None:
        return None
    return not value


def coerce_scalar(value: Any, target: SqlType) -> Any:
    """Convert a Python scalar to the canonical Python form of ``target``.

    Returns None unchanged (NULL survives any cast).
    """
    if is_null(value):
        return None
    if target is SqlType.INTEGER:
        return int(value)
    if target in (SqlType.FLOAT, SqlType.NUMERIC):
        return float(value)
    if target is SqlType.BOOLEAN:
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("t", "true", "1"):
                return True
            if lowered in ("f", "false", "0"):
                return False
            raise ValueError(f"invalid boolean literal: {value!r}")
        return bool(value)
    if target is SqlType.TEXT:
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, float) and value.is_integer():
            return str(value)
        return str(value)
    return value
