"""SQL type system: scalar types, coercion rules, and NULL semantics."""

from .datatypes import (
    SqlType,
    can_cast,
    common_type,
    python_to_sql_type,
    type_from_name,
)
from .values import (
    coerce_scalar,
    is_null,
    sql_and,
    sql_compare,
    sql_equal,
    sql_not,
    sql_or,
)

__all__ = [
    "SqlType",
    "can_cast",
    "common_type",
    "python_to_sql_type",
    "type_from_name",
    "coerce_scalar",
    "is_null",
    "sql_and",
    "sql_compare",
    "sql_equal",
    "sql_not",
    "sql_or",
]
