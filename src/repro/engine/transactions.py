"""Transaction and lock accounting.

The engine is single-threaded, so this is an *overhead model*, not a
concurrency-control implementation: what matters for the paper's argument
(§II) is that external/middleware solutions pay per-statement transaction
and lock management that the single-plan native execution avoids.  Every
DDL/DML statement acquires locks here; the counters feed the middleware
ablation benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import TransactionError


class TxnState(enum.Enum):
    IDLE = "idle"
    ACTIVE = "active"


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class TransactionStats:
    begun: int = 0
    committed: int = 0
    rolled_back: int = 0
    implicit: int = 0
    locks_acquired: int = 0
    lock_table_peak: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


class TransactionManager:
    """Tracks transaction state and a (single-session) lock table."""

    def __init__(self) -> None:
        self.state = TxnState.IDLE
        self.stats = TransactionStats()
        self._held_locks: dict[str, LockMode] = {}

    def begin(self) -> None:
        if self.state is TxnState.ACTIVE:
            raise TransactionError("transaction already in progress")
        self.state = TxnState.ACTIVE
        self.stats.begun += 1

    def commit(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError("no transaction in progress")
        self.state = TxnState.IDLE
        self.stats.committed += 1
        self._held_locks.clear()

    def rollback(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError("no transaction in progress")
        self.state = TxnState.IDLE
        self.stats.rolled_back += 1
        self._held_locks.clear()

    def lock(self, table: str, mode: LockMode) -> None:
        """Record a lock acquisition (upgrade shared → exclusive)."""
        key = table.lower()
        held = self._held_locks.get(key)
        if held is LockMode.EXCLUSIVE:
            return
        self._held_locks[key] = mode
        self.stats.locks_acquired += 1
        self.stats.lock_table_peak = max(self.stats.lock_table_peak,
                                         len(self._held_locks))

    def statement_boundary(self) -> None:
        """Autocommit: outside an explicit transaction every statement is
        its own transaction, releasing locks at its end."""
        if self.state is TxnState.IDLE:
            if self._held_locks:
                self.stats.implicit += 1
            self._held_locks.clear()
