"""Transaction and lock accounting.

The engine is single-threaded, so this is an *overhead model*, not a
concurrency-control implementation: what matters for the paper's argument
(§II) is that external/middleware solutions pay per-statement transaction
and lock management that the single-plan native execution avoids.  Every
DDL/DML statement acquires locks here; the counters feed the middleware
ablation benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import TransactionError


class TxnState(enum.Enum):
    IDLE = "idle"
    ACTIVE = "active"


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class TransactionStats:
    begun: int = 0
    committed: int = 0
    rolled_back: int = 0
    implicit: int = 0
    locks_acquired: int = 0
    lock_table_peak: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


class TransactionManager:
    """Tracks transaction state and a (single-session) lock table.

    Also owns the session's *read snapshot* (a
    :class:`~repro.storage.snapshot.SnapshotCatalog`): inside an
    explicit transaction every read statement reuses the snapshot the
    first read pinned, giving repeatable reads; the session's own
    writes drop it (:meth:`note_write`) so the transaction reads its
    own writes; in autocommit the statement boundary drops it, pinning
    each statement at its own watermark.
    """

    def __init__(self) -> None:
        self.state = TxnState.IDLE
        self.stats = TransactionStats()
        self._held_locks: dict[str, LockMode] = {}
        self.snapshot = None

    def begin(self) -> None:
        if self.state is TxnState.ACTIVE:
            raise TransactionError("transaction already in progress")
        self.state = TxnState.ACTIVE
        self.stats.begun += 1
        self.snapshot = None

    def commit(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError("no transaction in progress")
        self.state = TxnState.IDLE
        self.stats.committed += 1
        self._held_locks.clear()
        self.snapshot = None

    def rollback(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError("no transaction in progress")
        self.state = TxnState.IDLE
        self.stats.rolled_back += 1
        self._held_locks.clear()
        self.snapshot = None

    def note_write(self) -> None:
        """The session wrote: any pinned snapshot is stale for it now.

        Dropping the snapshot (instead of patching it) is what makes a
        transaction read its own writes — the next read statement pins a
        fresh snapshot that includes them."""
        self.snapshot = None

    def lock(self, table: str, mode: LockMode) -> None:
        """Record a lock acquisition (upgrade shared → exclusive)."""
        key = table.lower()
        held = self._held_locks.get(key)
        if held is LockMode.EXCLUSIVE:
            return
        self._held_locks[key] = mode
        self.stats.locks_acquired += 1
        self.stats.lock_table_peak = max(self.stats.lock_table_peak,
                                         len(self._held_locks))

    def statement_boundary(self) -> None:
        """Autocommit: outside an explicit transaction every statement is
        its own transaction, releasing locks at its end."""
        if self.state is TxnState.IDLE:
            if self._held_locks:
                self.stats.implicit += 1
            self._held_locks.clear()
            self.snapshot = None
