"""The Database façade: the public entry point of the engine.

Mirrors the paper's processing pipeline: parse → functional rewrite
(iterative/recursive CTE expansion into a step program) → optimization
rewrites → execution.  ``execute`` takes SQL text (or a parsed statement)
and returns a :class:`QueryResult` for queries, or an affected-row count
wrapped in the same type for DML.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from ..errors import CatalogError, ReproError
from ..execution import (
    ExecutionContext,
    ExecutionStats,
    SessionOptions,
)
from ..obs import (
    NULL_TRACER,
    MetricsRegistry,
    Trace,
    Tracer,
    build_trace,
)
from ..plan import PlanContext
from ..plan.program import Program
from ..sql import ast, parse, parse_script
from ..storage import (
    Catalog,
    ColumnSchema,
    ResultRegistry,
    Schema,
    Table,
    pretty_table,
)
from ..core.rewrite import compile_statement
from ..runtime import ProgramRunner
from ..stats import (
    CardinalityEstimator,
    StatisticsCatalog,
    estimate_program,
)
from ..types import SqlType, type_from_name
from .dml import execute_delete, execute_insert, execute_update
from .transactions import LockMode, TransactionManager
from .workload import UnitKind, WorkloadManager


@dataclass
class QueryResult:
    """Result of one statement: a table for queries, a row count for DML."""

    table: Optional[Table] = None
    rowcount: int = 0

    def rows(self) -> list[tuple]:
        return self.table.rows() if self.table is not None else []

    def to_dicts(self) -> list[dict[str, Any]]:
        return self.table.to_dicts() if self.table is not None else []

    def column_names(self) -> list[str]:
        if self.table is None:
            return []
        return self.table.schema.names

    def scalar(self) -> Any:
        rows = self.rows()
        if len(rows) != 1 or len(rows[0]) != 1:
            raise ReproError(
                f"scalar() needs a 1x1 result, got {len(rows)} row(s)")
        return rows[0][0]

    def pretty(self, limit: int = 20) -> str:
        if self.table is None:
            return f"({self.rowcount} rows affected)"
        return pretty_table(self.table, limit)


class Database:
    """An embedded relational engine with iterative-CTE support."""

    def __init__(self, options: Optional[SessionOptions] = None):
        from ..execution.kernel_cache import KernelCache
        self.catalog = Catalog()
        self.registry = ResultRegistry()
        self.options = options or SessionOptions()
        self.stats = ExecutionStats()
        self.transactions = TransactionManager()
        self.workload = WorkloadManager()
        self.statistics = StatisticsCatalog(self.catalog)
        # One kernel cache per database, shared by every statement's
        # execution context so loop-invariant state survives across
        # queries; DML invalidates the entries it replaces.
        self.kernel_cache = KernelCache(self.stats)
        # Observability (repro.obs): the metrics registry generalizes the
        # flat ExecutionStats counters; the last recorded trace backs
        # last_trace()/trace_json().
        self.metrics = MetricsRegistry()
        self._last_trace: Optional[Trace] = None
        # Loop telemetry published by the most recent traced run, picked
        # up by execute()/explain_analyze() when freezing the trace.
        self._trace_loops: list = []

    # -- public API --------------------------------------------------------

    def execute(self, sql: str | ast.Statement) -> QueryResult:
        """Parse (if needed) and run one statement.

        With the ``enable_tracing`` session option on, the statement
        records a span trace plus per-iteration loop telemetry,
        retrievable afterwards via :meth:`last_trace` /
        :meth:`trace_json`.
        """
        tracer = Tracer() if self.options.enable_tracing else NULL_TRACER
        started = time.perf_counter()
        stats_before = self.stats.snapshot() if tracer.enabled else None
        sql_text = sql if isinstance(sql, str) else None
        with tracer.span("statement", kind="query"):
            statement = parse(sql, tracer) if isinstance(sql, str) else sql
            self.stats.statements += 1
            try:
                result = self._dispatch(statement, tracer)
            finally:
                self.transactions.statement_boundary()
        self.metrics.counter("statements").add(1)
        self.metrics.histogram("statement_seconds").observe(
            time.perf_counter() - started)
        if tracer.enabled:
            self._last_trace = build_trace(
                tracer, loops=self._pending_loop_telemetry(tracer),
                metrics=self.stats.delta_since(stats_before),
                sql=sql_text)
        return result

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Run a ';'-separated script; returns one result per statement."""
        return [self.execute(stmt) for stmt in parse_script(sql)]

    def explain(self, sql: str | ast.Statement,
                verbose: bool = False) -> str:
        """The step program for a query, in the paper's Table I style."""
        statement = parse(sql) if isinstance(sql, str) else sql
        if isinstance(statement, ast.Explain):
            statement = statement.statement
        if not isinstance(statement, (ast.Select, ast.SetOp)):
            raise ReproError("EXPLAIN supports only queries")
        program = self._compile(statement)
        return program.explain(verbose=verbose)

    def explain_cost(self, sql: str | ast.Statement) -> str:
        """The step program plus the cost model's estimate: setup +
        estimated-iterations x per-iteration + final (the paper's
        future-work costing, see repro.stats)."""
        statement = parse(sql) if isinstance(sql, str) else sql
        if not isinstance(statement, (ast.Select, ast.SetOp)):
            raise ReproError("EXPLAIN supports only queries")
        program = self._compile(statement)
        report = estimate_program(
            program, self.statistics,
            default_iterations=self.options.default_iteration_estimate)
        return program.explain() + "\n--\n" + report.describe()

    def explain_analyze(self, sql: str | ast.Statement) -> str:
        """Run the query and report measured per-step executions, rows
        and time — the runtime counterpart of ``explain_cost``.

        Always traces (regardless of ``enable_tracing``): the rendered
        report includes the span tree plus a per-iteration breakdown for
        every loop, and the trace is stored for :meth:`last_trace`.
        """
        sql_text = sql if isinstance(sql, str) else None
        tracer = Tracer()
        stats_before = self.stats.snapshot()
        with tracer.span("statement", kind="query"):
            statement = parse(sql, tracer) if isinstance(sql, str) else sql
            if not isinstance(statement, (ast.Select, ast.SetOp)):
                raise ReproError("EXPLAIN ANALYZE supports only queries")
            program = self._compile(statement, tracer)
            # Cost the program before running it so the iteration
            # estimate does not see this very run's measurement.
            cost_report = estimate_program(
                program, self.statistics,
                default_iterations=self.options.default_iteration_estimate)
            for estimate in cost_report.loop_estimates:
                spec = program.loops.get(estimate.loop_id)
                tracer.event(
                    "loop_estimate", kind="decision",
                    loop_id=estimate.loop_id,
                    cte=spec.cte_name if spec is not None else "",
                    estimated_iterations=estimate.iterations,
                    basis=estimate.basis,
                    estimated_cost_per_iteration=(
                        cost_report.per_iteration_cost.get(
                            estimate.loop_id)),
                    reason=(f"compile-time iteration estimate on a "
                            f"{estimate.basis} basis"))
            ctx = ExecutionContext(self.catalog, self.registry,
                                   self.options, self.stats,
                                   self.kernel_cache, tracer=tracer)
            runner = ProgramRunner(program, ctx, instrument=True)
            with tracer.span("execute", kind="phase"):
                runner.run()
        self._record_loop_measurements(runner)
        loops = [runner.loop_telemetry[key]
                 for key in sorted(runner.loop_telemetry)]
        self._last_trace = build_trace(
            tracer, loops=loops,
            metrics=self.stats.delta_since(stats_before), sql=sql_text)
        report = runner.report()
        error_lines = self._iteration_error_lines(program, cost_report,
                                                  runner)
        if error_lines:
            report += "\n" + "\n".join(error_lines)
        return report

    def publish_trace(self, tracer: Tracer, loops: Iterable = (),
                      sql: Optional[str] = None,
                      metrics: Optional[dict] = None) -> Trace:
        """Freeze ``tracer`` as this database's last trace.

        Used by the out-of-engine drivers (middleware, stored
        procedures, MPP harnesses) so their baseline runs appear in
        :meth:`trace_json` side by side with engine traces."""
        self._last_trace = build_trace(tracer, loops=loops,
                                       metrics=metrics, sql=sql)
        return self._last_trace

    def last_trace(self) -> Optional[Trace]:
        """The trace of the most recent traced statement (``None`` when
        nothing has been traced — tracing is opt-in via the
        ``enable_tracing`` option or ``explain_analyze``)."""
        return self._last_trace

    def trace_json(self, indent: Optional[int] = None) -> str:
        """The last trace serialized to its stable JSON schema."""
        if self._last_trace is None:
            raise ReproError(
                "no trace recorded: set the enable_tracing option or run "
                "explain_analyze() first")
        return self._last_trace.to_json(indent=indent)

    def metrics_snapshot(self) -> dict:
        """Current contents of the metrics registry plus the flat
        execution counters ingested as gauges."""
        self.metrics.ingest(self.stats.snapshot(), prefix="stats.")
        return self.metrics.snapshot()

    def set_option(self, name: str, value) -> None:
        if not hasattr(self.options, name):
            raise ReproError(f"unknown session option: {name!r}")
        setattr(self.options, name, value)

    def reset_stats(self) -> None:
        self.stats.reset()
        self.workload.reset()
        self.metrics.reset()

    # -- convenience loaders -------------------------------------------------

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, SqlType]],
                     primary_key: Optional[str] = None) -> None:
        schema = Schema(tuple(ColumnSchema(n.lower(), t)
                              for n, t in columns), primary_key)
        self.catalog.create(name, schema)

    def load_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk append rows to an existing table (no per-row DML cost)."""
        table = self.catalog.get(name)
        loaded = Table.from_rows(table.schema, rows)
        self.kernel_cache.invalidate_table(table)
        self.catalog.put(name, table.concat(loaded)
                         if table.num_rows else loaded)
        return loaded.num_rows

    def table(self, name: str) -> Table:
        return self.catalog.get(name)

    # -- dispatch ------------------------------------------------------------

    def _plan_context(self) -> PlanContext:
        return PlanContext(self.catalog)

    def _compile(self, statement: ast.SelectLike,
                 tracer=NULL_TRACER) -> Program:
        self.stats.plans_built += 1
        estimator = CardinalityEstimator(self.statistics)
        with tracer.span("compile", kind="phase") as span:
            program = compile_statement(statement, self._plan_context(),
                                        self.options, self.stats,
                                        estimator, tracer)
            if tracer.enabled:
                span.set(steps=len(program.steps))
                if program.verifier_verdict is not None:
                    span.set(verifier=program.verifier_verdict)
        return program

    def _pending_loop_telemetry(self, tracer) -> list:
        """Loop telemetry handed up by the runner of a traced run."""
        loops, self._trace_loops = self._trace_loops, []
        return loops

    def _record_loop_measurements(self, runner: ProgramRunner) -> None:
        """Feed observed iteration counts back into the statistics
        catalog so subsequent cost estimates use measured convergence."""
        for cte_name, count in runner.loop_iteration_counts().items():
            self.statistics.record_loop_iterations(cte_name, count)

    @staticmethod
    def _iteration_error_lines(program: Program, cost_report,
                               runner: ProgramRunner) -> list[str]:
        """Estimated-vs-measured iteration lines for EXPLAIN ANALYZE."""
        measured_by_cte = runner.loop_iteration_counts()
        lines: list[str] = []
        for estimate in cost_report.loop_estimates:
            spec = program.loops.get(estimate.loop_id)
            if spec is None:
                continue
            measured = measured_by_cte.get(spec.cte_name.lower())
            if measured is None:
                continue
            error = (estimate.iterations - measured) / max(measured, 1)
            lines.append(
                f"loop {spec.cte_name}: estimated "
                f"{estimate.iterations:.0f} iterations "
                f"({estimate.basis}), measured {measured}, "
                f"error {error:+.0%}")
        return lines

    def _run_query(self, statement: ast.SelectLike,
                   tracer=NULL_TRACER) -> Table:
        program = self._compile(statement, tracer)
        self.workload.admit(UnitKind.QUERY, "query",
                            steps=len(program.steps))
        ctx = ExecutionContext(self.catalog, self.registry, self.options,
                               self.stats, self.kernel_cache,
                               tracer=tracer)
        runner = ProgramRunner(program, ctx)
        with tracer.span("execute", kind="phase"):
            table = runner.run()
        self._record_loop_measurements(runner)
        if tracer.enabled:
            self._trace_loops = [runner.loop_telemetry[key]
                                 for key in sorted(runner.loop_telemetry)]
        if table is None:
            raise ReproError("query program produced no result")
        return table

    def _dispatch(self, statement: ast.Statement,
                  tracer=NULL_TRACER) -> QueryResult:
        if isinstance(statement, (ast.Select, ast.SetOp)):
            return QueryResult(table=self._run_query(statement, tracer))

        if isinstance(statement, ast.Explain):
            text = self.explain(statement.statement)
            table = Table.from_columns([
                ("plan", SqlType.TEXT, text.splitlines()),
            ])
            return QueryResult(table=table)

        if isinstance(statement, ast.CreateTable):
            self._execute_create(statement)
            return QueryResult()

        if isinstance(statement, ast.Analyze):
            self.workload.admit(UnitKind.DDL,
                                f"analyze {statement.table or 'all'}")
            analyzed = self.statistics.analyze(statement.table)
            table = Table.from_columns([
                ("analyzed", SqlType.TEXT, analyzed)])
            return QueryResult(table=table, rowcount=len(analyzed))

        if isinstance(statement, ast.DropTable):
            self.workload.admit(UnitKind.DDL, f"drop {statement.name}")
            self.transactions.lock(statement.name, LockMode.EXCLUSIVE)
            self.catalog.drop(statement.name, statement.if_exists)
            self.statistics.invalidate(statement.name)
            return QueryResult()

        ctx = ExecutionContext(self.catalog, self.registry, self.options,
                               self.stats, self.kernel_cache)

        if isinstance(statement, ast.Insert):
            self.workload.admit(UnitKind.DML, f"insert {statement.table}")
            self.transactions.lock(statement.table, LockMode.EXCLUSIVE)
            self.statistics.invalidate(statement.table)
            count = execute_insert(statement, ctx, self._plan_context(),
                                   self._run_query)
            return QueryResult(rowcount=count)

        if isinstance(statement, ast.Update):
            self.workload.admit(UnitKind.DML, f"update {statement.table}")
            self.transactions.lock(statement.table, LockMode.EXCLUSIVE)
            self.statistics.invalidate(statement.table)
            count = execute_update(statement, ctx, self._plan_context())
            return QueryResult(rowcount=count)

        if isinstance(statement, ast.Delete):
            self.workload.admit(UnitKind.DML, f"delete {statement.table}")
            self.transactions.lock(statement.table, LockMode.EXCLUSIVE)
            self.statistics.invalidate(statement.table)
            count = execute_delete(statement, ctx, self._plan_context())
            return QueryResult(rowcount=count)

        if isinstance(statement, ast.BeginTransaction):
            self.workload.admit(UnitKind.CONTROL, "begin")
            self.transactions.begin()
            return QueryResult()
        if isinstance(statement, ast.CommitTransaction):
            self.workload.admit(UnitKind.CONTROL, "commit")
            self.transactions.commit()
            return QueryResult()
        if isinstance(statement, ast.RollbackTransaction):
            self.workload.admit(UnitKind.CONTROL, "rollback")
            self.transactions.rollback()
            return QueryResult()

        raise ReproError(
            f"unsupported statement: {type(statement).__name__}")

    def _execute_create(self, statement: ast.CreateTable) -> None:
        self.workload.admit(UnitKind.DDL, f"create {statement.name}")
        self.transactions.lock(statement.name, LockMode.EXCLUSIVE)
        primary_key = None
        columns = []
        for definition in statement.columns:
            sql_type = type_from_name(definition.type_name)
            columns.append(ColumnSchema(definition.name.lower(), sql_type))
            if definition.primary_key:
                if primary_key is not None:
                    raise CatalogError("multiple PRIMARY KEY columns")
                primary_key = definition.name.lower()
        schema = Schema(tuple(columns), primary_key)
        self.catalog.create(statement.name, schema,
                            statement.if_not_exists)
