"""The Database façade: the public entry point of the embedded engine.

Mirrors the paper's processing pipeline: parse → functional rewrite
(iterative/recursive CTE expansion into a step program) → optimization
rewrites → execution.  ``execute`` takes SQL text (or a parsed statement)
and returns a :class:`QueryResult` for queries, or an affected-row count
wrapped in the same type for DML.

Since the engine/session split, a ``Database`` is exactly a private
:class:`~repro.engine.engine.Engine` plus the one
:class:`~repro.engine.session.Session` over it — every method lives on
the session.  Multi-client embedders create the engine themselves and
open sessions with :meth:`Engine.create_session` (or go through
``repro.server`` for dispatch, admission control, and tracing).
"""

from __future__ import annotations

from typing import Optional

from ..execution import SessionOptions
from .engine import Engine
from .session import QueryResult, Session

__all__ = ["Database", "QueryResult"]


class Database(Session):
    """An embedded relational engine with iterative-CTE support.

    A single-session convenience wrapper: construction builds a private
    shared :class:`Engine` and binds this object as its first session.
    ``db.engine`` exposes the engine for callers that outgrow one
    session."""

    def __init__(self, options: Optional[SessionOptions] = None):
        super().__init__(Engine(options), options=options)
