"""Workload-manager accounting.

The paper's second argument for the native approach (§II): a middleware
solution submits each basic operation as its own statement, so the
workload manager schedules and accounts per statement rather than per
iterative query.  This module records admissions so the ablation benchmark
can show the difference in scheduling units (one plan vs. hundreds of
statements for the same computation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class UnitKind(enum.Enum):
    QUERY = "query"
    DDL = "ddl"
    DML = "dml"
    CONTROL = "control"


@dataclass
class AdmissionRecord:
    kind: UnitKind
    description: str
    steps: int  # plan steps for queries, 1 otherwise


@dataclass
class WorkloadManager:
    """Counts the units of work the scheduler sees."""

    admissions: list[AdmissionRecord] = field(default_factory=list)

    def admit(self, kind: UnitKind, description: str,
              steps: int = 1) -> None:
        self.admissions.append(AdmissionRecord(kind, description, steps))

    @property
    def units_admitted(self) -> int:
        return len(self.admissions)

    def units_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.admissions:
            counts[record.kind.value] = counts.get(record.kind.value, 0) + 1
        return counts

    def reset(self) -> None:
        self.admissions.clear()
