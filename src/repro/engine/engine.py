"""The shared Engine: everything that outlives (and is shared by) any
one connection.

The original ``Database`` object conflated two lifetimes: storage,
statistics, the kernel cache, and the metrics registry live as long as
the data does, while session options, transaction state, and traces
belong to one connection.  The serving layer (``repro.server``) needs
that split — many concurrent :class:`~repro.engine.session.Session`
objects over one :class:`Engine` — and ``Database`` remains as the
thin one-session façade over the pair.

Engine-level state and why it is engine-level:

* ``catalog`` / ``statistics`` — the data itself and what the cost
  model knows about it.
* ``stats`` / ``metrics`` / ``workload`` — instrumentation is reported
  per engine; the paper's overhead arguments are about total work, not
  per-connection work.
* ``kernel_cache`` — keyed by immutable column versions, so results
  computed for one session are valid for every other.
* ``plan_cache`` — compiled programs are immutable at run time; caching
  them engine-wide is what amortizes Fig. 1's per-statement compile
  storm across clients.
* ``write_lock`` — DML/DDL serialization point.  Readers never take
  it: they pin snapshots (:mod:`repro.storage.snapshot`) instead.

This module must stay import-clean of session-scoped types: the
``engine-layering`` lint rule (:mod:`repro.verify.lint`) rejects an
Engine that stores or imports per-session state at module level.
"""

from __future__ import annotations

import itertools
import threading
from typing import Optional

from ..execution import ExecutionStats, SessionOptions
from ..obs import MetricsRegistry
from ..plan.cache import PlanCache
from ..stats import StatisticsCatalog
from ..storage import Catalog
from .workload import WorkloadManager


class Engine:
    """Shared, connection-independent half of the database."""

    def __init__(self, options: Optional[SessionOptions] = None):
        from ..execution.kernel_cache import KernelCache
        self.catalog = Catalog()
        self.stats = ExecutionStats()
        # Template copied into every new session; sessions then diverge
        # freely via set_option without affecting each other.
        self.default_options = options or SessionOptions()
        self.statistics = StatisticsCatalog(self.catalog)
        self.kernel_cache = KernelCache(self.stats)
        self.metrics = MetricsRegistry()
        self.workload = WorkloadManager()
        self.plan_cache = PlanCache(self.stats)
        # Single-writer serialization: every DML/DDL statement (from any
        # session) runs under this lock.  Reads are lock-free — snapshot
        # pinning makes them consistent without blocking writers.
        self.write_lock = threading.RLock()
        self._session_ids = itertools.count(1)

    def create_session(self, options: Optional[SessionOptions] = None):
        """A new connection over this engine's shared state."""
        # Function-level import: Session objects hold per-connection
        # state, which the engine layer must not depend on structurally
        # (see the engine-layering lint rule).
        from .session import Session
        return Session(self, options=options)

    def next_session_id(self) -> int:
        return next(self._session_ids)

    def metrics_snapshot(self) -> dict:
        """Current contents of the metrics registry plus the flat
        execution counters ingested as gauges."""
        self.metrics.ingest(self.stats.snapshot(), prefix="stats.")
        return self.metrics.snapshot()

    def reset_stats(self) -> None:
        self.stats.reset()
        self.workload.reset()
        self.metrics.reset()
