"""DML execution: INSERT, UPDATE, DELETE.

The iterative-CTE rewrite never needs DML — that is the point of the paper
— but the middleware and stored-procedure baselines drive the engine
exactly this way (Fig. 1), so the engine supports the full statement set,
with the locking/metadata overheads instrumented.
"""

from __future__ import annotations

import numpy as np

from ..errors import CatalogError, ExecutionError, TypeCheckError
from ..execution import ExecutionContext, Frame, evaluate, evaluate_predicate
from ..execution.operators import execute_plan
from ..plan import Field, LogicalTempScan, PlanContext, build_relation
from ..sql import ast
from ..storage import Column, SegmentedTable, Table
from ..types import SqlType


def execute_insert(stmt: ast.Insert, ctx: ExecutionContext,
                   plan_context: PlanContext,
                   select_runner) -> int:
    """Append rows; returns the number of rows inserted.

    ``select_runner`` runs a SELECT statement and returns a Table (the
    engine provides its full pipeline so INSERT ... SELECT supports
    iterative CTEs too).
    """
    table = ctx.catalog.get(stmt.table)
    target_names = [c.name for c in table.schema.columns]
    if stmt.columns is not None:
        provided = [c.lower() for c in stmt.columns]
        unknown = set(provided) - {n.lower() for n in target_names}
        if unknown:
            raise CatalogError(
                f"unknown column(s) in INSERT: {sorted(unknown)}")
    else:
        provided = [n.lower() for n in target_names]

    if isinstance(stmt.source, list):
        rows = _rows_from_values(stmt.source, len(provided))
    else:
        source = select_runner(stmt.source)
        if len(source.schema) != len(provided):
            raise TypeCheckError(
                f"INSERT provides {len(provided)} columns but the query "
                f"produces {len(source.schema)}")
        rows = source.rows()

    full_rows = []
    position = {name.lower(): i for i, name in enumerate(provided)}
    for row in rows:
        full = []
        for name in target_names:
            index = position.get(name.lower())
            full.append(None if index is None else row[index])
        full_rows.append(tuple(full))

    appended = Table.from_rows(table.schema, full_rows)
    ctx.kernel_cache.invalidate_table(table)
    if table.num_rows and full_rows:
        # Append a segment in O(|inserted|) instead of copying the whole
        # table; scans consolidate lazily.  The pre-append schema lets
        # the catalog detect in-place widening (wrap may alias `table`).
        prior_schema = table.schema
        segmented = SegmentedTable.wrap(table)
        segmented.append(appended)
        ctx.catalog.put(stmt.table, segmented, prior_schema=prior_schema)
    elif full_rows:
        ctx.catalog.put(stmt.table, appended)
    else:
        ctx.catalog.put(stmt.table, table)
    ctx.stats.lock_acquisitions += 1
    ctx.stats.rows_moved += len(full_rows)
    return len(full_rows)


def _rows_from_values(rows: list[list[ast.Expr]], width: int):
    out = []
    dual = Frame.dual()
    for row in rows:
        if len(row) != width:
            raise TypeCheckError(
                f"INSERT row has {len(row)} values, expected {width}")
        values = []
        for expr in row:
            column = evaluate(expr, dual)
            values.append(column[0])
        out.append(tuple(values))
    return out


def execute_delete(stmt: ast.Delete, ctx: ExecutionContext,
                   plan_context: PlanContext) -> int:
    table = ctx.catalog.get(stmt.table)
    ctx.stats.lock_acquisitions += 1
    # The replaced columns' cached dictionaries must never be served for
    # the table's new contents; new columns carry new versions, so this
    # is eager memory release as much as invalidation.
    ctx.kernel_cache.invalidate_table(table)
    if stmt.where is None:
        ctx.catalog.put(stmt.table, Table.empty(table.schema))
        return table.num_rows
    frame = _target_frame(table, stmt.table)
    doomed = evaluate_predicate(stmt.where, frame)
    survivors = table.filter(~doomed)
    ctx.catalog.put(stmt.table, survivors)
    return int(doomed.sum())


def execute_update(stmt: ast.Update, ctx: ExecutionContext,
                   plan_context: PlanContext) -> int:
    """UPDATE ... [FROM ...] [WHERE ...]; returns rows updated."""
    table = ctx.catalog.get(stmt.table)
    ctx.stats.lock_acquisitions += 1
    ctx.kernel_cache.invalidate_table(table)
    alias = stmt.table.lower()

    if stmt.from_clause is None:
        frame = _target_frame(table, stmt.table)
        if stmt.where is not None:
            hit = evaluate_predicate(stmt.where, frame)
        else:
            hit = np.ones(table.num_rows, dtype=np.bool_)
        matched = frame.filter(hit)
        row_ids = np.nonzero(hit)[0]
    else:
        matched, row_ids = _join_from(stmt, table, ctx, plan_context)

    if len(row_ids) == 0:
        return 0

    # Several FROM matches for one target row: last match wins
    # (deterministic here; PostgreSQL leaves it unspecified).
    new_columns = {c.name.lower(): list(col.to_list())
                   for c, col in zip(table.schema.columns, table.columns)}
    for column_name, expr in stmt.assignments:
        key = column_name.lower()
        if key not in new_columns:
            raise CatalogError(
                f"no column {column_name!r} in table {stmt.table!r}")
        values = evaluate(expr, matched)
        target_list = new_columns[key]
        value_list = values.to_list()
        for position, row_id in enumerate(row_ids):
            target_list[int(row_id)] = value_list[position]

    columns = [Column.from_values(c.sql_type, new_columns[c.name.lower()])
               for c in table.schema.columns]
    ctx.catalog.put(stmt.table, Table(table.schema, columns))
    unique_rows = len(np.unique(row_ids))
    ctx.stats.rows_moved += unique_rows
    return unique_rows


def _target_frame(table: Table, name: str) -> Frame:
    alias = name.lower()
    fields = tuple(Field(alias, c.name.lower(), c.sql_type)
                   for c in table.schema.columns)
    return Frame(fields, table.columns, table.num_rows)


def _join_from(stmt: ast.Update, table: Table, ctx: ExecutionContext,
               plan_context: PlanContext):
    """Join the target table with the FROM relation under WHERE.

    Implemented by staging the target (plus a synthetic row id) as a
    temporary result and reusing the executor's join machinery, so equi
    predicates get a hash join instead of a quadratic loop.
    """
    from ..plan.logical import LogicalJoin

    alias = stmt.table.lower()
    rowid_field = Field(alias, "__rowid", SqlType.INTEGER)
    fields = tuple(Field(alias, c.name.lower(), c.sql_type)
                   for c in table.schema.columns) + (rowid_field,)
    rowid = Column.from_numpy(
        SqlType.INTEGER, np.arange(table.num_rows, dtype=np.int64))
    staged = Frame(fields, list(table.columns) + [rowid],
                   table.num_rows).to_table()

    stage_name = plan_context.fresh_name("update_target")
    ctx.registry.store(stage_name, staged)
    try:
        target_scan = LogicalTempScan(stage_name, alias, fields)
        from_plan = build_relation(stmt.from_clause, plan_context.child())
        join = LogicalJoin(ast.JoinKind.INNER, target_scan, from_plan,
                           stmt.where)
        joined = execute_plan(join, ctx)
    finally:
        ctx.registry.drop(stage_name)
    row_ids = np.asarray(
        joined.resolve(ast.ColumnRef("__rowid", alias)).data,
        dtype=np.int64)
    return joined, row_ids
