"""Engine façade: Engine/Session split, Database, transactions,
workload accounting."""

from ..execution import SessionOptions
from .database import Database, QueryResult
from .engine import Engine
from .session import Session
from .transactions import LockMode, TransactionManager, TxnState
from .workload import UnitKind, WorkloadManager

__all__ = [
    "Database",
    "Engine",
    "QueryResult",
    "Session",
    "SessionOptions",
    "LockMode",
    "TransactionManager",
    "TxnState",
    "UnitKind",
    "WorkloadManager",
]
