"""Engine façade: Database, transactions, workload accounting."""

from ..execution import SessionOptions
from .database import Database, QueryResult
from .transactions import LockMode, TransactionManager, TxnState
from .workload import UnitKind, WorkloadManager

__all__ = [
    "Database",
    "QueryResult",
    "SessionOptions",
    "LockMode",
    "TransactionManager",
    "TxnState",
    "UnitKind",
    "WorkloadManager",
]
