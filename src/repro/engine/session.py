"""Per-connection sessions over a shared :class:`~repro.engine.engine.Engine`.

A :class:`Session` owns exactly the state that belongs to one client:
its option set, its transaction manager (including the pinned read
snapshot), its intermediate-result registry, and its traces.  Every
durable structure — catalog, statistics, kernel cache, plan cache,
metrics — is reached through the engine, exposed here as read-only
properties so existing ``db.catalog`` / ``db.stats`` call sites work
unchanged.

Concurrency contract (what the serving layer relies on):

* a session is used by one statement at a time (the server dispatches
  per-session serially);
* read statements never block: they pin a per-statement (or, inside
  BEGIN/COMMIT, per-transaction) :class:`~repro.storage.snapshot.\
SnapshotCatalog` whose watermarks freeze each table at statement start;
* write statements (DML/DDL) serialize engine-wide on
  ``engine.write_lock`` and drop the session's own snapshot
  (:meth:`TransactionManager.note_write`) so it reads its own writes.

The shared plan cache is consulted twice: ``execute`` tries the exact
statement text first (a hit skips even the parse), and ``_run_query``
tries the normalized shape+literals after parsing.  EXPLAIN variants
always bypass the cache — their reports must reflect a real compile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Any, Iterable, Optional, Sequence

from ..errors import CatalogError, ReproError
from ..execution import (
    ExecutionContext,
    ExecutionStats,
    SessionOptions,
)
from ..obs import (
    NULL_TRACER,
    MetricsRegistry,
    Trace,
    Tracer,
    build_trace,
)
from ..plan import PlanContext
from ..plan.program import Program
from ..sql import ast, parse, parse_script
from ..sql.normalize import normalize_statement
from ..storage import (
    Catalog,
    ColumnSchema,
    ResultRegistry,
    Schema,
    SnapshotCatalog,
    Table,
    pretty_table,
)
from ..core.rewrite import compile_statement
from ..runtime import ProgramRunner
from ..stats import (
    CardinalityEstimator,
    estimate_program,
)
from ..types import SqlType, type_from_name
from .dml import execute_delete, execute_insert, execute_update
from .engine import Engine
from .transactions import LockMode, TransactionManager, TxnState
from .workload import UnitKind


@dataclass
class QueryResult:
    """Result of one statement: a table for queries, a row count for DML."""

    table: Optional[Table] = None
    rowcount: int = 0

    def rows(self) -> list[tuple]:
        return self.table.rows() if self.table is not None else []

    def to_dicts(self) -> list[dict[str, Any]]:
        return self.table.to_dicts() if self.table is not None else []

    def column_names(self) -> list[str]:
        if self.table is None:
            return []
        return self.table.schema.names

    def scalar(self) -> Any:
        rows = self.rows()
        if len(rows) != 1 or len(rows[0]) != 1:
            raise ReproError(
                f"scalar() needs a 1x1 result, got {len(rows)} row(s)")
        return rows[0][0]

    def pretty(self, limit: int = 20) -> str:
        if self.table is None:
            return f"({self.rowcount} rows affected)"
        return pretty_table(self.table, limit)


class Session:
    """One connection's view of a shared :class:`Engine`."""

    def __init__(self, engine: Engine,
                 options: Optional[SessionOptions] = None):
        self._engine = engine
        self.session_id = engine.next_session_id()
        # An explicit option set is adopted as-is (the embedded façade
        # hands the caller's object through); otherwise the engine's
        # defaults are copied so sessions diverge independently.
        self.options = options if options is not None \
            else engine.default_options.copy()
        self.registry = ResultRegistry()
        self.transactions = TransactionManager()
        self._last_trace: Optional[Trace] = None
        # Loop telemetry published by the most recent traced run, picked
        # up by execute()/explain_analyze() when freezing the trace.
        self._trace_loops: list = []
        # The snapshot the most recent read statement ran against
        # (diagnostics; the stress harness reads its watermarks).
        self.last_snapshot: Optional[SnapshotCatalog] = None

    # -- shared state, reached through the engine ----------------------------

    @property
    def engine(self) -> Engine:
        return self._engine

    @property
    def catalog(self) -> Catalog:
        return self._engine.catalog

    @property
    def stats(self) -> ExecutionStats:
        return self._engine.stats

    @property
    def statistics(self):
        return self._engine.statistics

    @property
    def kernel_cache(self):
        return self._engine.kernel_cache

    @property
    def metrics(self) -> MetricsRegistry:
        return self._engine.metrics

    @property
    def workload(self):
        return self._engine.workload

    # -- public API --------------------------------------------------------

    def execute(self, sql: str | ast.Statement,
                tracer: Optional[Tracer] = None) -> QueryResult:
        """Parse (if needed) and run one statement.

        With the ``enable_tracing`` session option on, the statement
        records a span trace plus per-iteration loop telemetry,
        retrievable afterwards via :meth:`last_trace` /
        :meth:`trace_json`.  The server passes an external ``tracer``
        (a :class:`~repro.obs.trace.ContextTracer`) to collect the
        statement's spans itself; trace freezing is then the caller's
        responsibility.
        """
        external = tracer is not None
        if tracer is None:
            tracer = Tracer() if self.options.enable_tracing \
                else NULL_TRACER
        started = time.perf_counter()
        freeze = tracer.enabled and not external
        stats_before = self.stats.snapshot() if freeze else None
        sql_text = sql if isinstance(sql, str) else None
        with tracer.span("statement", kind="query"):
            result = self._execute_statement(sql, sql_text, tracer)
        self.metrics.counter("statements").add(1)
        self.metrics.histogram("statement_seconds").observe(
            time.perf_counter() - started)
        if freeze:
            self._last_trace = build_trace(
                tracer, loops=self._pending_loop_telemetry(tracer),
                metrics=self.stats.delta_since(stats_before),
                sql=sql_text)
        elif tracer.enabled:
            self._trace_loops = []
        return result

    def _execute_statement(self, sql: str | ast.Statement,
                           sql_text: Optional[str],
                           tracer) -> QueryResult:
        """The body of :meth:`execute`: text-cache fast path, else
        parse and dispatch; either way an autocommit boundary."""
        probed = False
        if sql_text is not None and self.options.enable_plan_cache:
            snapshot = self._read_catalog()
            program = self._engine.plan_cache.get_text(
                sql_text, self.options.compile_fingerprint(),
                snapshot.catalog_version)
            if program is not None:
                if tracer.enabled:
                    tracer.event("plan_cache_hit", kind="decision",
                                 level="text",
                                 reason="exact statement text seen "
                                        "before; parse and compile "
                                        "skipped")
                self.stats.statements += 1
                try:
                    return QueryResult(table=self._run_program(
                        program, snapshot, tracer))
                finally:
                    self.transactions.statement_boundary()
            # A known text whose program entry went stale (or was
            # evicted) already counted its miss in get_text; the
            # post-parse lookup in _run_query must not count it twice.
            probed = self._engine.plan_cache.knows_text(
                sql_text, self.options.compile_fingerprint())
        statement = parse(sql, tracer) if isinstance(sql, str) else sql
        self.stats.statements += 1
        try:
            return self._dispatch(statement, tracer, sql_text,
                                  cache_probed=probed)
        finally:
            self.transactions.statement_boundary()

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Run a ';'-separated script; returns one result per statement."""
        return [self.execute(stmt) for stmt in parse_script(sql)]

    def explain(self, sql: str | ast.Statement,
                verbose: bool = False) -> str:
        """The step program for a query, in the paper's Table I style."""
        statement = parse(sql) if isinstance(sql, str) else sql
        if isinstance(statement, ast.Explain):
            statement = statement.statement
        if not isinstance(statement, (ast.Select, ast.SetOp)):
            raise ReproError("EXPLAIN supports only queries")
        program = self._compile(statement)
        return program.explain(verbose=verbose)

    def explain_cost(self, sql: str | ast.Statement) -> str:
        """The step program plus the cost model's estimate: setup +
        estimated-iterations x per-iteration + final (the paper's
        future-work costing, see repro.stats)."""
        statement = parse(sql) if isinstance(sql, str) else sql
        if not isinstance(statement, (ast.Select, ast.SetOp)):
            raise ReproError("EXPLAIN supports only queries")
        program = self._compile(statement)
        report = estimate_program(
            program, self.statistics,
            default_iterations=self.options.default_iteration_estimate)
        return program.explain() + "\n--\n" + report.describe()

    def explain_analyze(self, sql: str | ast.Statement) -> str:
        """Run the query and report measured per-step executions, rows
        and time — the runtime counterpart of ``explain_cost``.

        Always traces (regardless of ``enable_tracing``): the rendered
        report includes the span tree plus a per-iteration breakdown for
        every loop, and the trace is stored for :meth:`last_trace`.
        Always compiles (bypassing the plan cache): the per-step report
        must describe a program built for this very statement.
        """
        sql_text = sql if isinstance(sql, str) else None
        tracer = Tracer()
        stats_before = self.stats.snapshot()
        with tracer.span("statement", kind="query"):
            statement = parse(sql, tracer) if isinstance(sql, str) else sql
            if not isinstance(statement, (ast.Select, ast.SetOp)):
                raise ReproError("EXPLAIN ANALYZE supports only queries")
            program = self._compile(statement, tracer)
            # Cost the program before running it so the iteration
            # estimate does not see this very run's measurement.
            cost_report = estimate_program(
                program, self.statistics,
                default_iterations=self.options.default_iteration_estimate)
            for estimate in cost_report.loop_estimates:
                spec = program.loops.get(estimate.loop_id)
                tracer.event(
                    "loop_estimate", kind="decision",
                    loop_id=estimate.loop_id,
                    cte=spec.cte_name if spec is not None else "",
                    estimated_iterations=estimate.iterations,
                    basis=estimate.basis,
                    estimated_cost_per_iteration=(
                        cost_report.per_iteration_cost.get(
                            estimate.loop_id)),
                    reason=(f"compile-time iteration estimate on a "
                            f"{estimate.basis} basis"))
            ctx = ExecutionContext(self.catalog, self.registry,
                                   self.options, self.stats,
                                   self.kernel_cache, tracer=tracer)
            runner = ProgramRunner(program, ctx, instrument=True)
            with tracer.span("execute", kind="phase"):
                runner.run()
        self._record_loop_measurements(runner)
        loops = [runner.loop_telemetry[key]
                 for key in sorted(runner.loop_telemetry)]
        self._last_trace = build_trace(
            tracer, loops=loops,
            metrics=self.stats.delta_since(stats_before), sql=sql_text)
        report = runner.report()
        error_lines = self._iteration_error_lines(program, cost_report,
                                                  runner)
        if error_lines:
            report += "\n" + "\n".join(error_lines)
        report += "\n" + self._plan_cache_report_line()
        return report

    def _plan_cache_report_line(self) -> str:
        """Engine-wide plan-cache counters, EXPLAIN ANALYZE's footer."""
        stats = self.stats
        return (f"plan cache: {stats.plan_cache_hits} hits "
                f"({stats.plan_cache_shape_hits} shape), "
                f"{stats.plan_cache_misses} misses, "
                f"{stats.plan_cache_invalidations} invalidations, "
                f"{len(self._engine.plan_cache)} cached programs")

    def publish_trace(self, tracer: Tracer, loops: Iterable = (),
                      sql: Optional[str] = None,
                      metrics: Optional[dict] = None) -> Trace:
        """Freeze ``tracer`` as this session's last trace.

        Used by the out-of-engine drivers (middleware, stored
        procedures, MPP harnesses) so their baseline runs appear in
        :meth:`trace_json` side by side with engine traces."""
        self._last_trace = build_trace(tracer, loops=loops,
                                       metrics=metrics, sql=sql)
        return self._last_trace

    def last_trace(self) -> Optional[Trace]:
        """The trace of the most recent traced statement (``None`` when
        nothing has been traced — tracing is opt-in via the
        ``enable_tracing`` option or ``explain_analyze``)."""
        return self._last_trace

    def trace_json(self, indent: Optional[int] = None) -> str:
        """The last trace serialized to its stable JSON schema."""
        if self._last_trace is None:
            raise ReproError(
                "no trace recorded: set the enable_tracing option or run "
                "explain_analyze() first")
        return self._last_trace.to_json(indent=indent)

    def metrics_snapshot(self) -> dict:
        """Current contents of the metrics registry plus the flat
        execution counters ingested as gauges."""
        return self._engine.metrics_snapshot()

    def set_option(self, name: str, value) -> None:
        if not hasattr(self.options, name):
            valid = ", ".join(f.name for f in fields(SessionOptions))
            raise ReproError(
                f"unknown session option: {name!r} "
                f"(valid options: {valid})")
        setattr(self.options, name, value)

    def reset_stats(self) -> None:
        self._engine.reset_stats()

    # -- convenience loaders -------------------------------------------------

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, SqlType]],
                     primary_key: Optional[str] = None) -> None:
        schema = Schema(tuple(ColumnSchema(n.lower(), t)
                              for n, t in columns), primary_key)
        with self._engine.write_lock:
            self.catalog.create(name, schema)
            self.transactions.note_write()

    def load_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk append rows to an existing table (no per-row DML cost)."""
        with self._engine.write_lock:
            table = self.catalog.get(name)
            loaded = Table.from_rows(table.schema, rows)
            self.kernel_cache.invalidate_table(table)
            self.catalog.put(name, table.concat(loaded)
                             if table.num_rows else loaded)
            self.transactions.note_write()
        return loaded.num_rows

    def table(self, name: str) -> Table:
        return self.catalog.get(name)

    # -- snapshots -----------------------------------------------------------

    def _read_catalog(self) -> SnapshotCatalog:
        """The catalog view a read statement runs against.

        Inside an explicit transaction the first read pins the
        transaction's snapshot and later reads reuse it (repeatable
        reads until the session's own next write); in autocommit each
        statement pins its own.  Pinning is lazy per table, so the
        snapshot freezes only what the statement actually touches.
        """
        txn = self.transactions
        if txn.state is TxnState.ACTIVE:
            if txn.snapshot is None:
                txn.snapshot = SnapshotCatalog(self._engine.catalog)
            snapshot = txn.snapshot
        else:
            snapshot = SnapshotCatalog(self._engine.catalog)
        self.last_snapshot = snapshot
        return snapshot

    # -- dispatch ------------------------------------------------------------

    def _plan_context(self, catalog=None) -> PlanContext:
        return PlanContext(catalog if catalog is not None
                           else self.catalog)

    def _compile(self, statement: ast.SelectLike,
                 tracer=NULL_TRACER, catalog=None) -> Program:
        self.stats.plans_built += 1
        estimator = CardinalityEstimator(self.statistics)
        with tracer.span("compile", kind="phase") as span:
            program = compile_statement(statement,
                                        self._plan_context(catalog),
                                        self.options, self.stats,
                                        estimator, tracer)
            if tracer.enabled:
                span.set(steps=len(program.steps))
                if program.verifier_verdict is not None:
                    span.set(verifier=program.verifier_verdict)
        return program

    def _pending_loop_telemetry(self, tracer) -> list:
        """Loop telemetry handed up by the runner of a traced run."""
        loops, self._trace_loops = self._trace_loops, []
        return loops

    def _record_loop_measurements(self, runner: ProgramRunner) -> None:
        """Feed observed iteration counts back into the statistics
        catalog so subsequent cost estimates use measured convergence."""
        for cte_name, count in runner.loop_iteration_counts().items():
            self.statistics.record_loop_iterations(cte_name, count)

    @staticmethod
    def _iteration_error_lines(program: Program, cost_report,
                               runner: ProgramRunner) -> list[str]:
        """Estimated-vs-measured iteration lines for EXPLAIN ANALYZE."""
        measured_by_cte = runner.loop_iteration_counts()
        lines: list[str] = []
        for estimate in cost_report.loop_estimates:
            spec = program.loops.get(estimate.loop_id)
            if spec is None:
                continue
            measured = measured_by_cte.get(spec.cte_name.lower())
            if measured is None:
                continue
            error = (estimate.iterations - measured) / max(measured, 1)
            lines.append(
                f"loop {spec.cte_name}: estimated "
                f"{estimate.iterations:.0f} iterations "
                f"({estimate.basis}), measured {measured}, "
                f"error {error:+.0%}")
        return lines

    def _run_query(self, statement: ast.SelectLike,
                   tracer=NULL_TRACER,
                   sql_text: Optional[str] = None,
                   cache_probed: bool = False) -> Table:
        """Compile (or fetch from the plan cache) and run one query
        against this statement's read snapshot.

        ``cache_probed`` means the text-level fast path already did (and
        counted) the program lookup for this statement and missed — the
        lookup here is skipped so counters see one miss, not two."""
        snapshot = self._read_catalog()
        program = None
        cached_key = None
        if self.options.enable_plan_cache:
            fingerprint = self.options.compile_fingerprint()
            norm = normalize_statement(statement)
            if not cache_probed:
                program = self._engine.plan_cache.get_normalized(
                    norm, fingerprint, snapshot.catalog_version)
            if program is not None and tracer.enabled:
                tracer.event("plan_cache_hit", kind="decision",
                             level="normalized",
                             parameters=norm.parameter_count,
                             reason="normalized statement seen before; "
                                    "compile skipped")
            cached_key = (norm, fingerprint)
        if program is None:
            program = self._compile(statement, tracer, snapshot)
            if cached_key is not None:
                norm, fingerprint = cached_key
                self._engine.plan_cache.store(
                    sql_text, norm, fingerprint,
                    snapshot.catalog_version, program)
        return self._run_program(program, snapshot, tracer)

    def _run_program(self, program: Program, snapshot: SnapshotCatalog,
                     tracer=NULL_TRACER) -> Table:
        self.workload.admit(UnitKind.QUERY, "query",
                            steps=len(program.steps))
        ctx = ExecutionContext(snapshot, self.registry, self.options,
                               self.stats, self.kernel_cache,
                               tracer=tracer)
        runner = ProgramRunner(program, ctx)
        with tracer.span("execute", kind="phase"):
            table = runner.run()
        self._record_loop_measurements(runner)
        if tracer.enabled:
            self._trace_loops = [runner.loop_telemetry[key]
                                 for key in sorted(runner.loop_telemetry)]
        if table is None:
            raise ReproError("query program produced no result")
        return table

    def _dispatch(self, statement: ast.Statement,
                  tracer=NULL_TRACER,
                  sql_text: Optional[str] = None,
                  cache_probed: bool = False) -> QueryResult:
        if isinstance(statement, (ast.Select, ast.SetOp)):
            return QueryResult(table=self._run_query(statement, tracer,
                                                     sql_text,
                                                     cache_probed))

        if isinstance(statement, ast.Explain):
            text = self.explain(statement.statement)
            table = Table.from_columns([
                ("plan", SqlType.TEXT, text.splitlines()),
            ])
            return QueryResult(table=table)

        if isinstance(statement, ast.CreateTable):
            with self._engine.write_lock:
                self._execute_create(statement)
                self.transactions.note_write()
            return QueryResult()

        if isinstance(statement, ast.Analyze):
            with self._engine.write_lock:
                self.workload.admit(UnitKind.DDL,
                                    f"analyze {statement.table or 'all'}")
                analyzed = self.statistics.analyze(statement.table)
            table = Table.from_columns([
                ("analyzed", SqlType.TEXT, analyzed)])
            return QueryResult(table=table, rowcount=len(analyzed))

        if isinstance(statement, ast.DropTable):
            with self._engine.write_lock:
                self.workload.admit(UnitKind.DDL,
                                    f"drop {statement.name}")
                self.transactions.lock(statement.name, LockMode.EXCLUSIVE)
                self.catalog.drop(statement.name, statement.if_exists)
                self.statistics.invalidate(statement.name)
                self.transactions.note_write()
            return QueryResult()

        if isinstance(statement, ast.Insert):
            with self._engine.write_lock:
                self.workload.admit(UnitKind.DML,
                                    f"insert {statement.table}")
                self.transactions.lock(statement.table,
                                       LockMode.EXCLUSIVE)
                self.transactions.note_write()
                self.statistics.invalidate(statement.table)
                ctx = self._write_context()
                count = execute_insert(statement, ctx,
                                       self._plan_context(),
                                       self._run_query)
            return QueryResult(rowcount=count)

        if isinstance(statement, ast.Update):
            with self._engine.write_lock:
                self.workload.admit(UnitKind.DML,
                                    f"update {statement.table}")
                self.transactions.lock(statement.table,
                                       LockMode.EXCLUSIVE)
                self.transactions.note_write()
                self.statistics.invalidate(statement.table)
                ctx = self._write_context()
                count = execute_update(statement, ctx,
                                       self._plan_context())
            return QueryResult(rowcount=count)

        if isinstance(statement, ast.Delete):
            with self._engine.write_lock:
                self.workload.admit(UnitKind.DML,
                                    f"delete {statement.table}")
                self.transactions.lock(statement.table,
                                       LockMode.EXCLUSIVE)
                self.transactions.note_write()
                self.statistics.invalidate(statement.table)
                ctx = self._write_context()
                count = execute_delete(statement, ctx,
                                       self._plan_context())
            return QueryResult(rowcount=count)

        if isinstance(statement, ast.BeginTransaction):
            self.workload.admit(UnitKind.CONTROL, "begin")
            self.transactions.begin()
            return QueryResult()
        if isinstance(statement, ast.CommitTransaction):
            self.workload.admit(UnitKind.CONTROL, "commit")
            self.transactions.commit()
            return QueryResult()
        if isinstance(statement, ast.RollbackTransaction):
            self.workload.admit(UnitKind.CONTROL, "rollback")
            self.transactions.rollback()
            return QueryResult()

        raise ReproError(
            f"unsupported statement: {type(statement).__name__}")

    def _write_context(self) -> ExecutionContext:
        """DML runs against the base catalog (never a snapshot): its
        reads are serialized by the engine write lock anyway, and its
        writes must land in shared storage."""
        return ExecutionContext(self.catalog, self.registry, self.options,
                                self.stats, self.kernel_cache)

    def _execute_create(self, statement: ast.CreateTable) -> None:
        self.workload.admit(UnitKind.DDL, f"create {statement.name}")
        self.transactions.lock(statement.name, LockMode.EXCLUSIVE)
        primary_key = None
        columns = []
        for definition in statement.columns:
            sql_type = type_from_name(definition.type_name)
            columns.append(ColumnSchema(definition.name.lower(), sql_type))
            if definition.primary_key:
                if primary_key is not None:
                    raise CatalogError("multiple PRIMARY KEY columns")
                primary_key = definition.name.lower()
        schema = Schema(tuple(columns), primary_key)
        self.catalog.create(statement.name, schema,
                            statement.if_not_exists)
