"""External/middleware baseline: iterative CTEs driven from outside the
engine through temp-table DDL and per-iteration DML (paper §II)."""

from .driver import MiddlewareDriver, MiddlewareReport

__all__ = ["MiddlewareDriver", "MiddlewareReport"]
