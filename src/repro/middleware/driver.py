"""The external/middleware baseline (paper §II, the approach of [16]).

This driver executes an iterative CTE *outside* the engine, exactly the
way Fig. 1 sketches: it creates temporary tables through DDL, runs the
non-iterative part as an INSERT ... SELECT, then loops DELETE + INSERT +
UPDATE statements, checking the termination condition client-side with
extra SELECT count(*) round trips.  Every operation is a separate
statement the engine parses, plans, locks and schedules independently —
the overheads the native rewrite avoids.

The driver accepts the *same SQL text* as the native engine, so the
benchmarks run identical queries through both paths.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass
from typing import Optional

from ..errors import PlanError, ReproError
from ..engine import Database, QueryResult
from ..obs.telemetry import LoopTelemetry
from ..obs.trace import NULL_TRACER, Tracer
from ..runtime import LoopRun
from ..sql import ast, parse, statement_to_sql
from ..types import SqlType


_TYPE_NAMES = {
    SqlType.INTEGER: "int",
    SqlType.FLOAT: "float",
    SqlType.NUMERIC: "float",
    SqlType.BOOLEAN: "boolean",
    SqlType.TEXT: "text",
    SqlType.NULL: "float",
}


@dataclass
class MiddlewareReport:
    """What the driver did: statement counts per kind, iterations run."""

    statements_issued: int = 0
    ddl_statements: int = 0
    dml_statements: int = 0
    probe_queries: int = 0
    iterations: int = 0


class MiddlewareDriver:
    """Runs iterative CTE queries as external statement sequences."""

    def __init__(self, db: Database):
        self._db = db
        self._names = itertools.count()
        self.report = MiddlewareReport()
        self._tracer = NULL_TRACER
        # Per-iteration telemetry of the most recent run, for the Fig. 1
        # side-by-side with native loop telemetry.
        self.last_telemetry: Optional[LoopTelemetry] = None

    # -- public API ----------------------------------------------------------

    def run(self, sql: str) -> QueryResult:
        """Execute an iterative-CTE query the middleware way.

        With the database's ``enable_tracing`` option on, the run records
        a span per issued statement under a ``middleware`` baseline span,
        plus per-iteration loop telemetry, and publishes the trace to the
        database — so ``Database.trace_json()`` shows the Fig. 1 baseline
        side by side with native engine traces.
        """
        statement = parse(sql)
        if not isinstance(statement, (ast.Select, ast.SetOp)) \
                or statement.with_clause is None:
            raise PlanError("the middleware driver expects a query with "
                            "an iterative CTE")
        iterative = [cte for cte in statement.with_clause.ctes
                     if isinstance(cte, ast.IterativeCte)]
        others = [cte for cte in statement.with_clause.ctes
                  if not isinstance(cte, ast.IterativeCte)]
        if len(iterative) != 1:
            raise PlanError("the middleware driver supports exactly one "
                            "iterative CTE per query")
        if others:
            raise PlanError("mixing regular CTEs is not supported by the "
                            "middleware driver")
        tracer = (Tracer() if self._db.options.enable_tracing
                  else NULL_TRACER)
        self._tracer = tracer
        stats_before = (self._db.stats.snapshot() if tracer.enabled
                        else None)
        try:
            with tracer.span("middleware", kind="baseline"):
                result = self._run_single(iterative[0], statement)
        finally:
            self._tracer = NULL_TRACER
        if tracer.enabled:
            self._db.publish_trace(
                tracer,
                loops=([self.last_telemetry]
                       if self.last_telemetry is not None else []),
                metrics=self._db.stats.delta_since(stats_before),
                sql=sql)
        return result

    # -- internals -------------------------------------------------------------

    def _execute(self, sql: str, kind: str) -> QueryResult:
        self.report.statements_issued += 1
        if kind == "ddl":
            self.report.ddl_statements += 1
        elif kind == "dml":
            self.report.dml_statements += 1
        else:
            self.report.probe_queries += 1
        if self._tracer.enabled:
            with self._tracer.span("statement", kind="statement",
                                   category=kind):
                return self._db.execute(sql)
        return self._db.execute(sql)

    def _run_single(self, cte: ast.IterativeCte,
                    statement: ast.SelectLike) -> QueryResult:
        suffix = next(self._names)
        main = f"__mw_main_{suffix}"
        working = f"__mw_working_{suffix}"

        init_sql = statement_to_sql(cte.init)
        # Probe the result shape once to derive the temp-table schema —
        # middleware can only see result-set metadata.
        probe = self._execute(f"{init_sql} LIMIT 0", "probe")
        schema = probe.table.schema
        columns = [c.lower() for c in (cte.columns or schema.names)]
        if len(columns) != len(schema.columns):
            raise PlanError(
                f"iterative CTE {cte.name!r} declares {len(columns)} "
                f"columns but its query produces {len(schema.columns)}")
        types = [_TYPE_NAMES[c.sql_type] for c in schema.columns]
        # Numeric columns may widen in the iterative part; declare float.
        types = ["float" if t == "int" else t for t in types]
        column_ddl = ", ".join(f"{n} {t}" for n, t in zip(columns, types))

        key = columns[0]
        try:
            self._execute(f"CREATE TABLE {main} ({column_ddl})", "ddl")
            self._execute(f"CREATE TABLE {working} ({column_ddl})", "ddl")
            self._execute(f"INSERT INTO {main} {init_sql}", "dml")

            step_sql = statement_to_sql(
                _rebind_cte(cte.step, cte.name, main))
            update_sql = self._update_statement(main, working, columns, key)

            # The unified loop shell: same telemetry records and span
            # shape as the native engine's loops, kind "middleware".
            run = LoopRun(0, cte.name.lower(), "middleware",
                          tracer=self._tracer)
            run.begin()
            counts_updates = cte.termination.kind in (
                ast.TerminationKind.UPDATES, ast.TerminationKind.DELTA)
            iterations = 0
            total_updates = 0
            while True:
                self._execute(f"DELETE FROM {working}", "dml")
                inserted = self._execute(
                    f"INSERT INTO {working} {step_sql}", "dml").rowcount
                changed = 0
                if counts_updates:
                    changed = self._count_changes(main, working, columns,
                                                  key)
                self._execute(update_sql, "dml")
                iterations += 1
                total_updates += changed
                done = self._terminated(cte.termination, main, iterations,
                                        total_updates, changed)
                # Catalog read, not a SQL probe: the statement count is
                # the baseline's defining overhead and must not change.
                run.finish_iteration(
                    not done,
                    delta_rows=changed if counts_updates else inserted,
                    working_rows=inserted,
                    total_rows=self._db.table(main).num_rows)
                if done:
                    break
            run.close()
            self.last_telemetry = run.telemetry
            self.report.iterations += iterations

            final = copy.copy(statement)
            final.with_clause = None
            final = _rebind_cte(final, cte.name, main)
            return self._execute(statement_to_sql(final), "probe")
        finally:
            self._execute(f"DROP TABLE IF EXISTS {working}", "ddl")
            self._execute(f"DROP TABLE IF EXISTS {main}", "ddl")

    def _update_statement(self, main: str, working: str,
                          columns: list[str], key: str) -> str:
        assignments = ", ".join(f"{c} = w.{c}" for c in columns
                                if c != key)
        return (f"UPDATE {main} SET {assignments} FROM {working} AS w "
                f"WHERE {main}.{key} = w.{key}")

    def _count_changes(self, main: str, working: str,
                       columns: list[str], key: str) -> int:
        differs = " OR ".join(
            f"w.{c} <> m.{c}" for c in columns if c != key)
        sql = (f"SELECT count(*) FROM {working} AS w "
               f"JOIN {main} AS m ON w.{key} = m.{key} "
               f"WHERE {differs}")
        return int(self._execute(sql, "probe").scalar() or 0)

    def _terminated(self, termination: ast.Termination, main: str,
                    iterations: int, total_updates: int,
                    changed: int) -> bool:
        kind = termination.kind
        if kind is ast.TerminationKind.ITERATIONS:
            return iterations >= termination.count
        if kind is ast.TerminationKind.UPDATES:
            return total_updates >= termination.count
        if kind is ast.TerminationKind.DELTA:
            comparator = termination.comparator
            target = termination.count
            return {"=": changed == target, "<": changed < target,
                    "<=": changed <= target, ">": changed > target,
                    ">=": changed >= target}[comparator]
        from ..sql.printer import expr_to_sql
        expr = expr_to_sql(termination.expr)
        count = int(self._execute(
            f"SELECT count(*) FROM {main} WHERE {expr}", "probe").scalar())
        if kind is ast.TerminationKind.DATA_ANY:
            return count > 0
        total = int(self._execute(
            f"SELECT count(*) FROM {main}", "probe").scalar())
        return count >= total


def _rebind_cte(query: ast.SelectLike, cte_name: str,
                table: str) -> ast.SelectLike:
    """Rewrite references to the CTE into references to the temp table,
    keeping the original name as the alias so column qualifiers hold."""
    key = cte_name.lower()

    def rebind_relation(relation: ast.Relation) -> ast.Relation:
        if isinstance(relation, ast.TableRef):
            if relation.name.lower() == key:
                return ast.TableRef(table,
                                    alias=relation.alias or relation.name)
            return relation
        if isinstance(relation, ast.Join):
            return ast.Join(relation.kind,
                            rebind_relation(relation.left),
                            rebind_relation(relation.right),
                            relation.condition)
        if isinstance(relation, ast.SubqueryRef):
            return ast.SubqueryRef(rebind_query(relation.query),
                                   relation.alias)
        return relation

    def rebind_query(node: ast.SelectLike) -> ast.SelectLike:
        node = copy.copy(node)
        if isinstance(node, ast.SetOp):
            node.left = rebind_query(node.left)
            node.right = rebind_query(node.right)
            return node
        if node.from_clause is not None:
            node.from_clause = rebind_relation(node.from_clause)
        return node

    return rebind_query(query)
