"""Table and column statistics (the ANALYZE subsystem).

MPPDB's cost-based optimizations rest on a statistics subsystem the paper
explicitly leaves untouched ("No changes are needed for cost based
optimizations or the cost subsystems (statistics, cost formulas, ..)").
This module provides that substrate: per-table row counts and per-column
null fraction, distinct count and min/max, collected by ``ANALYZE`` and
consumed by the cost model in :mod:`repro.stats.costing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..storage import Catalog, Column, Table
from ..types import SqlType


@dataclass(frozen=True)
class ColumnStatistics:
    """Summary of one column's value distribution."""

    null_fraction: float
    distinct_count: int
    min_value: Optional[float]
    max_value: Optional[float]

    @property
    def selectivity_of_equality(self) -> float:
        """Estimated fraction of rows matched by ``col = constant``."""
        if self.distinct_count <= 0:
            return 0.0
        return (1.0 - self.null_fraction) / self.distinct_count

    def selectivity_of_range(self, low: Optional[float],
                             high: Optional[float]) -> float:
        """Estimated fraction matched by a range predicate, assuming a
        uniform distribution between min and max."""
        if self.min_value is None or self.max_value is None:
            return 0.33  # no numeric statistics: textbook default
        span = self.max_value - self.min_value
        if span <= 0:
            return 1.0 - self.null_fraction
        lo = self.min_value if low is None else max(low, self.min_value)
        hi = self.max_value if high is None else min(high, self.max_value)
        if hi <= lo:
            return 0.0
        return (1.0 - self.null_fraction) * (hi - lo) / span


@dataclass(frozen=True)
class TableStatistics:
    """Row count plus per-column statistics."""

    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name.lower())


def analyze_column(column: Column) -> ColumnStatistics:
    """Collect statistics for one column in a single pass."""
    count = len(column)
    if count == 0:
        return ColumnStatistics(0.0, 0, None, None)
    nulls = int(column.mask.sum())
    null_fraction = nulls / count
    valid = ~column.mask
    if not valid.any():
        return ColumnStatistics(1.0, 0, None, None)
    values = column.data[valid]
    if column.sql_type is SqlType.TEXT:
        distinct = len(np.unique(values.astype(str)))
        return ColumnStatistics(null_fraction, distinct, None, None)
    distinct = len(np.unique(values))
    if column.sql_type is SqlType.BOOLEAN:
        return ColumnStatistics(null_fraction, distinct, None, None)
    return ColumnStatistics(null_fraction, distinct,
                            float(values.min()), float(values.max()))


def analyze_table(table: Table) -> TableStatistics:
    columns = {
        schema.name.lower(): analyze_column(column)
        for schema, column in zip(table.schema.columns, table.columns)
    }
    return TableStatistics(table.num_rows, columns)


class StatisticsCatalog:
    """Statistics per base table, refreshed by ANALYZE."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._tables: dict[str, TableStatistics] = {}
        # Observed iteration counts per iterative CTE (latest run wins),
        # fed back into the cost model's iteration estimator.
        self._measured_iterations: dict[str, int] = {}

    def analyze(self, table_name: Optional[str] = None) -> list[str]:
        """Collect statistics for one table (or all).  Returns the names
        analyzed."""
        if table_name is not None:
            names = [table_name.lower()]
            # Raises CatalogError for unknown tables.
            self._catalog.get(table_name)
        else:
            names = self._catalog.table_names()
        for name in names:
            self._tables[name] = analyze_table(self._catalog.get(name))
        return names

    def table(self, name: str) -> Optional[TableStatistics]:
        """Stored statistics, or a row-count-only fallback computed on
        demand (real engines estimate from physical size similarly)."""
        key = name.lower()
        stored = self._tables.get(key)
        if stored is not None:
            return stored
        if self._catalog.exists(key):
            return TableStatistics(self._catalog.get(key).num_rows)
        return None

    def invalidate(self, name: str) -> None:
        self._tables.pop(name.lower(), None)

    def analyzed_tables(self) -> list[str]:
        return sorted(self._tables)

    # -- measured loop convergence ------------------------------------------

    def record_loop_iterations(self, cte_name: str, iterations: int) -> None:
        """Remember how many iterations an iterative CTE actually ran.

        Subsequent cost estimates for a loop over the same CTE name use
        the measurement instead of the session heuristic (the pilot-run
        refinement DESIGN.md leaves open)."""
        if iterations > 0:
            self._measured_iterations[cte_name.lower()] = int(iterations)

    def measured_iterations(self, cte_name: str) -> Optional[int]:
        return self._measured_iterations.get(cte_name.lower())
