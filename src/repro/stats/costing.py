"""Cost model: cardinality estimation, plan cost formulas, and iteration
estimation for iterative CTEs.

The paper's stated future work is "estimating number of iterations for
more accurate optimizer costing".  This module implements that layer:

* classic selectivity-based cardinality estimation over logical plans,
  fed by :mod:`repro.stats.statistics`;
* per-operator cost formulas in abstract row-operation units;
* :func:`estimate_program` — costs a whole step program as
  ``init + estimated_iterations × per-iteration + final``, where the
  iteration estimate is exact for metadata conditions and heuristic for
  data/delta conditions (documented per case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..plan.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalOp,
    LogicalProject,
    LogicalRename,
    LogicalScan,
    LogicalSort,
    LogicalTempScan,
    LogicalUnion,
    LogicalValues,
)
from ..plan.program import (
    CopyStep,
    CountUpdatesStep,
    InitLoopStep,
    LoopSpec,
    LoopStep,
    MaterializeStep,
    Program,
    RecursiveMergeStep,
    RenameStep,
    ReturnStep,
    SnapshotStep,
    Step,
)
from ..sql import ast
from .statistics import StatisticsCatalog, TableStatistics

# Fallbacks when statistics cannot answer (textbook defaults).
DEFAULT_EQUALITY_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 0.33
DEFAULT_PREDICATE_SELECTIVITY = 0.25
# Data/delta termination conditions have no closed-form iteration count;
# this heuristic stands in until a pilot run refines it (see DESIGN.md).
DEFAULT_ITERATION_ESTIMATE = 10


class CardinalityEstimator:
    """Estimates output row counts for logical plans."""

    def __init__(self, statistics: StatisticsCatalog,
                 temp_cardinalities: Optional[dict[str, float]] = None):
        self._statistics = statistics
        # Estimated sizes for intermediate results (CTE tables, COMMON#k),
        # filled in as the program estimator walks materializations.
        self.temp_cardinalities = dict(temp_cardinalities or {})

    # -- public -------------------------------------------------------------

    def estimate(self, plan: LogicalOp) -> float:
        if isinstance(plan, LogicalScan):
            stats = self._statistics.table(plan.table_name)
            return float(stats.row_count) if stats else 1000.0
        if isinstance(plan, LogicalTempScan):
            return self.temp_cardinalities.get(
                plan.result_name.lower(), 1000.0)
        if isinstance(plan, LogicalValues):
            return float(len(plan.rows))
        if isinstance(plan, LogicalFilter):
            child = self.estimate(plan.child)
            return child * self._selectivity(plan.predicate, plan.child)
        if isinstance(plan, (LogicalProject, LogicalRename,
                             LogicalSort)):
            return self.estimate(plan.children()[0])
        if isinstance(plan, LogicalLimit):
            child = self.estimate(plan.child)
            if plan.limit is None:
                return child
            return min(child, float(plan.limit))
        if isinstance(plan, LogicalJoin):
            return self._estimate_join(plan)
        if isinstance(plan, LogicalAggregate):
            return self._estimate_aggregate(plan)
        if isinstance(plan, LogicalUnion):
            total = self.estimate(plan.left) + self.estimate(plan.right)
            return total if plan.all else total * 0.9
        if isinstance(plan, LogicalDistinct):
            return self.estimate(plan.child) * 0.9
        return 1000.0

    # -- internals ------------------------------------------------------------

    def _column_stats(self, plan: LogicalOp, ref: ast.ColumnRef):
        """Column statistics for a reference, traced to a base scan."""
        for node in plan.walk():
            if isinstance(node, LogicalScan):
                if ref.table is not None and ref.table != node.alias:
                    continue
                if ref.name.lower() not in [f.name for f in node.fields]:
                    continue
                stats = self._statistics.table(node.table_name)
                if stats is not None:
                    return stats.column(ref.name)
        return None

    def _selectivity(self, predicate: ast.Expr, plan: LogicalOp) -> float:
        if isinstance(predicate, ast.BinaryOp):
            op = predicate.op
            if op is ast.BinaryOperator.AND:
                return (self._selectivity(predicate.left, plan)
                        * self._selectivity(predicate.right, plan))
            if op is ast.BinaryOperator.OR:
                left = self._selectivity(predicate.left, plan)
                right = self._selectivity(predicate.right, plan)
                return min(1.0, left + right - left * right)
            if op.is_comparison:
                return self._comparison_selectivity(predicate, plan)
        if isinstance(predicate, ast.IsNull):
            stats = (self._column_stats(plan, predicate.operand)
                     if isinstance(predicate.operand, ast.ColumnRef)
                     else None)
            if stats is not None:
                null_fraction = stats.null_fraction
                return (1.0 - null_fraction) if predicate.negated \
                    else null_fraction
            return DEFAULT_PREDICATE_SELECTIVITY
        if isinstance(predicate, ast.Between):
            return self._between_selectivity(predicate, plan)
        if isinstance(predicate, ast.InList):
            base = self._comparison_like_equality(predicate.operand, plan)
            selectivity = min(1.0, base * max(len(predicate.items), 1))
            return 1.0 - selectivity if predicate.negated else selectivity
        if isinstance(predicate, ast.UnaryOp) \
                and predicate.op is ast.UnaryOperator.NOT:
            return 1.0 - self._selectivity(predicate.operand, plan)
        return DEFAULT_PREDICATE_SELECTIVITY

    def _comparison_like_equality(self, operand: ast.Expr,
                                  plan: LogicalOp) -> float:
        if isinstance(operand, ast.ColumnRef):
            stats = self._column_stats(plan, operand)
            if stats is not None:
                return stats.selectivity_of_equality
        return DEFAULT_EQUALITY_SELECTIVITY

    def _comparison_selectivity(self, predicate: ast.BinaryOp,
                                plan: LogicalOp) -> float:
        column, constant = _split_column_constant(predicate)
        if column is None:
            return (DEFAULT_EQUALITY_SELECTIVITY
                    if predicate.op is ast.BinaryOperator.EQ
                    else DEFAULT_RANGE_SELECTIVITY)
        stats = self._column_stats(plan, column)
        if stats is None:
            return (DEFAULT_EQUALITY_SELECTIVITY
                    if predicate.op is ast.BinaryOperator.EQ
                    else DEFAULT_RANGE_SELECTIVITY)
        op = predicate.op
        if op is ast.BinaryOperator.EQ:
            return stats.selectivity_of_equality
        if op is ast.BinaryOperator.NE:
            return max(0.0, 1.0 - stats.selectivity_of_equality)
        if constant is None:
            return DEFAULT_RANGE_SELECTIVITY
        if op in (ast.BinaryOperator.LT, ast.BinaryOperator.LE):
            return stats.selectivity_of_range(None, constant)
        return stats.selectivity_of_range(constant, None)

    def _between_selectivity(self, predicate: ast.Between,
                             plan: LogicalOp) -> float:
        if not isinstance(predicate.operand, ast.ColumnRef):
            return DEFAULT_RANGE_SELECTIVITY
        stats = self._column_stats(plan, predicate.operand)
        low = _constant_value(predicate.low)
        high = _constant_value(predicate.high)
        if stats is None:
            return DEFAULT_RANGE_SELECTIVITY
        selectivity = stats.selectivity_of_range(low, high)
        return 1.0 - selectivity if predicate.negated else selectivity

    def _estimate_join(self, join: LogicalJoin) -> float:
        left = self.estimate(join.left)
        right = self.estimate(join.right)
        if join.kind is ast.JoinKind.CROSS or join.condition is None:
            return left * right
        selectivity = self._join_selectivity(join)
        inner = left * right * selectivity
        if join.kind is ast.JoinKind.LEFT:
            return max(inner, left)
        if join.kind is ast.JoinKind.RIGHT:
            return max(inner, right)
        if join.kind is ast.JoinKind.FULL:
            return max(inner, left + right)
        return inner

    def _join_selectivity(self, join: LogicalJoin) -> float:
        from ..rewrite.expr_utils import split_conjuncts
        selectivity = 1.0
        found_equi = False
        for conjunct in split_conjuncts(join.condition):
            if isinstance(conjunct, ast.BinaryOp) \
                    and conjunct.op is ast.BinaryOperator.EQ \
                    and isinstance(conjunct.left, ast.ColumnRef) \
                    and isinstance(conjunct.right, ast.ColumnRef):
                left_stats = self._column_stats(join, conjunct.left)
                right_stats = self._column_stats(join, conjunct.right)
                distincts = [s.distinct_count
                             for s in (left_stats, right_stats)
                             if s is not None and s.distinct_count > 0]
                if distincts:
                    selectivity *= 1.0 / max(distincts)
                else:
                    selectivity *= DEFAULT_EQUALITY_SELECTIVITY
                found_equi = True
            else:
                selectivity *= DEFAULT_RANGE_SELECTIVITY
        if not found_equi and selectivity == 1.0:
            return DEFAULT_PREDICATE_SELECTIVITY
        return selectivity

    def _estimate_aggregate(self, agg: LogicalAggregate) -> float:
        input_rows = self.estimate(agg.child)
        if not agg.keys:
            return 1.0
        groups = 1.0
        for key_expr, _slot in agg.keys:
            if isinstance(key_expr, ast.ColumnRef):
                stats = self._column_stats(agg.child, key_expr)
                groups *= (stats.distinct_count
                           if stats and stats.distinct_count else 100.0)
            else:
                groups *= 100.0
        return min(input_rows, groups)


def _split_column_constant(predicate: ast.BinaryOp):
    """(column, numeric constant) if the comparison has that shape."""
    left, right = predicate.left, predicate.right
    if isinstance(left, ast.ColumnRef):
        return left, _constant_value(right)
    if isinstance(right, ast.ColumnRef):
        return right, _constant_value(left)
    return None, None


def _constant_value(expr: ast.Expr) -> Optional[float]:
    if isinstance(expr, ast.Literal) \
            and isinstance(expr.value, (int, float)) \
            and not isinstance(expr.value, bool):
        return float(expr.value)
    return None


# ---------------------------------------------------------------------------
# Plan and program costs
# ---------------------------------------------------------------------------


def plan_cost(plan: LogicalOp,
              estimator: CardinalityEstimator) -> float:
    """Abstract cost in row operations (bottom-up sum)."""
    rows = estimator.estimate(plan)
    children = plan.children()
    child_cost = sum(plan_cost(child, estimator) for child in children)
    if isinstance(plan, (LogicalScan, LogicalTempScan, LogicalValues)):
        return rows
    if isinstance(plan, (LogicalFilter, LogicalProject, LogicalRename,
                         LogicalLimit)):
        return child_cost + estimator.estimate(children[0])
    if isinstance(plan, LogicalJoin):
        left = estimator.estimate(plan.left)
        right = estimator.estimate(plan.right)
        return child_cost + left + right + rows
    if isinstance(plan, LogicalAggregate):
        return child_cost + estimator.estimate(plan.child) + rows
    if isinstance(plan, (LogicalUnion, LogicalDistinct)):
        return child_cost + rows
    if isinstance(plan, LogicalSort):
        child_rows = max(estimator.estimate(children[0]), 2.0)
        return child_cost + child_rows * math.log2(child_rows)
    return child_cost + rows


@dataclass
class LoopEstimate:
    """How many times one loop is expected to run, and why."""

    loop_id: int
    iterations: float
    basis: str  # "exact" | "measured" | "derived" | "heuristic"


@dataclass
class ProgramCostReport:
    """Cost breakdown of a step program."""

    setup_cost: float = 0.0
    per_iteration_cost: dict[int, float] = field(default_factory=dict)
    final_cost: float = 0.0
    loop_estimates: list[LoopEstimate] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        iterating = sum(
            estimate.iterations * self.per_iteration_cost.get(
                estimate.loop_id, 0.0)
            for estimate in self.loop_estimates)
        return self.setup_cost + iterating + self.final_cost

    def describe(self) -> str:
        lines = [f"setup cost          : {self.setup_cost:,.0f}"]
        for estimate in self.loop_estimates:
            per_iter = self.per_iteration_cost.get(estimate.loop_id, 0.0)
            lines.append(
                f"loop {estimate.loop_id}: "
                f"{estimate.iterations:,.0f} iterations "
                f"({estimate.basis}) x {per_iter:,.0f} per iteration")
        lines.append(f"final query cost    : {self.final_cost:,.0f}")
        lines.append(f"total estimated cost: {self.total_cost:,.0f}")
        return "\n".join(lines)


def estimate_iterations(spec: LoopSpec,
                        cte_rows: float,
                        default_estimate: int = DEFAULT_ITERATION_ESTIMATE,
                        measured: Optional[int] = None) -> LoopEstimate:
    """The paper's future-work item: an iteration-count estimate per
    termination family.

    * ITERATIONS — exact: the user wrote N.
    * UPDATES — derived: a full-dataset update changes up to |CTE| rows
      per iteration, so ceil(N / |CTE|) iterations reach the budget.
    * DATA / DELTA / fixpoint — no closed form without executing; a
      recorded measurement from a prior run of the same CTE (loop
      telemetry feedback) beats the session default.
    """
    termination = spec.termination
    if termination is not None \
            and termination.kind is ast.TerminationKind.ITERATIONS:
        return LoopEstimate(spec.loop_id, float(termination.count),
                            "exact")
    if measured is not None and measured > 0:
        return LoopEstimate(spec.loop_id, float(measured), "measured")
    if termination is None:
        return LoopEstimate(spec.loop_id, float(default_estimate),
                            "heuristic")
    if termination.kind is ast.TerminationKind.UPDATES:
        per_iteration = max(cte_rows, 1.0)
        iterations = math.ceil(termination.count / per_iteration)
        return LoopEstimate(spec.loop_id, float(max(iterations, 1)),
                            "derived")
    return LoopEstimate(spec.loop_id, float(default_estimate), "heuristic")


def estimate_program(program: Program, statistics: StatisticsCatalog,
                     default_iterations: int = DEFAULT_ITERATION_ESTIMATE
                     ) -> ProgramCostReport:
    """Cost a step program: setup + Σ loops (estimate × body) + final."""
    estimator = CardinalityEstimator(statistics)
    report = ProgramCostReport()

    loop_starts = {
        step.jump_to: step.loop_id
        for step in program.steps if isinstance(step, LoopStep)}
    current_loop: Optional[int] = None

    for index, step in enumerate(program.steps):
        if index in loop_starts:
            current_loop = loop_starts[index]
            report.per_iteration_cost.setdefault(current_loop, 0.0)

        cost = _step_cost(step, estimator)

        if isinstance(step, LoopStep):
            spec = program.loops[step.loop_id]
            cte_rows = estimator.temp_cardinalities.get(
                spec.cte_result.lower(), 1000.0)
            measured = statistics.measured_iterations(spec.cte_name)
            report.loop_estimates.append(
                estimate_iterations(spec, cte_rows, default_iterations,
                                    measured=measured))
            current_loop = None
            continue
        if isinstance(step, ReturnStep):
            report.final_cost += cost
            continue
        if current_loop is not None:
            report.per_iteration_cost[current_loop] += cost
        else:
            report.setup_cost += cost
    return report


def _step_cost(step: Step, estimator: CardinalityEstimator) -> float:
    if isinstance(step, (MaterializeStep, ReturnStep)):
        cost = plan_cost(step.plan, estimator)
        if isinstance(step, MaterializeStep):
            rows = estimator.estimate(step.plan)
            estimator.temp_cardinalities[step.result_name.lower()] = rows
            cost += rows  # the write
        return cost
    if isinstance(step, CopyStep):
        rows = estimator.temp_cardinalities.get(step.source.lower(), 0.0)
        estimator.temp_cardinalities[step.target.lower()] = rows
        return 2 * rows  # read + write
    if isinstance(step, RenameStep):
        rows = estimator.temp_cardinalities.get(step.source.lower(), 0.0)
        estimator.temp_cardinalities[step.target.lower()] = rows
        return 1.0  # O(1): the whole point of the operator
    if isinstance(step, SnapshotStep):
        rows = estimator.temp_cardinalities.get(step.source.lower(), 0.0)
        estimator.temp_cardinalities[step.target.lower()] = rows
        return 1.0  # reference copy
    if isinstance(step, CountUpdatesStep):
        return 2 * estimator.temp_cardinalities.get(
            step.current.lower(), 0.0)
    if isinstance(step, RecursiveMergeStep):
        return 2 * estimator.temp_cardinalities.get(
            step.candidate.lower(), 0.0)
    if isinstance(step, InitLoopStep):
        return 1.0
    return 1.0
