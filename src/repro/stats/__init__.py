"""Statistics and cost estimation (ANALYZE + the cost subsystem)."""

from .costing import (
    CardinalityEstimator,
    LoopEstimate,
    ProgramCostReport,
    estimate_iterations,
    estimate_program,
    plan_cost,
)
from .statistics import (
    ColumnStatistics,
    StatisticsCatalog,
    TableStatistics,
    analyze_column,
    analyze_table,
)

__all__ = [
    "CardinalityEstimator",
    "LoopEstimate",
    "ProgramCostReport",
    "estimate_iterations",
    "estimate_program",
    "plan_cost",
    "ColumnStatistics",
    "StatisticsCatalog",
    "TableStatistics",
    "analyze_column",
    "analyze_table",
]
