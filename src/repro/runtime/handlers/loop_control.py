"""Loop-control steps: init / increment / loop check / update counting.

These handlers only *route* — all loop state lives in the
:class:`~repro.runtime.loop_engine.LoopEngine`, so the MPP and baseline
drivers share the exact same control path.
"""

from __future__ import annotations

from typing import Optional

from ...errors import DuplicateKeyError
from ...execution.kernels import factorize
from ...plan.program import (
    CountUpdatesStep,
    DuplicateCheckStep,
    IncrementLoopStep,
    InitLoopStep,
    LoopStep,
)
from ..conditions import count_changed_rows
from ..registry import handles


@handles(InitLoopStep)
def run_init_loop(runner, step: InitLoopStep) -> Optional[int]:
    runner.engine.init_loop(step.spec)
    return None


@handles(IncrementLoopStep)
def run_increment_loop(runner, step: IncrementLoopStep) -> Optional[int]:
    runner.engine.state(step.loop_id).iterations += 1
    runner.ctx.stats.iterations += 1
    return None


@handles(LoopStep)
def run_loop(runner, step: LoopStep) -> Optional[int]:
    return runner.engine.evaluate(step)


@handles(CountUpdatesStep)
def run_count_updates(runner, step: CountUpdatesStep) -> Optional[int]:
    ctx = runner.ctx
    previous = ctx.registry.fetch(step.previous)
    current = ctx.registry.fetch(step.current)
    key_index = current.schema.index_of(step.key_column)
    changed = count_changed_rows(previous, current, key_index,
                                 ctx.active_kernel_cache())
    runner.engine.record_updates(step.loop_id, changed)
    return None


@handles(DuplicateCheckStep)
def run_duplicate_check(runner, step: DuplicateCheckStep) -> Optional[int]:
    ctx = runner.ctx
    table = ctx.registry.fetch(step.result_name)
    key = table.column(step.key_column)
    codes, cardinality = factorize(key, nulls_match=True,
                                   cache=ctx.active_kernel_cache())
    if len(codes) and cardinality < len(codes):
        raise DuplicateKeyError(
            "the iterative part produced duplicate values for key "
            f"{step.key_column!r}; add an aggregation to resolve "
            "them (paper §II)")
    return None
