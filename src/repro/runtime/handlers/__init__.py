"""Step handlers, one module per concern.

Importing this package populates the dispatch table in
:mod:`repro.runtime.registry`; each module registers its handlers with the
:func:`~repro.runtime.registry.handles` decorator.  Adding a step kind
means adding a handler here — the interpreter never changes.
"""

from . import delta, loop_control, materialize, merge, movement  # noqa: F401
