"""Data-movement steps: the Fig. 8 rename-vs-copy pair."""

from __future__ import annotations

from typing import Optional

from ...plan.program import CopyStep, RenameStep
from ...storage import Column, Table
from ..registry import handles


@handles(RenameStep)
def run_rename(runner, step: RenameStep) -> Optional[int]:
    runner.ctx.registry.rename(step.source, step.target)
    runner.ctx.stats.renames += 1
    return None


@handles(CopyStep)
def run_copy(runner, step: CopyStep) -> Optional[int]:
    ctx = runner.ctx
    source = ctx.registry.fetch(step.source)
    # A physical copy: every column buffer is duplicated, so the cost of
    # moving the data is actually paid (the Fig. 8 baseline) — vectorized,
    # as a real engine's block copy is.
    copied_columns = [
        Column(c.sql_type, c.data.copy(), c.mask.copy())
        for c in source.columns]
    copied = Table(source.schema, copied_columns)
    ctx.registry.store(step.target, copied)
    ctx.registry.drop(step.source)
    ctx.stats.rows_moved += copied.num_rows
    ctx.stats.bytes_moved += copied.nbytes()
    return None
