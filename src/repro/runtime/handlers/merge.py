"""Recursive-CTE merge: UNION / UNION ALL fixed-point bookkeeping."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...plan.program import RecursiveMergeStep
from ...storage import SegmentedTable, Table
from ..registry import handles


@handles(RecursiveMergeStep)
def run_recursive_merge(runner, step: RecursiveMergeStep) -> Optional[int]:
    ctx = runner.ctx
    result = ctx.registry.fetch(step.result)
    candidate = ctx.registry.fetch(step.candidate)
    ctx.stats.merge_steps += 1

    if not step.distinct:
        # UNION ALL: everything is new.
        _append_segment(runner, step.result, result, candidate)
        ctx.registry.store(step.working, candidate)
        return None

    if candidate.num_rows == 0:
        ctx.registry.store(step.working, candidate)
        return None

    if not len(result.schema):
        # Zero-column rows are all identical: nothing is ever new.
        new_mask = np.zeros(candidate.num_rows, dtype=np.bool_)
    elif ctx.options.enable_kernel_cache:
        new_mask = _merge_incremental(runner, step, result, candidate)
    else:
        new_mask = _merge_rescan(result, candidate)
    new_rows = candidate.filter(new_mask)
    _append_segment(runner, step.result, result, new_rows)
    ctx.registry.store(step.working, new_rows)
    return None


def _append_segment(runner, name: str, result: Table,
                    new_rows: Table) -> None:
    """``result ++ delta`` in O(|delta|): append a segment instead of
    copying the accumulated result (read paths consolidate lazily).
    Only the delta is charged as data movement."""
    ctx = runner.ctx
    segmented = SegmentedTable.wrap(result)
    segmented.append(new_rows)
    if ctx.options.enable_plan_verifier:
        from ...verify.storage import verify_segmented_table
        # Metadata invariants only — forcing a consolidation here would
        # defeat the O(|delta|) append this path exists for.
        verify_segmented_table(segmented, "recursive-merge append")
    ctx.registry.store(name, segmented)
    ctx.stats.rows_moved += new_rows.num_rows
    ctx.stats.bytes_moved += new_rows.nbytes()


def _merge_incremental(runner, step: RecursiveMergeStep, result: Table,
                       candidate: Table) -> np.ndarray:
    """Dedup the candidate delta against the persistent seen-row index
    instead of re-encoding ``result ++ candidate``.

    The index lives for the duration of one program run, keyed by the
    result name; it is rebuilt (one O(result) scan) whenever the result
    table changed outside this merge step or the UNION's common column
    types drifted."""
    from ...execution.kernel_cache import IncrementalDistinctIndex
    from ...types import common_type

    ctx = runner.ctx
    # Types come from the schemas: reading .columns on a segmented
    # result would force a consolidation every iteration.
    types = tuple(
        common_type(rc.sql_type, cc.sql_type)
        for rc, cc in zip(result.schema.columns,
                          candidate.schema.columns))
    entry = runner.merge_indexes.get(step.result)
    index = None
    repacks_before = 0
    if entry is not None:
        entry_types, entry_index = entry
        if entry_index is None and entry_types == types:
            # The index genuinely needs more than 62 id bits; stay on
            # the rescan path rather than rebuild every merge.
            return _merge_rescan(result, candidate)
        if entry_index is not None and entry_types == types \
                and entry_index.rows_absorbed == result.num_rows:
            index = entry_index
            repacks_before = index.repacks
            ctx.stats.merge_index_hits += 1
    if index is None:
        index = IncrementalDistinctIndex(len(types))
        result_cols = [rc if rc.sql_type is t else rc.cast(t)
                       for rc, t in zip(result.columns, types)]
        if index.absorb(result_cols, result.num_rows) is None:
            runner.merge_indexes[step.result] = (types, None)
            ctx.stats.merge_index_overflows += 1
            ctx.stats.merge_index_repacks += index.repacks
            return _merge_rescan(result, candidate)
        runner.merge_indexes[step.result] = (types, index)
        ctx.stats.merge_index_rebuilds += 1
    candidate_cols = [cc if cc.sql_type is t else cc.cast(t)
                      for cc, t in zip(candidate.columns, types)]
    new_mask = index.filter_new(candidate_cols, candidate.num_rows)
    ctx.stats.merge_index_repacks += index.repacks - repacks_before
    if new_mask is None:
        # Even a repack cannot fit the per-column id spaces into 62
        # bits, so every later merge of this result full-rescans.
        # Counted (once per transition) for EXPLAIN ANALYZE and the
        # repack-on-overflow trigger.
        runner.merge_indexes[step.result] = (types, None)
        ctx.stats.merge_index_overflows += 1
        return _merge_rescan(result, candidate)
    return new_mask


def _merge_rescan(result: Table, candidate: Table):
    """Cache-off UNION DISTINCT dedup: joint-encode ``result ++
    candidate`` from scratch each iteration, but with sorted-search
    membership instead of a per-row set loop.  Produces exactly the masks
    of the incremental path."""
    from ...execution.kernels import encode_keys

    joint = [rc.concat(cc) for rc, cc in
             zip(result.columns, candidate.columns)]
    codes = encode_keys(joint, nulls_match=True)
    seen_sorted = np.sort(codes[:result.num_rows])
    cand_codes = codes[result.num_rows:]

    _, first_index = np.unique(cand_codes, return_index=True)
    first_mask = np.zeros(candidate.num_rows, dtype=np.bool_)
    first_mask[first_index] = True
    if len(seen_sorted):
        positions = np.searchsorted(seen_sorted, cand_codes)
        inside = positions < len(seen_sorted)
        clipped = np.where(inside, positions, 0)
        in_seen = inside & (seen_sorted[clipped] == cand_codes)
        return first_mask & ~in_seen
    return first_mask
