"""Semi-naive delta evaluation: gate / partition / apply / capture.

The handlers own the *mechanics* of the delta path; the decision of
whether the loop should stay on it belongs to the
:class:`~repro.runtime.strategies.SemiNaiveDelta` strategy, which every
measured frontier is fed back into through
:meth:`LoopEngine.note_frontier` — that is the channel mid-loop demotion
rides on, and it works identically for traced and untraced runs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import DuplicateKeyError, ExecutionError
from ...execution import execute_to_table
from ...execution.kernels import factorize, scatter_update
from ...plan.program import (
    DeltaApplyStep,
    DeltaCaptureStep,
    DeltaFusedStep,
    DeltaGateStep,
    DeltaPartitionStep,
    DeltaSpec,
)
from ...storage import Table
from ..registry import handles
from ..strategies import DeltaLoopRuntime


@handles(DeltaGateStep)
def run_delta_gate(runner, step: DeltaGateStep) -> Optional[int]:
    engine = runner.engine
    runtime = engine.delta_runtime(step.spec)
    if runtime.disabled or not runtime.active:
        return step.jump_full
    if runtime.frontier_keys is None or not len(runtime.frontier_keys):
        # Empty frontier: no input of any key changed last iteration,
        # so no output can change this iteration (or ever after) —
        # this iteration costs O(1).
        runtime.last_frontier = 0
        if engine.counts_updates(step.spec.loop_id):
            engine.record_updates(step.spec.loop_id, 0)
        runner.ctx.stats.delta_iterations += 1
        return step.jump_done
    return None


@handles(DeltaPartitionStep)
def run_delta_partition(runner, step: DeltaPartitionStep) -> Optional[int]:
    ctx = runner.ctx
    spec = step.spec
    runtime = runner.engine.delta_runtime(spec)
    frontier = runtime.frontier_keys
    # A changed key always influences itself (its own row is
    # recomputed); links add the keys reachable through base tables.
    position_sets = [_key_positions_of(runtime, frontier, strict=True)]
    for link in spec.influences:
        influenced = _expand_influence(runner, runtime, link, frontier)
        position_sets.append(
            _key_positions_of(runtime, influenced, strict=False))
    positions = np.unique(np.concatenate(position_sets))
    table = ctx.registry.fetch(spec.cte_result)
    partition = table.take(positions)
    ctx.registry.store(spec.partition, partition)
    runtime.pending_positions = positions
    ctx.stats.rows_moved += int(len(positions))
    ctx.stats.bytes_moved += partition.nbytes()
    return None


@handles(DeltaApplyStep)
def run_delta_apply(runner, step: DeltaApplyStep) -> int:
    ctx = runner.ctx
    spec = step.spec
    runtime = runner.engine.delta_runtime(spec)
    working = ctx.registry.fetch(spec.delta_working)
    return _apply_delta(runner, spec, runtime, working,
                        step.jump_to, step.jump_full)


def _apply_delta(runner, spec: DeltaSpec, runtime: DeltaLoopRuntime,
                 working: Table, jump_to: int, jump_full: int) -> int:
    """Scatter the recomputed partition back by key and derive the next
    frontier — the shared back half of the quartet's apply step and the
    fused delta pass."""
    from ...execution.kernel_cache import _comparable_values

    ctx = runner.ctx
    engine = runner.engine
    w_keys = _comparable_values(working.columns[0].data)
    positions = _key_positions_of(runtime, w_keys, strict=True)

    if spec.guard_keyset and not np.array_equal(
            np.sort(positions), runtime.pending_positions):
        # INNER-join body without a WHERE clause: the full body may drop
        # keys whose join partners vanished, which the keyed scatter
        # cannot express.  Keys outside the partition are unaffected (no
        # input of theirs changed), so comparing the delta body's output
        # keyset against the partition keyset is a complete check.  On
        # mismatch, permanently fall back to the always-compiled full
        # body and rerun this iteration through it.
        runtime.disabled = True
        runtime.active = False
        runtime.pending_positions = None
        ctx.stats.delta_guard_fallbacks += 1
        return jump_full

    changed = np.zeros(working.num_rows, dtype=np.bool_)
    new_columns = list(runtime.columns)
    for i in range(1, len(new_columns)):
        # scatter_update keeps the old column object when nothing
        # changed, so its version — and any kernel-cache state keyed by
        # it — survives.
        merged, col_changed = scatter_update(
            runtime.columns[i], positions, working.columns[i])
        changed |= col_changed
        new_columns[i] = merged
    ctx.stats.rows_moved += working.num_rows
    ctx.stats.bytes_moved += working.nbytes()

    runtime.frontier_keys = w_keys[changed]
    runtime.last_frontier = int(changed.sum())

    if spec.merge_by_key:
        # The full body's merge join emits matched (working) rows
        # first, then the rest; replicate that reordering from the
        # membership flags so delta iterations stay bit-identical.
        in_working = runtime.in_working.copy()
        in_working[runtime.pending_positions] = False
        in_working[positions] = True
        perm = np.concatenate([np.flatnonzero(in_working),
                               np.flatnonzero(~in_working)])
        if not np.array_equal(perm,
                              np.arange(len(perm), dtype=perm.dtype)):
            new_columns = [c.take(perm) for c in new_columns]
            in_working = in_working[perm]
            _set_key_index(runtime, new_columns[0])
            ctx.stats.rows_moved += int(len(perm))
        runtime.in_working = in_working

    new_table = Table(runtime.schema, new_columns)
    ctx.registry.store(spec.cte_result, new_table)
    runtime.columns = new_columns
    runtime.pending_positions = None
    if engine.counts_updates(spec.loop_id):
        engine.record_updates(spec.loop_id, runtime.last_frontier)
    ctx.stats.delta_iterations += 1
    engine.note_frontier(spec.loop_id, runtime.last_frontier,
                         new_table.num_rows)
    return jump_to


@handles(DeltaFusedStep)
def run_delta_fused(runner, step: DeltaFusedStep) -> int:
    """The fused semi-naive delta pass: gate, partition, recompute,
    duplicate check and apply in one batched columnar dispatch.

    Control flow is identical to the quartet (same three jump targets,
    same O(1) empty-frontier short-circuit, same keyset-guard fallback);
    the fusion saves four step dispatches and the registry round-trips
    between them per delta iteration.
    """
    ctx = runner.ctx
    engine = runner.engine
    spec = step.spec
    runtime = engine.delta_runtime(spec)

    # -- gate ---------------------------------------------------------------
    if runtime.disabled or not runtime.active:
        return step.jump_full
    if runtime.frontier_keys is None or not len(runtime.frontier_keys):
        # Empty frontier: no input of any key changed last iteration,
        # so no output can change this iteration (or ever after) —
        # this iteration costs O(1).
        runtime.last_frontier = 0
        if engine.counts_updates(spec.loop_id):
            engine.record_updates(spec.loop_id, 0)
        ctx.stats.delta_iterations += 1
        ctx.stats.delta_fused_iterations += 1
        return step.jump_done

    # -- partition ----------------------------------------------------------
    frontier = runtime.frontier_keys
    position_sets = [_key_positions_of(runtime, frontier, strict=True)]
    for link in spec.influences:
        influenced = _expand_influence(runner, runtime, link, frontier)
        position_sets.append(
            _key_positions_of(runtime, influenced, strict=False))
    positions = np.unique(np.concatenate(position_sets))
    table = ctx.registry.fetch(spec.cte_result)
    partition = table.take(positions)
    # The delta body's anchor scan reads the partition by name.
    ctx.registry.store(spec.partition, partition)
    runtime.pending_positions = positions
    ctx.stats.rows_moved += int(len(positions))
    ctx.stats.bytes_moved += partition.nbytes()

    # -- recompute the affected partition through the delta body ------------
    working = execute_to_table(step.plan, ctx, step.column_names)
    ctx.registry.store(spec.delta_working, working)

    # -- duplicate check (merge-by-key bodies only) -------------------------
    if step.dup_check:
        key = working.column(spec.key_column)
        codes, cardinality = factorize(key, nulls_match=True,
                                       cache=ctx.active_kernel_cache())
        if len(codes) and cardinality < len(codes):
            raise DuplicateKeyError(
                "the iterative part produced duplicate values for key "
                f"{spec.key_column!r}; add an aggregation to resolve "
                "them (paper §II)")

    # -- apply --------------------------------------------------------------
    jump = _apply_delta(runner, spec, runtime, working,
                        step.jump_to, step.jump_full)
    if jump == step.jump_to:
        ctx.stats.delta_fused_iterations += 1
    return jump


@handles(DeltaCaptureStep)
def run_delta_capture(runner, step: DeltaCaptureStep) -> Optional[int]:
    from ...execution.kernel_cache import _comparable_values

    ctx = runner.ctx
    engine = runner.engine
    spec = step.spec
    runtime = engine.delta_runtime(spec)
    if runtime.disabled:
        if runtime.demoted and ctx.options.enable_strategy_promotion:
            # Demoted (not disqualified) loop: keep measuring the
            # changed-row frontier of every full iteration without
            # re-activating the delta machinery — the movement
            # fallback's promotion watcher consumes these and hands the
            # loop back to semi-naive delta when the frontier collapses.
            table = ctx.registry.fetch(spec.cte_result)
            key_column = table.columns[0]
            if not key_column.mask.any():
                values = _comparable_values(key_column.data)
                previous = ctx.registry.fetch(step.previous)
                changed = _diff_by_key(table, previous, values)
                engine.note_frontier(spec.loop_id, int(changed.sum()),
                                     table.num_rows)
        return None
    table = ctx.registry.fetch(spec.cte_result)
    key_column = table.columns[0]
    if key_column.mask.any():
        # NULL keys cannot be tracked by key; stay on the full path.
        runtime.disabled = True
        runtime.active = False
        return None
    values = _comparable_values(key_column.data)
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    if len(sorted_values) > 1 \
            and (sorted_values[1:] == sorted_values[:-1]).any():
        # Duplicate keys break per-key alignment; full path forever.
        runtime.disabled = True
        runtime.active = False
        return None
    runtime.schema = table.schema
    runtime.columns = list(table.columns)
    runtime.key_sorted = sorted_values
    runtime.key_positions = order.astype(np.int64)
    previous = ctx.registry.fetch(step.previous)
    changed = _diff_by_key(table, previous, values)
    runtime.frontier_keys = values[changed]
    runtime.last_frontier = int(changed.sum())
    if spec.merge_by_key:
        working = ctx.registry.fetch(spec.working)
        w_keys = _comparable_values(working.columns[0].data)
        flags = np.zeros(table.num_rows, dtype=np.bool_)
        flags[_key_positions_of(runtime, w_keys, strict=False)] = True
        runtime.in_working = flags
    runtime.active = True
    engine.note_frontier(spec.loop_id, runtime.last_frontier,
                         table.num_rows)
    return None


def _key_positions_of(runtime: DeltaLoopRuntime, keys, strict: bool):
    """Row positions of comparable ``keys`` in the CTE table."""
    if not len(keys):
        return np.empty(0, dtype=np.int64)
    haystack = runtime.key_sorted
    positions = np.searchsorted(haystack, keys)
    inside = positions < len(haystack)
    clipped = np.where(inside, positions, 0)
    found = inside & (haystack[clipped] == keys)
    if strict and not found.all():
        raise ExecutionError(
            "delta evaluation lost track of a CTE key; this is a bug "
            "in the delta safety analysis")
    return runtime.key_positions[clipped[found]]


def _expand_influence(runner, runtime: DeltaLoopRuntime,
                      link: tuple[str, str, str], frontier):
    """Keys influenced by ``frontier`` through one base-table link."""
    from ...execution.kernel_cache import _comparable_values

    entry = runtime.link_indexes.get(link)
    if entry is None:
        table_name, src_name, dst_name = link
        base = runner.ctx.catalog.get(table_name)
        src = base.column(src_name)
        dst = base.column(dst_name)
        # A NULL on either side of an equi join never matches.
        valid = ~(src.mask | dst.mask)
        src_values = _comparable_values(src.data[valid])
        dst_values = _comparable_values(dst.data[valid])
        order = np.argsort(src_values, kind="stable")
        entry = (src_values[order], dst_values[order])
        runtime.link_indexes[link] = entry
    src_sorted, dst_by_src = entry
    left = np.searchsorted(src_sorted, frontier, side="left")
    right = np.searchsorted(src_sorted, frontier, side="right")
    return dst_by_src[_expand_ranges(left, right)]


def _set_key_index(runtime: DeltaLoopRuntime, key_column) -> None:
    from ...execution.kernel_cache import _comparable_values

    values = _comparable_values(key_column.data)
    order = np.argsort(values, kind="stable")
    runtime.key_sorted = values[order]
    runtime.key_positions = order.astype(np.int64)


def _diff_by_key(current: Table, previous: Table, current_keys):
    """Mask of ``current`` rows whose non-key values differ from the row
    of ``previous`` with the same key (new keys count as changed)."""
    from ...execution.kernel_cache import _comparable_values

    if previous.num_rows == 0:
        return np.ones(current.num_rows, dtype=np.bool_)
    prev_values = _comparable_values(previous.columns[0].data)
    order = np.argsort(prev_values, kind="stable")
    prev_sorted = prev_values[order]
    positions = np.searchsorted(prev_sorted, current_keys)
    inside = positions < len(prev_sorted)
    clipped = np.where(inside, positions, 0)
    found = inside & (prev_sorted[clipped] == current_keys)
    changed = ~found
    if found.any():
        idx_cur = np.flatnonzero(found)
        idx_prev = order[clipped[found]]
        differs = np.zeros(len(idx_cur), dtype=np.bool_)
        for i in range(1, len(current.columns)):
            cur_col = current.columns[i].take(idx_cur)
            prev_col = previous.columns[i].take(idx_prev)
            differs |= cur_col.is_distinct_from(prev_col)
        changed[idx_cur] = differs
    return changed


def _expand_ranges(left, right):
    """Concatenate ``arange(left[i], right[i])`` for all i, vectorized."""
    counts = (right - left).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cumulative = np.cumsum(counts)
    shift = np.repeat(left - np.concatenate(([0], cumulative[:-1])),
                      counts)
    return np.arange(total, dtype=np.int64) + shift
