"""Plan-running steps: materialize, snapshot, return, drop."""

from __future__ import annotations

from typing import Optional

from ...execution import execute_to_table
from ...plan.program import (
    DropStep,
    MaterializeStep,
    ReturnStep,
    SnapshotStep,
)
from ..registry import handles


@handles(MaterializeStep)
def run_materialize(runner, step: MaterializeStep) -> Optional[int]:
    table = execute_to_table(step.plan, runner.ctx, step.column_names)
    runner.ctx.registry.store(step.result_name, table)
    return None


@handles(SnapshotStep)
def run_snapshot(runner, step: SnapshotStep) -> Optional[int]:
    snapshot = runner.ctx.registry.fetch(step.source).copy()
    runner.ctx.registry.store(step.target, snapshot)
    return None


@handles(ReturnStep)
def run_return(runner, step: ReturnStep) -> Optional[int]:
    runner.set_result(execute_to_table(step.plan, runner.ctx))
    return None


@handles(DropStep)
def run_drop(runner, step: DropStep) -> Optional[int]:
    for name in step.names:
        runner.ctx.registry.drop(name)
    return None
