"""Loop termination-condition evaluation (§VI-B).

The loop operator checks a single ``continue`` variable at the end of each
iteration.  How that variable is computed depends on the termination
family:

* **Metadata** — an iteration counter (``N ITERATIONS``) or a cumulative
  updated-row counter (``N UPDATES``).
* **Data** — the count of CTE-table rows satisfying the user's SQL
  expression (``UNTIL [ANY|ALL] expr``), evaluated exactly like
  ``SELECT count(*) FROM cteTable WHERE expr``.
* **Delta** — the number of rows changed by the current iteration relative
  to the previous one (``UNTIL DELTA <op> N``).

This module is pure condition evaluation; the loop *engine* that owns the
states, strategies and telemetry lives in
:mod:`repro.runtime.loop_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError
from ..execution import ExecutionContext, Frame, evaluate_predicate
from ..plan.logical import Field
from ..plan.program import LoopSpec
from ..sql import ast
from ..storage import Table


@dataclass
class LoopState:
    """Mutable per-execution loop bookkeeping."""

    spec: LoopSpec
    iterations: int = 0
    total_updates: int = 0
    last_delta: int = 0

    def record_updates(self, changed: int) -> None:
        self.last_delta = changed
        self.total_updates += changed


def should_continue(state: LoopState, ctx: ExecutionContext) -> bool:
    """Evaluate the loop's continue variable after an iteration."""
    decision = _evaluate_continue(state, ctx)
    tracer = ctx.tracer
    if tracer.enabled:
        tracer.event("loop_check", kind="loop_check",
                     loop_id=state.spec.loop_id,
                     iterations=state.iterations,
                     last_delta=state.last_delta,
                     total_updates=state.total_updates,
                     decision="continue" if decision else "stop")
    return decision


def _evaluate_continue(state: LoopState, ctx: ExecutionContext) -> bool:
    if state.spec.until_empty is not None:
        # Fixed-point loop (recursive CTE): run while new rows appear.
        working = ctx.registry.fetch(state.spec.until_empty)
        return working.num_rows > 0
    termination = state.spec.termination
    kind = termination.kind

    if kind is ast.TerminationKind.ITERATIONS:
        return state.iterations < termination.count
    if kind is ast.TerminationKind.UPDATES:
        return state.total_updates < termination.count
    if kind is ast.TerminationKind.DELTA:
        return not _compare(state.last_delta, termination.comparator,
                            termination.count)
    # Data conditions: count satisfying rows in the CTE table.
    table = ctx.registry.fetch(state.spec.cte_result)
    satisfied = _count_satisfying(table, state.spec, termination.expr)
    if kind is ast.TerminationKind.DATA_ANY:
        return satisfied == 0
    if kind is ast.TerminationKind.DATA_ALL:
        return satisfied < table.num_rows
    raise ExecutionError(f"unknown termination kind: {kind}")


def _compare(value: int, comparator: str, target: int) -> bool:
    if comparator == "=":
        return value == target
    if comparator == "<":
        return value < target
    if comparator == "<=":
        return value <= target
    if comparator == ">":
        return value > target
    if comparator == ">=":
        return value >= target
    raise ExecutionError(f"unknown DELTA comparator: {comparator!r}")


def _count_satisfying(table: Table, spec: LoopSpec,
                      expr: ast.Expr) -> int:
    fields = tuple(
        Field(spec.cte_name.lower(), name.lower(), column.sql_type)
        for name, column in zip(spec.columns, table.columns))
    frame = Frame(fields, table.columns, table.num_rows)
    keep = evaluate_predicate(expr, frame)
    return int(keep.sum())


def count_changed_rows(previous: Table, current: Table,
                       key_index: int, cache=None) -> int:
    """Rows of ``current`` whose non-key values differ from ``previous``.

    Rows are aligned by the key column; rows whose key is new (not present
    in ``previous``) count as changed.  NULL-to-NULL is *not* a change
    (IS DISTINCT FROM semantics).

    With a kernel cache, the current key's dictionary (already memoized
    by this iteration's duplicate check) is reused and the previous key
    is probed against it, instead of concatenating and re-encoding
    previous+current from scratch.  Keys present only in ``previous``
    encode as -1, which is exactly right: they pair with nothing, and
    only unmatched *current* rows count as changes.
    """
    from ..execution.kernel_cache import probe_dictionary
    from ..execution.kernels import encode_keys, equi_join_pairs
    from ..types import common_type

    if previous.num_rows == 0:
        return current.num_rows
    prev_key = previous.columns[key_index]
    cur_key = current.columns[key_index]
    target = common_type(cur_key.sql_type, prev_key.sql_type)
    if cache is not None and cur_key.sql_type is target \
            and prev_key.sql_type is target:
        dictionary = cache.dictionary(cur_key)
        cur_codes = dictionary.codes
        prev_codes = probe_dictionary(dictionary, prev_key)
    else:
        joint = cur_key.concat(prev_key)
        codes = encode_keys([joint], nulls_match=False)
        cur_codes = codes[:current.num_rows]
        prev_codes = codes[current.num_rows:]
    cur_idx, prev_idx = equi_join_pairs(cur_codes, prev_codes)

    matched = np.zeros(current.num_rows, dtype=np.bool_)
    matched[cur_idx] = True
    changed = int((~matched).sum())  # new keys count as changes

    if len(cur_idx):
        differs = np.zeros(len(cur_idx), dtype=np.bool_)
        for i, (cur_col, prev_col) in enumerate(
                zip(current.columns, previous.columns)):
            if i == key_index:
                continue
            pair_cur = cur_col.take(cur_idx)
            pair_prev = prev_col.take(prev_idx)
            differs |= pair_cur.is_distinct_from(pair_prev)
        # A key matched by several previous rows would be double counted;
        # collapse to per-current-row "any pairing differs".
        per_row = np.zeros(current.num_rows, dtype=np.bool_)
        np.logical_or.at(per_row, cur_idx, differs)
        changed += int(per_row.sum())
    return changed
