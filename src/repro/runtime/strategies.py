"""Pluggable loop-execution strategies.

Every loop the engine runs is owned by exactly one :class:`LoopStrategy`,
chosen when the loop initializes:

* :class:`FullRecompute` — the Fig. 8 baseline: every iteration rebuilds
  the working table and physically copies it back (``CopyStep``).
* :class:`RenameInPlace` — the Fig. 8 data-movement optimization: the
  rebuilt working table replaces the CTE table by an O(1) registry
  relabel (``RenameStep``).
* :class:`SemiNaiveDelta` — frontier-driven partition recomputation: only
  the rows affected by the previous iteration's changes are rebuilt, and
  the delta is scattered back by key (bit-identical to the full body).
* :class:`FixpointIncremental` — recursive CTEs: the working table *is*
  the frontier, and ``RecursiveMergeStep`` appends only genuinely new
  rows per trip.

Selection is cost-based and feedback-driven.  The compiler picks the
statically cheapest strategy (delta when the safety analyzer proves
per-key evolution, rename when enabled); at run time the engine feeds
every measured frontier back into the strategy, and
:class:`SemiNaiveDelta` *demotes itself* to the plain full-body strategy
when the frontier stays near-full — the per-iteration bookkeeping
(partition gather + keyed scatter) then costs more than the recomputation
it saves, which is exactly the PageRank shape where every rank changes
every trip.  Demotion routes iterations down the always-compiled full
body, so results stay bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..plan.program import DeltaSpec, LoopSpec


class LoopStrategy:
    """How the iterations of one loop move data between trips."""

    name = "abstract"
    # Why this strategy owns the loop — set by choose_strategy() at
    # selection and surfaced as a strategy_selection decision event.
    reason = ""

    def __init__(self, spec: LoopSpec):
        self.spec = spec

    def note_frontier(self, frontier: int, total: int,
                      engine) -> "LoopStrategy":
        """Feed one measured changed-row frontier back into the strategy.

        Returns the strategy that should own the loop from here on —
        usually ``self``, or the demoted replacement."""
        return self

    def describe(self) -> str:
        return self.name


class FullRecompute(LoopStrategy):
    """Rebuild everything, copy it back (the Fig. 8 baseline)."""

    name = "full-recompute"


class RenameInPlace(LoopStrategy):
    """Rebuild everything, swap the result pointer (Fig. 8 optimized)."""

    name = "rename-in-place"


class FixpointIncremental(LoopStrategy):
    """Recursive CTEs: per-trip work is the new-row frontier itself."""

    name = "fixpoint-incremental"


class DeltaLoopRuntime:
    """Mutable per-loop state for the semi-naive delta path.

    Created when the loop initializes (or by the first
    :class:`DeltaGateStep` execution), populated by
    :class:`DeltaCaptureStep` after a full iteration, consumed and updated
    by the partition/apply steps on every delta iteration.
    """

    __slots__ = ("spec", "active", "disabled", "demoted", "schema",
                 "columns", "key_sorted", "key_positions", "in_working",
                 "frontier_keys", "last_frontier", "pending_positions",
                 "link_indexes")

    def __init__(self, spec: DeltaSpec):
        self.spec = spec
        # Delta state captured and valid: the gate may take the delta path.
        self.active = False
        # Off for this run (key validation failed, the keyset guard
        # tripped, or the strategy demoted itself).
        self.disabled = False
        # True only for threshold demotions: the delta machinery is
        # sound, just not profitable right now — the loop stays eligible
        # for re-promotion.  Permanent disqualifications (NULL or
        # duplicate keys, a tripped keyset guard) leave this False.
        self.demoted = False
        self.schema = None
        # Column objects of the current CTE table (shared, immutable).
        self.columns: list = []
        # Sorted comparable key values + the row position of each.
        self.key_sorted = None
        self.key_positions = None
        # Merge path only: per-row "key was in last iteration's working
        # table" flags, which drive the merge join's row ordering.
        self.in_working = None
        # Comparable key values changed by the last iteration.
        self.frontier_keys = None
        self.last_frontier = 0
        # Row positions gathered by the pending partition step.
        self.pending_positions = None
        # (table, src, dst) -> (sorted src values, dst values in that
        # order) for frontier expansion through base tables.
        self.link_indexes: dict = {}


class SemiNaiveDelta(LoopStrategy):
    """Frontier-driven partition recomputation, with self-demotion.

    Each measured frontier (from delta capture after a full iteration, or
    from delta apply after a delta iteration) feeds
    :meth:`note_frontier`.  Once ``delta_demotion_patience`` consecutive
    frontiers cover at least ``delta_demotion_threshold`` of the table,
    the strategy disables its runtime — the gate then routes every later
    iteration down the full body — and hands the loop to the strategy the
    compiler emitted for that body (rename or copy).
    """

    name = "semi-naive-delta"

    def __init__(self, spec: LoopSpec, options,
                 runtime: DeltaLoopRuntime):
        super().__init__(spec)
        self.runtime = runtime
        self._options = options
        self._threshold = options.delta_demotion_threshold
        self._patience = options.delta_demotion_patience
        self._demotion_on = options.enable_strategy_demotion
        self._streak = 0

    def note_frontier(self, frontier: int, total: int,
                      engine) -> LoopStrategy:
        if not self._demotion_on or self.runtime.disabled:
            return self
        if total <= 0 or frontier < self._threshold * total:
            self._streak = 0
            return self
        self._streak += 1
        if self._streak < self._patience:
            return self
        self.runtime.disabled = True
        self.runtime.active = False
        self.runtime.demoted = True
        base = (RenameInPlace(self.spec)
                if self.spec.movement == "rename"
                else FullRecompute(self.spec))
        fallback = MovementFallback(self.spec, self._options,
                                    self.runtime, base)
        engine.record_demotion(
            self.spec.loop_id, self, fallback, frontier, total,
            budget_frontier=int(self._threshold * total),
            reason=(f"measured frontier covered >= "
                    f"{self._threshold:.0%} of the table for "
                    f"{self._patience} consecutive iteration(s); delta "
                    f"bookkeeping costs more than the recomputation it "
                    f"saves"))
        return fallback


class MovementFallback(LoopStrategy):
    """The full-body strategy a demoted delta loop lands on — plus the
    *promotion* watcher, the demotion mirror.

    Delta capture keeps measuring the changed-row frontier of every full
    iteration while the loop is demoted (without re-activating the delta
    machinery).  Once ``delta_promotion_patience`` consecutive frontiers
    fall below ``delta_promotion_threshold`` of the table, the watcher
    re-enables the runtime and hands the loop back to a fresh
    :class:`SemiNaiveDelta` — the next full iteration re-captures delta
    state, and the one after takes the delta path again.  The promote
    threshold sits below the demote threshold (hysteresis), so the pair
    cannot ping-pong every iteration.
    """

    def __init__(self, spec: LoopSpec, options,
                 runtime: DeltaLoopRuntime, base: LoopStrategy):
        super().__init__(spec)
        # Reports and telemetry see the movement fallback's own name.
        self.name = base.name
        self.base = base
        self.runtime = runtime
        self._options = options
        self._threshold = options.delta_promotion_threshold
        self._patience = options.delta_promotion_patience
        self._promotion_on = options.enable_strategy_promotion
        self._streak = 0

    def note_frontier(self, frontier: int, total: int,
                      engine) -> LoopStrategy:
        if not self._promotion_on or not self.runtime.demoted:
            return self
        if total <= 0 or frontier >= self._threshold * total:
            self._streak = 0
            return self
        self._streak += 1
        if self._streak < self._patience:
            return self
        self.runtime.disabled = False
        self.runtime.active = False
        self.runtime.demoted = False
        promoted = SemiNaiveDelta(self.spec, self._options, self.runtime)
        engine.record_promotion(
            self.spec.loop_id, self, promoted, frontier, total,
            budget_frontier=int(self._threshold * total),
            reason=(f"measured frontier stayed < "
                    f"{self._threshold:.0%} of the table for "
                    f"{self._patience} consecutive iteration(s); the "
                    f"delta path is profitable again"))
        return promoted


def choose_strategy(spec: LoopSpec, options,
                    runtime: DeltaLoopRuntime = None) -> LoopStrategy:
    """The statically best strategy for ``spec`` under ``options``.

    This mirrors what the compiler emitted: delta steps exist exactly when
    ``spec.delta`` is set, and the full body moves data by rename or copy
    according to ``spec.movement``.

    The returned strategy carries a ``reason`` string explaining the
    pick; the loop engine publishes it as a ``strategy_selection``
    decision event.
    """
    if spec.until_empty is not None:
        strategy = FixpointIncremental(spec)
        strategy.reason = ("recursive UNTIL-empty loop: the working "
                           "table is its own frontier")
    elif spec.delta is not None and runtime is not None:
        strategy = SemiNaiveDelta(spec, options, runtime)
        strategy.reason = ("delta-safety analysis proved per-key "
                           "evolution; frontier-driven recomputation is "
                           "statically cheapest")
    elif spec.movement == "rename":
        strategy = RenameInPlace(spec)
        strategy.reason = ("full refresh with rename enabled: pointer "
                           "swap replaces the copy-back")
    else:
        strategy = FullRecompute(spec)
        strategy.reason = ("no provable delta path and rename "
                           "unavailable: copy-back baseline")
    return strategy


@dataclass
class DemotionRecord:
    """One mid-loop strategy demotion, for reports and telemetry."""

    iteration: int
    from_name: str
    to_name: str
    frontier: int
    total: int

    def describe(self) -> str:
        return (f"demoted {self.from_name} -> {self.to_name} after "
                f"iteration {self.iteration} (frontier {self.frontier}"
                f"/{self.total} rows)")


@dataclass
class PromotionRecord:
    """One mid-loop strategy promotion, for reports and telemetry."""

    iteration: int
    from_name: str
    to_name: str
    frontier: int
    total: int

    def describe(self) -> str:
        return (f"promoted {self.from_name} -> {self.to_name} after "
                f"iteration {self.iteration} (frontier {self.frontier}"
                f"/{self.total} rows)")


# ---------------------------------------------------------------------------
# Exchange strategies (distributed supersteps)
# ---------------------------------------------------------------------------
#
# The loop strategies above decide how one iteration's data moves
# between *trips*; exchange strategies decide how one superstep's data
# moves between *workers*.  They classify every outbound piece per
# channel (an (origin, destination) pair) into SEND / EMPTY / UNCHANGED,
# and live here rather than in repro.mpp so workers can depend on them
# without the runtime depending on the distribution layer.

SEND = "send"
EMPTY = "empty"
UNCHANGED = "unchanged"


class ExchangeStrategy:
    """Ship every non-empty piece (the naive exchange).

    Instances hold per-channel state and are owned by one sender — the
    coordinator builds one per worker (or per inline segment) so
    channels never alias across senders.
    """

    name = "naive-exchange"

    def classify(self, channel: tuple[int, int], piece) -> str:
        """SEND / EMPTY / UNCHANGED for ``piece`` on ``channel``."""
        if piece.num_rows == 0:
            return EMPTY
        return SEND


class DeltaShuffleExchange(ExchangeStrategy):
    """Suppress motion for a piece identical to the channel's last.

    The semi-naive idea applied to the wire: each channel remembers the
    last piece it shipped; when the new piece is byte-identical the
    sender ships an UNCHANGED marker and the receiver replays its cached
    copy.  Empty pieces bypass the cache entirely (they were never sent,
    so there is nothing to replay), matching the inline simulation's
    accounting.  Only legal under semi-naive plans — enforced statically
    by :func:`repro.verify.exchange.check_exchange_plan`.
    """

    name = "delta-shuffle"

    def __init__(self):
        self._sent: dict[tuple[int, int], list] = {}

    def classify(self, channel: tuple[int, int], piece) -> str:
        if piece.num_rows == 0:
            return EMPTY
        import numpy as np
        arrays = []
        for column in piece.columns:
            arrays.append(column.data)
            arrays.append(column.mask)
        previous = self._sent.get(channel)
        self._sent[channel] = arrays
        if previous is not None and len(previous) == len(arrays) and all(
                np.array_equal(a, b) for a, b in zip(previous, arrays)):
            return UNCHANGED
        return SEND


def make_exchange_strategy(delta_shuffle: bool) -> ExchangeStrategy:
    return DeltaShuffleExchange() if delta_shuffle else ExchangeStrategy()
