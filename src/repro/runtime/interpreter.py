"""The step interpreter: a program counter over registered handlers.

This is the engine-side half of the paper's execution-engine changes
(§VI): materialize steps run ordinary plans; the *rename* step updates the
intermediate-result lookup table; the *loop* step evaluates the
termination condition and conditionally jumps backwards.  What each step
*does* lives in :mod:`repro.runtime.handlers`; how loops behave lives in
the :class:`~repro.runtime.loop_engine.LoopEngine`.  The interpreter only
advances the program counter, meters the safety budget, and profiles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..errors import IterationLimitError
from ..execution import ExecutionContext
from ..obs.telemetry import LoopTelemetry, render_iteration_table
from ..plan.program import InitLoopStep, LoopStep, Program, Step
from ..storage import Table
from . import handlers  # noqa: F401  (registers all step handlers)
from .loop_engine import LoopEngine
from .registry import dispatch


@dataclass
class StepProfile:
    """Accumulated runtime of one program step (EXPLAIN ANALYZE)."""

    executions: int = 0
    rows: int = 0
    seconds: float = 0.0


class ProgramRunner:
    """Executes one program against an execution context.

    Instrumentation (per-step profiles, the stats snapshot backing the
    cache report, and per-iteration loop telemetry) is reset explicitly
    at the start of every :meth:`run` call, so a runner reused for
    back-to-back runs — or an EXPLAIN ANALYZE issued after
    ``ExecutionStats.reset()`` — reports exactly one run, never a
    double-counted accumulation.
    """

    def __init__(self, program: Program, ctx: ExecutionContext,
                 instrument: bool = False):
        self._program = program
        self.ctx = ctx
        self.engine = LoopEngine(program, ctx)
        self._instrument = instrument
        self._result: Optional[Table] = None
        # Profiles are keyed by step identity (id of the Step object),
        # not list position: strategies may reorder or re-enter steps,
        # and identity keys keep each step's numbers attached to *it*.
        self.profiles: dict[int, StepProfile] = {}
        # Incremental UNION DISTINCT state, one per recursive result
        # name.  Deliberately *not* reset per run: the index survives
        # back-to-back runs and revalidates itself by absorbed-row count.
        self.merge_indexes: dict[str, tuple[tuple, object]] = {}
        self._stats_at_start: Optional[dict[str, int]] = None

    def set_result(self, table: Optional[Table]) -> None:
        self._result = table

    @property
    def loop_telemetry(self) -> dict[int, LoopTelemetry]:
        """Per-loop telemetry of the last observed run."""
        return self.engine.telemetry

    def _begin_run(self, observe: bool) -> None:
        """Reset all instrumentation state for exactly one run."""
        self.profiles = {}
        self._result = None
        self.engine.begin_run()
        self._stats_at_start = (self.ctx.stats.snapshot() if observe
                                else None)

    def run(self) -> Optional[Table]:
        ctx = self.ctx
        tracer = ctx.tracer
        observe = self._instrument or tracer.enabled
        self._begin_run(observe)
        pc = 0
        safety_budget = ctx.options.max_iterations
        steps = self._program.steps
        try:
            while pc < len(steps):
                if observe:
                    jump = self._run_observed_step(pc, steps[pc], tracer)
                else:
                    jump = dispatch(self, steps[pc])
                if jump is not None:
                    if jump <= pc:
                        # Only backward jumps (new iterations) consume the
                        # budget; the delta gate's forward jumps within one
                        # iteration do not.
                        safety_budget -= 1
                        if safety_budget <= 0:
                            raise IterationLimitError(
                                "iterative query exceeded max_iterations "
                                f"({ctx.options.max_iterations}); raise "
                                "the session option if this is "
                                "intentional")
                    pc = jump
                else:
                    pc += 1
        finally:
            # Close spans a raising step left open so the trace tree
            # stays well formed.
            self.engine.close()
        return self._result

    def _run_observed_step(self, pc: int, step: Step,
                           tracer) -> Optional[int]:
        """One step with profiling, span emission, and loop telemetry."""
        started = time.perf_counter()
        before = self.ctx.stats.rows_materialized
        span = None
        if tracer.enabled:
            span = tracer.start(type(step).__name__, kind="step",
                                index=pc + 1, detail=step.describe())
        try:
            jump = dispatch(self, step)
        finally:
            if span is not None:
                tracer.end(span)
        profile = self.profiles.setdefault(id(step), StepProfile())
        profile.executions += 1
        profile.seconds += time.perf_counter() - started
        profile.rows += self.ctx.stats.rows_materialized - before
        if isinstance(step, InitLoopStep):
            self.engine.observe_loop(step.spec, tracer)
        elif isinstance(step, LoopStep):
            self.engine.observe_iteration(step.loop_id, jump is not None)
        return jump

    # -- reporting -----------------------------------------------------------

    def report(self) -> str:
        """Render the program with measured per-step counters, the
        kernel-cache counter deltas, per-loop strategy outcomes, and a
        per-iteration breakdown for every loop the run executed."""
        lines = []
        for index, step in enumerate(self._program.steps):
            profile = self.profiles.get(id(step), StepProfile())
            timing = (f"(executions={profile.executions}, "
                      f"rows={profile.rows}, "
                      f"time={profile.seconds * 1000:.2f}ms)")
            lines.append(f"{index + 1:>3}  {step.describe()}  {timing}")
            if isinstance(step, LoopStep):
                spec = self._program.loops[step.loop_id]
                lines.append(f"     loop {spec.annotation()}")
        lines.extend(self._cache_report())
        lines.extend(self._strategy_report())
        lines.extend(self._decision_report())
        loop_telemetry = self.loop_telemetry
        for loop_id in sorted(loop_telemetry):
            lines.extend(render_iteration_table(loop_telemetry[loop_id]))
        return "\n".join(lines)

    def _cache_report(self) -> list[str]:
        """Kernel-cache counter deltas for this run (EXPLAIN ANALYZE)."""
        if self._stats_at_start is None:
            return []
        delta = self.ctx.stats.delta_since(self._stats_at_start)
        state = ("on" if self.ctx.options.enable_kernel_cache else "off")
        return [
            f"kernel cache ({state}): "
            f"hits={delta['kernel_cache_hits']}, "
            f"misses={delta['kernel_cache_misses']}, "
            f"invalidations={delta['kernel_cache_invalidations']}",
            f"join index: hits={delta['join_index_hits']}, "
            f"misses={delta['join_index_misses']}, "
            f"overflows={delta['join_index_overflows']}",
            f"merge index: hits={delta['merge_index_hits']}, "
            f"rebuilds={delta['merge_index_rebuilds']}, "
            f"overflows={delta['merge_index_overflows']}, "
            f"repacks={delta['merge_index_repacks']}",
        ]

    def _strategy_report(self) -> list[str]:
        """The strategy that finished owning each loop, with any
        mid-loop demotions and promotions."""
        lines = []
        for loop_id in sorted(self.engine.strategies):
            spec = self._program.loops.get(loop_id)
            if spec is None:
                continue
            strategy = self.engine.strategies[loop_id]
            line = f"loop {spec.cte_name}: strategy {strategy.describe()}"
            events = [record.describe() for record in
                      (self.engine.demotions.get(loop_id),
                       self.engine.promotions.get(loop_id))
                      if record is not None]
            if events:
                line += f" ({'; '.join(events)})"
            lines.append(line)
        return lines

    def _decision_report(self) -> list[str]:
        """The run's strategy decisions in the order they were taken —
        the text twin of the trace's decision events."""
        engine = self.engine
        if not engine.selections:
            return []
        lines = ["decision timeline:"]
        for loop_id in sorted(engine.selections):
            spec = self._program.loops.get(loop_id)
            cte = spec.cte_name if spec is not None else str(loop_id)
            name, reason = engine.selections[loop_id]
            lines.append(f"  loop {cte}: selected {name} — {reason}")
            for record in (engine.demotions.get(loop_id),
                           engine.promotions.get(loop_id)):
                if record is not None:
                    lines.append(f"  loop {cte}: {record.describe()}")
        return lines

    def loop_iteration_counts(self) -> dict[str, int]:
        """Measured iteration count per CTE name from the last run.

        Feeds the cost model's measured-iterations registry (see
        :meth:`repro.stats.StatisticsCatalog.record_loop_iterations`)."""
        counts: dict[str, int] = {}
        for loop_id, state in self.engine.states.items():
            spec = self._program.loops.get(loop_id)
            if spec is not None and state.iterations:
                counts[spec.cte_name] = state.iterations
        return counts


def run_program(program: Program, ctx: ExecutionContext) -> Optional[Table]:
    """Execute a plan program; returns the ReturnStep's table (if any)."""
    return ProgramRunner(program, ctx).run()
