"""The step-handler registry: one handler per :class:`Step` kind.

The interpreter dispatches through this table instead of one giant
isinstance chain, so adding a step kind means registering a handler in a
:mod:`repro.runtime.handlers` module — no interpreter edits.  A handler
takes ``(runner, step)`` and returns the next program counter, or ``None``
to fall through to the following step.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ExecutionError
from ..plan.program import Step

Handler = Callable[["ProgramRunner", Step], Optional[int]]

HANDLERS: dict[type, Handler] = {}


def handles(*step_types: type):
    """Register the decorated function as the handler for ``step_types``."""

    def register(fn: Handler) -> Handler:
        for step_type in step_types:
            if step_type in HANDLERS:
                raise RuntimeError(
                    f"duplicate handler for {step_type.__name__}")
            HANDLERS[step_type] = fn
        return fn

    return register


def dispatch(runner, step: Step) -> Optional[int]:
    """Run ``step`` through its registered handler."""
    handler = HANDLERS.get(type(step))
    if handler is None:
        # Subclassed steps execute through their nearest registered base.
        for base in type(step).__mro__[1:]:
            handler = HANDLERS.get(base)
            if handler is not None:
                break
        else:
            raise ExecutionError(
                f"unknown step type: {type(step).__name__}")
    return handler(runner, step)
