"""The unified loop runtime (§VI).

One execution path for every iterative construct in the system:

* :mod:`repro.runtime.interpreter` — the step interpreter: a program
  counter over the handler registry.
* :mod:`repro.runtime.registry` + :mod:`repro.runtime.handlers` — the
  dispatch table; each :class:`~repro.plan.program.Step` kind has one
  handler module.
* :mod:`repro.runtime.loop_engine` — loop control, telemetry, and spans
  for the SQL engine *and* the MPP / middleware / procedure drivers.
* :mod:`repro.runtime.strategies` — the pluggable ``LoopStrategy``
  implementations (full recompute, rename in place, semi-naive delta)
  with cost-based, feedback-driven selection and mid-loop demotion.
* :mod:`repro.runtime.conditions` — termination-condition evaluation.
"""

from .conditions import LoopState, count_changed_rows, should_continue
from .interpreter import ProgramRunner, StepProfile, run_program
from .loop_engine import LoopEngine, LoopRun
from .registry import HANDLERS, dispatch, handles
from .strategies import (
    DeltaLoopRuntime,
    DeltaShuffleExchange,
    DemotionRecord,
    ExchangeStrategy,
    FixpointIncremental,
    FullRecompute,
    LoopStrategy,
    RenameInPlace,
    SemiNaiveDelta,
    choose_strategy,
    make_exchange_strategy,
)

__all__ = [
    "HANDLERS",
    "DeltaLoopRuntime",
    "DeltaShuffleExchange",
    "DemotionRecord",
    "ExchangeStrategy",
    "FixpointIncremental",
    "FullRecompute",
    "LoopEngine",
    "LoopRun",
    "LoopState",
    "LoopStrategy",
    "ProgramRunner",
    "RenameInPlace",
    "SemiNaiveDelta",
    "StepProfile",
    "choose_strategy",
    "count_changed_rows",
    "dispatch",
    "handles",
    "make_exchange_strategy",
    "run_program",
    "should_continue",
]
