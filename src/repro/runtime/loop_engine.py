"""The unified loop engine: one control shell for every loop.

:class:`LoopRun` is the generic per-loop instrument: wall-clock and
counter metering per iteration, span emission, and
:class:`~repro.obs.telemetry.LoopTelemetry` accumulation.  The SQL
interpreter (through :class:`LoopEngine`), the MPP driver
(:func:`repro.mpp.iterative.distributed_pagerank`), and the middleware /
stored-procedure baselines all report through it, so kernel-cache
counters, data-motion accounting and span tracing behave identically
whichever layer runs the loop.

:class:`LoopEngine` adds what step programs need on top: per-loop
:class:`~repro.runtime.conditions.LoopState`, termination evaluation,
the pluggable :class:`~repro.runtime.strategies.LoopStrategy` objects,
and the frontier-feedback channel that drives mid-loop strategy
demotion.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import ExecutionError
from ..obs.telemetry import IterationRecord, LoopTelemetry
from ..obs.trace import NULL_TRACER
from ..plan.program import DeltaSpec, LoopSpec, LoopStep, Program
from ..sql import ast
from .conditions import LoopState, should_continue
from .strategies import (
    DeltaLoopRuntime,
    DemotionRecord,
    LoopStrategy,
    PromotionRecord,
    SemiNaiveDelta,
    choose_strategy,
)


class LoopRun:
    """Meter one loop: telemetry records, spans, and counter deltas.

    ``snapshot`` (optional) samples a ``{name: number}`` counter dict at
    iteration boundaries; ``derive`` maps the per-iteration counter diff
    to :class:`IterationRecord` field overrides (e.g. cache hits for the
    SQL engine, motion for the cluster).  ``span_attributes`` land on the
    loop span.
    """

    def __init__(self, loop_id: int, name: str, kind: str,
                 tracer=NULL_TRACER,
                 snapshot: Optional[Callable[[], dict]] = None,
                 derive: Optional[Callable[[dict], dict]] = None,
                 strategy: Optional[str] = None,
                 span_attributes: Optional[dict] = None):
        self.telemetry = LoopTelemetry(loop_id, name, kind,
                                       strategy=strategy)
        self._name = name
        self._tracer = tracer
        self._snapshot_fn = snapshot
        self._derive = derive
        self._span_attributes = span_attributes or {}
        self._loop_span = None
        self._iter_span = None
        self._mark: Optional[tuple[float, Optional[dict]]] = None

    def begin(self) -> None:
        """Mark the start of the first iteration (and open spans)."""
        snapshot = self._snapshot_fn() if self._snapshot_fn else None
        self._mark = (time.perf_counter(), snapshot)
        if self._tracer.enabled:
            self._loop_span = self._tracer.start(
                f"loop:{self._name}", kind="loop",
                **self._span_attributes)
            self._iter_span = self._tracer.start(
                "iteration", kind="iteration", index=1)

    def finish_iteration(self, continuing: bool, *, delta_rows: int,
                         working_rows: int, total_rows: int,
                         **extra) -> IterationRecord:
        """Record one completed trip; re-mark for the next one.

        ``extra`` fields override anything ``derive`` computed from the
        counter diff."""
        now = time.perf_counter()
        mark_time, mark_snapshot = self._mark
        fields = dict(extra)
        snapshot = None
        if self._snapshot_fn is not None:
            snapshot = self._snapshot_fn()
            if self._derive is not None and mark_snapshot is not None:
                diff = {key: snapshot[key] - mark_snapshot.get(key, 0)
                        for key in snapshot}
                for key, value in self._derive(diff).items():
                    fields.setdefault(key, value)
        record = IterationRecord(
            index=self.telemetry.iterations + 1,
            seconds=now - mark_time,
            delta_rows=delta_rows,
            working_rows=working_rows,
            total_rows=total_rows,
            **fields)
        self.telemetry.records.append(record)
        self._mark = (now, snapshot)
        if self._iter_span is not None:
            self._iter_span.set(**record.to_dict())
            self._tracer.end(self._iter_span)
            self._iter_span = None
            if continuing:
                self._iter_span = self._tracer.start(
                    "iteration", kind="iteration",
                    index=self.telemetry.iterations + 1)
            else:
                self._close_loop_span()
        return record

    def close(self) -> None:
        """End any spans still open (abnormal loop termination)."""
        if self._iter_span is not None:
            self._tracer.end(self._iter_span)
            self._iter_span = None
        self._close_loop_span()

    def _close_loop_span(self) -> None:
        if self._loop_span is not None:
            self._loop_span.set(iterations=self.telemetry.iterations)
            self._tracer.end(self._loop_span)
        self._loop_span = None


class LoopEngine:
    """Loop control for one program run.

    Owns every per-loop artifact of the run: termination states, strategy
    objects (with their delta runtimes), demotion records, and — when the
    run is observed — one :class:`LoopRun` per loop for telemetry and
    spans.  Step handlers never touch loop state directly; they go
    through this engine, which is what makes the strategies pluggable.
    """

    def __init__(self, program: Program, ctx):
        self._program = program
        self._ctx = ctx
        self.states: dict[int, LoopState] = {}
        self.strategies: dict[int, LoopStrategy] = {}
        self.delta_runtimes: dict[int, DeltaLoopRuntime] = {}
        self.demotions: dict[int, DemotionRecord] = {}
        self.promotions: dict[int, PromotionRecord] = {}
        # (strategy name, selection reason) per loop, for the decision
        # timeline in EXPLAIN ANALYZE.
        self.selections: dict[int, tuple[str, str]] = {}
        self._runs: dict[int, LoopRun] = {}

    def begin_run(self) -> None:
        """Reset all loop state for exactly one program run."""
        self.states = {}
        self.strategies = {}
        self.delta_runtimes = {}
        self.demotions = {}
        self.promotions = {}
        self.selections = {}
        self._runs = {}

    # -- loop control --------------------------------------------------------

    def init_loop(self, spec: LoopSpec) -> None:
        self.states[spec.loop_id] = LoopState(spec)
        runtime = None
        if spec.delta is not None:
            runtime = self.delta_runtimes.get(spec.loop_id)
            if runtime is None:
                runtime = DeltaLoopRuntime(spec.delta)
                self.delta_runtimes[spec.loop_id] = runtime
        strategy = choose_strategy(spec, self._ctx.options, runtime)
        self.strategies[spec.loop_id] = strategy
        self.selections[spec.loop_id] = (strategy.name, strategy.reason)
        tracer = self._ctx.tracer
        if tracer.enabled:
            tracer.event("strategy_selection", kind="decision",
                         loop_id=spec.loop_id, strategy=strategy.name,
                         reason=strategy.reason)

    def state(self, loop_id: int) -> LoopState:
        state = self.states.get(loop_id)
        if state is None:
            raise ExecutionError(
                "loop step executed before initialization")
        return state

    def evaluate(self, step: LoopStep) -> Optional[int]:
        """The loop operator's decision: the back-jump target or None."""
        if should_continue(self.state(step.loop_id), self._ctx):
            return step.jump_to
        return None

    def record_updates(self, loop_id: int, changed: int) -> None:
        self.state(loop_id).record_updates(changed)

    def counts_updates(self, loop_id: int) -> bool:
        """Whether the loop's termination reads the updated-row counter."""
        spec = self._program.loops.get(loop_id)
        return (spec is not None and spec.termination is not None
                and spec.termination.kind in (ast.TerminationKind.UPDATES,
                                              ast.TerminationKind.DELTA))

    # -- delta strategy plumbing ---------------------------------------------

    def delta_runtime(self, spec: DeltaSpec) -> DeltaLoopRuntime:
        """The loop's delta runtime (created on demand).

        The runtime outlives strategy demotion on purpose: a demoted
        loop's gate must keep seeing ``disabled`` and route to the full
        body."""
        runtime = self.delta_runtimes.get(spec.loop_id)
        if runtime is None:
            runtime = DeltaLoopRuntime(spec)
            self.delta_runtimes[spec.loop_id] = runtime
        return runtime

    def note_frontier(self, loop_id: int, frontier: int,
                      total: int) -> None:
        """Feed a measured frontier to the loop's strategy, adopting
        whatever strategy it hands back (the demotion channel)."""
        strategy = self.strategies.get(loop_id)
        if strategy is not None:
            self.strategies[loop_id] = strategy.note_frontier(
                frontier, total, self)

    def record_demotion(self, loop_id: int, from_strategy: LoopStrategy,
                        to_strategy: LoopStrategy, frontier: int,
                        total: int, budget_frontier: int = 0,
                        reason: str = "") -> None:
        state = self.states.get(loop_id)
        record = DemotionRecord(
            iteration=(state.iterations + 1) if state is not None else 0,
            from_name=from_strategy.name, to_name=to_strategy.name,
            frontier=frontier, total=total)
        self.demotions[loop_id] = record
        self._ctx.stats.strategy_demotions += 1
        tracer = self._ctx.tracer
        if tracer.enabled:
            tracer.event("strategy_demotion", kind="decision",
                         loop_id=loop_id,
                         from_strategy=record.from_name,
                         to_strategy=record.to_name,
                         iteration=record.iteration,
                         frontier=frontier, total=total,
                         budget_frontier=budget_frontier,
                         reason=reason)
        run = self._runs.get(loop_id)
        if run is not None:
            run.telemetry.strategy = (f"{record.from_name}->"
                                      f"{record.to_name}")

    def record_promotion(self, loop_id: int, from_strategy: LoopStrategy,
                         to_strategy: LoopStrategy, frontier: int,
                         total: int, budget_frontier: int = 0,
                         reason: str = "") -> None:
        state = self.states.get(loop_id)
        record = PromotionRecord(
            iteration=(state.iterations + 1) if state is not None else 0,
            from_name=from_strategy.name, to_name=to_strategy.name,
            frontier=frontier, total=total)
        self.promotions[loop_id] = record
        self._ctx.stats.strategy_promotions += 1
        tracer = self._ctx.tracer
        if tracer.enabled:
            tracer.event("strategy_promotion", kind="decision",
                         loop_id=loop_id,
                         from_strategy=record.from_name,
                         to_strategy=record.to_name,
                         iteration=record.iteration,
                         frontier=frontier, total=total,
                         budget_frontier=budget_frontier,
                         reason=reason)
        run = self._runs.get(loop_id)
        if run is not None:
            # Append to the demotion chain so the telemetry reads e.g.
            # "semi-naive-delta->rename-in-place->semi-naive-delta".
            prior = run.telemetry.strategy or record.from_name
            run.telemetry.strategy = f"{prior}->{record.to_name}"

    # -- observation (telemetry + spans) -------------------------------------

    @property
    def telemetry(self) -> dict[int, LoopTelemetry]:
        """Per-loop telemetry of the current observed run."""
        return {loop_id: run.telemetry
                for loop_id, run in self._runs.items()}

    def observe_loop(self, spec: LoopSpec, tracer) -> None:
        kind = "fixpoint" if spec.until_empty is not None else "iterative"
        strategy = self.strategies.get(spec.loop_id)
        run = LoopRun(
            spec.loop_id, spec.cte_name, kind, tracer=tracer,
            snapshot=self._ctx.stats.snapshot,
            derive=_engine_record_fields,
            strategy=strategy.name if strategy is not None else None,
            span_attributes={"loop_id": spec.loop_id, "loop_kind": kind})
        self._runs[spec.loop_id] = run
        run.begin()

    def observe_iteration(self, loop_id: int, continuing: bool) -> None:
        run = self._runs.get(loop_id)
        if run is None:
            return
        spec = self._program.loops[loop_id]
        state = self.states.get(loop_id)
        total_rows = self._registry_rows(spec.cte_result)
        if spec.until_empty is not None:
            # Fixpoint loop: the working table holds the new rows.
            working_rows = self._registry_rows(spec.until_empty)
            delta_rows = working_rows
        else:
            working_rows = total_rows
            runtime = self.delta_runtimes.get(loop_id)
            if runtime is not None and runtime.active \
                    and not runtime.disabled:
                # Delta-mode loop: report the true changed-row frontier,
                # whatever the termination condition counts.
                delta_rows = runtime.last_frontier
            elif self.counts_updates(loop_id) and state is not None:
                delta_rows = state.last_delta
            else:
                # Full-refresh loop (e.g. PageRank): every row rewritten.
                delta_rows = total_rows
        run.finish_iteration(continuing, delta_rows=delta_rows,
                             working_rows=working_rows,
                             total_rows=total_rows)

    def close(self) -> None:
        """Close spans a raising step left open so the trace tree stays
        well formed."""
        for run in self._runs.values():
            run.close()

    def _registry_rows(self, name: Optional[str]) -> int:
        registry = self._ctx.registry
        if name is None or not registry.exists(name):
            return 0
        return registry.fetch(name).num_rows


def _engine_record_fields(diff: dict) -> dict:
    """IterationRecord fields from an ExecutionStats counter diff."""
    return {
        "kernel_cache_hits": (diff["kernel_cache_hits"]
                              + diff["join_index_hits"]
                              + diff["merge_index_hits"]),
        "kernel_cache_misses": (diff["kernel_cache_misses"]
                                + diff["join_index_misses"]
                                + diff["merge_index_rebuilds"]),
        "rows_moved": diff["rows_moved"],
        "bytes_moved": diff["bytes_moved"],
    }
