"""Console entry point for the combined tier-1 smoke guards.

``repro-smoke`` (see ``[project.scripts]`` in pyproject.toml) runs the
same marker set as ``scripts/check_all_smoke.sh``: the bench,
observability, delta-evaluation, lint, stored-procedure, trace-diff,
perf-gate, MPP worker-pool, serving-layer and racecheck guards, in one
pytest invocation.  Pass ``--only
bench|obs|delta|lint|procedures|tracediff|perf|mpp|serving|racecheck``
to run a single guard, plus any extra pytest arguments after ``--``.

``_MARKERS`` is the source of truth for the guard list; a sync test
(``tests/test_smoke_sync.py``) asserts ``scripts/check_all_smoke.sh``
and the pyproject marker declarations agree with it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

_MARKERS = {
    "bench": "bench_smoke",
    "obs": "obs_smoke",
    "delta": "delta_smoke",
    "lint": "lint_smoke",
    "procedures": "procedures_smoke",
    "tracediff": "tracediff_smoke",
    "perf": "perf_smoke",
    "mpp": "mpp_smoke",
    "serving": "serving_smoke",
    "racecheck": "racecheck_smoke",
}


def marker_expression(only: Optional[str] = None) -> str:
    """The pytest ``-m`` expression selecting the requested guards."""
    if only is not None:
        return _MARKERS[only]
    return " or ".join(_MARKERS.values())


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-smoke",
        description="Run the tier-1 smoke guards (bench + obs + delta "
                    "+ lint + procedures + tracediff + perf + mpp "
                    "+ serving + racecheck).")
    parser.add_argument("--only", choices=sorted(_MARKERS),
                        help="run a single guard instead of all of them")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest "
                             "(prefix with --)")
    args = parser.parse_args(argv)

    import pytest

    return pytest.main(["-m", marker_expression(args.only), "-q",
                        *args.pytest_args])


if __name__ == "__main__":
    sys.exit(main())
