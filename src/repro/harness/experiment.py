"""Experiment running utilities shared by the benchmark harness.

Benchmarks time *queries against fresh engine state* — iterative CTE
execution mutates only registry temporaries, so a single Database can be
reused across repetitions; the helpers here standardize warmup, repeats,
and the paper-style comparison records.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..engine import Database
from ..obs import ledger as ledger_mod
from ..obs.export import BENCH_SCHEMA_VERSION


@dataclass
class Measurement:
    """Wall-clock timing of one configuration."""

    label: str
    seconds: float
    repeats: int
    all_seconds: list[float] = field(default_factory=list)

    @property
    def stdev(self) -> float:
        if len(self.all_seconds) < 2:
            return 0.0
        return statistics.stdev(self.all_seconds)


def time_callable(label: str, fn: Callable[[], object],
                  repeats: int = 3, warmup: int = 1) -> Measurement:
    """Median-of-repeats timing with warmup runs."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return Measurement(label, statistics.median(samples), repeats, samples)


def time_query(db: Database, sql: str, repeats: int = 3,
               warmup: int = 1, label: Optional[str] = None) -> Measurement:
    return time_callable(label or sql.strip().splitlines()[0],
                         lambda: db.execute(sql), repeats, warmup)


def time_fresh(label: str, setup: Callable[[], object],
               run: Callable[[object], object],
               repeats: int = 3, warmup: int = 1,
               teardown: Optional[Callable[[object], None]] = None
               ) -> Measurement:
    """Median-of-repeats timing where every sample runs against freshly
    built state: ``setup()`` constructs the state *outside* the timed
    window, ``run(state)`` is what gets timed, and ``teardown(state)``
    (also untimed) releases resources the state holds — worker pools,
    open files — before the next sample builds its own.

    Use this when the subject under measurement is cold-state execution
    (loop strategies, caches that warm inside one query) —
    :func:`time_callable` against a reused database would time warm
    state from the second sample on, while a single cold run records
    no spread at all."""
    def finish(state) -> None:
        if teardown is not None:
            teardown(state)

    for _ in range(warmup):
        state = setup()
        try:
            run(state)
        finally:
            finish(state)
    samples = []
    for _ in range(repeats):
        state = setup()
        try:
            start = time.perf_counter()
            run(state)
            samples.append(time.perf_counter() - start)
        finally:
            finish(state)
    return Measurement(label, statistics.median(samples), repeats, samples)


@dataclass
class Comparison:
    """One paper-figure data point: baseline vs optimized."""

    name: str
    baseline: Measurement
    optimized: Measurement

    @property
    def improvement_pct(self) -> float:
        """Percentage faster than baseline (paper's headline metric)."""
        if self.baseline.seconds == 0:
            return 0.0
        return 100.0 * (1.0 - self.optimized.seconds
                        / self.baseline.seconds)

    @property
    def speedup(self) -> float:
        if self.optimized.seconds == 0:
            return float("inf")
        return self.baseline.seconds / self.optimized.seconds


def _measurement_dict(measurement: Measurement) -> dict:
    return {
        "label": measurement.label,
        "seconds": measurement.seconds,
        "repeats": measurement.repeats,
        "stdev": measurement.stdev,
        "all_seconds": list(measurement.all_seconds),
    }


def _comparison_dict(comparison: Comparison) -> dict:
    return {
        "name": comparison.name,
        "baseline": _measurement_dict(comparison.baseline),
        "optimized": _measurement_dict(comparison.optimized),
        "speedup": comparison.speedup,
        "improvement_pct": comparison.improvement_pct,
    }


def _ledger_records(name: str, comparisons: list[Comparison],
                    measurements: list[Measurement],
                    extra: dict) -> list["ledger_mod.RunRecord"]:
    """Every measurement in the artifact (standalone or a comparison
    side) becomes one ``kind="bench"`` ledger record.  The benchmark's
    ``extra`` dict doubles as its options hash — it is where benchmarks
    already put their shape parameters."""
    host = ledger_mod.host_fingerprint()
    sha = ledger_mod.git_sha()
    flat: list[tuple[str, Measurement]] = [
        (m.label, m) for m in measurements]
    for comparison in comparisons:
        flat.append((f"{comparison.name}/baseline", comparison.baseline))
        flat.append((f"{comparison.name}/optimized",
                     comparison.optimized))
    records = []
    for label, measurement in flat:
        samples = measurement.all_seconds or [measurement.seconds]
        records.append(ledger_mod.record_from_samples(
            name, label, samples, options=extra, kind="bench",
            host=host, sha=sha))
    return records


def write_bench_artifact(name: str,
                         comparisons: Iterable[Comparison] = (),
                         measurements: Iterable[Measurement] = (),
                         extra: Optional[dict] = None,
                         directory: str = ".",
                         ledger: Optional[str] = None) -> str:
    """Write ``BENCH_<name>.json`` (bench schema v1, see repro.obs.export)
    and return its path.  Benchmarks call this from their ``__main__``
    block so importing/collecting them leaves no files behind.

    Every measurement is also appended to the perf ledger
    (:mod:`repro.obs.ledger`) as a ``bench`` record — ``ledger`` names
    the JSONL path, defaulting to ``$REPRO_PERF_LEDGER`` or
    ``PERF_LEDGER.jsonl`` next to the artifact; pass ``ledger=""`` to
    skip the append."""
    comparisons = list(comparisons)
    measurements = list(measurements)
    extra = dict(extra or {})
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": name,
        "created_unix": time.time(),
        "measurements": [_measurement_dict(m) for m in measurements],
        "comparisons": [_comparison_dict(c) for c in comparisons],
        "extra": extra,
    }
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    if ledger is None:
        ledger = os.environ.get("REPRO_PERF_LEDGER") or os.path.join(
            directory, ledger_mod.DEFAULT_LEDGER_NAME)
    if ledger:
        ledger_mod.append_records(
            _ledger_records(name, comparisons, measurements, extra),
            ledger)
    return path
