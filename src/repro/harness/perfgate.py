"""``repro-perf``: the perf-regression gate over the run ledger.

The gate runs a fixed set of smoke-scale workloads — each one small
enough for CI but shaped like the paper's evaluation queries (delta
SSSP, full-recompute PageRank, a fixpoint reachability) — through
:func:`repro.harness.time_fresh`, and compares the fresh medians against
the most recent ``baseline`` records in the ledger
(:mod:`repro.obs.ledger`) using the noise-aware median + k*MAD test.

Commands::

    repro-perf record              # append baseline records
    repro-perf check               # fresh run vs baselines; exit 1 on
                                   # regression (appends check records)
    repro-perf list                # show the ledger

``check --slowdown 0.05`` injects an artificial sleep into every timed
run — the self-test that proves the gate trips (used by
``scripts/check_perf_gate.sh`` and the CI perf-gate job).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..datasets import dblp_like, load_graph
from ..engine import Database
from ..execution import SessionOptions
from ..obs import ledger as ledger_mod
from ..obs.ledger import (
    RunRecord,
    append_records,
    check_regression,
    latest_baseline,
    options_hash,
    read_ledger,
    record_from_samples,
)
from ..workloads import pagerank_query, sssp_query
from .experiment import time_fresh

BENCHMARK_NAME = "perfgate"
LEDGER_ENV = "REPRO_PERF_LEDGER"

_REACH_FIXPOINT_SQL = """
WITH ITERATIVE r (node, v) AS (
  SELECT src, 0.0 FROM edges GROUP BY src
  ITERATE SELECT r.node, min(r.v + e.weight)
          FROM r JOIN edges e ON e.src = r.node
          GROUP BY r.node
  UNTIL 5 ITERATIONS
) SELECT node, v FROM r ORDER BY node"""


@dataclass(frozen=True)
class Workload:
    """One gated workload.

    Two shapes share the record/check machinery: SQL workloads supply
    ``sql_factory`` (timed as ``db.execute(sql)`` against a fresh graph
    database), and harness workloads supply ``setup``/``run`` (and
    optionally ``teardown``) callables for subjects that are not a
    single query — e.g. the distributed loop against a live worker
    pool.  ``options`` keys the ledger baseline either way.
    """

    name: str
    nodes: int
    seed: int
    options: dict
    sql_factory: Optional[Callable[[], str]] = None
    setup: Optional[Callable[[], object]] = None
    run: Optional[Callable[[object], None]] = None
    teardown: Optional[Callable[[object], None]] = None

    def build(self) -> Database:
        db = Database(SessionOptions(**self.options))
        load_graph(db, dblp_like(nodes=self.nodes, seed=self.seed))
        return db


def _mpp_setup() -> tuple:
    # Imported lazily so the SQL-only gate paths never touch the MPP
    # package (and its multiprocessing machinery).
    from ..datasets import generate_edges
    from ..mpp import Cluster, WorkerPool
    edges = generate_edges(dblp_like(nodes=200, seed=19))
    return Cluster(2), WorkerPool(2), edges


def _mpp_run(state: tuple) -> None:
    from ..mpp import distributed_pagerank
    cluster, pool, edges = state
    distributed_pagerank(cluster, edges, iterations=5, pool=pool)


def _mpp_teardown(state: tuple) -> None:
    state[1].shutdown()


def _serving_setup() -> tuple:
    # Lazy import: the SQL-only gate paths never touch the server
    # package (and its worker threads).
    from ..server import serve
    db = Database(SessionOptions())
    load_graph(db, dblp_like(nodes=200, seed=23))
    server = serve(db, workers=4, queue_depth=128)
    clients = [server.connect() for _ in range(8)]
    return server, clients


def _serving_run(state: tuple) -> None:
    """Mixed serving storm: 8 clients × 3 rounds of point reads, an
    iterative SSSP, and a (no-op) DELETE taking the write path — the
    timed window is admission + dispatch + execution for all of it."""
    server, clients = state
    iterate_sql = sssp_query(source=1, iterations=3)
    futures = []
    for round_no in range(3):
        for i, client in enumerate(clients):
            if i % 4 == 3:
                futures.append(client.submit(
                    "DELETE FROM edges WHERE src < 0"))
            elif i % 4 == 2:
                futures.append(client.submit(iterate_sql))
            else:
                futures.append(client.submit(
                    f"SELECT COUNT(*) FROM edges "
                    f"WHERE src > {round_no}"))
    for future in futures:
        future.result()


def _serving_teardown(state: tuple) -> None:
    state[0].shutdown()


def _racecheck_setup() -> object:
    # Lazy import: gate paths that never time the checker never load it.
    from ..verify.concurrency import static
    return static


def _racecheck_run(static_mod) -> None:
    """Full static lock-discipline pass over the installed package —
    the tree-wide cost CI pays on every push, so a slow rule regresses
    the ledger, not just developer patience."""
    issues = static_mod.run_static()
    if issues:  # pragma: no cover - a dirty tree invalidates the timing
        raise RuntimeError(
            f"static pass found {len(issues)} issue(s); timing a "
            "failing run is meaningless")


WORKLOADS = {
    workload.name: workload for workload in (
        Workload("sssp_delta", nodes=300, seed=7,
                 options={"enable_delta_iteration": True},
                 sql_factory=lambda: sssp_query(source=1, iterations=6)),
        Workload("pagerank_full", nodes=250, seed=11,
                 options={"enable_delta_iteration": False},
                 sql_factory=lambda: pagerank_query(iterations=6)),
        Workload("reach_fixpoint", nodes=200, seed=3,
                 options={"enable_delta_iteration": True},
                 sql_factory=lambda: _REACH_FIXPOINT_SQL),
        # Real shared-nothing execution: 2 resident workers, batches on
        # the wire.  The pool spawn is part of setup (untimed); the
        # timed window covers distribute + load + 5 supersteps — the
        # per-superstep dispatch overhead this PR budgets.
        Workload("pagerank_mpp_2w", nodes=200, seed=19,
                 options={"mpp_workers": 2, "iterations": 5},
                 setup=_mpp_setup, run=_mpp_run,
                 teardown=_mpp_teardown),
        # The serving layer under a mixed multi-client storm: 8
        # sessions over one engine, per-session dispatch on 4 workers,
        # shared plan cache on.  Gates scheduling + admission overhead.
        Workload("serving_mixed", nodes=200, seed=23,
                 options={"server_workers": 4, "clients": 8,
                          "rounds": 3},
                 setup=_serving_setup, run=_serving_run,
                 teardown=_serving_teardown),
        # The static lock-discipline pass over the whole package — the
        # checker is itself gated tooling, so a quadratic rule or a
        # guard-map explosion shows up as a ledger regression.
        Workload("racecheck_static", nodes=0, seed=0,
                 options={"tool": "racecheck_static"},
                 setup=_racecheck_setup, run=_racecheck_run),
    )
}


def default_ledger_path(directory: str = ".") -> str:
    """The ledger location: ``$REPRO_PERF_LEDGER`` or
    ``<directory>/PERF_LEDGER.jsonl``."""
    env = os.environ.get(LEDGER_ENV)
    if env:
        return env
    return os.path.join(directory, ledger_mod.DEFAULT_LEDGER_NAME)


def run_workload(workload: Workload, repeats: int = 5,
                 slowdown: float = 0.0,
                 kind: str = "baseline") -> RunRecord:
    """Time one workload against fresh state and shape it as a ledger
    record.  ``slowdown`` seconds of sleep inside the timed window seed
    a deliberate regression (the gate's self-test)."""
    if workload.sql_factory is not None:
        sql = workload.sql_factory()
        setup, teardown = workload.build, None

        def run(db) -> None:
            if slowdown > 0.0:
                time.sleep(slowdown)
            db.execute(sql)
    else:
        setup, teardown = workload.setup, workload.teardown

        def run(state) -> None:
            if slowdown > 0.0:
                time.sleep(slowdown)
            workload.run(state)

    measurement = time_fresh(workload.name, setup, run,
                             repeats=repeats, warmup=1,
                             teardown=teardown)
    return record_from_samples(
        BENCHMARK_NAME, workload.name, measurement.all_seconds,
        options=workload.options, kind=kind)


def _select(pattern: Optional[str]) -> list[Workload]:
    names = sorted(WORKLOADS)
    if pattern:
        names = [name for name in names if pattern in name]
    return [WORKLOADS[name] for name in names]


def _cmd_record(args) -> int:
    records = []
    for workload in _select(args.workload):
        record = run_workload(workload, repeats=args.repeats)
        records.append(record)
        print(f"recorded baseline {workload.name}: "
              f"{record.median_seconds * 1000:.2f}ms median, MAD "
              f"{record.mad_seconds * 1000:.3f}ms "
              f"({record.repeats} repeats)")
    append_records(records, args.ledger)
    print(f"appended {len(records)} baseline record(s) to {args.ledger}")
    return 0


def _cmd_check(args) -> int:
    history = read_ledger(args.ledger)
    failed = False
    to_append: list[RunRecord] = []
    for workload in _select(args.workload):
        baseline = latest_baseline(
            history, BENCHMARK_NAME, workload.name,
            options=options_hash(workload.options))
        if baseline is None:
            if args.bootstrap_missing:
                record = run_workload(workload, repeats=args.repeats)
                to_append.append(record)
                print(f"{BENCHMARK_NAME}/{workload.name}: no baseline — "
                      f"bootstrapped at "
                      f"{record.median_seconds * 1000:.2f}ms")
                continue
            print(f"{BENCHMARK_NAME}/{workload.name}: no baseline in "
                  f"{args.ledger} (run `repro-perf record` or pass "
                  f"--bootstrap-missing)", file=sys.stderr)
            failed = True
            continue
        fresh = run_workload(workload, repeats=args.repeats,
                             slowdown=args.slowdown, kind="check")
        result = check_regression(baseline, fresh, k=args.k)
        fresh.verdict = "regressed" if result.regressed else "ok"
        to_append.append(fresh)
        print(result.describe())
        failed = failed or result.regressed
    append_records(to_append, args.ledger)
    return 1 if failed else 0


def _cmd_list(args) -> int:
    history = read_ledger(args.ledger)
    if not history:
        print(f"{args.ledger}: no records")
        return 0
    for record in history:
        verdict = f" [{record.verdict}]" if record.verdict else ""
        sha = record.git_sha or "-"
        print(f"{record.kind:<8} {record.benchmark}/{record.label:<24} "
              f"{record.median_seconds * 1000:>9.2f}ms  "
              f"MAD {record.mad_seconds * 1000:>7.3f}ms  "
              f"x{record.repeats}  {sha}{verdict}")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="Performance-regression gate over the append-only "
                    "run ledger (median + k*MAD, noise-aware).")
    parser.add_argument("--ledger", default=default_ledger_path(),
                        help="ledger path (default: $REPRO_PERF_LEDGER "
                             "or ./PERF_LEDGER.jsonl)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--repeats", type=int, default=5,
                       help="timed repeats per workload (default 5)")
        p.add_argument("-w", "--workload",
                       help="only workloads whose name contains this")

    p_record = sub.add_parser(
        "record", help="append fresh baseline records to the ledger")
    common(p_record)
    p_record.set_defaults(func=_cmd_record)

    p_check = sub.add_parser(
        "check", help="compare a fresh run against the ledger baselines")
    common(p_check)
    p_check.add_argument("--k", type=float, default=4.0,
                         help="MAD multiplier for the gate (default 4)")
    p_check.add_argument("--bootstrap-missing", action="store_true",
                         help="record a baseline instead of failing "
                              "when a workload has none")
    p_check.add_argument("--slowdown", type=float, default=0.0,
                         metavar="SECONDS",
                         help="inject an artificial sleep per run "
                              "(self-test that the gate trips)")
    p_check.set_defaults(func=_cmd_check)

    p_list = sub.add_parser("list", help="print the ledger records")
    p_list.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
