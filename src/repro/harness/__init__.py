"""Benchmark harness: timing, comparison records, paper-style reports."""

from .experiment import (
    Comparison,
    Measurement,
    time_callable,
    time_fresh,
    time_query,
    write_bench_artifact,
)
from .reporting import (
    comparison_rows,
    format_table,
    print_figure,
    print_series,
)

__all__ = [
    "Comparison",
    "Measurement",
    "time_callable",
    "time_fresh",
    "time_query",
    "write_bench_artifact",
    "comparison_rows",
    "format_table",
    "print_figure",
    "print_series",
]
