"""Exception hierarchy for the repro engine.

Every error raised by the engine derives from :class:`ReproError` so callers
can catch engine failures without catching unrelated Python errors.  The
hierarchy mirrors the stages of query processing: lexing/parsing, binding
(name resolution), planning/rewriting, and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the engine."""


class SqlSyntaxError(ReproError):
    """Raised by the lexer or parser on malformed SQL.

    Carries the offending position so messages can point at the source.
    """

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None, column: int | None = None):
        location = ""
        if line is not None and column is not None:
            location = f" at line {line}, column {column}"
        elif position is not None:
            location = f" at position {position}"
        super().__init__(f"{message}{location}")
        self.position = position
        self.line = line
        self.column = column


class BindError(ReproError):
    """Raised when a name (table, column, function) cannot be resolved."""


class CatalogError(ReproError):
    """Raised on catalog violations: duplicate table, missing table, etc."""


class TypeCheckError(ReproError):
    """Raised when an expression is applied to incompatible types."""


class PlanError(ReproError):
    """Raised when a valid parse tree cannot be turned into a plan."""


class RewriteError(ReproError):
    """Raised when a rewrite rule meets a tree shape it cannot handle."""


class ExecutionError(ReproError):
    """Raised for failures during plan execution."""


class DuplicateKeyError(ExecutionError):
    """The iterative part produced two updates for the same row key.

    The paper (Section II) mandates a run-time error in this case: with two
    candidate updates for one row of the main CTE table, the system cannot
    know which to apply, and the user must resolve duplicates with an
    explicit aggregation.
    """


class VerificationError(PlanError):
    """The IR verifier (repro.verify) found a broken invariant.

    Carries the name of the compiler/rewrite pass that produced the bad
    IR plus every violated invariant, so the offending rewrite can be
    identified from the error alone.
    """

    def __init__(self, pass_name: str, violations: list[str]):
        self.pass_name = pass_name
        self.violations = list(violations)
        shown = "; ".join(self.violations[:4])
        if len(self.violations) > 4:
            shown += f"; ... {len(self.violations) - 4} more"
        super().__init__(
            f"IR verification failed after pass {pass_name!r}: {shown}")


class RecursionNotSupportedError(PlanError):
    """ANSI recursive CTE restriction violations (aggregates, etc.)."""


class IterationLimitError(ExecutionError):
    """An iterative CTE exceeded the engine's safety iteration cap."""


class TransactionError(ReproError):
    """Lock conflicts or invalid transaction state."""


class AdmissionError(ReproError):
    """The serving layer's bounded admission queue rejected a request.

    Backpressure, not failure: the engine is saturated and the caller
    should retry (or shed load).  Carries the configured queue depth and
    the number of requests outstanding at rejection time so clients can
    make an informed backoff decision.
    """

    def __init__(self, message: str, *, queue_depth: int,
                 outstanding: int):
        super().__init__(
            f"{message} (queue depth {queue_depth}, "
            f"{outstanding} outstanding)")
        self.queue_depth = queue_depth
        self.outstanding = outstanding


class MppWorkerError(ExecutionError):
    """A distributed worker died or stalled mid-superstep.

    Attributes the failure to the cluster segment, the superstep index,
    and the operation phase that was in flight, so a crash in a
    16-worker fleet reads as a single actionable line rather than a
    pile of pipe tracebacks.
    """

    def __init__(self, message: str, *, segment: int | None = None,
                 superstep: int | None = None,
                 operation: str | None = None):
        parts = []
        if segment is not None:
            parts.append(f"segment {segment}")
        if superstep is not None:
            parts.append(f"superstep {superstep}")
        if operation is not None:
            parts.append(f"during {operation!r}")
        suffix = f" ({', '.join(parts)})" if parts else ""
        super().__init__(f"{message}{suffix}")
        self.segment = segment
        self.superstep = superstep
        self.operation = operation
