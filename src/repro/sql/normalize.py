"""Statement normalization for the shared plan cache.

The paper's Fig. 1 storm pays parse → bind → rewrite → compile once *per
statement per client* even though the clients replay a handful of
statement *shapes* with different constants.  The plan cache
(:mod:`repro.plan.cache`) amortizes that cost across sessions, and this
module supplies its key: a canonical *shape string* for a parsed
statement in which every literal is replaced by a ``?`` placeholder,
plus the literal values in traversal order.

Two statements that differ only in literals (``... WHERE age > 30`` vs
``... WHERE age > 40``) share a shape; two that differ structurally
never do.  Identifier case and insignificant whitespace are already
erased by the time an AST exists, so ``SELECT  X FROM T`` and
``select x from t`` normalize identically.

The walk is purely structural — dataclass field order over the AST node
classes of :mod:`repro.sql.ast` — so it needs no per-node-type code and
cannot drift when new clauses are added: an unknown object is rendered
through ``repr`` and simply makes the shape more specific.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields, is_dataclass
from typing import Any

from . import ast


@dataclass(frozen=True)
class NormalizedStatement:
    """A statement's plan-cache identity.

    ``shape`` is the canonical parameterized form (hashable string);
    ``literals`` are the constants stripped out of it, in a fixed
    pre-order traversal order, so ``(shape, literals)`` identifies the
    exact statement while ``shape`` alone identifies its family.
    """

    shape: str
    literals: tuple

    @property
    def parameter_count(self) -> int:
        return len(self.literals)


def normalize_statement(statement: ast.Statement) -> NormalizedStatement:
    """Canonical ``(shape, literals)`` form of a parsed statement."""
    pieces: list[str] = []
    literals: list[Any] = []
    _emit(statement, pieces, literals)
    return NormalizedStatement("".join(pieces), tuple(literals))


def statement_shape(statement: ast.Statement) -> str:
    """Just the shape string (convenience for diagnostics)."""
    return normalize_statement(statement).shape


def _emit(node: Any, pieces: list[str], literals: list[Any]) -> None:
    """Append ``node``'s canonical rendering to ``pieces``.

    Literals contribute a placeholder and push their value; every other
    node contributes its structure.  Strings are lowered because the
    engine resolves identifiers case-insensitively (literal *values*
    never take this path — they are captured before the generic walk).
    """
    if isinstance(node, ast.Literal):
        pieces.append("?")
        literals.append(node.value)
        return
    if node is None:
        pieces.append("~")
        return
    if isinstance(node, enum.Enum):
        pieces.append(f"<{type(node).__name__}.{node.name}>")
        return
    if isinstance(node, str):
        pieces.append(f"'{node.lower()}'")
        return
    if isinstance(node, (bool, int, float)):
        pieces.append(repr(node))
        return
    if isinstance(node, (list, tuple)):
        pieces.append("[")
        for item in node:
            _emit(item, pieces, literals)
            pieces.append(",")
        pieces.append("]")
        return
    if is_dataclass(node):
        pieces.append(f"{type(node).__name__}(")
        for field in fields(node):
            _emit(getattr(node, field.name), pieces, literals)
            pieces.append(",")
        pieces.append(")")
        return
    # Unknown object (future AST node without dataclass decoration):
    # fall back to repr — over-specific shapes are safe, merged shapes
    # are not.
    pieces.append(repr(node))
