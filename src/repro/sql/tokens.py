"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


# Reserved words recognised case-insensitively.  Includes the iterative-CTE
# extension keywords (ITERATIVE / ITERATE / UNTIL / ITERATIONS / UPDATES /
# DELTA) alongside standard SQL.
KEYWORDS = frozenset({
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "offset", "as", "on", "join", "inner", "left", "right", "full", "outer",
    "cross", "union", "except", "intersect", "all", "distinct", "and", "or", "not", "in", "is",
    "null", "true", "false", "case", "when", "then", "else", "end", "cast",
    "between", "like", "exists", "asc", "desc",
    "with", "recursive", "iterative", "iterate", "until", "iterations",
    "updates", "delta", "any",
    "create", "table", "temporary", "temp", "drop", "insert", "into",
    "values", "update", "set", "delete", "primary", "key", "if",
    "begin", "commit", "rollback", "transaction", "explain", "analyze",
})

# Multi-character operators must be listed before their prefixes.
OPERATORS = (
    "<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%",
)

PUNCTUATION = "(),.;"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int
    line: int
    column: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def is_keyword(self, *words: str) -> bool:
        return (self.type is TokenType.KEYWORD
                and self.text.lower() in {w.lower() for w in words})

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.type.value}:{self.text!r}"
