"""Abstract syntax tree for the supported SQL dialect.

The dialect covers what the paper's workloads and baselines need: full
SELECT (joins, grouping, set operations, ordering), DDL/DML for the
middleware and stored-procedure baselines, and the three CTE flavours —
regular ``WITH``, ANSI ``WITH RECURSIVE``, and the paper's extension
``WITH ITERATIVE … ITERATE … UNTIL`` with Metadata / Data / Delta
termination conditions.

All nodes are plain dataclasses; rewrites build new trees instead of
mutating shared ones (expressions are treated as immutable after parse).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for scalar expressions."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of this expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # None (NULL), bool, int, float, or str


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


class BinaryOperator(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "AND"
    OR = "OR"
    CONCAT = "||"
    LIKE = "LIKE"

    @property
    def is_comparison(self) -> bool:
        return self in (BinaryOperator.EQ, BinaryOperator.NE,
                        BinaryOperator.LT, BinaryOperator.LE,
                        BinaryOperator.GT, BinaryOperator.GE)


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: BinaryOperator
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


class UnaryOperator(enum.Enum):
    NOT = "NOT"
    NEG = "-"
    POS = "+"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: UnaryOperator
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, *self.items)


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, self.low, self.high)


@dataclass(frozen=True)
class Case(Expr):
    """Searched or simple CASE.  ``operand`` is None for searched CASE."""

    whens: tuple[tuple[Expr, Expr], ...]
    operand: Optional[Expr] = None
    default: Optional[Expr] = None

    def children(self) -> tuple[Expr, ...]:
        parts: list[Expr] = []
        if self.operand is not None:
            parts.append(self.operand)
        for condition, result in self.whens:
            parts.extend((condition, result))
        if self.default is not None:
            parts.append(self.default)
        return tuple(parts)


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Scalar or aggregate function call; name is stored lower-case."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False

    def children(self) -> tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True)
class Cast(Expr):
    operand: Expr
    type_name: str

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class ExistsExpr(Expr):
    """``[NOT] EXISTS (subquery)`` — only valid in WHERE; the planner
    decorrelates it into a semi/anti join."""

    query: "SelectLike"
    negated: bool = False

    def __eq__(self, other):  # queries are mutable: identity equality
        return self is other

    def __hash__(self):
        return id(self)


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (subquery)`` — only valid in WHERE."""

    operand: Expr
    query: "SelectLike"
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return id(self)


AGGREGATE_FUNCTIONS = frozenset({"sum", "count", "min", "max", "avg"})


def is_aggregate_call(expr: Expr) -> bool:
    return (isinstance(expr, FunctionCall)
            and expr.name in AGGREGATE_FUNCTIONS)


def contains_aggregate(expr: Expr) -> bool:
    return any(is_aggregate_call(node) for node in expr.walk())


def referenced_columns(expr: Expr) -> list[ColumnRef]:
    return [node for node in expr.walk() if isinstance(node, ColumnRef)]


def referenced_tables(expr: Expr) -> set[str]:
    return {ref.table for ref in referenced_columns(expr)
            if ref.table is not None}


# ---------------------------------------------------------------------------
# Relations (FROM clause)
# ---------------------------------------------------------------------------


class Relation:
    """Base class for FROM-clause items."""


@dataclass(frozen=True)
class TableRef(Relation):
    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef(Relation):
    query: "SelectLike"
    alias: Optional[str] = None


class JoinKind(enum.Enum):
    INNER = "INNER"
    LEFT = "LEFT"
    RIGHT = "RIGHT"
    FULL = "FULL"
    CROSS = "CROSS"


@dataclass
class Join(Relation):
    kind: JoinKind
    left: Relation
    right: Relation
    condition: Optional[Expr] = None


# ---------------------------------------------------------------------------
# SELECT and set operations
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass
class Select:
    items: list[SelectItem]
    from_clause: Optional[Relation] = None
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    distinct: bool = False
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    with_clause: Optional["WithClause"] = None


class SetOpKind(enum.Enum):
    UNION = "UNION"
    UNION_ALL = "UNION ALL"
    EXCEPT = "EXCEPT"
    INTERSECT = "INTERSECT"


@dataclass
class SetOp:
    kind: SetOpKind
    left: "SelectLike"
    right: "SelectLike"
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    with_clause: Optional["WithClause"] = None


SelectLike = Union[Select, SetOp]


# ---------------------------------------------------------------------------
# CTEs (regular, recursive, iterative)
# ---------------------------------------------------------------------------


class TerminationKind(enum.Enum):
    """Taxonomy of UNTIL conditions from the paper (§II, §VI-B)."""

    ITERATIONS = "iterations"   # metadata: stop after N iterations
    UPDATES = "updates"         # metadata: stop once N rows were updated
    DATA_ANY = "data_any"       # data: stop when >=1 row satisfies expr
    DATA_ALL = "data_all"       # data: stop when all rows satisfy expr
    DELTA = "delta"             # delta: rows changed this iteration vs N

    @property
    def family(self) -> str:
        """Metadata / Data / Delta — the Type tag of Fig. 3."""
        if self in (TerminationKind.ITERATIONS, TerminationKind.UPDATES):
            return "Metadata"
        if self in (TerminationKind.DATA_ANY, TerminationKind.DATA_ALL):
            return "Data"
        return "Delta"


@dataclass
class Termination:
    kind: TerminationKind
    count: Optional[int] = None       # N for ITERATIONS/UPDATES/DELTA
    expr: Optional[Expr] = None       # for DATA_* conditions
    comparator: Optional[str] = None  # for DELTA: one of = < <= > >=

    def describe(self) -> str:
        """The <<Type, N, Expr>> annotation the paper shows in Fig. 4."""
        expr_text = "NONE"
        if self.expr is not None:
            from .printer import expr_to_sql
            expr_text = expr_to_sql(self.expr)
        count = self.count if self.count is not None else "NONE"
        return f"<<Type:{self.kind.family.lower()}, N:{count}, Expr:{expr_text}>>"


@dataclass
class CommonTableExpr:
    """Regular or recursive CTE definition."""

    name: str
    query: SelectLike
    columns: Optional[list[str]] = None
    recursive: bool = False


@dataclass
class IterativeCte:
    """``WITH ITERATIVE name (cols) AS (init ITERATE step UNTIL tc)``."""

    name: str
    init: SelectLike
    step: SelectLike
    termination: Termination
    columns: Optional[list[str]] = None


CteDefinition = Union[CommonTableExpr, IterativeCte]


@dataclass
class WithClause:
    ctes: list[CteDefinition]


# ---------------------------------------------------------------------------
# DDL / DML / control statements
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef:
    name: str
    type_name: str
    primary_key: bool = False


@dataclass
class CreateTable:
    name: str
    columns: list[ColumnDef]
    temporary: bool = False
    if_not_exists: bool = False


@dataclass
class DropTable:
    name: str
    if_exists: bool = False


@dataclass
class Insert:
    table: str
    columns: Optional[list[str]]
    source: Union[list[list[Expr]], SelectLike]  # VALUES rows or a query


@dataclass
class Update:
    table: str
    assignments: list[tuple[str, Expr]]
    from_clause: Optional[Relation] = None
    where: Optional[Expr] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expr] = None


@dataclass
class Explain:
    statement: "Statement"


@dataclass
class Analyze:
    """``ANALYZE [table]`` — collect optimizer statistics."""

    table: Optional[str] = None


@dataclass
class BeginTransaction:
    pass


@dataclass
class CommitTransaction:
    pass


@dataclass
class RollbackTransaction:
    pass


Statement = Union[
    Select, SetOp, CreateTable, DropTable, Insert, Update, Delete, Explain,
    Analyze, BeginTransaction, CommitTransaction, RollbackTransaction,
]
