"""Hand-written SQL lexer.

Produces a flat token stream for the recursive-descent parser.  Handles
line comments (``--``), block comments (``/* */``), quoted identifiers
(``"name"``), string literals with doubled-quote escaping (``'it''s'``),
and numeric literals with optional fraction and exponent.
"""

from __future__ import annotations

from ..errors import SqlSyntaxError
from .tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenType


class Lexer:
    """Single-pass tokenizer over a SQL string."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        tokens = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # -- internals ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < len(self._text):
                if self._text[self._pos] == "\n":
                    self._line += 1
                    self._col = 1
                else:
                    self._col += 1
                self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            char = self._peek()
            if char.isspace():
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line, start_col = self._line, self._col
                self._advance(2)
                while self._pos < len(self._text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise SqlSyntaxError("unterminated block comment",
                                         line=start_line, column=start_col)
            else:
                return

    def _make(self, token_type: TokenType, text: str,
              position: int, line: int, column: int) -> Token:
        return Token(token_type, text, position, line, column)

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        start, line, col = self._pos, self._line, self._col
        char = self._peek()

        if not char:
            return self._make(TokenType.EOF, "", start, line, col)

        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(start, line, col)

        if char == "'":
            return self._lex_string(start, line, col)

        if char == '"':
            return self._lex_quoted_identifier(start, line, col)

        if char.isalpha() or char == "_":
            return self._lex_word(start, line, col)

        for op in OPERATORS:
            if self._text.startswith(op, self._pos):
                self._advance(len(op))
                return self._make(TokenType.OPERATOR, op, start, line, col)

        if char in PUNCTUATION:
            self._advance()
            return self._make(TokenType.PUNCTUATION, char, start, line, col)

        raise SqlSyntaxError(f"unexpected character {char!r}",
                             line=line, column=col)

    def _lex_number(self, start: int, line: int, col: int) -> Token:
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            while self._peek().isdigit():
                self._advance()
        elif self._peek() == ".":
            # "1." form — accept trailing dot as float.
            self._advance()
        if self._peek() in ("e", "E"):
            lookahead = 1
            if self._peek(1) in ("+", "-"):
                lookahead = 2
            if self._peek(lookahead).isdigit():
                self._advance(lookahead)
                while self._peek().isdigit():
                    self._advance()
        return self._make(TokenType.NUMBER, self._text[start:self._pos],
                          start, line, col)

    def _lex_string(self, start: int, line: int, col: int) -> Token:
        self._advance()  # opening quote
        parts = []
        while True:
            char = self._peek()
            if not char:
                raise SqlSyntaxError("unterminated string literal",
                                     line=line, column=col)
            if char == "'":
                if self._peek(1) == "'":
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return self._make(TokenType.STRING, "".join(parts),
                                  start, line, col)
            parts.append(char)
            self._advance()

    def _lex_quoted_identifier(self, start: int, line: int,
                               col: int) -> Token:
        self._advance()
        parts = []
        while True:
            char = self._peek()
            if not char:
                raise SqlSyntaxError("unterminated quoted identifier",
                                     line=line, column=col)
            if char == '"':
                if self._peek(1) == '"':
                    parts.append('"')
                    self._advance(2)
                    continue
                self._advance()
                return self._make(TokenType.IDENTIFIER, "".join(parts),
                                  start, line, col)
            parts.append(char)
            self._advance()

    def _lex_word(self, start: int, line: int, col: int) -> Token:
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._text[start:self._pos]
        token_type = (TokenType.KEYWORD if text.lower() in KEYWORDS
                      else TokenType.IDENTIFIER)
        return self._make(token_type, text, start, line, col)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize a SQL string."""
    return Lexer(text).tokenize()
