"""Render AST nodes back to SQL text.

Used for EXPLAIN annotations, error messages, round-trip tests, and the
middleware baseline (which generates statement scripts from ASTs).
"""

from __future__ import annotations

from . import ast


def expr_to_sql(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        value = expr.value
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        return repr(value)
    if isinstance(expr, ast.ColumnRef):
        return expr.qualified
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.BinaryOp):
        return (f"({expr_to_sql(expr.left)} {expr.op.value} "
                f"{expr_to_sql(expr.right)})")
    if isinstance(expr, ast.UnaryOp):
        if expr.op is ast.UnaryOperator.NOT:
            return f"(NOT {expr_to_sql(expr.operand)})"
        # The space matters: "--" would start a line comment.
        return f"({expr.op.value} {expr_to_sql(expr.operand)})"
    if isinstance(expr, ast.IsNull):
        verb = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({expr_to_sql(expr.operand)} {verb})"
    if isinstance(expr, ast.InList):
        items = ", ".join(expr_to_sql(item) for item in expr.items)
        verb = "NOT IN" if expr.negated else "IN"
        return f"({expr_to_sql(expr.operand)} {verb} ({items}))"
    if isinstance(expr, ast.Between):
        verb = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (f"({expr_to_sql(expr.operand)} {verb} "
                f"{expr_to_sql(expr.low)} AND {expr_to_sql(expr.high)})")
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(expr_to_sql(expr.operand))
        for condition, result in expr.whens:
            parts.append(f"WHEN {expr_to_sql(condition)} "
                         f"THEN {expr_to_sql(result)}")
        if expr.default is not None:
            parts.append(f"ELSE {expr_to_sql(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(expr_to_sql(arg) for arg in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name.upper()}({distinct}{args})"
    if isinstance(expr, ast.Cast):
        return f"CAST({expr_to_sql(expr.operand)} AS {expr.type_name})"
    if isinstance(expr, ast.ExistsExpr):
        verb = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{verb} ({statement_to_sql(expr.query)})"
    if isinstance(expr, ast.InSubquery):
        verb = "NOT IN" if expr.negated else "IN"
        return (f"({expr_to_sql(expr.operand)} {verb} "
                f"({statement_to_sql(expr.query)}))")
    raise TypeError(f"cannot print expression node {type(expr).__name__}")


def relation_to_sql(relation: ast.Relation) -> str:
    if isinstance(relation, ast.TableRef):
        if relation.alias:
            return f"{relation.name} AS {relation.alias}"
        return relation.name
    if isinstance(relation, ast.SubqueryRef):
        inner = statement_to_sql(relation.query)
        alias = f" AS {relation.alias}" if relation.alias else ""
        return f"({inner}){alias}"
    if isinstance(relation, ast.Join):
        left = relation_to_sql(relation.left)
        right = relation_to_sql(relation.right)
        if relation.kind is ast.JoinKind.CROSS:
            return f"{left} CROSS JOIN {right}"
        keyword = {ast.JoinKind.INNER: "JOIN",
                   ast.JoinKind.LEFT: "LEFT JOIN",
                   ast.JoinKind.RIGHT: "RIGHT JOIN",
                   ast.JoinKind.FULL: "FULL JOIN"}[relation.kind]
        condition = ""
        if relation.condition is not None:
            condition = f" ON {expr_to_sql(relation.condition)}"
        return f"{left} {keyword} {right}{condition}"
    raise TypeError(f"cannot print relation node {type(relation).__name__}")


def _select_to_sql(select: ast.Select) -> str:
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(
        expr_to_sql(item.expr) + (f" AS {item.alias}" if item.alias else "")
        for item in select.items))
    if select.from_clause is not None:
        parts.append("FROM " + relation_to_sql(select.from_clause))
    if select.where is not None:
        parts.append("WHERE " + expr_to_sql(select.where))
    if select.group_by:
        parts.append("GROUP BY "
                     + ", ".join(expr_to_sql(e) for e in select.group_by))
    if select.having is not None:
        parts.append("HAVING " + expr_to_sql(select.having))
    return " ".join(parts)


def _tail_to_sql(query: ast.Select | ast.SetOp) -> str:
    parts = []
    if query.order_by:
        rendered = ", ".join(
            expr_to_sql(item.expr) + ("" if item.ascending else " DESC")
            for item in query.order_by)
        parts.append("ORDER BY " + rendered)
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    if query.offset is not None:
        parts.append(f"OFFSET {query.offset}")
    return " ".join(parts)


def termination_to_sql(termination: ast.Termination) -> str:
    kind = termination.kind
    if kind is ast.TerminationKind.ITERATIONS:
        return f"{termination.count} ITERATIONS"
    if kind is ast.TerminationKind.UPDATES:
        return f"{termination.count} UPDATES"
    if kind is ast.TerminationKind.DELTA:
        return f"DELTA {termination.comparator} {termination.count}"
    prefix = "ALL " if kind is ast.TerminationKind.DATA_ALL else ""
    return prefix + expr_to_sql(termination.expr)


def _with_to_sql(with_clause: ast.WithClause) -> str:
    rendered = []
    for cte in with_clause.ctes:
        columns = ""
        if cte.columns:
            columns = " (" + ", ".join(cte.columns) + ")"
        if isinstance(cte, ast.IterativeCte):
            body = (f"{statement_to_sql(cte.init)} ITERATE "
                    f"{statement_to_sql(cte.step)} UNTIL "
                    f"{termination_to_sql(cte.termination)}")
            rendered.append(f"ITERATIVE {cte.name}{columns} AS ({body})")
        else:
            prefix = "RECURSIVE " if cte.recursive else ""
            rendered.append(f"{prefix}{cte.name}{columns} AS "
                            f"({statement_to_sql(cte.query)})")
    return "WITH " + ", ".join(rendered)


def statement_to_sql(stmt: ast.Statement) -> str:
    """Render any supported statement as SQL text."""
    if isinstance(stmt, ast.Select):
        parts = []
        if stmt.with_clause is not None:
            parts.append(_with_to_sql(stmt.with_clause))
        parts.append(_select_to_sql(stmt))
        tail = _tail_to_sql(stmt)
        if tail:
            parts.append(tail)
        return " ".join(parts)
    if isinstance(stmt, ast.SetOp):
        parts = []
        if stmt.with_clause is not None:
            parts.append(_with_to_sql(stmt.with_clause))
        keyword = {ast.SetOpKind.UNION_ALL: "UNION ALL",
                   ast.SetOpKind.UNION: "UNION",
                   ast.SetOpKind.EXCEPT: "EXCEPT",
                   ast.SetOpKind.INTERSECT: "INTERSECT"}[stmt.kind]
        parts.append(f"{statement_to_sql(stmt.left)} {keyword} "
                     f"{statement_to_sql(stmt.right)}")
        tail = _tail_to_sql(stmt)
        if tail:
            parts.append(tail)
        return " ".join(parts)
    if isinstance(stmt, ast.CreateTable):
        columns = ", ".join(
            f"{c.name} {c.type_name}"
            + (" PRIMARY KEY" if c.primary_key else "")
            for c in stmt.columns)
        temp = "TEMPORARY " if stmt.temporary else ""
        guard = "IF NOT EXISTS " if stmt.if_not_exists else ""
        return f"CREATE {temp}TABLE {guard}{stmt.name} ({columns})"
    if isinstance(stmt, ast.DropTable):
        guard = "IF EXISTS " if stmt.if_exists else ""
        return f"DROP TABLE {guard}{stmt.name}"
    if isinstance(stmt, ast.Insert):
        columns = ""
        if stmt.columns:
            columns = " (" + ", ".join(stmt.columns) + ")"
        if isinstance(stmt.source, list):
            rows = ", ".join(
                "(" + ", ".join(expr_to_sql(v) for v in row) + ")"
                for row in stmt.source)
            return f"INSERT INTO {stmt.table}{columns} VALUES {rows}"
        return (f"INSERT INTO {stmt.table}{columns} "
                f"{statement_to_sql(stmt.source)}")
    if isinstance(stmt, ast.Update):
        assignments = ", ".join(f"{col} = {expr_to_sql(value)}"
                                for col, value in stmt.assignments)
        text = f"UPDATE {stmt.table} SET {assignments}"
        if stmt.from_clause is not None:
            text += " FROM " + relation_to_sql(stmt.from_clause)
        if stmt.where is not None:
            text += " WHERE " + expr_to_sql(stmt.where)
        return text
    if isinstance(stmt, ast.Delete):
        text = f"DELETE FROM {stmt.table}"
        if stmt.where is not None:
            text += " WHERE " + expr_to_sql(stmt.where)
        return text
    if isinstance(stmt, ast.Explain):
        return "EXPLAIN " + statement_to_sql(stmt.statement)
    if isinstance(stmt, ast.Analyze):
        return f"ANALYZE {stmt.table}" if stmt.table else "ANALYZE"
    if isinstance(stmt, ast.BeginTransaction):
        return "BEGIN"
    if isinstance(stmt, ast.CommitTransaction):
        return "COMMIT"
    if isinstance(stmt, ast.RollbackTransaction):
        return "ROLLBACK"
    raise TypeError(f"cannot print statement node {type(stmt).__name__}")
