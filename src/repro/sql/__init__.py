"""SQL front end: lexer, parser, AST, and SQL printer."""

from . import ast
from .lexer import Lexer, tokenize
from .parser import Parser, parse, parse_script
from .printer import expr_to_sql, relation_to_sql, statement_to_sql

__all__ = [
    "ast",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "parse_script",
    "expr_to_sql",
    "relation_to_sql",
    "statement_to_sql",
]
